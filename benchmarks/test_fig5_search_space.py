"""Fig. 5 — Architecture and precision search-space exploration.

Regenerates the figure's data: the seed point (blue star), the FLOAT32 PIT
Pareto front obtained by sweeping the regularization strength (grey curve),
and the mixed-precision fronts (coloured circles), all in the Balanced
Accuracy vs memory plane.  Also reports the memory / MAC reduction factors
w.r.t. the seed at iso-BAS quoted in Sec. IV-B.
"""

import pytest

from conftest import save_result

from repro.flow import pareto_front, points_from


def _series(flow_result):
    lines = ["# Fig. 5 — BAS vs memory [kB] search-space exploration", ""]
    seed_bas, seed_memory, seed_macs = flow_result.seed_point
    lines.append(f"seed (FLOAT32): bas={seed_bas:.3f} memory={seed_memory / 1024:.2f} kB macs={seed_macs}")

    lines.append("")
    lines.append("FLOAT32 PIT front (lambda sweep):")
    for point in flow_result.float_points:
        lines.append(
            f"  lambda={point.strength:<8g} bas={point.bas:.3f} "
            f"memory={point.memory_kb:6.2f} kB macs={point.macs:>8} arch="
            + "-".join(str(u["out"]) for u in point.arch_summary)
        )

    lines.append("")
    lines.append("Mixed-precision QAT points (per scheme):")
    by_scheme = {}
    for qp in flow_result.quantized_points:
        by_scheme.setdefault(qp.scheme.label, []).append(qp)
    for label in sorted(by_scheme):
        for qp in sorted(by_scheme[label], key=lambda p: p.memory_bytes):
            lines.append(
                f"  {label:<14} bas={qp.bas:.3f} memory={qp.memory_kb:6.2f} kB macs={qp.macs:>8}"
            )

    # Reduction factors vs the seed at iso-BAS (Sec. IV-B style numbers).
    quant_front = pareto_front(
        points_from(
            flow_result.quantized_points,
            score=lambda p: p.bas,
            cost=lambda p: p.memory_bytes,
        )
    )
    float_front = pareto_front(
        points_from(
            flow_result.float_points,
            score=lambda p: p.bas,
            cost=lambda p: float(p.params) * 4.0,
        )
    )
    lines.append("")
    best_float = max(flow_result.float_points, key=lambda p: p.bas)
    eligible_float = [p for p in flow_result.float_points if p.bas >= seed_bas - 0.02]
    if eligible_float:
        smallest = min(eligible_float, key=lambda p: p.params)
        lines.append(
            "FLOAT32 NAS vs seed at ~iso-BAS: "
            f"memory x{seed_memory / (smallest.params * 4):.1f} reduction, "
            f"MACs x{seed_macs / max(smallest.macs, 1):.1f} reduction"
        )
    eligible_quant = [p for p in flow_result.quantized_points if p.bas >= seed_bas - 0.02]
    if eligible_quant:
        smallest_q = min(eligible_quant, key=lambda p: p.memory_bytes)
        lines.append(
            "Quantized flow vs seed at ~iso-BAS: "
            f"memory x{seed_memory / smallest_q.memory_bytes:.1f} reduction, "
            f"MACs x{seed_macs / max(smallest_q.macs, 1):.1f} reduction"
        )
    lines.append(
        f"front sizes: float={len(float_front)} quantized={len(quant_front)} "
        f"(quantized extends the float front toward lower memory)"
    )
    return lines


@pytest.mark.benchmark(group="fig5")
def test_fig5_search_space(benchmark, flow_result):
    lines = benchmark.pedantic(lambda: _series(flow_result), rounds=1, iterations=1)
    save_result("fig5_search_space", lines)

    # Shape checks mirroring the paper's qualitative claims.
    seed_bas, seed_memory, _ = flow_result.seed_point
    assert flow_result.float_points, "the lambda sweep produced no architectures"
    assert min(p.params * 4 for p in flow_result.float_points) < seed_memory, (
        "the NAS never produced a model smaller than the seed"
    )
    assert min(p.memory_bytes for p in flow_result.quantized_points) < min(
        p.params * 4.0 for p in flow_result.float_points
    ), "quantization did not extend the front below the FLOAT32 models"
