#!/usr/bin/env python
"""Three-mode simulator benchmark on the LINAIGE streaming workload.

Builds a Table-I-class quantized CNN, compiles it for the ISA-simulated
targets and streams a batch of held-out LINAIGE frames through
``Engine.predict_batch`` in every simulation mode (``interp``, ``fast``,
``jit``), asserting **bit-exact** agreement (predictions, logits, cycles,
energy) before reporting speed:

* trace-compile time vs steady-state streaming time, split per mode,
* frames/sec per mode, speedups vs the interpreter AND vs fast mode,
* simulated cycles/sec (how much silicon time one wall-clock second buys).

Results are written as machine-readable JSON (``BENCH_sim.json`` at the
repository root by default) to seed the performance trajectory; CI runs
``perf_sim.py --quick`` as a smoke job, so any cross-mode mismatch or a
collapse of the compiled paths fails every PR.

Usage::

    PYTHONPATH=src python benchmarks/perf_sim.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

import repro
from repro.datasets import generate_linaige
from repro.engine import ModelBundle
from repro.flow import Preprocessor, build_seed_cnn
from repro.hw.sim import clear_trace_cache, get_template
from repro.quant import PrecisionScheme, quantize_model
from repro.serve import describe_host

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# The streaming workload: a mixed-precision CNN of the paper's model family
# sized near the 16 kB on-chip memory budget, fed the held-out session.
FULL = dict(conv_channels=(24, 24), hidden_features=40, frames=6, scale=0.05)
QUICK = dict(conv_channels=(12, 16), hidden_features=24, frames=3, scale=0.03)
SCHEME = (8, 4, 4, 8)
MODES = ("interp", "fast", "jit")

# Full-run acceptance floors (wall-clock ratios are too noisy on the quick
# CI workload, so --quick only enforces bit-exact parity).
FAST_VS_INTERP_FLOOR = 10.0
JIT_VS_FAST_FLOOR = 5.0
JIT_VS_INTERP_FLOOR = 60.0


def build_workload(cfg):
    rng = np.random.default_rng(0)
    dataset = generate_linaige(seed=0, scale=cfg["scale"])
    train = np.concatenate(
        [s.frames for s in dataset.sessions if s.session_id != 2]
    )
    pre = Preprocessor.fit(train)
    model = build_seed_cnn(
        rng,
        conv_channels=cfg["conv_channels"],
        hidden_features=cfg["hidden_features"],
    )
    qmodel = quantize_model(
        model, PrecisionScheme(SCHEME), calibration_data=pre(train)[:256]
    )
    frames = pre(dataset.session(2).frames)[: cfg["frames"]]
    return ModelBundle(qmodel, label="perf-sim workload"), frames


def time_mode(bundle, target, mode, frames):
    """Measure trace-compile time and steady-state streaming time.

    The compile phase is the program decode + trace/JIT compilation the
    mode pays once per program; steady state is a ``predict_batch`` after
    all per-core caches are warm (one warm-up frame).  The interpreter has
    no compile phase.
    """
    engine = repro.compile(bundle, target=target, sim_mode=mode)
    engine.backend.prepare()  # load once; measure steady-state streaming
    core = engine.backend.platform.core
    program = engine.backend.compiled.program

    compile_s = 0.0
    if mode == "jit":
        clear_trace_cache()
        start = time.perf_counter()
        get_template(program, core.cycle_model, core.enable_sdotp)
        compile_s = time.perf_counter() - start
    elif mode == "fast":
        from repro.hw.sim import compile_trace

        start = time.perf_counter()
        compile_trace(
            program,
            engine.backend.platform.memory,
            cycle_model=core.cycle_model,
            enable_sdotp=core.enable_sdotp,
        )
        compile_s = time.perf_counter() - start

    engine.predict_batch(frames[:1])  # warm per-core caches
    steady_s = float("inf")
    for _ in range(2):  # best-of-2 guards against scheduler noise
        start = time.perf_counter()
        batch = engine.predict_batch(frames)
        steady_s = min(steady_s, time.perf_counter() - start)
    return batch, compile_s, steady_s


def check_parity(target, batches):
    reference = batches["interp"]
    for mode in ("fast", "jit"):
        failures = []
        batch = batches[mode]
        if not np.array_equal(batch.predictions, reference.predictions):
            failures.append("predictions")
        if not np.array_equal(batch.logits, reference.logits):
            failures.append("logits")
        if not np.array_equal(batch.cycles_per_frame, reference.cycles_per_frame):
            failures.append("cycles")
        if not np.array_equal(
            batch.energy_uj_per_frame, reference.energy_uj_per_frame
        ):
            failures.append("energy")
        if failures:
            raise SystemExit(
                f"{mode.upper()}/INTERP MISMATCH on {target}: "
                f"{', '.join(failures)} differ"
            )


def bench_target(bundle, target, frames):
    batches, rows = {}, {}
    n = len(frames)
    for mode in MODES:
        batch, compile_s, steady_s = time_mode(bundle, target, mode, frames)
        batches[mode] = batch
        cycles = int(batch.cycles_per_frame.sum())
        rows[mode] = {
            "compile_seconds": compile_s,
            "seconds": steady_s,
            "frames_per_sec": n / steady_s,
            "sim_cycles_per_sec": cycles / steady_s,
        }
    check_parity(target, batches)
    interp_s = rows["interp"]["seconds"]
    fast_s = rows["fast"]["seconds"]
    jit_s = rows["jit"]["seconds"]
    return {
        "frames": n,
        "cycles_per_frame": float(batches["interp"].mean_cycles),
        "modes": rows,
        "speedups": {
            "fast_vs_interp": interp_s / fast_s,
            "jit_vs_interp": interp_s / jit_s,
            "jit_vs_fast": fast_s / jit_s,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--out", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_sim.json",
                        help="where to write the JSON results")
    parser.add_argument("--targets", nargs="+", default=["maupiti", "ibex"],
                        help="ISA-simulated targets to benchmark")
    args = parser.parse_args(argv)

    cfg = QUICK if args.quick else FULL
    bundle, frames = build_workload(cfg)
    print(f"workload: LINAIGE streaming, CNN {cfg['conv_channels']}/"
          f"{cfg['hidden_features']} INT{'-'.join(map(str, SCHEME))}, "
          f"{len(frames)} frames")

    results = {
        "workload": {
            "dataset": "linaige-synthetic",
            "conv_channels": list(cfg["conv_channels"]),
            "hidden_features": cfg["hidden_features"],
            "scheme": list(SCHEME),
            "frames": len(frames),
            "quick": bool(args.quick),
        },
        "host": describe_host(),
        "targets": {},
    }
    for target in args.targets:
        row = bench_target(bundle, target, frames)
        results["targets"][target] = row
        speed = row["speedups"]
        print(
            f"{target:<8} "
            f"interp {row['modes']['interp']['frames_per_sec']:6.2f} fps | "
            f"fast {row['modes']['fast']['frames_per_sec']:7.2f} fps | "
            f"jit {row['modes']['jit']['frames_per_sec']:8.2f} fps | "
            f"jit/fast {speed['jit_vs_fast']:5.1f}x | "
            f"jit/interp {speed['jit_vs_interp']:6.1f}x | "
            f"{row['modes']['jit']['sim_cycles_per_sec'] / 1e6:7.1f} Msimcycles/s"
        )

    results["min_speedups"] = {
        key: min(row["speedups"][key] for row in results["targets"].values())
        for key in ("fast_vs_interp", "jit_vs_interp", "jit_vs_fast")
    }
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"parity: OK (bit-exact on {', '.join(results['targets'])})")
    print(f"wrote {args.out}")

    # The quick CI job only enforces bit-exact parity (check_parity above
    # already exited on any mismatch) — tiny workloads on shared runners
    # make wall-clock ratios too noisy to gate on.  The full run enforces
    # the acceptance bars.
    if not args.quick:
        floors = {
            "fast_vs_interp": FAST_VS_INTERP_FLOOR,
            "jit_vs_fast": JIT_VS_FAST_FLOOR,
            "jit_vs_interp": JIT_VS_INTERP_FLOOR,
        }
        failed = False
        for key, floor in floors.items():
            measured = results["min_speedups"][key]
            if measured < floor:
                print(f"FAIL: {key} speedup {measured:.1f}x below the "
                      f"{floor:.0f}x floor", file=sys.stderr)
                failed = True
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
