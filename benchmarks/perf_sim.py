#!/usr/bin/env python
"""Interp-vs-fast simulator benchmark on the LINAIGE streaming workload.

Builds a Table-I-class quantized CNN, compiles it for the ISA-simulated
targets and streams a batch of held-out LINAIGE frames through
``Engine.predict_batch`` in both simulation modes, asserting **bit-exact**
agreement (predictions, logits, cycles, energy) before reporting speed:

* frames/sec per mode, and the fast/interp speedup,
* simulated cycles/sec (how much silicon time one wall-clock second buys).

Results are written as machine-readable JSON (``BENCH_sim.json`` at the
repository root by default) to seed the performance trajectory; CI runs
``perf_sim.py --quick`` as a smoke job, so a fast/interp mismatch or a
collapse of the fast path fails every PR.

Usage::

    PYTHONPATH=src python benchmarks/perf_sim.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

import repro
from repro.datasets import generate_linaige
from repro.engine import ModelBundle
from repro.flow import Preprocessor, build_seed_cnn
from repro.quant import PrecisionScheme, quantize_model
from repro.serve import describe_host

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# The streaming workload: a mixed-precision CNN of the paper's model family
# sized near the 16 kB on-chip memory budget, fed the held-out session.
FULL = dict(conv_channels=(24, 24), hidden_features=40, frames=6, scale=0.05)
QUICK = dict(conv_channels=(12, 16), hidden_features=24, frames=3, scale=0.03)
SCHEME = (8, 4, 4, 8)


def build_workload(cfg):
    rng = np.random.default_rng(0)
    dataset = generate_linaige(seed=0, scale=cfg["scale"])
    train = np.concatenate(
        [s.frames for s in dataset.sessions if s.session_id != 2]
    )
    pre = Preprocessor.fit(train)
    model = build_seed_cnn(
        rng,
        conv_channels=cfg["conv_channels"],
        hidden_features=cfg["hidden_features"],
    )
    qmodel = quantize_model(
        model, PrecisionScheme(SCHEME), calibration_data=pre(train)[:256]
    )
    frames = pre(dataset.session(2).frames)[: cfg["frames"]]
    return ModelBundle(qmodel, label="perf-sim workload"), frames


def time_mode(bundle, target, mode, frames):
    engine = repro.compile(bundle, target=target, sim_mode=mode)
    engine.backend.prepare()  # load once; measure steady-state streaming
    start = time.perf_counter()
    batch = engine.predict_batch(frames)
    elapsed = time.perf_counter() - start
    return batch, elapsed


def check_parity(target, fast, interp):
    failures = []
    if not np.array_equal(fast.predictions, interp.predictions):
        failures.append("predictions")
    if not np.array_equal(fast.logits, interp.logits):
        failures.append("logits")
    if not np.array_equal(fast.cycles_per_frame, interp.cycles_per_frame):
        failures.append("cycles")
    if not np.array_equal(fast.energy_uj_per_frame, interp.energy_uj_per_frame):
        failures.append("energy")
    if failures:
        raise SystemExit(
            f"FAST/INTERP MISMATCH on {target}: {', '.join(failures)} differ"
        )


def bench_target(bundle, target, frames):
    interp_batch, interp_s = time_mode(bundle, target, "interp", frames)
    fast_batch, fast_s = time_mode(bundle, target, "fast", frames)
    check_parity(target, fast_batch, interp_batch)
    n = len(frames)
    cycles = int(interp_batch.cycles_per_frame.sum())
    return {
        "frames": n,
        "cycles_per_frame": float(interp_batch.mean_cycles),
        "interp": {
            "seconds": interp_s,
            "frames_per_sec": n / interp_s,
            "sim_cycles_per_sec": cycles / interp_s,
        },
        "fast": {
            "seconds": fast_s,
            "frames_per_sec": n / fast_s,
            "sim_cycles_per_sec": cycles / fast_s,
        },
        "speedup": interp_s / fast_s,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--out", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_sim.json",
                        help="where to write the JSON results")
    parser.add_argument("--targets", nargs="+", default=["maupiti", "ibex"],
                        help="ISA-simulated targets to benchmark")
    args = parser.parse_args(argv)

    cfg = QUICK if args.quick else FULL
    bundle, frames = build_workload(cfg)
    print(f"workload: LINAIGE streaming, CNN {cfg['conv_channels']}/"
          f"{cfg['hidden_features']} INT{'-'.join(map(str, SCHEME))}, "
          f"{len(frames)} frames")

    results = {
        "workload": {
            "dataset": "linaige-synthetic",
            "conv_channels": list(cfg["conv_channels"]),
            "hidden_features": cfg["hidden_features"],
            "scheme": list(SCHEME),
            "frames": len(frames),
            "quick": bool(args.quick),
        },
        "host": describe_host(),
        "targets": {},
    }
    for target in args.targets:
        row = bench_target(bundle, target, frames)
        results["targets"][target] = row
        print(
            f"{target:<8} interp {row['interp']['frames_per_sec']:6.2f} fps | "
            f"fast {row['fast']['frames_per_sec']:7.2f} fps | "
            f"speedup {row['speedup']:5.1f}x | "
            f"{row['fast']['sim_cycles_per_sec'] / 1e6:6.1f} Msimcycles/s (fast)"
        )

    results["min_speedup"] = min(
        row["speedup"] for row in results["targets"].values()
    )
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"parity: OK (bit-exact on {', '.join(results['targets'])})")
    print(f"wrote {args.out}")

    # The quick CI job only enforces bit-exact parity (check_parity above
    # already exited on any mismatch) — tiny workloads on shared runners
    # make wall-clock ratios too noisy to gate on.  The full run enforces
    # the 10x acceptance bar.
    if not args.quick and results["min_speedup"] < 10.0:
        print(f"FAIL: fast-mode speedup {results['min_speedup']:.1f}x "
              "below the 10x floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
