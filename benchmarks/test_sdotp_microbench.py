"""SDOTP ISA-extension micro-benchmark (ablation of Sec. III-B2).

Measures the cycle count of a single fully-connected layer compiled four
ways — INT8/INT4 weights x scalar/SDOTP kernels — on the ISA simulator, and
reports the speed-up of the SIMD inner loops plus the area/power overheads
of the extension.  This isolates the contribution of the custom instructions
from the rest of the flow.
"""

import numpy as np
import pytest

from conftest import save_result

from repro.deploy import Assembler, FcKernelConfig, emit_fc_layer, pack_runs, padded_run_bytes, padded_run_length
from repro.hw import (
    DMEM_BASE,
    IBEX_SPEC,
    MAUPITI_SPEC,
    IbexCore,
    Instruction,
    Memory,
    area_overhead_fraction,
    power_overhead_fraction,
)


def _run_fc(bits: int, use_sdotp: bool, in_features: int = 128, out_features: int = 16):
    """Compile and simulate one FC layer, returning (cycles, instructions, macs)."""
    rng = np.random.default_rng(0)
    lo = -(2 ** (bits - 1)) + 1
    hi = 2 ** (bits - 1) - 1
    weights = rng.integers(lo, hi + 1, size=(out_features, in_features))
    activations = rng.integers(0, hi + 1, size=in_features)
    bias = rng.integers(-100, 100, size=out_features)

    padded_in = padded_run_length(in_features, bits)
    act_run = np.zeros(padded_in, dtype=np.int64)
    act_run[:in_features] = activations

    memory = Memory()
    in_addr = DMEM_BASE
    from repro.deploy import pack_padded_run

    memory.store_bytes(in_addr, pack_padded_run(act_run[:in_features], bits))
    weights_addr = in_addr + padded_run_bytes(in_features, bits)
    weight_payload = pack_runs(weights, bits)
    memory.store_bytes(weights_addr, weight_payload)
    bias_addr = weights_addr + len(weight_payload)
    bias_payload = b"".join(int(b).to_bytes(4, "little", signed=True) for b in bias)
    memory.store_bytes(bias_addr, bias_payload)
    out_addr = bias_addr + len(bias_payload)

    asm = Assembler()
    emit_fc_layer(
        asm,
        FcKernelConfig(
            name="fc",
            in_address=in_addr,
            in_values=padded_in,
            out_buf_address=out_addr,
            weights_address=weights_addr,
            bias_address=bias_addr,
            c_out=out_features,
            bits=bits,
            out_bits=8,
            multiplier=1,
            shift=7,
            out_levels=127,
            requantize=True,
            use_sdotp=use_sdotp,
            weight_row_stride=padded_run_bytes(in_features, bits),
        ),
    )
    asm.emit("ebreak")
    core = IbexCore(memory=memory, enable_sdotp=True)
    stats = core.run(asm.assemble())

    # Check the kernel against a direct integer computation.
    expected = np.clip(
        ((weights @ activations + bias) + (1 << 6)) >> 7, 0, 127
    )
    produced = np.array(
        [memory.load_byte(out_addr + i) for i in range(out_features)]
    )
    np.testing.assert_array_equal(produced, expected)
    return stats.cycles, stats.instructions, out_features * in_features


@pytest.mark.benchmark(group="sdotp")
@pytest.mark.parametrize("bits", [8, 4])
def test_sdotp_speedup(benchmark, bits):
    def run():
        scalar = _run_fc(bits, use_sdotp=False)
        simd = _run_fc(bits, use_sdotp=True)
        return scalar, simd

    (scalar, simd) = benchmark.pedantic(run, rounds=1, iterations=1)
    scalar_cycles, scalar_instr, macs = scalar
    simd_cycles, simd_instr, _ = simd
    speedup = scalar_cycles / simd_cycles
    simd_width = 4 if bits == 8 else 8
    lines = [
        f"# SDOTP micro-benchmark, INT{bits} fully-connected layer ({macs} MACs)",
        f"scalar: {scalar_cycles} cycles ({scalar_cycles / macs:.2f} cycles/MAC, {scalar_instr} instr)",
        f"sdotp : {simd_cycles} cycles ({simd_cycles / macs:.2f} cycles/MAC, {simd_instr} instr)",
        f"speed-up: x{speedup:.2f} "
        f"(SIMD width x{simd_width}; the speed-up can exceed it because the "
        f"scalar loop also pays per-element pointer/branch overhead)",
        f"extension cost: +{area_overhead_fraction() * 100:.1f}% core area, "
        f"+{power_overhead_fraction() * 100:.1f}% power (paper: <7% area, 2.2% power)",
    ]
    save_result(f"sdotp_microbench_int{bits}", lines)

    assert speedup > 1.5, "the SDOTP kernels must be substantially faster"
    # The SIMD kernel can never need fewer than one load pair per word, so the
    # per-MAC cycle count is bounded below by ~2 memory cycles / simd_width.
    assert simd_cycles / macs > 2.0 / simd_width
    assert simd_cycles / macs < scalar_cycles / macs
