"""Shared fixtures for the benchmark harness.

Every figure/table of the paper gets its own benchmark module; they share one
scaled-down run of the full optimization flow (synthetic dataset, reduced
epoch budgets) through the session-scoped fixtures below, so the whole
benchmark suite completes in minutes on a laptop CPU while preserving the
relative trends the paper reports.

Results are printed and also written to ``benchmarks/results/*.txt`` so they
can be inspected after the run (pytest captures stdout by default).
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.datasets import generate_linaige
from repro.flow import FlowConfig, OptimizationFlow
from repro.nas.search import SearchConfig
from repro.quant import QATConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_result(name: str, lines) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print("\n" + text)


@pytest.fixture(scope="session")
def bench_dataset():
    """Synthetic LINAIGE at ~10% of the full size (fast but non-trivial)."""
    return generate_linaige(seed=42, scale=0.10)


@pytest.fixture(scope="session")
def bench_flow_config():
    """Scaled-down flow configuration shared by the figure benchmarks."""
    return FlowConfig(
        lambdas=(1e-5, 1e-4, 1e-3),
        nas_cost="params",
        search=SearchConfig(
            warmup_epochs=1,
            search_epochs=4,
            finetune_epochs=4,
            batch_size=128,
            theta_learning_rate=5e-2,
        ),
        qat=QATConfig(epochs=3, batch_size=128),
        majority_window=5,
        max_quantized_architectures=2,
        seed=0,
    )


@pytest.fixture(scope="session")
def flow_result(bench_dataset, bench_flow_config):
    """One full run of the optimization flow (NAS -> QAT -> majority voting).

    The seed is a scaled version of the paper's largest configuration (32
    instead of 64 channels) to keep the numpy training tractable; the flow
    structure is identical.
    """
    flow = OptimizationFlow(bench_flow_config)
    return flow.run(
        bench_dataset, test_session_id=2, seed_channels=(32, 32), seed_hidden=32
    )


@pytest.fixture(scope="session")
def bench_test_frames(bench_dataset, flow_result):
    """Preprocessed frames of the held-out session, for deployment runs."""
    session = bench_dataset.session(2)
    return flow_result.preprocessor(session.frames), session.labels
