#!/usr/bin/env python
"""Robustness benchmark: degradation curves under sensor faults + chaos serving.

Trains a small Table-I-class INT 8-4-4-8 CNN on synthetic LINAIGE data and
runs the :mod:`repro.robustness` harness over the fault x severity x target
grid: every fault model corrupts the *raw* held-out Celsius frames (before
pre-processing, where a real sensor fault lives), each corrupted stream runs
through every compiled target, and the report records raw and majority-voted
accuracy/BAS, degradation vs the clean baseline, how much of the raw
degradation the majority filter absorbs, and per-scenario cycles/energy on
targets that measure them.

Everything is seeded: the report is generated **twice** and the two JSON
payloads must be byte-identical before anything is written — the committed
``BENCH_robust.json`` is reproducible by rerunning this script.

``--chaos`` instead exercises the serving pool's failure path end to end:
a 2-worker pool is started with a deterministic :class:`ChaosConfig` that
SIGKILLs a worker mid-stream, and a :class:`SessionStream` client (retry +
session re-open + warm tail replay) streams held-out frames through it.
The run passes only if the collected raw/voted outputs are bit-identical
to an uninterrupted offline ``Engine.stream`` replay, at least one worker
was actually killed and respawned, and no shared-memory ring leaks.

Usage::

    PYTHONPATH=src python benchmarks/perf_robust.py [--quick] [--chaos]
                                                    [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

import numpy as np

import repro
from repro.datasets import generate_linaige
from repro.engine import ModelBundle
from repro.flow import Preprocessor, build_seed_cnn
from repro.nn import ArrayDataset, TrainConfig, train_model
from repro.quant import PrecisionScheme, quantize_model
from repro.robustness import evaluate
from repro.serve import (
    ChaosConfig,
    RetryPolicy,
    ServeClient,
    ServeConfig,
    SessionStream,
    describe_host,
    start_server,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

SCHEME = (8, 4, 4, 8)

FULL = dict(
    conv_channels=(12, 16), hidden_features=24, scale=0.05, epochs=6,
    eval_frames=192,
    faults=("dead-pixels", "stuck-pixels", "gaussian-noise", "salt-pepper",
            "ambient-drift", "frame-drop"),
    severities=(0.1, 0.3, 0.6, 1.0),
    targets=("int-golden", "maupiti"),
)
QUICK = dict(
    conv_channels=(6, 7), hidden_features=10, scale=0.03, epochs=3,
    eval_frames=64,
    faults=("dead-pixels", "gaussian-noise", "ambient-drift", "frame-drop"),
    severities=(0.1, 0.3, 0.6),
    targets=("int-golden", "maupiti"),
)

# Chaos serving: stream this many held-out frames in small chunks and kill a
# worker once the pool has executed KILL_AFTER of them.
CHAOS = dict(frames=48, chunk=4, window=5, kill_after=18)
CHAOS_QUICK = dict(frames=24, chunk=4, window=5, kill_after=10)


def build_workload(cfg):
    """Train + quantize the CNN; return (bundle, preprocessor, frames, labels)."""
    rng = np.random.default_rng(0)
    dataset = generate_linaige(seed=0, scale=cfg["scale"])
    train_sessions = [s for s in dataset.sessions if s.session_id != 2]
    train_frames = np.concatenate([s.frames for s in train_sessions])
    train_labels = np.concatenate([s.labels for s in train_sessions])
    pre = Preprocessor.fit(train_frames)
    model = build_seed_cnn(
        rng,
        conv_channels=cfg["conv_channels"],
        hidden_features=cfg["hidden_features"],
    )
    held = dataset.session(2)
    train_model(
        model,
        ArrayDataset(pre(train_frames), train_labels),
        val_set=ArrayDataset(pre(held.frames), held.labels),
        config=TrainConfig(epochs=cfg["epochs"], verbose=False),
        rng=np.random.default_rng(1),
    )
    qmodel = quantize_model(
        model, PrecisionScheme(SCHEME), calibration_data=pre(train_frames)[:256]
    )
    n = min(cfg["eval_frames"], len(held.frames))
    bundle = ModelBundle(qmodel, label="perf-robust workload")
    return bundle, pre, held.frames[:n], held.labels[:n]


def run_grid(args, cfg):
    bundle, pre, frames, labels = build_workload(cfg)
    n_cells = len(cfg["faults"]) * len(cfg["severities"]) * len(cfg["targets"])
    print(f"grid: {len(cfg['faults'])} faults x {len(cfg['severities'])} "
          f"severities x {len(cfg['targets'])} targets = {n_cells} scenarios "
          f"over {len(frames)} held-out frames")

    def one_report():
        report = evaluate(
            bundle, frames, labels,
            preprocess=pre,
            faults=cfg["faults"],
            severities=cfg["severities"],
            targets=cfg["targets"],
            window=CHAOS["window"],
            seed=0,
        )
        return report, json.dumps(report.as_json(), sort_keys=True)

    report, payload = one_report()
    _, payload2 = one_report()
    if payload != payload2:
        print("FAIL: robustness report is not deterministic across reruns",
              file=sys.stderr)
        return 1

    results = {
        "workload": {
            "dataset": "linaige-synthetic",
            "conv_channels": list(cfg["conv_channels"]),
            "hidden_features": cfg["hidden_features"],
            "scheme": list(SCHEME),
            "train_epochs": cfg["epochs"],
            "quick": bool(args.quick),
        },
        "host": describe_host(),
        "report": report.as_json(),
        "determinism": {"reruns": 2, "bit_identical": True},
    }
    args.out.write_text(json.dumps(results, indent=2) + "\n")

    for target in report.targets:
        base = report.baselines[target]
        worst = report.worst_case(target)
        cyc = f" | {base['mean_cycles']:.0f} cycles/frame" \
            if base["mean_cycles"] is not None else ""
        print(f"{target:<11} clean BAS raw {base['bas_raw']:.3f} "
              f"voted {base['bas_voted']:.3f}{cyc}")
        print(f"{'':<11} worst: {worst.fault}@{worst.severity:g} "
              f"voted BAS {worst.bas_voted:.3f} "
              f"(degradation {worst.degradation_voted:+.3f}, "
              f"voting absorbed {worst.voting_recovery:+.3f})")
    print(f"determinism: OK (2 runs bit-identical)")
    print(f"wrote {args.out}")

    # Full runs gate on the workload being meaningful, not on wall-clock:
    # the trained model must beat chance on the clean stream, and the grid
    # must be big enough to plot curves from.
    if not args.quick:
        for target in report.targets:
            if report.baselines[target]["bas_voted"] < 0.5:
                print(f"FAIL: clean voted BAS on {target} below 0.5 — the "
                      f"workload model did not train", file=sys.stderr)
                return 1
        if len(report.faults) < 4 or len(report.severities) < 3 \
                or len(report.targets) < 2:
            print("FAIL: grid smaller than 4 faults x 3 severities x 2 targets",
                  file=sys.stderr)
            return 1
    return 0


def run_chaos(args, cfg):
    """Kill a serving worker mid-stream; the client must not notice."""
    knobs = CHAOS_QUICK if args.quick else CHAOS
    bundle, pre, frames, _ = build_workload(cfg)
    engine = repro.compile(bundle, target="int-golden")
    inputs = pre(frames[: knobs["frames"]])
    print(f"chaos: streaming {len(inputs)} frames in chunks of "
          f"{knobs['chunk']} through a 2-worker pool; SIGKILL after "
          f"{knobs['kill_after']} frames")

    with engine.stream(window=knobs["window"]) as session:
        for frame in inputs:
            session.push(frame)
        offline = session.summary()
    reference = (
        offline.raw_predictions.tolist(),
        offline.voted_predictions.tolist(),
    )

    config = ServeConfig(
        workers=2,
        max_batch=32,
        max_wait_ms=2.0,
        chaos=ChaosConfig(kill_after_frames=knobs["kill_after"], max_kills=1),
    )
    ring_names = []
    with start_server(engine, config=config) as server:
        server.service.prime(inputs.shape[1:])
        with ServeClient(
            server.host, server.port, timeout=60,
            retry=RetryPolicy(max_attempts=6, seed=0),
        ) as client:
            stream = SessionStream(client, window=knobs["window"])
            raw, voted = [], []
            with stream:
                for i in range(0, len(inputs), knobs["chunk"]):
                    out = stream.push(inputs[i : i + knobs["chunk"]])
                    raw.extend(r["raw"] for r in out)
                    voted.extend(r["voted"] for r in out)
            # Workers respawn lazily (on the next session sharded to them);
            # re-prime so the killed worker's replacement is actually spawned
            # and the respawn path is exercised, not just available.
            server.service.prime(inputs.shape[1:])
            health = client.healthz()
        stats = server.service.pool_stats()
        ring_names = server.service.pool.ring_names()

    failures = []
    if (raw, voted) != reference:
        failures.append("served outputs diverge from the offline replay")
    if stats["chaos_kills"] < 1:
        failures.append(f"chaos never fired: {stats}")
    if stats["crashes_total"] < 1:
        failures.append(f"no crash recorded despite the kill: {stats}")
    if stream.recoveries < 1:
        failures.append("the client stream never exercised a recovery")
    if health["workers_up"] != 2:
        failures.append(f"killed worker was not respawned: {health}")
    from multiprocessing import shared_memory
    for name in ring_names:
        try:
            seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        seg.close()
        failures.append(f"leaked shared-memory ring after shutdown: {name}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print(f"chaos: OK — {stats['chaos_kills']} worker kill, "
          f"{stats['crashes_total']} crash, {stream.recoveries} transparent "
          f"client recovery; {len(raw)} frames bit-identical to the offline "
          f"replay; workers respawned; no ring leaked")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--chaos", action="store_true",
                        help="run the serving-pool chaos recovery check "
                             "instead of the fault grid")
    parser.add_argument("--out", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_robust.json",
                        help="where to write the JSON results (grid mode)")
    args = parser.parse_args(argv)

    cfg = QUICK if args.quick else FULL
    if args.chaos:
        return run_chaos(args, cfg)
    return run_grid(args, cfg)


if __name__ == "__main__":
    raise SystemExit(main())
