#!/usr/bin/env python
"""Batched vs unbatched load benchmark of the serving subsystem.

Starts the in-process :mod:`repro.serve` HTTP server over an ``int-golden``
engine (a Table-I-class INT 8-4-4-8 CNN) and replays held-out LINAIGE
frames from many concurrent simulated sensors, twice:

1. ``unbatched`` — ``max_batch=1``: every frame is its own
   ``Engine.predict_batch`` call (the reference serve path);
2. ``batched``   — cross-session micro-batching on (``max_batch=32``):
   frames arriving within the batching window coalesce into single engine
   calls.

Before any timing is trusted, every session's served outputs (raw AND
majority-voted) are asserted **bit-identical** to an independent offline
``Engine.stream`` replay of the same frames — under both server configs.
Then the results are written as machine-readable JSON (``BENCH_serve.json``
at the repository root by default): sustained concurrent sessions,
throughput per mode, request latency p50/p99, mean micro-batch size, and
the batched/unbatched speedup (enforced at >=2x in full runs).

With ``--workers N`` (or in full runs, automatically) the same workload
also exercises the **multi-process pool** (``repro.serve.pool``): sessions
sharded across N engine worker processes with shared-memory frame
transport.  Full runs sweep a workers x sessions grid into the ``pool``
section of the JSON; every cell's outputs are parity-checked against the
same offline replays and each pool run must leave no ``/dev/shm`` segment
behind.  Throughput gates scale with the host: with >=4 available CPUs the
pool must reach >=2.0x the in-process batched baseline; below that there is
no parallelism to harvest and IPC is pure overhead, so the gate is that the
pool still beats the unbatched in-process reference path (>=1.0x) — i.e.
the shared-memory transport costs less than micro-batching wins.

CI runs ``perf_serve.py --quick`` as a smoke job: 4 sessions, bit-exact
parity vs offline streams, ``/healthz`` + ``/metrics`` checks and a clean
shutdown — no wall-clock gating (shared runners are too noisy).  The
``serve-pool`` job runs ``--quick --workers 2``: same checks through the
worker pool plus the shared-memory leak assertion.

Usage::

    PYTHONPATH=src python benchmarks/perf_serve.py [--quick] [--workers N]
                                                   [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import threading
import time

import numpy as np

import repro
from repro.datasets import generate_linaige
from repro.engine import ModelBundle
from repro.flow import Preprocessor, build_seed_cnn
from repro.quant import PrecisionScheme, quantize_model
from repro.serve import (
    ServeClient,
    ServeConfig,
    available_cpus,
    describe_host,
    start_server,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# The fleet workload: a Table-I-class mixed-precision CNN served to many
# concurrent sensor sessions streaming held-out LINAIGE frames in chunks.
FULL = dict(
    conv_channels=(12, 16), hidden_features=24, scale=0.05,
    sessions=8, frames_per_session=64, chunk=8, window=5,
)
QUICK = dict(
    conv_channels=(6, 7), hidden_features=10, scale=0.03,
    sessions=4, frames_per_session=16, chunk=4, window=5,
)
SCHEME = (8, 4, 4, 8)

UNBATCHED = dict(max_batch=1, max_wait_ms=0.0)
BATCHED = dict(max_batch=32, max_wait_ms=2.0)

# Full-run pool sweep: worker counts x concurrent-session levels.  Each cell
# reuses the BATCHED knobs inside every worker's own micro-batcher.
POOL_WORKERS_GRID = (1, 2, 4)
POOL_SESSIONS_GRID = (4, 8)


def build_workload(cfg):
    rng = np.random.default_rng(0)
    dataset = generate_linaige(seed=0, scale=cfg["scale"])
    train = np.concatenate(
        [s.frames for s in dataset.sessions if s.session_id != 2]
    )
    pre = Preprocessor.fit(train)
    model = build_seed_cnn(
        rng,
        conv_channels=cfg["conv_channels"],
        hidden_features=cfg["hidden_features"],
    )
    qmodel = quantize_model(
        model, PrecisionScheme(SCHEME), calibration_data=pre(train)[:256]
    )
    held_out = pre(dataset.session(2).frames)
    need = cfg["sessions"] * cfg["frames_per_session"]
    if len(held_out) < need:  # tile the session to feed every sensor
        held_out = np.concatenate([held_out] * (need // len(held_out) + 1))
    streams = [
        held_out[i * cfg["frames_per_session"] : (i + 1) * cfg["frames_per_session"]]
        for i in range(cfg["sessions"])
    ]
    return ModelBundle(qmodel, label="perf-serve workload"), streams


def offline_reference(engine, streams, window):
    """Independent ``Engine.stream`` replay of every sensor's frames."""
    reference = []
    for frames in streams:
        with engine.stream(window=window) as session:
            for frame in frames:
                session.push(frame)
            summary = session.summary()
        reference.append(
            (summary.raw_predictions.tolist(), summary.voted_predictions.tolist())
        )
    return reference


def run_serve(engine, streams, cfg, serve_knobs, workers=0):
    """One server run: all sessions stream concurrently; returns timings.

    ``workers>0`` serves through the multi-process pool: every worker is
    spawned and trace-cache-primed BEFORE the sensors start streaming, so
    the timings measure steady-state throughput, and the run additionally
    asserts that no shared-memory ring leaks past shutdown."""
    config = ServeConfig(workers=workers, **serve_knobs)
    outputs = [None] * len(streams)
    errors = []
    barrier = threading.Barrier(len(streams) + 1, timeout=120)

    def sensor(idx):
        try:
            with ServeClient(server.host, server.port, timeout=120) as client:
                sid = client.open_session(window=cfg["window"])["session_id"]
                barrier.wait()  # all sensors start streaming together
                raw, voted = [], []
                frames = streams[idx]
                for i in range(0, len(frames), cfg["chunk"]):
                    out = client.push(sid, frames[i : i + cfg["chunk"]])
                    raw.extend(r["raw"] for r in out["results"])
                    voted.extend(r["voted"] for r in out["results"])
                client.close_session(sid)
                outputs[idx] = (raw, voted)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append((idx, exc))
            try:
                barrier.abort()
            except threading.BrokenBarrierError:
                pass

    ring_names = []
    with start_server(engine, config=config) as server:
        if workers:
            # Spawn + warm every worker now (one throwaway decode each): the
            # sensors should measure serving, not process startup.
            server.service.prime(streams[0].shape[1:])
        with ServeClient(server.host, server.port) as probe:
            health = probe.healthz()
            if health["status"] != "ok":
                raise SystemExit(f"healthz not ok: {health}")
            if workers and health.get("workers_up") != workers:
                raise SystemExit(f"expected {workers} primed workers: {health}")
            threads = [
                threading.Thread(target=sensor, args=(i,)) for i in range(len(streams))
            ]
            for t in threads:
                t.start()
            # Every sensor has opened its session and is parked at the
            # barrier: this is the sustained concurrency level.
            deadline = time.time() + 60
            while probe.healthz()["active_sessions"] < len(streams):
                if time.time() > deadline:
                    raise SystemExit("sensors failed to open their sessions")
                time.sleep(0.01)
            concurrent = probe.healthz()["active_sessions"]
            barrier.wait()
            start = time.perf_counter()
            for t in threads:
                t.join(timeout=600)
            elapsed = time.perf_counter() - start
            if errors:
                raise SystemExit(f"sensor failures: {errors!r}")
            metrics_text = probe.metrics()
        service = server.service
        quantiles = service.metrics.latency_quantiles((0.5, 0.99))
        frames_total = service.metrics.counter("frames_total")
        if workers:
            # Batching happened inside the workers: aggregate their
            # piggybacked snapshots instead of the parent's idle batcher.
            pool = service.pool_stats()
            mean_batch = pool["mean_batch_size"]
            batches_total = pool["batches_total"]
            ring_names = service.pool.ring_names()
            if pool["crashes_total"]:
                raise SystemExit(f"worker crashes during the run: {pool}")
            if "repro_serve_pool_worker_up" not in metrics_text:
                raise SystemExit("/metrics is missing the per-worker pool series")
        else:
            mean_batch = service.metrics.mean_batch_size()
            batches_total = service.metrics.counter("batches_total")
    for name in ring_names:  # pool shutdown must unlink every ring
        try:
            from multiprocessing import shared_memory

            seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        seg.close()
        raise SystemExit(f"leaked shared-memory ring after shutdown: {name}")
    n_frames = sum(len(s) for s in streams)
    if frames_total != n_frames:
        raise SystemExit(
            f"frame accounting mismatch: served {frames_total}, sent {n_frames}"
        )
    if "repro_serve_requests_total" not in metrics_text:
        raise SystemExit("/metrics payload is missing the request counters")
    return {
        "outputs": outputs,
        "stats": {
            "max_batch": serve_knobs["max_batch"],
            "max_wait_ms": serve_knobs["max_wait_ms"],
            "workers": workers,
            "concurrent_sessions": concurrent,
            "seconds": elapsed,
            "frames_per_sec": n_frames / elapsed,
            "latency_p50_ms": quantiles[0.5] * 1e3,
            "latency_p99_ms": quantiles[0.99] * 1e3,
            "mean_batch_size": mean_batch,
            "batches": batches_total,
        },
    }


def check_parity(label, outputs, reference):
    for idx, (served, offline) in enumerate(zip(outputs, reference)):
        if served[0] != offline[0]:
            raise SystemExit(f"{label}: session {idx} raw predictions diverge")
        if served[1] != offline[1]:
            raise SystemExit(f"{label}: session {idx} voted predictions diverge")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="pool-mode worker count: run a single pool cell "
                             "at N workers instead of the full grid")
    parser.add_argument("--out", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_serve.json",
                        help="where to write the JSON results")
    args = parser.parse_args(argv)

    cfg = QUICK if args.quick else FULL
    bundle, streams = build_workload(cfg)
    engine = repro.compile(bundle, target="int-golden")
    n_frames = sum(len(s) for s in streams)
    print(f"workload: {cfg['sessions']} concurrent sessions x "
          f"{cfg['frames_per_session']} frames (chunks of {cfg['chunk']}), "
          f"CNN {cfg['conv_channels']}/{cfg['hidden_features']} "
          f"INT{'-'.join(map(str, SCHEME))}, window {cfg['window']}")

    reference = offline_reference(engine, streams, cfg["window"])

    unbatched = run_serve(engine, streams, cfg, UNBATCHED)
    check_parity("unbatched", unbatched["outputs"], reference)
    batched = run_serve(engine, streams, cfg, BATCHED)
    check_parity("batched", batched["outputs"], reference)

    speedup = (
        batched["stats"]["frames_per_sec"] / unbatched["stats"]["frames_per_sec"]
    )

    # ---- the worker pool: a single cell (--workers N) or the full grid ----
    if args.workers is not None:
        grid = [(args.workers, cfg["sessions"])]
    elif args.quick:
        grid = []  # plain --quick stays the in-process smoke it always was
    else:
        grid = [
            (w, s)
            for w in POOL_WORKERS_GRID
            for s in POOL_SESSIONS_GRID
            if s <= cfg["sessions"]
        ]
    pool_cells = []
    for w, n_sessions in grid:
        cell_streams = streams[:n_sessions]
        cell = run_serve(engine, cell_streams, cfg, BATCHED, workers=w)
        check_parity(f"pool[w={w},s={n_sessions}]", cell["outputs"],
                     reference[:n_sessions])
        pool_cells.append(cell["stats"])
    pool_vs_batched = pool_vs_unbatched = None
    if pool_cells:
        # Rate the pool at full concurrency (all sessions, best worker count).
        best_cell = max(
            (c for c in pool_cells if c["concurrent_sessions"] == cfg["sessions"]),
            key=lambda c: c["frames_per_sec"],
            default=max(pool_cells, key=lambda c: c["frames_per_sec"]),
        )
        pool_vs_batched = (
            best_cell["frames_per_sec"] / batched["stats"]["frames_per_sec"]
        )
        pool_vs_unbatched = (
            best_cell["frames_per_sec"] / unbatched["stats"]["frames_per_sec"]
        )

    results = {
        "workload": {
            "dataset": "linaige-synthetic",
            "conv_channels": list(cfg["conv_channels"]),
            "hidden_features": cfg["hidden_features"],
            "scheme": list(SCHEME),
            "target": "int-golden",
            "sessions": cfg["sessions"],
            "frames_per_session": cfg["frames_per_session"],
            "frames_total": n_frames,
            "chunk": cfg["chunk"],
            "majority_window": cfg["window"],
            "quick": bool(args.quick),
        },
        "host": describe_host(),
        "unbatched": unbatched["stats"],
        "batched": batched["stats"],
        "batched_speedup": speedup,
    }
    if pool_cells:
        cpus = available_cpus()
        results["pool"] = {
            "grid": pool_cells,
            "speedup_vs_batched": pool_vs_batched,
            "speedup_vs_unbatched": pool_vs_unbatched,
            "available_cpus": cpus,
            # The enforced bar (full runs): parallel hosts must show the
            # parallel win; 1-CPU hosts must at least beat per-frame serving.
            "gate": (
                {"baseline": "batched", "floor": 2.0}
                if cpus >= 4
                else {"baseline": "unbatched", "floor": 1.0}
            ),
        }
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    for label, run in (("unbatched", unbatched), ("batched", batched)):
        s = run["stats"]
        print(f"{label:<9} {s['frames_per_sec']:8.1f} frames/s | "
              f"p50 {s['latency_p50_ms']:6.2f}ms p99 {s['latency_p99_ms']:6.2f}ms | "
              f"mean batch {s['mean_batch_size']:5.2f}")
    for s in pool_cells:
        mean_batch = s["mean_batch_size"]
        batch_txt = f"{mean_batch:5.2f}" if mean_batch is not None else "  n/a"
        print(f"pool w={s['workers']} s={s['concurrent_sessions']}"
              f" {s['frames_per_sec']:8.1f} frames/s | "
              f"p50 {s['latency_p50_ms']:6.2f}ms p99 {s['latency_p99_ms']:6.2f}ms | "
              f"mean batch {batch_txt}")
    print(f"parity: OK ({cfg['sessions']} sessions bit-identical to offline "
          f"Engine.stream replays in every mode)")
    print(f"batched speedup {speedup:.2f}x")
    if pool_vs_batched is not None:
        print(f"pool speedup {pool_vs_batched:.2f}x vs in-process batched, "
              f"{pool_vs_unbatched:.2f}x vs unbatched "
              f"({available_cpus()} CPUs available)")
    print(f"wrote {args.out}")

    # The quick CI jobs only enforce parity + endpoint health + clean
    # shutdown (all checked above) — tiny workloads on shared runners are
    # too noisy to gate on wall-clock.  Full runs enforce the bars: 2x for
    # in-process batching; for the pool, >=2.0x of the batched baseline on
    # hosts with >=4 available CPUs, else >=1.0x of the unbatched reference
    # (on a 1-CPU host IPC cannot beat in-process batching — but it must
    # still cost less than micro-batching wins).
    if not args.quick:
        if speedup < 2.0:
            print(f"FAIL: batched speedup {speedup:.2f}x below the 2x floor",
                  file=sys.stderr)
            return 1
        if pool_cells:
            if available_cpus() >= 4:
                gate_value, floor, base = pool_vs_batched, 2.0, "batched"
            else:
                gate_value, floor, base = pool_vs_unbatched, 1.0, "unbatched"
            if gate_value < floor:
                print(f"FAIL: pool speedup {gate_value:.2f}x vs {base} below "
                      f"the {floor:.1f}x floor", file=sys.stderr)
                return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
