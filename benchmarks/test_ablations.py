"""Ablation benchmarks for design choices called out in DESIGN.md.

1. Majority-voting window length sweep (the paper selected 5).
2. INT4 quantization of the *first* layer / sensor input (the paper excludes
   it because it degrades accuracy severely).
3. RV32C compressed-ISA code-size accounting (the toolchain targets
   riscv32-imc).
"""

import numpy as np
import pytest

from conftest import save_result

from repro.deploy import compile_network
from repro.nn import predict
from repro.nn.metrics import balanced_accuracy
from repro.postproc import sweep_window_lengths
from repro.quant import (
    PrecisionScheme,
    QATConfig,
    convert_to_integer,
    explore_mixed_precision,
)


@pytest.mark.benchmark(group="ablation")
def test_majority_window_sweep(benchmark, flow_result, bench_test_frames):
    """Window-length ablation on the most accurate quantized model."""
    frames, labels = bench_test_frames
    top = flow_result.select_top()

    def run():
        predictions = predict(top.quantized.model, frames)
        return sweep_window_lengths(predictions, labels, windows=(1, 3, 5, 7, 9, 11))

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["# Ablation — majority-voting window length", ""]
    for r in results:
        lines.append(
            f"window={r.window:<3} bas={r.bas_filtered:.3f} "
            f"(delay ~{r.detection_delay_frames:.1f} frames)"
        )
    best = max(results, key=lambda r: r.bas_filtered)
    lines.append("")
    lines.append(f"best window: {best.window} (paper found 5 most effective)")
    save_result("ablation_majority_window", lines)

    raw = results[0].bas_filtered  # window=1 is the unfiltered accuracy
    assert best.bas_filtered >= raw - 1e-9


@pytest.mark.benchmark(group="ablation")
def test_int4_input_degradation(benchmark, flow_result, bench_dataset):
    """Quantizing the first layer (sensor input) at 4 bits should cost
    noticeably more accuracy than keeping it at 8 bits — the reason the paper
    pins the first layer to INT8."""
    arch = max(flow_result.float_points, key=lambda p: p.bas)
    pre = flow_result.preprocessor
    from repro.nn import ArrayDataset

    test_session = bench_dataset.session(2)
    train_frames = np.concatenate(
        [s.frames for s in bench_dataset.sessions if s.session_id != 2]
    )
    train_labels = np.concatenate(
        [s.labels for s in bench_dataset.sessions if s.session_id != 2]
    )
    train_set = ArrayDataset(pre(train_frames), train_labels)
    test_set = ArrayDataset(pre(test_session.frames), test_session.labels)

    def run():
        points = explore_mixed_precision(
            arch.model,
            train_set,
            test_set,
            schemes=[PrecisionScheme((8, 4, 4, 4)), PrecisionScheme((4, 4, 4, 4))],
            config=QATConfig(epochs=2, batch_size=128, input_bits=8),
            seed=3,
        )
        by_label = {p.scheme.label: p for p in points}
        # For the 4-4-4-4 scheme also quantize the input itself at 4 bits.
        q4 = explore_mixed_precision(
            arch.model,
            train_set,
            test_set,
            schemes=[PrecisionScheme((4, 4, 4, 4))],
            config=QATConfig(epochs=2, batch_size=128, input_bits=4),
            seed=3,
        )[0]
        return by_label["INT 8-4-4-4"], q4

    first8, first4 = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "# Ablation — INT4 quantization of the first layer / sensor input",
        "",
        f"first layer INT8 (paper's choice): bas={first8.bas:.3f} memory={first8.memory_kb:.2f} kB",
        f"first layer INT4 (excluded):       bas={first4.bas:.3f} memory={first4.memory_kb:.2f} kB",
        f"degradation: {(first8.bas - first4.bas) * 100:+.2f} BAS points",
    ]
    save_result("ablation_int4_input", lines)
    # The 4-bit-input variant must not be better than the 8-bit-input one by a
    # noticeable margin (the paper observed severe degradation).
    assert first4.bas <= first8.bas + 0.03


@pytest.mark.benchmark(group="ablation")
def test_compressed_isa_code_size(benchmark, flow_result):
    """Effect of the RV32C compressed-ISA heuristic on code size."""
    top = flow_result.select_top()
    inet = convert_to_integer(top.quantized.model)

    def run():
        rows = []
        for use_sdotp in (False, True):
            compressed = compile_network(inet, use_sdotp=use_sdotp, compressed_isa=True)
            uncompressed = compile_network(inet, use_sdotp=use_sdotp, compressed_isa=False)
            rows.append((use_sdotp, compressed.code_size_bytes, uncompressed.code_size_bytes))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["# Ablation — RV32C compressed-ISA code size", ""]
    for use_sdotp, comp, uncomp in rows:
        flavour = "MAUPITI (sdotp)" if use_sdotp else "IBEX (scalar)"
        lines.append(
            f"{flavour:<16} compressed={comp:>6} B  uncompressed={uncomp:>6} B "
            f"({100 * (1 - comp / uncomp):.1f}% smaller)"
        )
    save_result("ablation_compressed_isa", lines)
    for _use_sdotp, comp, uncomp in rows:
        assert comp < uncomp
