#!/usr/bin/env python
"""Serial vs thread vs process vs cached benchmark of the optimization sweeps.

Runs the paper's two sweep layers — the 4-lambda PIT NAS sweep (Fig. 5) and
the exhaustive mixed-precision QAT exploration of one discovered
architecture — through every :mod:`repro.parallel` executor:

1. ``serial``  — the reference in-process loop, cold;
2. ``process`` — a persistent worker pool with shared-memory dataset
   handoff: one **cold** pass (pool fork + shm share + cache fill) and one
   **warm** pass (the steady state a multi-stage flow run experiences);
3. ``thread``  — the thread-pool executor over the same task units;
4. ``cached``  — the parallel run again, replayed from the
   content-addressed result cache (the "repeated flow run" path).

Every pass is asserted **bit-identical** to serial (architecture metrics,
trained weights, QAT points) before any timing is reported, and all
shared-memory blocks are asserted unlinked after the executors close.
Results are written as machine-readable JSON (``BENCH_flow.json`` at the
repository root by default):

* ``parallel_speedup`` — serial / warm-process wall-clock on the cold
  sweep.  The warm measurement matches flow usage (``FlowConfig`` keeps one
  executor across all stages, so only the first stage pays pool start-up);
  the cold pass is recorded alongside as ``process.cold_seconds``.  The
  floor is >= 1.0x on any host (the pool must never be a pessimization)
  and >= 2.5x on machines with >= 4 CPUs.
* ``thread_speedup`` — serial / thread wall-clock (GIL-bound on the
  pure-python training loops; it pays off on GIL-releasing numpy paths).
* ``cached_speedup`` — serial / cached-rerun wall-clock; this is what a
  repeated flow run experiences and must clear the 2.5x acceptance bar on
  any machine.
* ``speedup`` — the best end-to-end improvement achieved over the cold
  serial sweep on this host.
* ``curves`` — real speedup curves over a (executor x workers x task-count)
  grid of 1-epoch QAT units, cold (fresh pool) and warm (reused pool), each
  cell bit-checked against its serial baseline.

CI runs ``perf_flow.py --quick`` as a smoke job, so a serial/thread/process
mismatch, a cache corruption or a leaked shared-memory segment fails every
PR.

Usage::

    PYTHONPATH=src python benchmarks/perf_flow.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import sys
import tempfile
import time

import numpy as np

from repro.datasets import generate_linaige
from repro.flow import Preprocessor, seed_builder
from repro.serve import available_cpus, describe_host
from repro.nas.search import SearchConfig, run_search
from repro.nn import ArrayDataset
from repro.nn.losses import CrossEntropyLoss, balanced_class_weights
from repro.parallel import ProcessExecutor, ResultCache, ThreadExecutor, get_executor
from repro.quant import QATConfig, explore_mixed_precision
from repro.quant.quantize import enumerate_schemes

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
WORKERS = 4

FULL = dict(
    lambdas=(1e-6, 1e-5, 1e-4, 5e-4),
    search=dict(warmup_epochs=1, search_epochs=6, finetune_epochs=6, batch_size=128),
    qat_epochs=3,
    conv_channels=(10, 10),
    hidden=16,
    scale=0.08,
    repeats=3,                     # best-of-N timing for serial/warm passes
    curve_workers=(1, 2, 4),
    curve_tasks=(2, 8),
)
QUICK = dict(
    lambdas=(1e-5, 5e-4),
    search=dict(warmup_epochs=0, search_epochs=1, finetune_epochs=1, batch_size=128),
    qat_epochs=1,
    conv_channels=(6, 6),
    hidden=8,
    scale=0.03,
    repeats=1,
    curve_workers=(2,),
    curve_tasks=(2,),
)


def build_workload(cfg):
    dataset = generate_linaige(seed=0, scale=cfg["scale"])
    test_session = dataset.session(2)
    frames = np.concatenate(
        [s.frames for s in dataset.sessions if s.session_id != 2]
    )
    labels = np.concatenate(
        [s.labels for s in dataset.sessions if s.session_id != 2]
    )
    pre = Preprocessor.fit(frames)
    train_set = ArrayDataset(pre(frames), labels)
    test_set = ArrayDataset(pre(test_session.frames), test_session.labels)
    loss_fn = CrossEntropyLoss(balanced_class_weights(labels, 4))
    return train_set, test_set, loss_fn


def run_sweeps(cfg, train_set, test_set, loss_fn, executor, cache):
    """One full pass over both sweep layers; returns (nas_points, qat_points).

    ``executor`` is a name or an executor instance; instances persist their
    worker pool (and shared datasets) across passes, which is exactly what
    the warm measurements exercise.
    """
    points = run_search(
        seed_builder(cfg["conv_channels"], cfg["hidden"]),
        train_set,
        test_set,
        config=SearchConfig(lambdas=cfg["lambdas"], **cfg["search"]),
        loss_fn=loss_fn,
        seed=0,
        executor=executor,
        cache=cache,
    )
    # QAT-explore the mid-sized discovered architecture (full enumeration:
    # 2^3 = 8 schemes for the 4-layer family).
    arch = points[len(points) // 2]
    quantized = explore_mixed_precision(
        arch.model,
        train_set,
        test_set,
        config=QATConfig(epochs=cfg["qat_epochs"], batch_size=cfg["search"]["batch_size"]),
        loss_fn=loss_fn,
        seed=0,
        source_label=arch.describe(),
        executor=executor,
        cache=cache,
    )
    return points, quantized


def signature(points, quantized):
    """Bit-level identity of a pass: metrics and trained weights."""
    return (
        [
            (p.strength, p.params, p.macs, p.bas,
             tuple(param.data.tobytes() for param in p.model.parameters()))
            for p in points
        ],
        [
            (tuple(q.scheme.bits), q.bas, q.memory_bytes, q.macs,
             tuple(param.data.tobytes() for param in q.model.parameters()))
            for q in quantized
        ],
    )


def quant_signature(points):
    return [
        (tuple(q.scheme.bits), q.bas, q.memory_bytes, q.macs,
         tuple(param.data.tobytes() for param in q.model.parameters()))
        for q in points
    ]


def timed(fn, repeats):
    """Best-of-``repeats`` wall-clock; returns (seconds, last_result)."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def assert_unlinked(names):
    """Every recorded shared-memory block must be gone after close()."""
    from multiprocessing import shared_memory

    leaked = []
    for name in names:
        try:
            seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        seg.close()
        leaked.append(name)
    if leaked:
        raise SystemExit(f"SHM LEAK: blocks still linked after close: {leaked}")


def measure_curves(cfg, train_set, test_set, loss_fn, arch, shm_names):
    """Workers x task-count speedup grid for the process & thread executors.

    The task unit is one 1-epoch QAT scheme on the mid-sweep architecture —
    small enough that a grid stays affordable, real enough (full forward/
    backward training on the actual dataset) that the dispatch overheads
    being measured are in realistic proportion.  Every cell is bit-checked
    against its serial baseline, so the curves double as the
    "bit-identical for all worker counts" regression gate.
    """
    qat_cfg = QATConfig(epochs=1, batch_size=cfg["search"]["batch_size"])
    all_schemes = enumerate_schemes(4, first_layer_bits=8)

    def one_pass(executor, n_tasks, cache=None):
        return explore_mixed_precision(
            arch.model, train_set, test_set,
            schemes=all_schemes[:n_tasks], config=qat_cfg, loss_fn=loss_fn,
            seed=0, source_label="curve", executor=executor, cache=cache,
        )

    serial_base = {}
    for n_tasks in cfg["curve_tasks"]:
        seconds, points = timed(lambda n=n_tasks: one_pass("serial", n), cfg["repeats"])
        serial_base[n_tasks] = (seconds, quant_signature(points))

    grid = []
    for kind in ("process", "thread"):
        for workers in cfg["curve_workers"]:
            for n_tasks in cfg["curve_tasks"]:
                executor = get_executor(kind, max_workers=workers)
                try:
                    cold_s, points = timed(
                        lambda: one_pass(executor, n_tasks), repeats=1
                    )
                    if quant_signature(points) != serial_base[n_tasks][1]:
                        raise SystemExit(
                            f"CURVE MISMATCH: {kind} x{workers} on {n_tasks} "
                            "tasks diverged from serial"
                        )
                    warm_s, points = timed(
                        lambda: one_pass(executor, n_tasks), cfg["repeats"]
                    )
                    if quant_signature(points) != serial_base[n_tasks][1]:
                        raise SystemExit(
                            f"CURVE MISMATCH (warm): {kind} x{workers} on "
                            f"{n_tasks} tasks diverged from serial"
                        )
                    if isinstance(executor, ProcessExecutor):
                        shm_names.update(executor.shared_block_names)
                finally:
                    executor.close()
                serial_s = serial_base[n_tasks][0]
                grid.append({
                    "executor": kind,
                    "workers": workers,
                    "tasks": n_tasks,
                    "cold_seconds": cold_s,
                    "warm_seconds": warm_s,
                    "cold_speedup": serial_s / cold_s,
                    "warm_speedup": serial_s / warm_s,
                })
    return {
        "unit": "1-epoch QAT scheme on the mid-sweep NAS architecture",
        "workers": list(cfg["curve_workers"]),
        "task_counts": list(cfg["curve_tasks"]),
        "serial_seconds": {str(n) : s for n, (s, _) in serial_base.items()},
        "grid": grid,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--out", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_flow.json",
                        help="where to write the JSON results")
    parser.add_argument("--workers", type=int, default=WORKERS,
                        help="process-pool size for the parallel runs")
    args = parser.parse_args(argv)

    cfg = QUICK if args.quick else FULL
    # Oversubscribing the host (more training workers than CPUs) measures
    # scheduler thrash, not executor dispatch cost: the headline pools are
    # sized to the machine.  The curves grid still sweeps explicit worker
    # counts, including oversubscribed ones.
    workers = max(1, min(args.workers, available_cpus()))
    train_set, test_set, loss_fn = build_workload(cfg)
    n_schemes = 8  # 4 quantizable layers, first pinned to 8 bits
    print(f"workload: {len(cfg['lambdas'])}-lambda NAS sweep + {n_schemes}-scheme "
          f"QAT exploration, CNN {cfg['conv_channels']}/{cfg['hidden']}, "
          f"{len(train_set)} train frames, {available_cpus()} usable CPUs")

    cache_dir = pathlib.Path(tempfile.mkdtemp(prefix="repro-flow-cache-"))
    shm_names = set()
    try:
        cache = ResultCache(cache_dir)

        pool = ProcessExecutor(max_workers=workers)
        try:
            # Cold: pool fork + dataset shm share + training + cache fill.
            start = time.perf_counter()
            parallel = run_sweeps(cfg, train_set, test_set, loss_fn, pool, cache)
            process_cold_s = time.perf_counter() - start
            trained = cache.misses
            shm_bytes = pool._arena.nbytes
            shm_names.update(pool.shared_block_names)

            # Serial reference vs warm pool (the steady state of every flow
            # stage after the first).  The two are *interleaved*, round by
            # round, so slow drift on the host (thermal throttling,
            # co-tenant load) biases neither side; best-of-N per side.
            serial_s = process_warm_s = float("inf")
            for _ in range(max(1, cfg["repeats"])):
                start = time.perf_counter()
                serial = run_sweeps(cfg, train_set, test_set, loss_fn, "serial", None)
                serial_s = min(serial_s, time.perf_counter() - start)
                start = time.perf_counter()
                parallel_warm = run_sweeps(cfg, train_set, test_set, loss_fn, pool, None)
                process_warm_s = min(process_warm_s, time.perf_counter() - start)

            # Cache replay (the "repeated flow run" path).
            start = time.perf_counter()
            cached = run_sweeps(cfg, train_set, test_set, loss_fn, pool, cache)
            cached_s = time.perf_counter() - start
            replayed = cache.hits
        finally:
            pool.close()
        assert_unlinked(shm_names)

        with ThreadExecutor(max_workers=workers) as threads:
            thread_s, threaded = timed(
                lambda: run_sweeps(cfg, train_set, test_set, loss_fn, threads, None),
                cfg["repeats"],
            )

        want = signature(*serial)
        for label, got in (("PROCESS", parallel), ("PROCESS-WARM", parallel_warm),
                           ("THREAD", threaded), ("CACHE", cached)):
            if signature(*got) != want:
                raise SystemExit(f"{label} MISMATCH: sweep results differ from serial")
        if replayed != trained:
            raise SystemExit(
                f"CACHE MISS ON RERUN: {replayed} hits for {trained} stored units"
            )

        arch = serial[0][len(serial[0]) // 2]
        curves = measure_curves(cfg, train_set, test_set, loss_fn, arch, shm_names)
        assert_unlinked(shm_names)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    results = {
        "workload": {
            "dataset": "linaige-synthetic",
            "lambdas": list(cfg["lambdas"]),
            "qat_schemes": n_schemes,
            "conv_channels": list(cfg["conv_channels"]),
            "hidden_features": cfg["hidden"],
            "search": dict(cfg["search"]),
            "qat_epochs": cfg["qat_epochs"],
            "train_frames": len(train_set),
            "timing": f"best-of-{cfg['repeats']}, serial/warm rounds interleaved",
            "quick": bool(args.quick),
        },
        "host": describe_host(),
        "cpus": available_cpus(),
        "workers": workers,
        "workers_requested": args.workers,
        "task_units": trained,
        "shm": {"blocks": len(shm_names), "bytes": shm_bytes},
        "serial": {"seconds": serial_s},
        "process": {"seconds": process_warm_s, "cold_seconds": process_cold_s},
        "thread": {"seconds": thread_s},
        "cached": {"seconds": cached_s},
        "parallel_speedup": serial_s / process_warm_s,
        "parallel_cold_speedup": serial_s / process_cold_s,
        "thread_speedup": serial_s / thread_s,
        "cached_speedup": serial_s / cached_s,
        "speedup": serial_s / min(process_warm_s, cached_s),
        "curves": curves,
    }
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"serial  {serial_s:7.2f}s | process({workers}) cold {process_cold_s:6.2f}s "
          f"warm {process_warm_s:6.2f}s ({results['parallel_speedup']:4.2f}x) | "
          f"thread {thread_s:6.2f}s ({results['thread_speedup']:4.2f}x) | "
          f"cached {cached_s:6.2f}s ({results['cached_speedup']:5.1f}x)")
    print(f"parity: OK ({trained} task units bit-identical across serial / process "
          f"/ thread / cache replay); shm: {len(shm_names)} blocks, all unlinked")
    print(f"wrote {args.out}")

    # The quick CI job only enforces bit-exact parity and shm cleanliness
    # (checked above) — tiny workloads on shared runners are too noisy to
    # gate on wall-clock.
    if not args.quick:
        failed = False
        if results["cached_speedup"] < 2.5:
            print(f"FAIL: cached-rerun speedup {results['cached_speedup']:.2f}x "
                  "below the 2.5x floor", file=sys.stderr)
            failed = True
        cpus = available_cpus()
        floor = 2.5 if cpus >= 4 else 1.0
        if results["parallel_speedup"] < floor:
            print(f"FAIL: process-pool speedup {results['parallel_speedup']:.2f}x "
                  f"below the {floor}x floor on a {cpus}-CPU host", file=sys.stderr)
            failed = True
        if cpus < 4:
            print(f"note: {cpus} CPU(s) available — the >=2.5x process-pool floor "
                  "is only enforced on >=4-CPU hosts (>=1.0x here: the pool must "
                  "never be a pessimization)")
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
