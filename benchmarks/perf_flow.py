#!/usr/bin/env python
"""Serial vs parallel vs cached benchmark of the optimization sweep layers.

Runs the paper's two sweep layers — the 4-lambda PIT NAS sweep (Fig. 5) and
the exhaustive mixed-precision QAT exploration of one discovered
architecture — three times through the :mod:`repro.parallel` machinery:

1. ``serial``  — the reference in-process loop, cold;
2. ``process`` — a 4-worker process pool, cold, filling the result cache;
3. ``cached``  — the same parallel run again, replayed from the
   content-addressed result cache (the "repeated flow run" path).

All three runs are asserted **bit-identical** (architecture metrics, trained
weights, QAT points) before any timing is reported, then the results are
written as machine-readable JSON (``BENCH_flow.json`` at the repository root
by default):

* ``parallel_speedup`` — serial / process wall-clock on the cold sweep.
  This tracks the worker pool itself and is only meaningful (and only
  enforced, at >=2.5x) on machines with >= 4 CPUs; on smaller hosts it is
  recorded for the trajectory but not gated.
* ``cached_speedup`` — serial / cached-rerun wall-clock; this is what a
  repeated flow run experiences and must clear the 2.5x acceptance bar on
  any machine.
* ``speedup`` — the best end-to-end improvement achieved over the cold
  serial sweep on this host.

CI runs ``perf_flow.py --quick`` as a smoke job, so a serial/process
mismatch or a cache corruption fails every PR.

Usage::

    PYTHONPATH=src python benchmarks/perf_flow.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import shutil
import sys
import tempfile
import time

import numpy as np

from repro.datasets import generate_linaige
from repro.flow import Preprocessor, seed_builder
from repro.serve import describe_host
from repro.nas.search import SearchConfig, run_search
from repro.nn import ArrayDataset
from repro.nn.losses import CrossEntropyLoss, balanced_class_weights
from repro.parallel import ResultCache
from repro.quant import QATConfig, explore_mixed_precision

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
WORKERS = 4

FULL = dict(
    lambdas=(1e-6, 1e-5, 1e-4, 5e-4),
    search=dict(warmup_epochs=1, search_epochs=6, finetune_epochs=6, batch_size=128),
    qat_epochs=3,
    conv_channels=(10, 10),
    hidden=16,
    scale=0.08,
)
QUICK = dict(
    lambdas=(1e-5, 5e-4),
    search=dict(warmup_epochs=0, search_epochs=1, finetune_epochs=1, batch_size=128),
    qat_epochs=1,
    conv_channels=(6, 6),
    hidden=8,
    scale=0.03,
)


def build_workload(cfg):
    dataset = generate_linaige(seed=0, scale=cfg["scale"])
    test_session = dataset.session(2)
    frames = np.concatenate(
        [s.frames for s in dataset.sessions if s.session_id != 2]
    )
    labels = np.concatenate(
        [s.labels for s in dataset.sessions if s.session_id != 2]
    )
    pre = Preprocessor.fit(frames)
    train_set = ArrayDataset(pre(frames), labels)
    test_set = ArrayDataset(pre(test_session.frames), test_session.labels)
    loss_fn = CrossEntropyLoss(balanced_class_weights(labels, 4))
    return train_set, test_set, loss_fn


def run_sweeps(cfg, train_set, test_set, loss_fn, executor, max_workers, cache):
    """One full pass over both sweep layers; returns (nas_points, qat_points)."""
    points = run_search(
        seed_builder(cfg["conv_channels"], cfg["hidden"]),
        train_set,
        test_set,
        config=SearchConfig(lambdas=cfg["lambdas"], **cfg["search"]),
        loss_fn=loss_fn,
        seed=0,
        executor=executor,
        max_workers=max_workers,
        cache=cache,
    )
    # QAT-explore the mid-sized discovered architecture (full enumeration:
    # 2^3 = 8 schemes for the 4-layer family).
    arch = points[len(points) // 2]
    quantized = explore_mixed_precision(
        arch.model,
        train_set,
        test_set,
        config=QATConfig(epochs=cfg["qat_epochs"], batch_size=cfg["search"]["batch_size"]),
        loss_fn=loss_fn,
        seed=0,
        source_label=arch.describe(),
        executor=executor,
        max_workers=max_workers,
        cache=cache,
    )
    return points, quantized


def signature(points, quantized):
    """Bit-level identity of a pass: metrics and trained weights."""
    return (
        [
            (p.strength, p.params, p.macs, p.bas,
             tuple(param.data.tobytes() for param in p.model.parameters()))
            for p in points
        ],
        [
            (tuple(q.scheme.bits), q.bas, q.memory_bytes, q.macs,
             tuple(param.data.tobytes() for param in q.model.parameters()))
            for q in quantized
        ],
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--out", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_flow.json",
                        help="where to write the JSON results")
    parser.add_argument("--workers", type=int, default=WORKERS,
                        help="process-pool size for the parallel runs")
    args = parser.parse_args(argv)

    cfg = QUICK if args.quick else FULL
    train_set, test_set, loss_fn = build_workload(cfg)
    n_schemes = 8  # 4 quantizable layers, first pinned to 8 bits
    print(f"workload: {len(cfg['lambdas'])}-lambda NAS sweep + {n_schemes}-scheme "
          f"QAT exploration, CNN {cfg['conv_channels']}/{cfg['hidden']}, "
          f"{len(train_set)} train frames, {os.cpu_count()} CPUs")

    cache_dir = pathlib.Path(tempfile.mkdtemp(prefix="repro-flow-cache-"))
    try:
        cache = ResultCache(cache_dir)

        start = time.perf_counter()
        serial = run_sweeps(cfg, train_set, test_set, loss_fn, "serial", None, None)
        serial_s = time.perf_counter() - start

        start = time.perf_counter()
        parallel = run_sweeps(
            cfg, train_set, test_set, loss_fn, "process", args.workers, cache
        )
        parallel_s = time.perf_counter() - start
        trained = cache.misses

        start = time.perf_counter()
        cached = run_sweeps(
            cfg, train_set, test_set, loss_fn, "process", args.workers, cache
        )
        cached_s = time.perf_counter() - start
        replayed = cache.hits

        if signature(*parallel) != signature(*serial):
            raise SystemExit("SERIAL/PROCESS MISMATCH: sweep results differ")
        if signature(*cached) != signature(*serial):
            raise SystemExit("CACHE MISMATCH: replayed sweep results differ")
        if replayed != trained:
            raise SystemExit(
                f"CACHE MISS ON RERUN: {replayed} hits for {trained} stored units"
            )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    results = {
        "workload": {
            "dataset": "linaige-synthetic",
            "lambdas": list(cfg["lambdas"]),
            "qat_schemes": n_schemes,
            "conv_channels": list(cfg["conv_channels"]),
            "hidden_features": cfg["hidden"],
            "search": dict(cfg["search"]),
            "qat_epochs": cfg["qat_epochs"],
            "train_frames": len(train_set),
            "quick": bool(args.quick),
        },
        "host": describe_host(),
        "cpus": os.cpu_count(),
        "workers": args.workers,
        "task_units": trained,
        "serial": {"seconds": serial_s},
        "process": {"seconds": parallel_s},
        "cached": {"seconds": cached_s},
        "parallel_speedup": serial_s / parallel_s,
        "cached_speedup": serial_s / cached_s,
        "speedup": serial_s / min(parallel_s, cached_s),
    }
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"serial  {serial_s:7.2f}s | process({args.workers}) {parallel_s:7.2f}s "
          f"({results['parallel_speedup']:4.2f}x) | cached rerun {cached_s:7.2f}s "
          f"({results['cached_speedup']:5.1f}x)")
    print(f"parity: OK ({trained} task units bit-identical across serial / "
          f"process / cache replay)")
    print(f"wrote {args.out}")

    # The quick CI job only enforces bit-exact parity (checked above) —
    # tiny workloads on shared runners are too noisy to gate on wall-clock.
    if not args.quick:
        failed = False
        if results["cached_speedup"] < 2.5:
            print(f"FAIL: cached-rerun speedup {results['cached_speedup']:.2f}x "
                  "below the 2.5x floor", file=sys.stderr)
            failed = True
        cpus = os.cpu_count() or 1
        if cpus >= 4 and results["parallel_speedup"] < 2.5:
            print(f"FAIL: process-pool speedup {results['parallel_speedup']:.2f}x "
                  f"below the 2.5x floor on a {cpus}-CPU host", file=sys.stderr)
            failed = True
        elif cpus < 4:
            print(f"note: {cpus} CPU(s) available — the process-pool speedup is "
                  "recorded but only enforced on >=4-CPU hosts")
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
