"""Fig. 6 — Pareto fronts with and without majority-voting post-processing.

Regenerates both panels: BAS vs memory and BAS vs number of MACs, comparing
the single-frame classifier ("Simple") against the 5-frame sliding-window
majority vote ("Majority") on the temporally ordered held-out session.
"""

import pytest

from conftest import save_result


def _series(flow_result):
    lines = ["# Fig. 6 — post-processing (majority voting, window=5)", ""]
    lines.append(f"{'model':<40} {'mem kB':>8} {'MACs':>9} {'BAS simple':>11} {'BAS majority':>13}")
    for fp in sorted(flow_result.flow_points, key=lambda p: p.memory_bytes):
        lines.append(
            f"{fp.label[-38:]:<40} {fp.memory_kb:8.2f} {fp.macs:9d} "
            f"{fp.bas:11.3f} {fp.bas_majority:13.3f}"
        )

    simple_front = flow_result.pareto_memory(use_majority=False)
    majority_front = flow_result.pareto_memory(use_majority=True)
    lines.append("")
    lines.append("Pareto front, BAS vs memory (simple):")
    for p in simple_front:
        lines.append(f"  memory={p.cost / 1024:6.2f} kB bas={p.score:.3f}")
    lines.append("Pareto front, BAS vs memory (majority):")
    for p in majority_front:
        lines.append(f"  memory={p.cost / 1024:6.2f} kB bas={p.score:.3f}")

    macs_front_simple = flow_result.pareto_macs(use_majority=False)
    macs_front_majority = flow_result.pareto_macs(use_majority=True)
    lines.append("Pareto front, BAS vs MACs (simple):")
    for p in macs_front_simple:
        lines.append(f"  macs={int(p.cost):8d} bas={p.score:.3f}")
    lines.append("Pareto front, BAS vs MACs (majority):")
    for p in macs_front_majority:
        lines.append(f"  macs={int(p.cost):8d} bas={p.score:.3f}")

    # The paper applies post-processing to the Pareto-optimal DNNs; models
    # that barely beat chance gain nothing from temporal filtering, so the
    # gain statistic is computed over the useful (BAS >= 0.5) models.
    useful = [fp for fp in flow_result.flow_points if fp.bas >= 0.5]
    gains = [fp.bas_majority - fp.bas for fp in (useful or flow_result.flow_points)]
    lines.append("")
    lines.append(
        f"majority-voting BAS gain over useful models: "
        f"mean={sum(gains) / len(gains) * 100:+.2f} points, "
        f"max={max(gains) * 100:+.2f} points (paper reports up to +6.7)"
    )
    return lines, gains


@pytest.mark.benchmark(group="fig6")
def test_fig6_postprocessing(benchmark, flow_result):
    (lines, gains) = benchmark.pedantic(lambda: _series(flow_result), rounds=1, iterations=1)
    save_result("fig6_postprocessing", lines)

    # Majority voting is a plug-and-play filter: on models that actually work
    # it should help on average (or at worst be neutral within noise).
    assert sum(gains) / len(gains) > -0.02
    assert max(gains) >= 0.0
