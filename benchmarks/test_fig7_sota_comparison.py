"""Fig. 7 — comparison against the hand-tuned state of the art ([4]).

Trains the manual coarse-grid baseline of [4] (uniform INT8 deployment) with
the same data and training harness, and compares its BAS-vs-memory and
BAS-vs-MACs fronts against the fronts produced by the automated flow,
reporting the iso-accuracy reduction factors the paper quotes (up to 4.2x
memory and 2.9-3.3x MACs).
"""

import pytest

from conftest import save_result

import repro
from repro.nn.metrics import balanced_accuracy
from repro.flow import (
    MANUAL_GRID,
    pareto_front,
    points_from,
    reduction_factor,
    train_manual_baseline,
)
from repro.nn import ArrayDataset, TrainConfig


def _run(flow_result, bench_dataset):
    # Rebuild the same train/test split used by the flow.
    test_session = bench_dataset.session(2)
    import numpy as np

    train_frames = np.concatenate(
        [s.frames for s in bench_dataset.sessions if s.session_id != 2]
    )
    train_labels = np.concatenate(
        [s.labels for s in bench_dataset.sessions if s.session_id != 2]
    )
    pre = flow_result.preprocessor
    train_set = ArrayDataset(pre(train_frames), train_labels)
    test_set = ArrayDataset(pre(test_session.frames), test_session.labels)

    baseline = train_manual_baseline(
        train_set,
        test_set,
        grid=MANUAL_GRID[:5],
        config=TrainConfig(epochs=6, batch_size=128),
        seed=1,
    )

    lines = ["# Fig. 7 — comparison with the hand-tuned SotA baseline [4]", ""]
    lines.append("Manual baseline (uniform INT8 deployment):")
    for p in baseline:
        lines.append(
            f"  {str(p.conv_channels):<10} fc={p.hidden_features:<3} "
            f"memory={p.memory_kb:6.2f} kB macs={p.macs:>8} bas={p.bas:.3f}"
        )
    lines.append("")
    lines.append("Our flow (NAS + mixed precision + majority voting):")
    for fp in sorted(flow_result.flow_points, key=lambda p: p.memory_bytes):
        lines.append(
            f"  {fp.scheme.label:<14} memory={fp.memory_kb:6.2f} kB "
            f"macs={fp.macs:>8} bas={fp.bas_majority:.3f}"
        )

    ours_memory = points_from(
        flow_result.flow_points,
        score=lambda p: p.bas_majority,
        cost=lambda p: p.memory_bytes,
    )
    ref_memory = points_from(
        baseline, score=lambda p: p.bas, cost=lambda p: p.memory_bytes_int8
    )
    ours_macs = points_from(
        flow_result.flow_points, score=lambda p: p.bas_majority, cost=lambda p: float(p.macs)
    )
    ref_macs = points_from(baseline, score=lambda p: p.bas, cost=lambda p: float(p.macs))

    best_ref_bas = max(p.bas for p in baseline)
    floor = best_ref_bas - 0.05
    mem_factor = reduction_factor(pareto_front(ours_memory), pareto_front(ref_memory), floor)
    macs_factor = reduction_factor(pareto_front(ours_macs), pareto_front(ref_macs), floor)
    lines.append("")
    lines.append(f"iso-accuracy floor (best baseline BAS - 5%): {floor:.3f}")
    lines.append(
        f"memory reduction vs manual baseline at iso-BAS: "
        f"x{mem_factor:.2f}" if mem_factor else "memory reduction: n/a"
    )
    lines.append(
        f"MACs reduction vs manual baseline at iso-BAS: "
        f"x{macs_factor:.2f}" if macs_factor else "MACs reduction: n/a"
    )
    lines.append("(paper: up to 4.2x memory and 2.9x MACs at iso-accuracy)")
    return lines, baseline, mem_factor


@pytest.mark.benchmark(group="fig7")
def test_fig7_sota_comparison(benchmark, flow_result, bench_dataset):
    lines, baseline, mem_factor = benchmark.pedantic(
        lambda: _run(flow_result, bench_dataset), rounds=1, iterations=1
    )
    save_result("fig7_sota_comparison", lines)

    assert baseline, "the manual baseline grid produced no points"
    # Shape check: the automated flow reaches comparable accuracy with less
    # memory than the manual baseline (the paper's headline claim).
    best_ours = max(p.bas_majority for p in flow_result.flow_points)
    best_ref = max(p.bas for p in baseline)
    assert best_ours >= best_ref - 0.10
    if mem_factor is not None:
        assert mem_factor > 1.0

    # Cross-check the flow's top point through the engine façade: streaming
    # the held-out session with the majority FIFO must reproduce the BAS the
    # flow reported for that point.
    top = max(flow_result.flow_points, key=lambda p: p.bas_majority)
    session_2 = bench_dataset.session(2)
    frames = flow_result.preprocessor(session_2.frames)
    engine = repro.compile(top, target="numpy-float")
    with engine.stream(window=5) as stream:
        for frame in frames:
            stream.push(frame)
        voted = stream.summary().voted_predictions
    # Per-frame and 256-chunk batched forwards can differ in the last float
    # ulp (BLAS reassociation), so allow a near-tie argmax flip or two.
    assert balanced_accuracy(session_2.labels, voted) == pytest.approx(
        top.bas_majority, abs=0.02
    )
