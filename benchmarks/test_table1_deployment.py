"""Table I — embedded deployment of the Top / -5% / Mini models.

Selects, from the flow's final Pareto set, the top-scoring model, the
smallest model within 5% BAS of it, and the smallest model overall — the
same selection rule as the paper — and deploys each on the three platforms:

* STM32L4R5 + X-CUBE-AI (analytical model, 8-bit only),
* vanilla IBEX (scalar kernels on the ISA simulator),
* MAUPITI (SDOTP kernels on the ISA simulator).

Reports Code [B], Data [B] and Energy [uJ] per inference, plus the
reduction factors the paper highlights.  The ISA-simulated programs are
verified bit-exact against the integer golden model before measuring.
"""

import pytest

from conftest import save_result

import repro


def _deploy_one(label, flow_point, frames):
    """Deploy one flow point on the three targets through the engine façade;
    the ISA-simulated targets are verified bit-exact before measuring."""
    bundle = repro.engine.ModelBundle(flow_point)
    rows = []
    for target in ("stm32", "ibex", "maupiti"):
        engine = repro.compile(bundle, target=target)
        measured = engine.verify(frames) if engine.can_verify else None
        rows.append((label, engine.report(frames, measured=measured)))
    return rows


@pytest.mark.benchmark(group="table1")
def test_table1_deployment(benchmark, flow_result, bench_test_frames):
    frames, _labels = bench_test_frames
    eval_frames = frames[:3]

    selection = flow_result.table1_selection()

    def run():
        all_rows = []
        for label, fp in selection.items():
            all_rows.extend(_deploy_one(label, fp, eval_frames))
        return all_rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["# Table I — deployment results (Code [B], Data [B], Energy [uJ])", ""]
    lines.append(f"{'model':<6} {'platform':<8} {'code B':>8} {'data B':>8} {'cycles':>10} {'energy uJ':>10}")
    per_model = {}
    for label, entry in rows:
        per_model.setdefault(label, {})[entry.platform] = entry
        lines.append(
            f"{label:<6} {entry.platform:<8} {entry.code_bytes:>8} {entry.data_bytes:>8} "
            f"{entry.cycles:>10.0f} {entry.energy_uj:>10.3f}"
        )
    lines.append("")
    for label, entries in per_model.items():
        code_red = entries["STM32"].code_bytes / entries["MAUPITI"].code_bytes
        data_red = entries["STM32"].data_bytes / entries["MAUPITI"].data_bytes
        energy_vs_ibex = 1 - entries["MAUPITI"].energy_uj / entries["IBEX"].energy_uj
        lines.append(
            f"{label:<6}: code x{code_red:5.1f} and data x{data_red:4.1f} smaller than STM32; "
            f"MAUPITI saves {energy_vs_ibex * 100:4.1f}% energy vs vanilla IBEX"
        )
    lines.append("(paper: up to 6.78x code / 20.22x data vs STM32, up to 17.9% energy vs IBEX;")
    lines.append(" all ISA-simulated results verified bit-exact against the integer golden model)")
    save_result("table1_deployment", lines)

    # Qualitative shape assertions matching the paper.
    for label, entries in per_model.items():
        assert entries["MAUPITI"].code_bytes < entries["STM32"].code_bytes / 4
        assert entries["MAUPITI"].data_bytes < entries["STM32"].data_bytes
        assert entries["MAUPITI"].energy_uj < entries["IBEX"].energy_uj
        assert entries["STM32"].latency_ms < entries["MAUPITI"].latency_ms
        # Everything fits the 16 kB + 16 kB on-chip memories.
        assert entries["MAUPITI"].code_bytes <= 16 * 1024
        assert entries["MAUPITI"].data_bytes <= 16 * 1024
