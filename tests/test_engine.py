"""The engine façade: registry, compile(), cross-target parity, streaming."""

import numpy as np
import pytest

import repro
from repro.engine import (
    EngineBackend,
    EngineError,
    ModelBundle,
    available_targets,
    get_target,
    register_target,
    target_table,
    unregister_target,
)
from repro.nn.trainer import predict
from repro.postproc import majority_filter


class TestRegistry:
    def test_builtin_targets_present(self):
        assert {"numpy-float", "int-golden", "ibex", "maupiti", "stm32"} <= set(
            available_targets()
        )

    def test_aliases_resolve(self):
        assert get_target("golden").name == "int-golden"
        assert get_target("NUMPY").name == "numpy-float"

    def test_unknown_target_lists_alternatives(self):
        with pytest.raises(EngineError, match="maupiti"):
            get_target("riscv-gpu")

    def test_target_table_mentions_every_target(self):
        table = target_table()
        for name in available_targets():
            assert name in table

    def test_custom_target_registration(self, trained_small_model):
        @register_target("constant", description="always predicts class 0")
        class ConstantBackend(EngineBackend):
            def __init__(self, bundle):
                super().__init__(bundle)

            def predict_batch(self, frames):
                from repro.engine import BatchPrediction

                n = frames.shape[0]
                return BatchPrediction(predictions=np.zeros(n, dtype=np.int64))

        try:
            engine = repro.compile(trained_small_model, target="constant")
            out = engine.predict_batch(np.zeros((3, 1, 8, 8)))
            assert out.predictions.tolist() == [0, 0, 0]
        finally:
            unregister_target("constant")
        with pytest.raises(EngineError):
            get_target("constant")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_target("maupiti")(type("Dup", (EngineBackend,), {}))


class TestCompileCoercion:
    def test_float_model_rejected_by_integer_targets(self, trained_small_model):
        with pytest.raises(EngineError, match="quantized"):
            repro.compile(trained_small_model, target="int-golden")

    def test_integer_network_rejected_by_numpy_target(self, integer_network):
        with pytest.raises(EngineError, match="numpy-float"):
            repro.compile(integer_network, target="numpy-float")

    def test_unsupported_object_rejected(self):
        with pytest.raises(EngineError, match="cannot compile"):
            repro.compile({"not": "a model"}, target="numpy-float")

    def test_quant_model_lowers_lazily_and_caches(self, quantized_model):
        bundle = ModelBundle(quantized_model)
        assert bundle._integer_network is None
        first = bundle.require_integer()
        assert bundle.require_integer() is first

    def test_bundle_shared_across_targets(self, quantized_model, prepared_data):
        frames = prepared_data["test"].inputs[:2]
        bundle = ModelBundle(quantized_model)
        golden = repro.compile(bundle, target="int-golden")
        stm32 = repro.compile(bundle, target="stm32")
        np.testing.assert_array_equal(
            golden.predict_batch(frames).predictions,
            stm32.predict_batch(frames).predictions,
        )


class TestCrossTargetParity:
    """The ISSUE's acceptance criterion: one compiled model, same answers on
    every target, bit-exact between the golden model and the simulator."""

    def test_int_golden_matches_maupiti_bit_exact(self, integer_network, prepared_data):
        frames = prepared_data["preprocessor"](
            prepared_data["test_session"].frames[:3]
        )
        golden = repro.compile(integer_network, target="int-golden")
        maupiti = repro.compile(integer_network, target="maupiti")
        bg = golden.predict_batch(frames)
        bm = maupiti.predict_batch(frames)
        np.testing.assert_array_equal(bg.predictions, bm.predictions)
        np.testing.assert_array_equal(bg.logits, bm.logits)
        # And through the runtime's own golden-check machinery.
        maupiti.verify(frames)

    def test_int_golden_matches_ibex_bit_exact(self, integer_network, prepared_data):
        frames = prepared_data["preprocessor"](
            prepared_data["test_session"].frames[:2]
        )
        golden = repro.compile(integer_network, target="int-golden")
        ibex = repro.compile(integer_network, target="ibex")
        np.testing.assert_array_equal(
            golden.predict_batch(frames).logits, ibex.predict_batch(frames).logits
        )
        ibex.verify(frames)

    def test_numpy_float_matches_trainer_predict(self, trained_small_model, prepared_data):
        inputs = prepared_data["test"].inputs
        engine = repro.compile(trained_small_model, target="numpy-float")
        np.testing.assert_array_equal(
            engine.predict_batch(inputs).predictions,
            predict(trained_small_model, inputs),
        )

    def test_all_five_targets_one_interface(self, quantized_model, prepared_data):
        frames = prepared_data["test"].inputs[:2]
        bundle = ModelBundle(quantized_model)
        for target in available_targets():
            engine = repro.compile(bundle, target=target)
            batch = engine.predict_batch(frames)
            assert len(batch) == 2
            assert batch.predictions.dtype == np.int64
            single = engine.predict(frames[0])
            assert single.prediction == int(batch.predictions[0])
            if engine.supports_stats:
                assert batch.mean_cycles and batch.mean_cycles > 0
                assert batch.total_energy_uj and batch.total_energy_uj > 0
            else:
                assert batch.mean_cycles is None


class TestStreaming:
    def test_stream_matches_majority_filter(self, trained_small_model, prepared_data):
        inputs = prepared_data["test"].inputs[:40]
        engine = repro.compile(trained_small_model, target="numpy-float")
        raw = engine.predict_batch(inputs).predictions
        with engine.stream(window=5) as session:
            updates = [session.push(frame) for frame in inputs]
            summary = session.summary()
        np.testing.assert_array_equal(summary.raw_predictions, raw)
        np.testing.assert_array_equal(
            summary.voted_predictions, majority_filter(raw, window=5)
        )
        assert [u.index for u in updates] == list(range(len(inputs)))
        assert summary.mean_cycles is None  # numpy target has no stats

    def test_stream_reports_cycles_on_simulated_target(
        self, integer_network, prepared_data
    ):
        frames = prepared_data["preprocessor"](
            prepared_data["test_session"].frames[:3]
        )
        engine = repro.compile(integer_network, target="maupiti")
        with engine.stream(window=3) as session:
            for frame in frames:
                update = session.push(frame)
                assert update.cycles > 0
                assert update.energy_uj > 0
            summary = session.summary()
        assert summary.cycles_per_frame.shape == (3,)
        assert summary.total_energy_uj > 0

    def test_push_outside_context_rejected(self, trained_small_model):
        engine = repro.compile(trained_small_model, target="numpy-float")
        session = engine.stream()
        with pytest.raises(EngineError):
            session.push(np.zeros((1, 8, 8)))

    def test_push_after_close_rejected(self, trained_small_model, prepared_data):
        engine = repro.compile(trained_small_model, target="numpy-float")
        session = engine.stream(window=3)
        with session:
            session.push(prepared_data["test"].inputs[0])
        # The context exited: the stream is closed and must refuse frames.
        with pytest.raises(EngineError):
            session.push(prepared_data["test"].inputs[1])

    def test_reentered_session_starts_fresh(self, trained_small_model, prepared_data):
        inputs = prepared_data["test"].inputs[:6]
        session = repro.compile(trained_small_model, target="numpy-float").stream(window=3)
        with session:
            for frame in inputs:
                session.push(frame)
            assert session.summary().frames == 6
        with session:
            session.push(inputs[0])
            summary = session.summary()
        assert summary.frames == 1  # no leftovers from the first run
        # A fresh FIFO means the first voted output equals the raw prediction.
        assert summary.voted_predictions[0] == summary.raw_predictions[0]


class _ScriptedBackend:
    """Minimal stream backend replaying a fixed prediction sequence.

    StreamSession only needs ``predict_frame`` (and optionally ``prepare``),
    so edge cases of the majority FIFO can be driven without a model.
    """

    def __init__(self, script):
        from repro.engine import Prediction

        self._script = [Prediction(prediction=int(p)) for p in script]
        self._index = 0
        self.prepared = 0

    def prepare(self):
        self.prepared += 1

    def predict_frame(self, frame):
        result = self._script[self._index]
        self._index += 1
        return result


class TestStreamingFifoEdgeCases:
    """Majority-FIFO corners: short/long windows, ties, session resets."""

    def _run(self, script, window, sessions=1):
        from repro.engine import StreamSession

        backend = _ScriptedBackend(script)
        session = StreamSession(backend, window=window)
        frame = np.zeros((1, 8, 8))
        outputs = []
        per_session = len(script) // sessions
        for _ in range(sessions):
            with session:
                outputs.append(
                    [session.push(frame).voted for _ in range(per_session)]
                )
        return session, outputs

    def test_window_one_passes_raw_through(self):
        script = [0, 1, 2, 3, 2, 1, 0]
        session, (voted,) = self._run(script, window=1)
        assert voted == script
        np.testing.assert_array_equal(session.summary().raw_predictions, script)

    def test_window_shorter_than_session_smooths_glitches(self):
        # A single-frame glitch (the lone 0) is voted away by a 3-window.
        script = [1, 1, 0, 1, 1, 2, 2, 2]
        _, (voted,) = self._run(script, window=3)
        assert voted == [1, 1, 1, 1, 1, 1, 2, 2]
        np.testing.assert_array_equal(
            voted, majority_filter(script, window=3)
        )

    def test_window_longer_than_session_votes_over_growing_prefix(self):
        # Until the FIFO fills, the vote covers everything seen so far; a
        # window far longer than the session never indexes stale slots.
        script = [2, 0, 0, 1]
        _, (voted,) = self._run(script, window=50)
        assert voted == [2, 0, 0, 0]
        np.testing.assert_array_equal(voted, majority_filter(script, window=50))

    def test_ties_break_to_most_recent_prediction(self):
        # Window 2 forces a tie on every change of prediction.
        _, (voted,) = self._run([0, 1, 0, 1], window=2)
        assert voted == [0, 1, 0, 1]
        # Three-way tie inside a window of 4, then a real majority.
        _, (voted,) = self._run([1, 0, 2, 0, 0], window=4)
        assert voted == [1, 0, 2, 0, 0]

    def test_session_boundary_reset_clears_fifo_and_stats(self):
        # Session 1 fills the FIFO with 2s; after the boundary the old
        # majority must not leak into session 2's first votes.
        session, outputs = self._run([2, 2, 2, 0, 1, 0], window=5, sessions=2)
        assert outputs[0] == [2, 2, 2]
        assert outputs[1] == [0, 1, 0]  # [0,1] ties to the recent 1
        summary = session.summary()
        assert summary.raw_predictions.tolist() == [0, 1, 0]  # session 2 only
        assert len(session) == 3

    def test_reset_midstream_via_reentry_is_idempotent(self):
        # Entering twice in a row without pushing must leave a clean FIFO.
        from repro.engine import StreamSession

        backend = _ScriptedBackend([3, 3])
        session = StreamSession(backend, window=4)
        with session:
            pass
        with session:
            update = session.push(np.zeros((1, 8, 8)))
        assert update.voted == 3 and backend.prepared == 2
        assert session.summary().voted_predictions.tolist() == [3]


class TestReports:
    def test_simulated_report_matches_legacy_shim(self, integer_network, prepared_data):
        from repro.deploy import report_on_simulated_platform
        from repro.hw import maupiti_platform

        frames = prepared_data["preprocessor"](
            prepared_data["test_session"].frames[:2]
        )
        engine_report = repro.compile(integer_network, target="maupiti").report(frames)
        legacy = report_on_simulated_platform(
            integer_network, maupiti_platform(), frames
        )
        assert legacy == engine_report

    def test_stm32_report_needs_no_frames(self, integer_network):
        entry = repro.compile(integer_network, target="stm32").report()
        assert entry.platform == "STM32"
        assert entry.code_bytes > 20_000

    def test_simulated_report_requires_frames(self, integer_network):
        with pytest.raises(EngineError, match="calibration frame"):
            repro.compile(integer_network, target="maupiti").report()

    def test_report_reuses_measured_verify_run(self, integer_network, prepared_data):
        """A verify() run doubles as the cycle measurement — report() must
        not re-simulate when handed the measured batch."""
        frames = prepared_data["preprocessor"](
            prepared_data["test_session"].frames[:2]
        )
        engine = repro.compile(integer_network, target="maupiti")
        measured = engine.verify(frames)
        report = engine.report(measured=measured)  # no frames: no re-run
        assert report.cycles == pytest.approx(measured.mean_cycles)

    def test_numpy_target_has_no_report(self, trained_small_model):
        with pytest.raises(EngineError, match="report"):
            repro.compile(trained_small_model, target="numpy-float").report()

    def test_verify_unsupported_on_analytical_target(self, integer_network):
        engine = repro.compile(integer_network, target="stm32")
        assert not engine.can_verify
        with pytest.raises(EngineError, match="verification"):
            engine.verify(np.zeros((1, 1, 8, 8)))


class TestFlowStage4:
    def test_flow_point_deploys_through_engine(self, quantized_model, prepared_data):
        from repro.flow import FlowPoint
        from repro.quant import QuantizedPoint, PrecisionScheme

        qp = QuantizedPoint(
            scheme=quantized_model.scheme,
            bas=0.5,
            memory_bytes=quantized_model.weights_bytes(),
            macs=quantized_model.macs(),
            params=0,
            model=quantized_model,
        )
        fp = FlowPoint(
            label="test INT 8-4-4-8",
            bas=0.5,
            bas_majority=0.5,
            memory_bytes=qp.memory_bytes,
            macs=qp.macs,
            scheme=qp.scheme,
            quantized=qp,
        )
        frames = prepared_data["test"].inputs[:2]
        engine = repro.compile(fp, target="maupiti")
        assert engine.label == "test INT 8-4-4-8"
        engine.verify(frames)

        from repro.flow.pipeline import FlowResult

        result = FlowResult(
            seed_point=(0.5, 1.0, 1),
            float_points=[],
            quantized_points=[qp],
            flow_points=[fp],
            preprocessor=prepared_data["preprocessor"],
        )
        report = result.deploy(fp, frames)
        assert set(report.entries) == {"STM32", "IBEX", "MAUPITI"}
        assert report.improvement("code_bytes") > 1.0


class TestInputGuard:
    """Input-validation policies: reject / clamp / hold_last."""

    def _bad_frames(self):
        frames = np.full((4, 1, 8, 8), 20.0)
        frames[1, 0, 0, 0] = np.nan
        frames[3, 0, 2, 2] = np.inf
        return frames

    def test_unknown_policy_rejected(self):
        from repro.engine import InputGuard

        with pytest.raises(EngineError, match="policy"):
            InputGuard("discard")

    def test_bad_range_rejected(self):
        from repro.engine import InputGuard

        with pytest.raises(EngineError, match="range"):
            InputGuard("clamp", input_range=(5.0, 5.0))

    def test_clean_frames_pass_through_unchanged(self):
        from repro.engine import InputGuard

        guard = InputGuard("reject")
        frames = np.full((3, 1, 8, 8), 21.0)
        assert guard.apply(frames) is frames  # zero-copy clean path
        assert guard.health.invalid_frames == 0
        assert guard.health.frames_seen == 3

    def test_reject_raises_with_offending_indices(self):
        from repro.engine import InputGuard, InvalidFrameError

        guard = InputGuard("reject")
        with pytest.raises(InvalidFrameError, match=r"\[1, 3\]"):
            guard.apply(self._bad_frames())

    def test_clamp_zeroes_nonfinite_and_clips_range(self):
        from repro.engine import InputGuard

        guard = InputGuard("clamp", input_range=(0.0, 40.0))
        frames = self._bad_frames()
        frames[0, 0, 0, 0] = 99.0
        out = guard.apply(frames)
        assert np.isfinite(out).all()
        assert out[1, 0, 0, 0] == 0.0
        assert out[3, 0, 2, 2] == 0.0
        assert out[0, 0, 0, 0] == 40.0
        assert guard.health.invalid_frames == 3

    def test_hold_last_repeats_last_valid_frame(self):
        from repro.engine import InputGuard

        guard = InputGuard("hold_last")
        frames = self._bad_frames()
        out = guard.apply(frames)
        np.testing.assert_array_equal(out[1], frames[0])
        np.testing.assert_array_equal(out[3], frames[2])

    def test_hold_last_with_no_prior_valid_frame_zeroes(self):
        from repro.engine import InputGuard

        guard = InputGuard("hold_last")
        frames = np.full((2, 1, 8, 8), np.nan)
        out = guard.apply(frames)
        assert (out == 0.0).all()

    def test_make_guard_none_policy(self):
        from repro.engine import make_guard

        assert make_guard(None, None) is None
        assert make_guard("clamp", (0.0, 1.0)).policy == "clamp"

    def test_engine_reject_policy_on_predict_batch(
        self, trained_small_model, prepared_data
    ):
        from repro.engine import InvalidFrameError

        engine = repro.compile(
            trained_small_model, target="numpy-float", on_invalid="reject"
        )
        frames = prepared_data["test"].inputs[:4].copy()
        engine.predict_batch(frames)  # clean frames: unaffected
        frames[2] = np.nan
        with pytest.raises(InvalidFrameError):
            engine.predict_batch(frames)
        with pytest.raises(InvalidFrameError):
            engine.predict(frames[2])

    def test_engine_clamp_policy_repairs_before_inference(
        self, trained_small_model, prepared_data
    ):
        engine = repro.compile(
            trained_small_model, target="numpy-float", on_invalid="clamp"
        )
        clean = prepared_data["test"].inputs[:4]
        broken = clean.copy()
        broken[1] = np.nan  # clamps to all-zero
        zeroed = clean.copy()
        zeroed[1] = 0.0
        plain = repro.compile(trained_small_model, target="numpy-float")
        np.testing.assert_array_equal(
            engine.predict_batch(broken).predictions,
            plain.predict_batch(zeroed).predictions,
        )

    def test_default_engine_has_no_guard(self, trained_small_model, prepared_data):
        # No policy configured: non-finite frames flow to the backend
        # untouched (historical behavior, bit-identical fault-free path).
        engine = repro.compile(trained_small_model, target="numpy-float")
        frames = prepared_data["test"].inputs[:2].copy()
        frames[0] = np.nan
        engine.predict_batch(frames)  # must not raise


class TestStreamHealth:
    """Per-stream health: invalid-frame counters and vote margins."""

    def test_stream_inherits_engine_policy_and_counts(
        self, trained_small_model, prepared_data
    ):
        engine = repro.compile(
            trained_small_model, target="numpy-float", on_invalid="hold_last"
        )
        frames = prepared_data["test"].inputs[:5].copy()
        frames[2] = np.inf
        with engine.stream(window=3) as session:
            for frame in frames:
                session.push(frame)
            health = session.health()
            summary = session.summary()
        assert health.frames == 5
        assert health.invalid_frames == 1
        assert health.invalid_fraction == pytest.approx(0.2)
        assert summary.health.invalid_frames == 1
        # hold_last: frame 2 repeated frame 1, so raws 1 and 2 agree.
        assert summary.raw_predictions[2] == summary.raw_predictions[1]

    def test_stream_override_disables_engine_policy(
        self, trained_small_model, prepared_data
    ):
        engine = repro.compile(
            trained_small_model, target="numpy-float", on_invalid="reject"
        )
        frames = prepared_data["test"].inputs[:2].copy()
        frames[1] = np.nan
        with engine.stream(window=3, on_invalid=None) as session:
            for frame in frames:
                session.push(frame)  # must not raise: override wins
            assert session.health().invalid_frames == 0

    def test_margin_tracks_vote_confidence(self):
        from repro.engine import StreamSession

        session = StreamSession(_ScriptedBackend([1, 1, 0, 0, 0]), window=3)
        frame = np.zeros((1, 8, 8))
        with session:
            margins = [session.push(frame).margin for _ in range(5)]
            health = session.health()
        # [1] unanimous; [1,1] unanimous; [1,1,0] 2-1; [1,0,0] 2-1; [0,0,0].
        assert margins == pytest.approx([1.0, 1.0, 1 / 3, 1 / 3, 1.0])
        assert health.last_margin == pytest.approx(1.0)
        assert health.min_margin == pytest.approx(1 / 3)
        assert health.mean_margin == pytest.approx(np.mean(margins))

    def test_reentered_session_resets_health(self):
        from repro.engine import StreamSession

        session = StreamSession(_ScriptedBackend([1, 0, 1, 1]), window=2)
        frame = np.zeros((1, 8, 8))
        with session:
            session.push(frame)
            session.push(frame)
        with session:
            session.push(frame)
            session.push(frame)
            health = session.health()
        assert health.frames == 2
        assert health.mean_margin == pytest.approx(1.0)  # [1], [1,1]
