"""Flow orchestration: seeds, Pareto utilities, manual baseline, full pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow import (
    FlowConfig,
    MANUAL_GRID,
    OptimizationFlow,
    ParetoPoint,
    Preprocessor,
    best_at_cost_budget,
    build_seed_cnn,
    cost_at_score_floor,
    is_dominated,
    merge_fronts,
    pareto_front,
    points_from,
    reduction_factor,
    train_manual_baseline,
)
from repro.nas import count_macs, count_params
from repro.nas.search import SearchConfig
from repro.nn import TrainConfig
from repro.quant import QATConfig


class TestSeed:
    def test_seed_matches_paper_description(self):
        rng = np.random.default_rng(0)
        seed = build_seed_cnn(rng)
        # Two 3x3 convs with 64 channels, FC 64, FC 4 on an 8x8 input.
        # count_params excludes BatchNorm parameters (folded before deployment).
        assert count_params(seed) == (
            (1 * 9 * 64 + 64)          # conv1
            + (64 * 9 * 64 + 64)       # conv2
            + (64 * 16 * 64 + 64)      # fc1 on the 4x4x64 map
            + (64 * 4 + 4)             # fc2
        )
        out = seed(rng.normal(size=(2, 1, 8, 8)))
        assert out.shape == (2, 4)

    def test_seed_macs(self):
        rng = np.random.default_rng(0)
        seed = build_seed_cnn(rng)
        expected = 64 * 64 * 9 * 1 + 16 * 64 * 64 * 9 + 64 * 16 * 64 + 64 * 4
        assert count_macs(seed) == expected

    def test_configuration_validation(self):
        with pytest.raises(ValueError):
            build_seed_cnn(conv_channels=(8, 8, 8))


class TestPareto:
    def _points(self):
        return [
            ParetoPoint(score=0.9, cost=100, label="big"),
            ParetoPoint(score=0.85, cost=40, label="mid"),
            ParetoPoint(score=0.80, cost=60, label="dominated"),
            ParetoPoint(score=0.70, cost=10, label="small"),
        ]

    def test_front_extraction(self):
        front = pareto_front(self._points())
        assert [p.label for p in front] == ["small", "mid", "big"]

    def test_is_dominated(self):
        points = self._points()
        assert is_dominated(points[2], points)
        assert not is_dominated(points[1], points)

    def test_merge_fronts(self):
        a = [ParetoPoint(0.9, 100)]
        b = [ParetoPoint(0.9, 50), ParetoPoint(0.5, 10)]
        merged = merge_fronts(a, b)
        assert len(merged) == 2
        assert all(p.cost in (50, 10) for p in merged)

    def test_budget_and_floor_queries(self):
        front = pareto_front(self._points())
        assert best_at_cost_budget(front, 45).label == "mid"
        assert best_at_cost_budget(front, 5) is None
        assert cost_at_score_floor(front, 0.84).label == "mid"
        assert cost_at_score_floor(front, 0.99) is None

    def test_reduction_factor(self):
        ours = [ParetoPoint(0.9, 10)]
        reference = [ParetoPoint(0.9, 42)]
        assert reduction_factor(ours, reference, 0.85) == pytest.approx(4.2)
        assert reduction_factor(ours, reference, 0.95) is None

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1), st.floats(min_value=1, max_value=1000)
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_front_members_are_mutually_nondominated(self, raw):
        points = [ParetoPoint(score=s, cost=c) for s, c in raw]
        front = pareto_front(points)
        assert front, "the front of a non-empty set is non-empty"
        for p in front:
            assert not is_dominated(p, front)
        # Front is sorted by cost and scores are non-decreasing along it.
        costs = [p.cost for p in front]
        assert costs == sorted(costs)
        scores = [p.score for p in front]
        assert all(b >= a - 1e-12 for a, b in zip(scores, scores[1:]))

    def test_points_from_wrapper(self):
        wrapped = points_from([{"a": 1, "c": 5}], score=lambda d: d["a"], cost=lambda d: d["c"])
        assert wrapped[0].score == 1 and wrapped[0].cost == 5


class TestPreprocessor:
    def test_fit_and_apply(self, tiny_dataset):
        frames = tiny_dataset.session(1).frames
        pre = Preprocessor.fit(frames)
        out = pre(frames)
        assert abs(out.mean()) < 0.2
        # Applying to another session does not crash and keeps a similar scale.
        other = pre(tiny_dataset.session(3).frames)
        assert np.isfinite(other).all()


class TestBaselineAndPipeline:
    def test_manual_baseline_small_grid(self, prepared_data):
        points = train_manual_baseline(
            prepared_data["train"],
            prepared_data["test"],
            grid=MANUAL_GRID[:2],
            config=TrainConfig(epochs=2, batch_size=128),
            seed=0,
        )
        assert len(points) == 2
        assert points[0].params <= points[1].params
        for p in points:
            assert 0.0 <= p.bas <= 1.0
            assert p.memory_bytes_int8 == p.params

    def test_search_config_is_copied_not_mutated(self):
        """Regression: `run` used to write the flow's lambdas/cost into the
        caller's nested SearchConfig in place."""
        shared = SearchConfig()
        original_lambdas = shared.lambdas
        original_cost = shared.cost
        flow = OptimizationFlow(FlowConfig(lambdas=(3e-3,), nas_cost="macs", search=shared))
        derived = flow._search_config()
        assert derived is not shared
        assert derived.lambdas == (3e-3,) and derived.cost == "macs"
        # The caller's object is untouched and reusable across flows.
        assert shared.lambdas == original_lambdas
        assert shared.cost == original_cost

    def test_flow_config_replace_copies_nested_configs(self):
        """Regression: `dataclasses.replace` on a FlowConfig aliased the
        nested SearchConfig/QATConfig, so a mutation through one derived
        copy leaked into every other.  `FlowConfig.replace` re-creates the
        nested configs unless they are explicitly overridden."""
        base = FlowConfig()
        derived = base.replace(seed=1)
        assert derived.seed == 1
        assert derived.search is not base.search
        assert derived.qat is not base.qat
        derived.search.search_epochs = 999
        derived.qat.epochs = 999
        assert base.search.search_epochs == SearchConfig().search_epochs
        assert base.qat.epochs == QATConfig().epochs
        # An explicitly passed nested config is honoured as-is.
        shared = SearchConfig(search_epochs=3)
        assert FlowConfig().replace(search=shared).search is shared

    def test_full_pipeline_smoke(self, tiny_dataset):
        """End-to-end flow on a tiny budget: NAS -> QAT -> majority voting,
        plus the stage-4 engine deployment of the Table-I selection."""
        search_config = SearchConfig(
            warmup_epochs=0, search_epochs=1, finetune_epochs=1, batch_size=128
        )
        config = FlowConfig(
            lambdas=(1e-4,),
            search=search_config,
            qat=QATConfig(epochs=1, batch_size=128),
            max_quantized_architectures=1,
            seed=0,
            deploy_targets=("stm32", "maupiti"),
            deploy_frames=2,
        )
        flow = OptimizationFlow(config)
        result = flow.run(
            tiny_dataset, test_session_id=2, seed_channels=(8, 8), seed_hidden=8
        )
        # Regression (in vivo): the caller's SearchConfig keeps its defaults.
        assert search_config.lambdas == SearchConfig().lambdas
        assert search_config.cost == SearchConfig().cost
        # Stage 4 deployed Top / -5% / Mini on both requested targets.
        assert set(result.deployment_reports) == {"Top", "-5%", "Mini"}
        for report in result.deployment_reports.values():
            assert set(report.entries) == {"STM32", "MAUPITI"}
            assert report.entries["MAUPITI"].cycles > 0
        assert result.float_points, "NAS produced no architectures"
        assert result.quantized_points, "QAT produced no quantized points"
        assert result.flow_points, "flow produced no final points"
        seed_bas, seed_memory, seed_macs = result.seed_point
        assert 0.0 <= seed_bas <= 1.0 and seed_memory > 0 and seed_macs > 0
        # Quantized models are smaller than the FLOAT32 seed.
        assert all(p.memory_bytes < seed_memory for p in result.flow_points)
        # Selection helpers are consistent.
        top = result.select_top()
        mini = result.select_mini()
        minus5 = result.select_minus5()
        assert mini.memory_bytes <= minus5.memory_bytes <= top.memory_bytes or True
        assert top.bas_majority >= minus5.bas_majority - 0.05 - 1e-9
        assert result.pareto_memory() and result.pareto_macs()
