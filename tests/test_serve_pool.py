"""The multi-process serving pool: sharding, shared-memory transport,
parity with offline streams, crash semantics, drain, and metrics."""

import threading
import time
from http.client import HTTPConnection
from multiprocessing import shared_memory

import numpy as np
import pytest

import repro
from repro.engine import ModelBundle
from repro.serve import (
    PoolServeService,
    ServeClient,
    ServeConfig,
    ServeError,
    ServeService,
    UnknownSessionError,
    WorkerCrashedError,
    make_service,
    shard_of,
    start_server,
)


@pytest.fixture(scope="module")
def pool_engine(quantized_model):
    """One int-golden engine whose bundle the workers rebuild from."""
    return repro.compile(ModelBundle(quantized_model), target="int-golden")


@pytest.fixture(scope="module")
def pool_frames(prepared_data):
    return np.ascontiguousarray(prepared_data["test"].inputs, dtype=np.float64)


def _offline_stream(engine, frames, window):
    with engine.stream(window=window) as session:
        updates = [session.push(f) for f in frames]
    return {
        "raw": [u.raw for u in updates],
        "voted": [u.voted for u in updates],
    }


# --------------------------------------------------------------------- #
class TestShardOf:
    def test_deterministic_and_in_range(self):
        for workers in (1, 2, 3, 7):
            for sid in ("a", "deadbeef", "f" * 16, ""):
                s = shard_of(sid, workers)
                assert s == shard_of(sid, workers)
                assert 0 <= s < workers

    def test_spreads_sessions_across_workers(self):
        shards = {shard_of(f"session-{i:04x}", 4) for i in range(64)}
        assert shards == {0, 1, 2, 3}

    def test_single_worker_is_always_zero(self):
        assert all(shard_of(f"s{i}", 1) == 0 for i in range(16))


class TestMakeService:
    def test_workers_zero_is_plain_in_process_service(self):
        class E:
            def predict_batch(self, frames):  # pragma: no cover - never called
                raise AssertionError

        service = make_service(E(), ServeConfig())
        assert type(service) is ServeService
        assert "workers" not in service.config.as_json()

    def test_pool_requires_a_real_engine(self):
        class E:
            def predict_batch(self, frames):  # pragma: no cover - never called
                raise AssertionError

        with pytest.raises(ValueError, match="ModelBundle"):
            make_service(E(), ServeConfig(workers=2))

    def test_workers_selects_pool_service(self, pool_engine):
        service = make_service(pool_engine, ServeConfig(workers=2))
        assert isinstance(service, PoolServeService)
        assert service.pool.workers == 2
        assert service.config.as_json()["workers"] == 2


# --------------------------------------------------------------------- #
class TestPoolParityWithOfflineStream:
    """ISSUE acceptance: pool-served outputs are bit-identical to offline
    ``Engine.stream`` replays for EVERY worker count."""

    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_parity_across_worker_counts(self, workers, pool_engine, pool_frames):
        window, n = 3, 10
        streams = {
            "a": pool_frames[:n],
            "b": pool_frames[n : 2 * n],
            "c": pool_frames[2 * n : 3 * n],
        }
        offline = {
            key: _offline_stream(pool_engine, frames, window)
            for key, frames in streams.items()
        }

        service = PoolServeService(
            pool_engine, ServeConfig(workers=workers, max_batch=8, max_wait_ms=1.0)
        )
        service.start()
        try:
            sids = {key: service.open_session(window=window)["session_id"] for key in streams}
            # Interleave chunked pushes round-robin across the sessions.
            pending = []
            cursors = {key: 0 for key in streams}
            chunk = 2
            while any(cursors[k] < len(streams[k]) for k in streams):
                for key, frames in streams.items():
                    i = cursors[key]
                    if i >= len(frames):
                        continue
                    part = frames[i : i + chunk]
                    cursors[key] = i + len(part)
                    pending.append((key, service.submit_frames(sids[key], part)))
            served = {key: [] for key in streams}
            for key, p in pending:
                for r in p.future.result(timeout=60):
                    served[key].append((r.seq, r.raw, r.voted))
        finally:
            service.stop()
        for key in streams:
            ordered = sorted(served[key])
            assert [s for s, _, _ in ordered] == list(range(len(streams[key])))
            assert [r for _, r, _ in ordered] == offline[key]["raw"], f"{key} raw"
            assert [v for _, _, v in ordered] == offline[key]["voted"], f"{key} voted"

    def test_sessions_pin_to_their_shard_worker(self, pool_engine):
        service = PoolServeService(pool_engine, ServeConfig(workers=2, max_wait_ms=0.5))
        service.start()
        try:
            for _ in range(6):
                opened = service.open_session(window=3)
                sid = opened["session_id"]
                assert opened["worker"] == service.pool.shard_of(sid)
                assert sid in service.pool.handles[opened["worker"]].sessions
        finally:
            service.stop()


# --------------------------------------------------------------------- #
class TestPoolOverHttp:
    """The full HTTP front-end with workers=2 behind it."""

    @pytest.fixture(scope="class")
    def running(self, pool_engine):
        with start_server(pool_engine, workers=2, max_batch=8, max_wait_ms=1.0) as server:
            yield server

    def test_healthz_reports_pool(self, running):
        with ServeClient(running.host, running.port) as client:
            health = client.healthz()
        assert health["workers"] == 2
        assert 0 <= health["workers_up"] <= 2

    def test_lifecycle_voted_outputs_and_frames_seen(self, running, pool_engine, pool_frames):
        frames = pool_frames[:8]
        offline = _offline_stream(pool_engine, frames, window=5)
        with ServeClient(running.host, running.port) as client:
            opened = client.open_session(window=5)
            sid = opened["session_id"]
            assert opened["worker"] == shard_of(sid, 2)
            voted, raw = [], []
            for i in range(0, len(frames), 2):
                out = client.push(sid, frames[i : i + 2])
                raw.extend(r["raw"] for r in out["results"])
                voted.extend(r["voted"] for r in out["results"])
            closed = client.close_session(sid)
        assert raw == offline["raw"]
        assert voted == offline["voted"]
        assert closed["frames_seen"] == len(frames)

    def test_metrics_carry_per_worker_labels_and_pool_gauges(self, running, pool_frames):
        with ServeClient(running.host, running.port) as client:
            sid = client.open_session(window=3)["session_id"]
            client.push(sid, pool_frames[:2])
            text = client.metrics()
            client.close_session(sid)
        for series in (
            "repro_serve_pool_workers 2",
            'repro_serve_pool_worker_up{worker="0"}',
            'repro_serve_pool_worker_up{worker="1"}',
            'repro_serve_pool_shard_sessions{worker="0"}',
            'repro_serve_pool_inflight_frames{worker="1"}',
            "repro_serve_pool_worker_restarts_total 0",
            'repro_serve_pool_worker_frames_total{worker="',
        ):
            assert series in text, f"missing {series!r} in:\n{text}"
        assert 'ring="requests"' in text and 'ring="results"' in text

    def test_frames_total_counts_served_frames(self, running, pool_frames):
        with ServeClient(running.host, running.port) as client:
            before = running.service.metrics.counter("frames_total")
            sid = client.open_session(window=3)["session_id"]
            client.push(sid, pool_frames[:4])
            client.close_session(sid)
            after = running.service.metrics.counter("frames_total")
        assert after - before == 4


# --------------------------------------------------------------------- #
class TestWorkerCrash:
    def _service(self, pool_engine, **knobs):
        service = PoolServeService(pool_engine, ServeConfig(workers=1, **knobs))
        service.start()
        return service

    def test_inflight_requests_fail_with_503_retry_after(self, pool_engine, pool_frames):
        # A huge batching window parks the frames inside the worker's
        # batcher, so the kill deterministically lands mid-request.
        service = self._service(
            pool_engine, max_batch=64, max_wait_ms=5000.0, worker_start_timeout_s=120.0
        )
        try:
            sid = service.open_session(window=3)["session_id"]
            pending = service.submit_frames(sid, pool_frames[:2])
            time.sleep(0.3)  # let the worker pull the doorbell
            service.pool.handles[0].kill()
            with pytest.raises(WorkerCrashedError) as excinfo:
                pending.future.result(timeout=30)
            assert excinfo.value.status == 503
            assert excinfo.value.headers == {"Retry-After": "1"}
            # The shard's sessions are purged: voter state died with the worker.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and sid in service.sessions.ids():
                time.sleep(0.01)
            with pytest.raises(UnknownSessionError):
                service.submit_frames(sid, pool_frames[:1])
            assert service.metrics.counter("pool_worker_crashes_total") == 1
            assert 'repro_serve_pool_worker_up{worker="0"} 0' in service.metrics.render()
        finally:
            service.stop()

    def test_crashed_shard_respawns_for_the_next_session(self, pool_engine, pool_frames):
        service = self._service(pool_engine, max_batch=8, max_wait_ms=1.0)
        try:
            sid = service.open_session(window=3)["session_id"]
            service.submit_frames(sid, pool_frames[:2]).future.result(timeout=60)
            service.pool.handles[0].kill()
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and service.pool.handles[0].state != "dead":
                time.sleep(0.01)
            assert service.pool.handles[0].state == "dead"
            # The next open hashing onto the shard respawns the worker.
            sid2 = service.open_session(window=3)["session_id"]
            out = service.submit_frames(sid2, pool_frames[:2]).future.result(timeout=60)
            assert len(out) == 2
            assert service.pool.restarts_total() == 1
            assert "repro_serve_pool_worker_restarts_total 1" in service.metrics.render()
        finally:
            service.stop()

    def test_http_client_sees_503_with_retry_after_header(self, pool_engine, pool_frames):
        with start_server(
            pool_engine, workers=1, max_batch=64, max_wait_ms=5000.0
        ) as server:
            client = ServeClient(server.host, server.port)
            sid = client.open_session(window=3)["session_id"]
            client.close()

            result = {}

            def blocked_push():
                conn = HTTPConnection(server.host, server.port, timeout=60)
                import json

                body = json.dumps({"frames": pool_frames[:2].tolist()}).encode()
                conn.request(
                    "POST",
                    f"/v1/sessions/{sid}/frames",
                    body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                result["status"] = response.status
                result["retry_after"] = response.getheader("Retry-After")
                result["body"] = response.read()
                conn.close()

            t = threading.Thread(target=blocked_push)
            t.start()
            time.sleep(0.5)  # request parked in the worker's batching window
            server.service.pool.handles[0].kill()
            t.join(timeout=30)
            assert not t.is_alive(), "crashed worker stalled the request"
            assert result["status"] == 503
            assert result["retry_after"] == "1"
            assert b"worker_crashed" in result["body"]


# --------------------------------------------------------------------- #
class TestAbandonedRequests:
    """The asyncio front-end cancels the wrapped future on request timeout
    or client disconnect; the late worker reply must be swallowed, not kill
    the pump thread (which would wedge the whole shard)."""

    def test_late_reply_after_cancelled_future_keeps_shard_alive(
        self, pool_engine, pool_frames
    ):
        # A 400ms batching window parks the frames in the worker, giving the
        # cancellation a deterministic head start over the reply.
        service = PoolServeService(
            pool_engine, ServeConfig(workers=1, max_batch=8, max_wait_ms=400.0)
        )
        service.start()
        try:
            handle = service.pool.handles[0]
            sid = service.open_session(window=3)["session_id"]
            pending = service.submit_frames(sid, pool_frames[:2])
            assert pending.future.cancel(), "reply won the race; retune the window"
            # The late reply must decrement inflight and release the ring...
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and handle.inflight:
                time.sleep(0.01)
            assert handle.inflight == 0
            session = service.sessions.get(sid)
            with session.lock:
                assert session.pending == 0
            # ...and the pump must survive to serve the next request.
            out = service.submit_frames(sid, pool_frames[2:4]).future.result(
                timeout=30
            )
            assert len(out) == 2
            assert handle._pump_thread is not None and handle._pump_thread.is_alive()
        finally:
            service.stop()

    def test_many_cancelled_requests_do_not_wedge_the_worker(
        self, pool_engine, pool_frames
    ):
        service = PoolServeService(
            pool_engine, ServeConfig(workers=1, max_batch=4, max_wait_ms=100.0)
        )
        service.start()
        try:
            sid = service.open_session(window=3)["session_id"]
            for _ in range(8):
                service.submit_frames(sid, pool_frames[:1]).future.cancel()
            out = service.submit_frames(sid, pool_frames[:1]).future.result(timeout=30)
            assert len(out) == 1
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and service.pool.handles[0].inflight:
                time.sleep(0.01)
            assert service.pool.handles[0].inflight == 0
        finally:
            service.stop()


# --------------------------------------------------------------------- #
class TestDrainAndShutdown:
    def test_graceful_drain_flushes_every_worker_queue(self, pool_engine, pool_frames):
        # Frames park in each worker's batching window; stop(drain=True)
        # must flush them all before the workers exit.
        service = PoolServeService(
            pool_engine, ServeConfig(workers=2, max_batch=64, max_wait_ms=5000.0)
        )
        service.start()
        pending = []
        sids = [service.open_session(window=3)["session_id"] for _ in range(4)]
        for sid in sids:
            pending.append(service.submit_frames(sid, pool_frames[:2]))
        time.sleep(0.3)
        service.stop(drain=True)
        for p in pending:
            results = p.future.result(timeout=5)  # already resolved by drain
            assert len(results) == 2
        assert all(h.state == "stopped" for h in service.pool.handles)

    def test_no_leaked_shared_memory_after_stop(self, pool_engine, pool_frames):
        service = PoolServeService(pool_engine, ServeConfig(workers=2, max_wait_ms=0.5))
        service.start()
        sids = [service.open_session(window=3)["session_id"] for _ in range(4)]
        for sid in sids:
            service.submit_frames(sid, pool_frames[:1]).future.result(timeout=60)
        names = service.pool.ring_names()
        assert names, "expected live rings before stop"
        service.stop(drain=True)
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_submits_after_stop_are_rejected(self, pool_engine, pool_frames):
        service = PoolServeService(pool_engine, ServeConfig(workers=1, max_wait_ms=0.5))
        service.start()
        sid = service.open_session(window=3)["session_id"]
        service.stop(drain=True)
        with pytest.raises(ServeError):
            service.submit_frames(sid, pool_frames[:1])


# --------------------------------------------------------------------- #
class TestPoolTtlEviction:
    def test_idle_session_is_retired_on_its_worker(self, pool_engine, pool_frames):
        now = [0.0]
        service = PoolServeService(
            pool_engine,
            ServeConfig(workers=1, session_ttl_s=10.0, max_wait_ms=0.5),
            clock=lambda: now[0],
        )
        service.start()
        try:
            sid = service.open_session(window=3)["session_id"]
            service.submit_frames(sid, pool_frames[:1]).future.result(timeout=60)
            handle = service.pool.handles[0]
            assert handle.rpc("stats")["sessions"] == 1
            now[0] = 100.0
            assert service.evict_idle() == 1
            with pytest.raises(UnknownSessionError):
                service.submit_frames(sid, pool_frames[:1])
            # The fire-and-forget retirement reaches the worker too.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if handle.rpc("stats")["sessions"] == 0:
                    break
                time.sleep(0.01)
            assert handle.rpc("stats")["sessions"] == 0
            assert sid not in handle.sessions
        finally:
            service.stop()


# --------------------------------------------------------------------- #
class TestChaosRecovery:
    """ISSUE acceptance: a ChaosConfig-killed worker mid-stream is invisible
    to a retrying SessionStream client — the stream completes and its
    outputs are bit-identical to a fault-free offline replay."""

    def test_chaos_kill_is_invisible_to_session_stream(
        self, pool_engine, pool_frames
    ):
        from repro.serve import ChaosConfig, RetryPolicy, SessionStream

        window, chunk = 3, 4
        frames = pool_frames[:24]
        offline = _offline_stream(pool_engine, frames, window)
        config = ServeConfig(
            workers=2, max_batch=8, max_wait_ms=1.0,
            chaos=ChaosConfig(kill_after_frames=10, max_kills=1),
        )
        with start_server(pool_engine, config=config) as server:
            with ServeClient(
                server.host, server.port, timeout=60,
                retry=RetryPolicy(max_attempts=6, backoff_base_s=0.01, seed=0),
            ) as client:
                raw, voted = [], []
                with SessionStream(
                    client, window=window, recovery_backoff_s=0.01
                ) as stream:
                    for i in range(0, len(frames), chunk):
                        out = stream.push(frames[i : i + chunk])
                        raw.extend(r["raw"] for r in out)
                        voted.extend(r["voted"] for r in out)
            stats = server.service.pool_stats()
        assert stats["chaos_kills"] == 1
        assert stats["crashes_total"] >= 1
        assert stream.recoveries >= 1  # the crash was absorbed, not surfaced
        assert raw == offline["raw"]
        assert voted == offline["voted"]

    def test_chaos_reject_simulates_ring_backpressure(
        self, pool_engine, pool_frames
    ):
        from repro.serve import ChaosConfig, RetryPolicy

        config = ServeConfig(
            workers=1, max_batch=8, max_wait_ms=1.0,
            chaos=ChaosConfig(reject_every=2),
        )
        with start_server(pool_engine, config=config) as server:
            with ServeClient(
                server.host, server.port, timeout=60,
                retry=RetryPolicy(max_attempts=5, backoff_base_s=0.01, seed=0),
            ) as client:
                sid = client.open_session(window=3)["session_id"]
                # Every other submit 429s; the retry policy absorbs them all.
                for i in range(4):
                    out = client.push(sid, pool_frames[i : i + 1])
                    assert len(out["results"]) == 1
                client.close_session(sid)

    def test_chaos_off_keeps_pool_stats_clean(self, pool_engine, pool_frames):
        service = PoolServeService(
            pool_engine, ServeConfig(workers=1, max_batch=8, max_wait_ms=1.0)
        )
        service.start()
        try:
            sid = service.open_session(window=3)["session_id"]
            service.submit_frames(sid, pool_frames[:2]).future.result(timeout=60)
            stats = service.pool_stats()
            assert stats["chaos_kills"] == 0
            assert stats["crashes_total"] == 0
        finally:
            service.stop()
