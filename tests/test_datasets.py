"""Synthetic LINAIGE dataset and transform behaviour."""

import numpy as np
import pytest

from repro.datasets import (
    FRAME_SIZE,
    NUM_CLASSES,
    MinMaxNormalizer,
    Standardizer,
    ambient_removal,
    default_class_weights,
    generate_linaige,
    stack_frames,
)
from repro.datasets.linaige import LinaigeDataset, Session


class TestGenerator:
    def test_sessions_and_shapes(self, tiny_dataset):
        assert len(tiny_dataset.sessions) == 5
        for session in tiny_dataset.sessions:
            assert session.frames.shape[1:] == (1, FRAME_SIZE, FRAME_SIZE)
            assert session.frames.dtype == np.float32
            assert session.labels.min() >= 0
            assert session.labels.max() <= NUM_CLASSES - 1

    def test_deterministic_given_seed(self):
        a = generate_linaige(seed=3, samples_per_session={i: 50 for i in range(1, 6)})
        b = generate_linaige(seed=3, samples_per_session={i: 50 for i in range(1, 6)})
        np.testing.assert_array_equal(a.session(1).frames, b.session(1).frames)
        np.testing.assert_array_equal(a.session(4).labels, b.session(4).labels)

    def test_different_seeds_differ(self):
        a = generate_linaige(seed=1, samples_per_session={i: 50 for i in range(1, 6)})
        b = generate_linaige(seed=2, samples_per_session={i: 50 for i in range(1, 6)})
        assert not np.array_equal(a.session(1).frames, b.session(1).frames)

    def test_default_size_matches_paper(self):
        # Do not generate the full dataset (slow); check the configured sizes.
        from repro.datasets.linaige import _SESSION_PROFILES

        assert sum(int(p["samples"]) for p in _SESSION_PROFILES.values()) == 25110

    def test_class_imbalance(self, tiny_dataset):
        counts = tiny_dataset.class_counts()
        assert counts[0] > counts[3]  # empty frames dominate, 3 people are rare
        assert counts.sum() == tiny_dataset.num_samples

    def test_people_increase_frame_energy(self, tiny_dataset):
        session = tiny_dataset.session(1)
        empty = session.frames[session.labels == 0]
        crowded = session.frames[session.labels >= 2]
        assert crowded.mean() > empty.mean()

    def test_temperature_range_realistic(self, tiny_dataset):
        frames = tiny_dataset.session(1).frames
        assert 10.0 < frames.min() < frames.max() < 45.0

    def test_temporal_correlation(self, tiny_dataset):
        """Labels change rarely between consecutive frames (people move slowly)."""
        labels = tiny_dataset.session(1).labels
        changes = (np.diff(labels) != 0).mean()
        assert changes < 0.25

    def test_scale_and_override(self):
        ds = generate_linaige(seed=0, scale=0.01)
        assert 0 < ds.num_samples < 1000
        with pytest.raises(ValueError):
            generate_linaige(seed=0, scale=0.0)

    def test_cross_validation_folds(self, tiny_dataset):
        folds = tiny_dataset.cross_validation_folds()
        assert len(folds) == 4  # sessions 2..5 rotate as test sets
        held_out_ids = {fold[1].session_id for fold in folds}
        assert held_out_ids == {2, 3, 4, 5}
        for train, test in folds:
            # Session 1 is always in the training set.
            assert len(train) == tiny_dataset.num_samples - len(test)

    def test_session_lookup_and_errors(self, tiny_dataset):
        assert tiny_dataset.session(3).session_id == 3
        with pytest.raises(KeyError):
            tiny_dataset.session(99)

    def test_duplicate_session_ids_rejected(self):
        s = Session(1, np.zeros((2, 1, 8, 8), dtype=np.float32), np.zeros(2, dtype=np.int64))
        with pytest.raises(ValueError):
            LinaigeDataset(sessions=[s, s])

    def test_default_class_weights(self, tiny_dataset):
        weights = default_class_weights(tiny_dataset)
        assert weights.shape == (NUM_CLASSES,)
        assert weights[3] > weights[0]


class TestTransforms:
    def test_standardizer(self, tiny_dataset):
        frames = tiny_dataset.session(1).frames
        std = Standardizer.fit(frames)
        out = std(frames)
        assert abs(out.mean()) < 1e-9
        assert out.std() == pytest.approx(1.0, abs=1e-6)
        np.testing.assert_allclose(std.inverse(out), frames, atol=1e-5)

    def test_standardizer_constant_input(self):
        std = Standardizer.fit(np.ones((4, 1, 8, 8)))
        assert std.std == 1.0

    def test_degenerate_standardizer_returns_zeros(self):
        # A stuck sensor can produce std == 0 (or a hand-built transform can
        # carry a non-finite std); the output must be zeros, never NaN/Inf.
        frames = 21.5 * np.ones((3, 1, 8, 8))
        for bad in (0.0, 1e-300, np.nan, np.inf):
            out = Standardizer(mean=21.5, std=bad)(frames)
            assert np.array_equal(out, np.zeros_like(frames))
            assert np.isfinite(out).all()

    def test_degenerate_minmax_returns_zeros(self):
        frames = 21.5 * np.ones((3, 1, 8, 8))
        fitted = MinMaxNormalizer.fit(frames)  # zero-span range
        for norm in (
            fitted,
            MinMaxNormalizer(minimum=2.0, maximum=2.0),
            MinMaxNormalizer(minimum=0.0, maximum=np.inf),
        ):
            out = norm(frames)
            assert np.array_equal(out, np.zeros_like(frames))
            assert np.isfinite(out).all()

    def test_minmax(self, tiny_dataset):
        frames = tiny_dataset.session(2).frames
        norm = MinMaxNormalizer.fit(frames)
        out = norm(frames)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_ambient_removal_zeroes_median(self, tiny_dataset):
        frames = tiny_dataset.session(1).frames[:10]
        removed = ambient_removal(frames)
        med = np.median(removed, axis=(-2, -1))
        np.testing.assert_allclose(med, 0.0, atol=1e-9)

    def test_ambient_removal_is_shift_invariant(self, tiny_dataset):
        frames = tiny_dataset.session(1).frames[:5]
        shifted = frames + 3.0
        np.testing.assert_allclose(
            ambient_removal(frames), ambient_removal(shifted), atol=1e-5
        )

    def test_stack_frames(self):
        frames = np.arange(10, dtype=np.float64).reshape(10, 1, 1, 1) * np.ones((10, 1, 8, 8))
        stacked, valid = stack_frames(frames, window=3)
        assert stacked.shape == (8, 3, 8, 8)
        np.testing.assert_array_equal(valid, np.arange(2, 10))
        # Channel 0 of row i holds frame i-2, channel 2 holds frame i.
        assert stacked[0, 0, 0, 0] == 0 and stacked[0, 2, 0, 0] == 2

    def test_stack_frames_validation(self):
        with pytest.raises(ValueError):
            stack_frames(np.zeros((2, 1, 8, 8)), window=5)
        with pytest.raises(ValueError):
            stack_frames(np.zeros((5, 2, 8, 8)), window=2)
