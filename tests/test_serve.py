"""The serving subsystem: metrics, batcher, sessions, HTTP/WSGI front-ends,
and the acceptance-critical parity of served outputs vs offline streams."""

import json
import threading
import time
from io import BytesIO

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.engine import BatchPrediction, ModelBundle, available_targets, get_target
from repro.postproc import majority_filter
from repro.serve import (
    MicroBatcher,
    OverloadedError,
    ServeClient,
    ServeConfig,
    ServeMetrics,
    ServeService,
    SessionClosedError,
    SessionManager,
    ShuttingDownError,
    UnknownSessionError,
    make_wsgi_app,
    quantile,
    start_server,
)


class FakeEngine:
    """Deterministic engine: prediction = frame[0,0,0] mod num_classes."""

    target = "fake"
    majority_window = 5
    num_classes = 4

    def __init__(self, delay_s: float = 0.0):
        self.delay_s = delay_s
        self.batch_sizes = []

    def predict_batch(self, frames):
        if self.delay_s:
            time.sleep(self.delay_s)
        frames = np.asarray(frames)
        self.batch_sizes.append(frames.shape[0])
        preds = frames[:, 0, 0, 0].astype(np.int64) % self.num_classes
        return BatchPrediction(predictions=preds)


def encode_frames(values):
    """Class sequence -> (N, 1, 2, 2) frames the FakeEngine decodes back."""
    values = np.asarray(values, dtype=np.float64)
    return np.tile(values[:, None, None, None], (1, 1, 2, 2))


class BlockingRunner:
    """predict_batch stand-in that parks inside the call until released."""

    def __init__(self):
        self.entered = threading.Event()
        self.release = threading.Event()
        self.batches = []
        self._first_done = False

    def __call__(self, frames):
        self.batches.append(frames.shape[0])
        if not self._first_done:
            self._first_done = True
            self.entered.set()
            assert self.release.wait(timeout=10)
        preds = np.zeros(frames.shape[0], dtype=np.int64)
        return BatchPrediction(predictions=preds)


# --------------------------------------------------------------------- #
class TestQuantile:
    def test_nearest_rank(self):
        sample = [1.0, 2.0, 3.0, 4.0]
        assert quantile(sample, 0.5) == 2.0
        assert quantile(sample, 0.99) == 4.0
        assert quantile(sample, 0.0) == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)


class TestServeMetrics:
    def test_counters_and_requests(self):
        m = ServeMetrics()
        m.inc("frames_total", 3)
        m.observe_request("frames", 200)
        m.observe_request("frames", 200)
        m.observe_request("frames", 429)
        assert m.counter("frames_total") == 3
        text = m.render()
        assert 'repro_serve_requests_total{endpoint="frames",status="200"} 2' in text
        assert 'repro_serve_requests_total{endpoint="frames",status="429"} 1' in text

    def test_batch_histogram_buckets_are_cumulative(self):
        m = ServeMetrics(batch_buckets=(1, 2, 4))
        for size in (1, 1, 2, 3, 9):
            m.observe_batch(size)
        hist = m.batch_histogram()
        assert hist["1"] == 2
        assert hist["2"] == 3
        assert hist["4"] == 4
        assert hist["+Inf"] == 5
        assert m.mean_batch_size() == pytest.approx(16 / 5)

    def test_latency_quantiles_and_gauges(self):
        m = ServeMetrics()
        for v in (0.001, 0.002, 0.100):
            m.observe_latency(v)
        q = m.latency_quantiles((0.5, 0.99))
        assert q[0.5] == pytest.approx(0.002)
        assert q[0.99] == pytest.approx(0.100)
        m.register_gauge("queue_depth", lambda: 7)
        assert "repro_serve_queue_depth 7" in m.render()
        assert 'quantile="0.5"' in m.render()


# --------------------------------------------------------------------- #
class TestSessionManager:
    def test_open_get_close(self):
        mgr = SessionManager(ttl_s=100, default_window=5)
        s = mgr.open(window=3)
        assert mgr.get(s.id) is s
        assert len(mgr) == 1
        closed = mgr.close(s.id)
        assert closed.closed
        assert len(mgr) == 0
        with pytest.raises(UnknownSessionError):
            mgr.get(s.id)
        with pytest.raises(UnknownSessionError):
            mgr.close(s.id)

    def test_ttl_eviction_uses_monotonic_clock(self):
        now = [0.0]
        mgr = SessionManager(ttl_s=10.0, clock=lambda: now[0])
        stale = mgr.open()
        now[0] = 8.0
        fresh = mgr.open()
        now[0] = 15.0
        evicted = mgr.evict_idle()
        assert [s.id for s in evicted] == [stale.id]
        assert stale.closed
        assert mgr.get(fresh.id) is fresh

    def test_get_evicts_lazily(self):
        now = [0.0]
        mgr = SessionManager(ttl_s=5.0, clock=lambda: now[0])
        s = mgr.open()
        now[0] = 100.0
        with pytest.raises(UnknownSessionError):
            mgr.get(s.id)
        assert s.closed and len(mgr) == 0

    def test_activity_refreshes_ttl(self):
        now = [0.0]
        mgr = SessionManager(ttl_s=5.0, clock=lambda: now[0])
        s = mgr.open()
        now[0] = 4.0
        s.touch(now[0])
        now[0] = 8.0
        assert mgr.evict_idle() == []
        assert mgr.get(s.id) is s

    def test_close_all(self):
        mgr = SessionManager(ttl_s=100)
        sessions = [mgr.open() for _ in range(3)]
        mgr.close_all()
        assert len(mgr) == 0
        assert all(s.closed for s in sessions)


# --------------------------------------------------------------------- #
class TestMicroBatcher:
    def _drain_stop(self, batcher):
        batcher.stop(drain=True)

    def test_coalesces_across_sessions_up_to_max_batch(self):
        runner = BlockingRunner()
        batcher = MicroBatcher(runner, max_batch=16, max_wait_ms=50.0)
        mgr = SessionManager(ttl_s=100)
        a, b = mgr.open(), mgr.open()
        batcher.start()
        try:
            first = batcher.submit(a, encode_frames([0]))
            assert runner.entered.wait(timeout=10)
            # While the first batch is parked in the runner, five more frames
            # arrive from both sessions; they must fuse into ONE next batch.
            futures = [
                batcher.submit(a, encode_frames([0, 0])),
                batcher.submit(b, encode_frames([0, 0, 0])),
            ]
            runner.release.set()
            first.result(timeout=10)
            for f in futures:
                f.result(timeout=10)
            assert runner.batches == [1, 5]
        finally:
            self._drain_stop(batcher)

    def test_max_batch_splits_backlog(self):
        runner = BlockingRunner()
        batcher = MicroBatcher(runner, max_batch=4, max_wait_ms=0.0)
        mgr = SessionManager(ttl_s=100)
        a = mgr.open()
        batcher.start()
        try:
            first = batcher.submit(a, encode_frames([0]))
            assert runner.entered.wait(timeout=10)
            backlog = batcher.submit(a, encode_frames([0] * 9))
            runner.release.set()
            first.result(timeout=10)
            backlog.result(timeout=10)
            assert runner.batches == [1, 4, 4, 1]
        finally:
            self._drain_stop(batcher)

    def test_max_wait_dispatches_partial_batch(self):
        sizes = []

        def runner(frames):
            sizes.append(frames.shape[0])
            return BatchPrediction(predictions=np.zeros(frames.shape[0], dtype=np.int64))

        batcher = MicroBatcher(runner, max_batch=64, max_wait_ms=10.0)
        mgr = SessionManager(ttl_s=100)
        batcher.start()
        try:
            start = time.perf_counter()
            future = batcher.submit(mgr.open(), encode_frames([1]))
            future.result(timeout=10)
            elapsed = time.perf_counter() - start
            assert sizes == [1]
            assert elapsed < 5.0  # did not wait for a full batch that never comes
        finally:
            self._drain_stop(batcher)

    def test_global_queue_backpressure(self):
        runner = BlockingRunner()
        batcher = MicroBatcher(runner, max_batch=1, max_wait_ms=0.0, max_queue=2)
        mgr = SessionManager(ttl_s=100)
        a = mgr.open()
        batcher.start()
        try:
            first = batcher.submit(a, encode_frames([0]))
            assert runner.entered.wait(timeout=10)  # queue now empty again
            batcher.submit(a, encode_frames([0, 0]))  # fills the bound exactly
            with pytest.raises(OverloadedError):
                batcher.submit(a, encode_frames([0]))
            runner.release.set()
            first.result(timeout=10)
        finally:
            self._drain_stop(batcher)

    def test_per_session_backpressure_leaves_other_sessions_alone(self):
        runner = BlockingRunner()
        batcher = MicroBatcher(
            runner, max_batch=1, max_wait_ms=0.0, max_queue=100, max_session_queue=2
        )
        mgr = SessionManager(ttl_s=100)
        a, b = mgr.open(), mgr.open()
        batcher.start()
        try:
            # The per-session bound counts queued AND in-flight frames.
            first = batcher.submit(a, encode_frames([0]))
            assert runner.entered.wait(timeout=10)
            batcher.submit(a, encode_frames([0]))  # pending now == 2 == bound
            with pytest.raises(OverloadedError):
                batcher.submit(a, encode_frames([0]))
            ok = batcher.submit(b, encode_frames([0]))  # other session unaffected
            runner.release.set()
            first.result(timeout=10)
            ok.result(timeout=10)
        finally:
            self._drain_stop(batcher)

    def test_submit_to_closed_session_rejected(self):
        batcher = MicroBatcher(
            lambda frames: BatchPrediction(
                predictions=np.zeros(frames.shape[0], dtype=np.int64)
            ),
            max_batch=4,
        )
        mgr = SessionManager(ttl_s=100)
        s = mgr.open()
        mgr.close(s.id)
        batcher.start()
        try:
            with pytest.raises(SessionClosedError):
                batcher.submit(s, encode_frames([0]))
        finally:
            self._drain_stop(batcher)

    def test_session_closed_while_queued_fails_future(self):
        runner = BlockingRunner()
        batcher = MicroBatcher(runner, max_batch=1, max_wait_ms=0.0)
        mgr = SessionManager(ttl_s=100)
        a, doomed = mgr.open(), mgr.open()
        batcher.start()
        try:
            first = batcher.submit(a, encode_frames([0]))
            assert runner.entered.wait(timeout=10)
            queued = batcher.submit(doomed, encode_frames([1]))
            mgr.close(doomed.id)  # evicted mid-stream, frame still queued
            runner.release.set()
            first.result(timeout=10)
            with pytest.raises(SessionClosedError):
                queued.result(timeout=10)
        finally:
            self._drain_stop(batcher)

    def test_stop_drains_queue(self):
        runner = BlockingRunner()
        batcher = MicroBatcher(runner, max_batch=1, max_wait_ms=0.0)
        mgr = SessionManager(ttl_s=100)
        a = mgr.open()
        batcher.start()
        first = batcher.submit(a, encode_frames([0]))
        assert runner.entered.wait(timeout=10)
        queued = batcher.submit(a, encode_frames([0, 0, 0]))
        runner.release.set()
        batcher.stop(drain=True)  # must finish the queued frames first
        assert first.result(timeout=1) is not None
        assert len(queued.result(timeout=1)) == 3
        with pytest.raises(ShuttingDownError):
            batcher.submit(a, encode_frames([0]))

    def test_runner_exception_propagates_to_request(self):
        def runner(frames):
            raise RuntimeError("backend exploded")

        batcher = MicroBatcher(runner, max_batch=4)
        mgr = SessionManager(ttl_s=100)
        batcher.start()
        try:
            future = batcher.submit(mgr.open(), encode_frames([0]))
            with pytest.raises(RuntimeError, match="backend exploded"):
                future.result(timeout=10)
        finally:
            self._drain_stop(batcher)

    def test_per_session_order_is_preserved(self):
        engine = FakeEngine()
        batcher = MicroBatcher(engine.predict_batch, max_batch=8, max_wait_ms=1.0)
        mgr = SessionManager(ttl_s=100)
        a, b = mgr.open(window=1), mgr.open(window=1)
        batcher.start()
        try:
            futures = []
            for chunk in ([0, 1], [2], [3, 0, 1]):
                futures.append((a, batcher.submit(a, encode_frames(chunk))))
                futures.append((b, batcher.submit(b, encode_frames(chunk))))
            seen = {a.id: [], b.id: []}
            for session, future in futures:
                for r in future.result(timeout=10):
                    seen[session.id].append((r.seq, r.raw))
            expected = list(enumerate([0, 1, 2, 3, 0, 1]))
            assert seen[a.id] == expected
            assert seen[b.id] == expected
        finally:
            self._drain_stop(batcher)


# --------------------------------------------------------------------- #
def _serve_session_outputs(service, streams, chunk=2):
    """Push per-session streams through a started service, interleaving
    chunks round-robin WITHOUT waiting between submissions (so the batcher
    is free to coalesce across sessions); returns voted outputs per key."""
    sids = {key: service.open_session(window=window)["session_id"]
            for key, (window, _values) in streams.items()}
    cursors = {key: 0 for key in streams}
    pending = []
    while any(cursors[k] < len(streams[k][1]) for k in streams):
        for key in streams:
            window, values = streams[key]
            i = cursors[key]
            if i >= len(values):
                continue
            part = values[i : i + chunk]
            cursors[key] = i + len(part)
            pending.append((key, service.submit_frames(sids[key], part)))
    outputs = {key: {"raw": [], "voted": []} for key in streams}
    for key, p in pending:
        for r in p.future.result(timeout=30):
            outputs[key]["raw"].append((r.seq, r.raw))
            outputs[key]["voted"].append((r.seq, r.voted))
    for key in outputs:
        outputs[key]["raw"] = [v for _, v in sorted(outputs[key]["raw"])]
        outputs[key]["voted"] = [v for _, v in sorted(outputs[key]["voted"])]
    return outputs


class TestServedMatchesOfflineStream:
    """ISSUE acceptance: served per-session predictions are bit-identical to
    offline ``Engine.stream`` replays for EVERY registered target."""

    @pytest.fixture(scope="class")
    def target_frames(self, prepared_data):
        return prepared_data["test"].inputs

    def _engine_for(self, target, trained_small_model, quantized_model):
        bundle = (
            trained_small_model
            if target == "numpy-float"
            else ModelBundle(quantized_model)
        )
        return repro.compile(bundle, target=target)

    @pytest.mark.parametrize("target", sorted(["numpy-float", "int-golden", "stm32", "maupiti", "ibex"]))
    def test_parity_per_target(
        self, target, trained_small_model, quantized_model, target_frames
    ):
        assert target in available_targets()
        # Simulated targets are ~100ms/frame: keep their streams short.
        n = 5 if get_target(target).supports_sim_mode else 24
        window = 3
        engine = self._engine_for(target, trained_small_model, quantized_model)
        streams = {
            "a": (window, target_frames[:n]),
            "b": (window, target_frames[n : 2 * n]),
        }

        # Offline reference: one independent Engine.stream replay per session.
        offline = {}
        for key, (w, frames) in streams.items():
            with engine.stream(window=w) as session:
                for frame in frames:
                    session.push(frame)
                summary = session.summary()
            offline[key] = {
                "raw": summary.raw_predictions.tolist(),
                "voted": summary.voted_predictions.tolist(),
            }

        service = ServeService(engine, ServeConfig(max_batch=8, max_wait_ms=1.0))
        service.start()
        try:
            served = _serve_session_outputs(service, streams, chunk=2)
        finally:
            service.stop()
        for key in streams:
            assert served[key]["raw"] == offline[key]["raw"], f"{target}/{key} raw"
            assert served[key]["voted"] == offline[key]["voted"], f"{target}/{key} voted"

    def test_served_stats_match_offline_on_stats_target(
        self, quantized_model, target_frames
    ):
        """Cycles/energy served per frame equal the offline stream's."""
        engine = repro.compile(ModelBundle(quantized_model), target="stm32")
        frames = target_frames[:6]
        with engine.stream(window=5) as session:
            offline = [session.push(f) for f in frames]
        service = ServeService(engine, ServeConfig(max_batch=4, max_wait_ms=0.5))
        service.start()
        try:
            sid = service.open_session(window=5)["session_id"]
            results = service.submit_frames(sid, frames).future.result(timeout=30)
        finally:
            service.stop()
        assert [r.cycles for r in results] == [u.cycles for u in offline]
        assert [r.energy_uj for r in results] == pytest.approx(
            [u.energy_uj for u in offline]
        )


# --------------------------------------------------------------------- #
class TestHttpServer:
    @pytest.fixture()
    def running(self):
        engine = FakeEngine()
        with start_server(engine, max_batch=8, max_wait_ms=1.0, session_ttl_s=60.0) as server:
            yield server, engine

    def test_healthz_and_metrics(self, running):
        server, _ = running
        with ServeClient(server.host, server.port) as client:
            health = client.healthz()
            assert health["status"] == "ok"
            assert health["active_sessions"] == 0
            text = client.metrics()
            assert "repro_serve_requests_total" in text
            assert "repro_serve_batch_size_bucket" in text

    def test_session_lifecycle_and_voted_outputs(self, running):
        server, _ = running
        with ServeClient(server.host, server.port) as client:
            opened = client.open_session(window=3)
            assert opened["window"] == 3
            assert opened["config"]["max_batch"] == 8
            sid = opened["session_id"]
            values = [1, 1, 3, 1, 2, 2, 2]
            out = client.push(sid, encode_frames(values))
            raw = [r["raw"] for r in out["results"]]
            voted = [r["voted"] for r in out["results"]]
            assert raw == values
            assert voted == majority_filter(values, window=3).tolist()
            closed = client.close_session(sid)
            assert closed["frames_seen"] == len(values)
            with pytest.raises(UnknownSessionError):
                client.push(sid, encode_frames([0]))

    def test_single_frame_push_and_seq_numbers(self, running):
        server, _ = running
        with ServeClient(server.host, server.port) as client:
            sid = client.open_session()["session_id"]
            first = client.push(sid, encode_frames([2])[0])
            assert first["results"][0]["seq"] == 0
            second = client.push(sid, encode_frames([2, 2]))
            assert [r["seq"] for r in second["results"]] == [1, 2]

    def test_concurrent_sessions_parity_and_coalescing(self, running):
        server, engine = running
        rng = np.random.default_rng(0)
        streams = {k: rng.integers(0, 4, size=30).tolist() for k in range(4)}
        voted_out = {}

        def worker(key):
            with ServeClient(server.host, server.port) as client:
                sid = client.open_session(window=5)["session_id"]
                voted = []
                values = streams[key]
                for i in range(0, len(values), 3):
                    out = client.push(sid, encode_frames(values[i : i + 3]))
                    voted.extend(r["voted"] for r in out["results"])
                client.close_session(sid)
                voted_out[key] = voted

        threads = [threading.Thread(target=worker, args=(k,)) for k in streams]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        for key, values in streams.items():
            assert voted_out[key] == majority_filter(values, window=5).tolist(), key
        # Every frame went through the batcher exactly once.
        assert sum(engine.batch_sizes) == sum(len(v) for v in streams.values())

    def test_error_paths(self, running):
        server, _ = running
        with ServeClient(server.host, server.port) as client:
            from repro.serve import BadRequestError, ServeClientError

            with pytest.raises(UnknownSessionError):
                client.push("feedfacefeedface", encode_frames([0]))
            with pytest.raises(BadRequestError):
                client._request("POST", "/v1/sessions/abc0/frames", {"frames": "nope"})
            with pytest.raises(BadRequestError):
                client._request("POST", "/v1/sessions/abc0/frames", {"nothing": 1})
            with pytest.raises(ServeClientError):
                client._request("GET", "/v1/nope")
            with pytest.raises(ServeClientError):  # 405
                client._request("GET", "/v1/sessions")

    def test_malformed_json_is_400(self, running):
        server, _ = running
        import http.client

        conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
        conn.request(
            "POST",
            "/v1/sessions",
            body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        assert response.status == 400
        assert json.loads(response.read())["error"] == "bad_request"
        conn.close()

    def test_backpressure_returns_429(self):
        engine = FakeEngine(delay_s=0.2)
        with start_server(
            engine, max_batch=1, max_wait_ms=0.0, max_queue=2
        ) as server:
            with ServeClient(server.host, server.port) as client:
                sid = client.open_session()["session_id"]
                errors = []
                results = []

                def pusher():
                    try:
                        with ServeClient(server.host, server.port) as c2:
                            results.append(c2.push(sid, encode_frames([0, 0])))
                    except OverloadedError as exc:
                        errors.append(exc)

                threads = [threading.Thread(target=pusher) for _ in range(6)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=60)
                # With a 2-deep queue and a slow engine, at least one of six
                # bursts must have been rejected — and it surfaced as 429.
                assert errors, "expected at least one 429 overload rejection"
                metrics = client.metrics()
                assert "repro_serve_rejected_total" in metrics

    def test_graceful_shutdown_completes_inflight_requests(self):
        engine = FakeEngine(delay_s=0.05)
        server = start_server(engine, max_batch=4, max_wait_ms=5.0)
        outputs = []
        barrier = threading.Barrier(4, timeout=30)

        def pusher():
            with ServeClient(server.host, server.port) as client:
                sid = client.open_session(window=1)["session_id"]
                barrier.wait()  # all sessions open before any frame is pushed
                outputs.append(client.push(sid, encode_frames([1, 2, 3])))

        threads = [threading.Thread(target=pusher) for _ in range(3)]
        for t in threads:
            t.start()
        barrier.wait()
        time.sleep(0.05)  # pushes are now mid-flight in the batcher/engine
        server.stop()
        for t in threads:
            t.join(timeout=30)
        # Every request that was admitted got a full response before the
        # server exited (drain semantics); none were dropped silently.
        assert len(outputs) == 3
        for out in outputs:
            assert [r["raw"] for r in out["results"]] == [1, 2, 3]

    def test_idle_session_evicted_by_sweeper(self):
        engine = FakeEngine()
        from repro.serve.server import ServeServer
        from repro.serve import RunningServer

        server = RunningServer(
            ServeServer(
                engine,
                config=ServeConfig(session_ttl_s=0.2),
                eviction_interval_s=0.05,
            )
        ).start()
        try:
            with ServeClient(server.host, server.port) as client:
                sid = client.open_session()["session_id"]
                client.push(sid, encode_frames([0]))
                deadline = time.time() + 10
                while time.time() < deadline:
                    if client.healthz()["active_sessions"] == 0:
                        break
                    time.sleep(0.05)
                assert client.healthz()["active_sessions"] == 0
                with pytest.raises(UnknownSessionError):
                    client.push(sid, encode_frames([0]))
                assert "repro_serve_evictions_total 1" in client.metrics()
        finally:
            server.stop()


# --------------------------------------------------------------------- #
class TestInterleavingProperties:
    """Satellite property: ANY interleaving of K sessions through the
    micro-batcher yields per-session outputs identical to K independent
    offline ``majority_filter`` replays — order-independence across chunk
    schedules, window lengths, batch windows and mid-stream closes."""

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_any_interleaving_matches_independent_offline_streams(self, data):
        k = data.draw(st.integers(2, 4), label="num_sessions")
        streams = {}
        chunk_plan = {}
        for i in range(k):
            values = data.draw(
                st.lists(st.integers(0, 3), min_size=1, max_size=16),
                label=f"stream_{i}",
            )
            window = data.draw(st.integers(1, 7), label=f"window_{i}")
            streams[i] = (window, values)
            sizes, remaining = [], len(values)
            while remaining:
                size = data.draw(
                    st.integers(1, min(4, remaining)), label=f"chunk_{i}"
                )
                sizes.append(size)
                remaining -= size
            chunk_plan[i] = sizes
        max_batch = data.draw(st.integers(1, 16), label="max_batch")
        max_wait_ms = data.draw(st.sampled_from([0.0, 1.0]), label="max_wait_ms")
        order = data.draw(
            st.permutations([i for i in streams for _ in chunk_plan[i]]),
            label="interleaving",
        )

        service = ServeService(
            FakeEngine(), ServeConfig(max_batch=max_batch, max_wait_ms=max_wait_ms)
        )
        service.start()
        try:
            sids = {
                i: service.open_session(window=streams[i][0])["session_id"]
                for i in streams
            }
            cursors = {i: 0 for i in streams}
            next_chunk = {i: 0 for i in streams}
            pending = []
            # Submit every chunk in the drawn interleaving WITHOUT waiting in
            # between, so the batcher freely coalesces across sessions.
            for i in order:
                size = chunk_plan[i][next_chunk[i]]
                next_chunk[i] += 1
                part = streams[i][1][cursors[i] : cursors[i] + size]
                cursors[i] += size
                pending.append((i, service.submit_frames(sids[i], encode_frames(part))))
            outputs = {i: [] for i in streams}
            for i, p in pending:
                for r in p.future.result(timeout=30):
                    outputs[i].append((r.seq, r.raw, r.voted))
        finally:
            service.stop()

        for i, (window, values) in streams.items():
            outputs[i].sort()
            assert [seq for seq, _, _ in outputs[i]] == list(range(len(values)))
            assert [raw for _, raw, _ in outputs[i]] == values
            assert [voted for _, _, voted in outputs[i]] == majority_filter(
                values, window=window
            ).tolist()

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_mid_stream_close_isolates_other_sessions(self, data):
        window = data.draw(st.integers(1, 5), label="window")
        survivor = data.draw(
            st.lists(st.integers(0, 3), min_size=1, max_size=12), label="survivor"
        )
        doomed = data.draw(
            st.lists(st.integers(0, 3), min_size=2, max_size=12), label="doomed"
        )
        cut = data.draw(st.integers(1, len(doomed) - 1), label="cut")
        max_batch = data.draw(st.integers(1, 8), label="max_batch")

        service = ServeService(
            FakeEngine(), ServeConfig(max_batch=max_batch, max_wait_ms=0.5)
        )
        service.start()
        try:
            sid_s = service.open_session(window=window)["session_id"]
            sid_d = service.open_session(window=window)["session_id"]
            # The doomed session streams its prefix to completion...
            prefix = service.submit_frames(
                sid_d, encode_frames(doomed[:cut])
            ).future.result(timeout=30)
            # ... then goes away mid-stream.
            service.close_session(sid_d)
            with pytest.raises(UnknownSessionError):
                service.submit_frames(sid_d, encode_frames(doomed[cut:]))
            # The survivor streams through, oblivious.
            results = service.submit_frames(
                sid_s, encode_frames(survivor)
            ).future.result(timeout=30)
        finally:
            service.stop()

        assert [r.voted for r in prefix] == majority_filter(
            doomed[:cut], window=window
        ).tolist()
        assert [r.voted for r in results] == majority_filter(
            survivor, window=window
        ).tolist()


# --------------------------------------------------------------------- #
class TestWsgiAdapter:
    def _call(self, app, method, path, payload=None):
        body = b"" if payload is None else json.dumps(payload).encode()
        environ = {
            "REQUEST_METHOD": method,
            "PATH_INFO": path,
            "CONTENT_LENGTH": str(len(body)),
            "wsgi.input": BytesIO(body),
        }
        captured = {}

        def start_response(status, headers):
            captured["status"] = int(status.split()[0])
            captured["headers"] = dict(headers)

        chunks = app(environ, start_response)
        raw = b"".join(chunks)
        if captured["headers"].get("Content-Type", "").startswith("application/json"):
            return captured["status"], json.loads(raw)
        return captured["status"], raw.decode()

    def test_full_lifecycle_through_wsgi(self):
        engine = FakeEngine()
        service = ServeService(engine, ServeConfig(max_batch=4, max_wait_ms=0.5))
        service.start()
        try:
            app = make_wsgi_app(service)
            status, health = self._call(app, "GET", "/healthz")
            assert status == 200 and health["status"] == "ok"
            status, opened = self._call(
                app, "POST", "/v1/sessions", {"window": 3}
            )
            assert status == 201
            sid = opened["session_id"]
            values = [0, 3, 3, 3, 1]
            status, out = self._call(
                app,
                "POST",
                f"/v1/sessions/{sid}/frames",
                {"frames": encode_frames(values).tolist()},
            )
            assert status == 200
            assert [r["voted"] for r in out["results"]] == majority_filter(
                values, window=3
            ).tolist()
            status, metrics = self._call(app, "GET", "/metrics")
            assert status == 200 and "repro_serve_frames_total 5" in metrics
            status, closed = self._call(app, "DELETE", f"/v1/sessions/{sid}")
            assert status == 200 and closed["frames_seen"] == 5
            status, err = self._call(
                app, "POST", f"/v1/sessions/{sid}/frames", {"frames": [[[0.0]]]}
            )
            assert status == 404 and err["error"] == "unknown_session"
        finally:
            service.stop()


# --------------------------------------------------------------------- #
class TestTtlEvictionRacingInflightFrames:
    """A session TTL-evicted between enqueue and dispatch must fail its
    queued frames cleanly (409) without crashing or stalling the batcher,
    and the next push for it must get a clean 404."""

    def test_eviction_mid_queue_fails_409_and_batcher_keeps_serving(self):
        now = [0.0]
        runner = BlockingRunner()
        mgr = SessionManager(ttl_s=10.0, clock=lambda: now[0])
        # max_wait_ms=0 with the frozen clock: the collect window expires
        # immediately instead of waiting for fake time that never advances.
        batcher = MicroBatcher(
            runner, max_batch=4, max_wait_ms=0.0, clock=lambda: now[0]
        )
        victim, survivor = mgr.open(), mgr.open()
        batcher.start()
        try:
            # Park the dispatch thread inside the runner on a throwaway frame.
            first = batcher.submit(survivor, encode_frames([0]))
            assert runner.entered.wait(timeout=10)
            # Enqueue the victim's frames, then TTL-evict it before dispatch.
            queued = batcher.submit(victim, encode_frames([0, 0]))
            now[0] = 95.0
            survivor.touch(now[0])  # stays fresh; only the victim idles out
            now[0] = 100.0
            evicted = mgr.evict_idle()
            assert victim in evicted
            runner.release.set()
            first.result(timeout=10)
            with pytest.raises(SessionClosedError):
                queued.result(timeout=10)
            # The batcher is alive and serving: the survivor still works...
            ok = batcher.submit(survivor, encode_frames([1, 1]))
            assert len(ok.result(timeout=10)) == 2
            # ...and the evicted frames never reached the engine.
            assert sum(runner.batches) == 3
            # A new push for the evicted session is a clean 404.
            with pytest.raises(UnknownSessionError):
                mgr.get(victim.id)
        finally:
            batcher.stop(drain=True)

    def test_lazy_get_eviction_notifies_on_evict(self):
        now = [0.0]
        retired = []
        mgr = SessionManager(
            ttl_s=5.0, clock=lambda: now[0], on_evict=lambda s: retired.append(s.id)
        )
        s = mgr.open()
        now[0] = 100.0
        with pytest.raises(UnknownSessionError):
            mgr.get(s.id)
        assert retired == [s.id]


class TestDegenerateBatcherConfig:
    """``max_wait_ms=0`` + ``max_batch=1``: every frame dispatches alone,
    with one wakeup per frame and no spinning on the deadline clock."""

    def test_one_batch_per_frame(self):
        engine = FakeEngine()
        batcher = MicroBatcher(engine.predict_batch, max_batch=1, max_wait_ms=0.0)
        mgr = SessionManager(ttl_s=100)
        s = mgr.open()
        batcher.start()
        try:
            futures = [batcher.submit(s, encode_frames([i % 4])) for i in range(6)]
            results = [f.result(timeout=10) for f in futures]
        finally:
            batcher.stop(drain=True)
        assert engine.batch_sizes == [1] * 6
        assert [r[0].seq for r in results] == list(range(6))

    def test_no_dispatch_thread_spin(self):
        """The dispatcher must take O(1) clock reads per frame — a spinning
        collect loop would take unboundedly many."""
        clock_calls = [0]

        def counting_clock():
            clock_calls[0] += 1
            return time.monotonic()

        engine = FakeEngine()
        batcher = MicroBatcher(
            engine.predict_batch, max_batch=1, max_wait_ms=0.0, clock=counting_clock
        )
        mgr = SessionManager(ttl_s=100)
        s = mgr.open()
        batcher.start()
        try:
            n = 20
            for i in range(n):
                batcher.submit(s, encode_frames([0])).result(timeout=10)
        finally:
            batcher.stop(drain=True)
        # submit touches the clock once, _collect reads it once to set the
        # (immediately expired) deadline: a small constant per frame.
        assert clock_calls[0] <= 4 * n + 4, f"{clock_calls[0]} clock reads for {n} frames"
        assert engine.batch_sizes == [1] * n


# --------------------------------------------------------------------- #
class _FakeResponse:
    def __init__(self, status=200, payload=None, headers=None):
        self.status = status
        self._payload = json.dumps(payload or {}).encode()
        self._headers = {"Content-Type": "application/json", **(headers or {})}

    def read(self):
        return self._payload

    def getheader(self, name, default=None):
        return self._headers.get(name, default)


class _FakeConnection:
    """Scripted http.client stand-in: each entry is a response or an error."""

    def __init__(self, script):
        self.script = list(script)
        self.sock = object()  # pretend already connected
        self.requests = []

    def request(self, method, path, body=None, headers=None):
        self.requests.append((method, path))

    def getresponse(self):
        step = self.script.pop(0)
        if isinstance(step, Exception):
            raise step
        return step

    def close(self):
        self.sock = None


class TestClientTransport:
    """The double-submit fix: drops mid-exchange are never blindly replayed."""

    def _client_with(self, conns):
        from repro.serve import ServeClient

        client = ServeClient()
        conns = list(conns)
        client._connection = lambda: conns.pop(0)
        return client

    def test_post_drop_mid_exchange_is_not_resent(self):
        from repro.serve import ConnectionDroppedError

        conn = _FakeConnection([ConnectionResetError("stale keep-alive")])
        client = self._client_with([conn])
        with pytest.raises(ConnectionDroppedError) as info:
            client._request("POST", "/v1/sessions/abc/frames", {"frames": []})
        assert info.value.request_sent  # ambiguous: may have been processed
        assert len(conn.requests) == 1  # exactly one attempt — no blind replay

    def test_get_drop_is_replayed_once(self):
        dead = _FakeConnection([ConnectionResetError("stale keep-alive")])
        alive = _FakeConnection([_FakeResponse(payload={"status": "ok"})])
        client = self._client_with([dead, alive])
        assert client._request("GET", "/healthz") == {"status": "ok"}
        assert len(dead.requests) == 1 and len(alive.requests) == 1

    def test_connect_failure_is_verifiably_unsent(self):
        import socket

        from repro.serve import ConnectionDroppedError, ServeClient

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here any more
        with ServeClient("127.0.0.1", port, timeout=2.0) as client:
            with pytest.raises(ConnectionDroppedError) as info:
                client.healthz()
        assert not info.value.request_sent

    def test_retry_after_header_is_surfaced(self):
        from repro.serve import OverloadedError

        conn = _FakeConnection(
            [
                _FakeResponse(
                    status=429,
                    payload={"error": "overloaded", "detail": "full"},
                    headers={"Retry-After": "0.25"},
                )
            ]
        )
        client = self._client_with([conn])
        with pytest.raises(OverloadedError) as info:
            client._request("GET", "/healthz")
        assert info.value.retry_after == 0.25


class TestRetryPolicy:
    def test_retriable_classification(self):
        from repro.serve import (
            ConnectionDroppedError,
            RetryPolicy,
            WorkerCrashedError,
        )

        policy = RetryPolicy()
        assert policy.retriable(OverloadedError("full"))
        assert policy.retriable(WorkerCrashedError("gone"))
        assert policy.retriable(ConnectionDroppedError("x", request_sent=False))
        assert not policy.retriable(ConnectionDroppedError("x", request_sent=True))
        assert not policy.retriable(UnknownSessionError("gone"))

    def test_delay_exponential_and_capped(self):
        from repro.serve import RetryPolicy

        policy = RetryPolicy(backoff_base_s=0.1, backoff_max_s=0.5, jitter=0.0)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(5) == pytest.approx(0.5)  # capped

    def test_retry_after_is_a_lower_bound(self):
        from repro.serve import RetryPolicy

        policy = RetryPolicy(backoff_base_s=0.01, backoff_max_s=1.0, jitter=0.0)
        assert policy.delay(0, retry_after=0.3) == pytest.approx(0.3)
        assert policy.delay(0, retry_after=5.0) == pytest.approx(1.0)  # capped

    def test_jitter_is_seeded_and_deterministic(self):
        from repro.serve import RetryPolicy

        a = [RetryPolicy(seed=3).delay(i) for i in range(4)]
        b = [RetryPolicy(seed=3).delay(i) for i in range(4)]
        assert a == b
        assert a != [RetryPolicy(seed=4).delay(i) for i in range(4)]

    def test_max_attempts_validated(self):
        from repro.serve import RetryPolicy

        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_client_absorbs_retriable_errors(self, monkeypatch):
        from repro.serve import RetryPolicy, ServeClient

        client = ServeClient(
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.001, seed=0)
        )
        calls = {"n": 0}

        def flaky(method, path, payload):
            calls["n"] += 1
            if calls["n"] < 3:
                raise OverloadedError("busy")
            return {"ok": True}

        monkeypatch.setattr(client, "_request_once", flaky)
        assert client._request("GET", "/healthz") == {"ok": True}
        assert calls["n"] == 3

    def test_client_without_policy_raises_first_error(self, monkeypatch):
        client = ServeClient()

        def always_busy(method, path, payload):
            raise OverloadedError("busy")

        monkeypatch.setattr(client, "_request_once", always_busy)
        with pytest.raises(OverloadedError):
            client._request("GET", "/healthz")


class TestServeInputGuard:
    """on_invalid policies and per-session health over the HTTP front-end."""

    def _server(self, **knobs):
        return start_server(FakeEngine(), config=ServeConfig(max_batch=8, **knobs))

    def test_reject_policy_maps_to_http_400(self):
        from repro.serve import InvalidFramesError

        with self._server(on_invalid="reject") as server:
            with ServeClient(server.host, server.port) as client:
                opened = client.open_session(window=3)
                assert opened["config"]["on_invalid"] == "reject"
                sid = opened["session_id"]
                frames = encode_frames([1, 2])
                frames[1, 0, 0, 0] = np.nan
                with pytest.raises(InvalidFramesError):
                    client.push(sid, frames)
                # Clean frames still flow after the rejection.
                out = client.push(sid, encode_frames([1]))
                assert out["results"][0]["raw"] == 1

    def test_clamp_policy_repairs_and_counts(self):
        with self._server(on_invalid="clamp") as server:
            with ServeClient(server.host, server.port) as client:
                sid = client.open_session(window=3)["session_id"]
                frames = encode_frames([2, 3])
                frames[0] = np.nan  # clamps to zeros -> class 0
                out = client.push(sid, frames)
                assert [r["raw"] for r in out["results"]] == [0, 3]
                text = client.metrics()
                assert f'repro_serve_session_invalid_fraction{{session="{sid}"}} 0.5' in text
                assert f'repro_serve_session_vote_margin{{session="{sid}"}}' in text
                closed = client.close_session(sid)
                assert closed["invalid_frames"] == 1
                assert closed["vote_margin"] == 0.0  # FIFO [0, 3]: a tie

    def test_default_config_stays_bit_identical(self):
        # No policy: the config payload gains no key and no per-session
        # gauges leak into /metrics beyond the (guard-less) fraction series.
        with self._server() as server:
            with ServeClient(server.host, server.port) as client:
                opened = client.open_session(window=3)
                assert "on_invalid" not in opened["config"]
                assert "invalid_frames" not in client.close_session(
                    opened["session_id"]
                )


class TestSessionStream:
    """Transparent session recovery over the single-process server."""

    def test_matches_offline_voting(self):
        from repro.serve import SessionStream

        values = [1, 1, 3, 1, 2, 2, 0, 2, 1, 1]
        with start_server(FakeEngine(), max_batch=8) as server:
            with ServeClient(server.host, server.port) as client:
                with SessionStream(client, window=3) as stream:
                    voted = []
                    for i in range(0, len(values), 2):
                        out = stream.push(encode_frames(values[i : i + 2]))
                        voted.extend(r["voted"] for r in out)
        assert voted == majority_filter(values, window=3).tolist()
        assert stream.frames_acked == len(values)
        assert stream.recoveries == 0

    def test_recovers_from_purged_session(self):
        from repro.serve import SessionStream

        values = [1, 1, 3, 1, 2, 2, 0, 2, 1, 1]
        with start_server(FakeEngine(), max_batch=8) as server:
            with ServeClient(server.host, server.port) as client:
                with SessionStream(client, window=3, recovery_backoff_s=0.0) as stream:
                    voted = []
                    for i in range(0, len(values), 2):
                        if i == 4:  # a TTL purge / worker crash, externally
                            with ServeClient(server.host, server.port) as saboteur:
                                saboteur.close_session(stream.session_id)
                        out = stream.push(encode_frames(values[i : i + 2]))
                        voted.extend(r["voted"] for r in out)
        # The warm tail replay rebuilt the majority FIFO, so the voted
        # stream is bit-identical to an uninterrupted offline filter.
        assert voted == majority_filter(values, window=3).tolist()
        assert stream.recoveries == 1

    def test_gives_up_after_max_recoveries(self):
        from repro.serve import SessionStream

        with start_server(FakeEngine(), max_batch=8) as server:
            with ServeClient(server.host, server.port) as client:
                stream = SessionStream(client, window=3, max_recoveries=2,
                                       recovery_backoff_s=0.0)
                stream.open()
                real_push = client.push

                def poisoned(sid, frames):
                    raise UnknownSessionError("always purged")

                client.push = poisoned
                try:
                    with pytest.raises(UnknownSessionError):
                        stream.push(encode_frames([1]))
                finally:
                    client.push = real_push

    def test_close_is_idempotent(self):
        from repro.serve import SessionStream

        with start_server(FakeEngine(), max_batch=8) as server:
            with ServeClient(server.host, server.port) as client:
                stream = SessionStream(client, window=3)
                stream.open()
                stream.push(encode_frames([1]))
                assert stream.close()["frames_seen"] == 1
                assert stream.close() == {}
