"""MAUPITI hardware substrate: ISA, SDOTP unit, memory, core, sensor, energy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import (
    CycleModel,
    DMEM_BASE,
    IBEX_SPEC,
    IbexCore,
    Instruction,
    MAUPITI_SPEC,
    Memory,
    MemoryError_,
    STM32_SPEC,
    SimulationError,
    TmosArray,
    TmosArrayConfig,
    area_overhead_fraction,
    decode,
    encode,
    pack_lanes,
    power_overhead_fraction,
    reg,
    sdotp4,
    sdotp8,
    sensor_energy_per_frame_j,
    to_signed,
    unpack_lanes,
)
from repro.hw.isa import ALL_MNEMONICS, B_TYPE, I_TYPE, R_TYPE, S_TYPE


class TestRegistersAndEncoding:
    def test_reg_resolution(self):
        assert reg("zero") == 0
        assert reg("ra") == 1
        assert reg("a0") == 10
        assert reg("x31") == 31
        assert reg(5) == 5
        with pytest.raises(ValueError):
            reg("q7")
        with pytest.raises(ValueError):
            reg(32)

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(ValueError):
            Instruction("fadd")

    @given(
        st.sampled_from(sorted(R_TYPE)),
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=31),
    )
    @settings(max_examples=80, deadline=None)
    def test_rtype_roundtrip(self, mnemonic, rd, rs1, rs2):
        instr = Instruction(mnemonic, rd=rd, rs1=rs1, rs2=rs2)
        back = decode(encode(instr))
        assert (back.mnemonic, back.rd, back.rs1, back.rs2) == (mnemonic, rd, rs1, rs2)

    @given(
        st.sampled_from(["addi", "andi", "ori", "xori", "lw", "lb", "lbu", "jalr"]),
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=-2048, max_value=2047),
    )
    @settings(max_examples=80, deadline=None)
    def test_itype_roundtrip(self, mnemonic, rd, rs1, imm):
        instr = Instruction(mnemonic, rd=rd, rs1=rs1, imm=imm)
        back = decode(encode(instr))
        assert (back.mnemonic, back.rd, back.rs1, back.imm) == (mnemonic, rd, rs1, imm)

    @given(
        st.sampled_from(sorted(S_TYPE)),
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=-2048, max_value=2047),
    )
    @settings(max_examples=60, deadline=None)
    def test_stype_roundtrip(self, mnemonic, rs1, rs2, imm):
        back = decode(encode(Instruction(mnemonic, rs1=rs1, rs2=rs2, imm=imm)))
        assert (back.mnemonic, back.rs1, back.rs2, back.imm) == (mnemonic, rs1, rs2, imm)

    @given(
        st.sampled_from(sorted(B_TYPE)),
        st.integers(min_value=-2048, max_value=2047),
    )
    @settings(max_examples=60, deadline=None)
    def test_btype_roundtrip(self, mnemonic, half_imm):
        imm = half_imm * 2  # branch offsets are even
        back = decode(encode(Instruction(mnemonic, rs1=3, rs2=4, imm=imm)))
        assert back.mnemonic == mnemonic and back.imm == imm

    def test_shift_immediates(self):
        for m in ("slli", "srli", "srai"):
            back = decode(encode(Instruction(m, rd=1, rs1=2, imm=7)))
            assert back.mnemonic == m and back.imm == 7

    def test_custom_sdotp_encodings_distinct(self):
        w8 = encode(Instruction("sdotp8", rd=1, rs1=2, rs2=3))
        w4 = encode(Instruction("sdotp4", rd=1, rs1=2, rs2=3))
        assert w8 != w4
        assert decode(w8).mnemonic == "sdotp8"
        assert decode(w4).mnemonic == "sdotp4"
        assert w8 & 0x7F == 0x0B  # custom-0 opcode

    def test_compressibility_heuristic(self):
        assert Instruction("add", rd=1, rs1=1, rs2=2).size_bytes() == 2
        assert Instruction("sdotp8", rd=1, rs1=2, rs2=3).size_bytes() == 4
        assert Instruction("addi", rd=1, rs1=1, imm=1000).size_bytes() == 4


class TestSdotpSemantics:
    @given(
        st.lists(st.integers(min_value=-128, max_value=127), min_size=4, max_size=4),
        st.lists(st.integers(min_value=-128, max_value=127), min_size=4, max_size=4),
        st.integers(min_value=-(2**20), max_value=2**20),
    )
    @settings(max_examples=100, deadline=None)
    def test_sdotp8_matches_numpy(self, a, b, acc):
        word_a = pack_lanes(a, 8)
        word_b = pack_lanes(b, 8)
        result = to_signed(sdotp8(word_a, word_b, acc & 0xFFFFFFFF), 32)
        expected = acc + int(np.dot(a, b))
        assert result == expected

    @given(
        st.lists(st.integers(min_value=-8, max_value=7), min_size=8, max_size=8),
        st.lists(st.integers(min_value=-8, max_value=7), min_size=8, max_size=8),
        st.integers(min_value=-(2**20), max_value=2**20),
    )
    @settings(max_examples=100, deadline=None)
    def test_sdotp4_matches_numpy(self, a, b, acc):
        word_a = pack_lanes(a, 4)
        word_b = pack_lanes(b, 4)
        result = to_signed(sdotp4(word_a, word_b, acc & 0xFFFFFFFF), 32)
        assert result == acc + int(np.dot(a, b))

    @given(st.lists(st.integers(min_value=-8, max_value=7), min_size=8, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_pack_unpack_roundtrip(self, lanes):
        assert unpack_lanes(pack_lanes(lanes, 4), 4) == lanes

    def test_pack_range_validation(self):
        with pytest.raises(ValueError):
            pack_lanes([200, 0, 0, 0], 8)
        with pytest.raises(ValueError):
            pack_lanes([0, 0], 8)


class TestMemory:
    def test_word_roundtrip(self):
        mem = Memory()
        mem.store_word(DMEM_BASE, -123456)
        assert mem.load_word(DMEM_BASE) == -123456

    def test_byte_and_half(self):
        mem = Memory()
        mem.store_byte(DMEM_BASE, -5)
        assert mem.load_byte(DMEM_BASE) == -5
        assert mem.load_byte(DMEM_BASE, signed=False) == 251
        mem.store_half(DMEM_BASE + 8, -300)
        assert mem.load_half(DMEM_BASE + 8) == -300

    def test_little_endian(self):
        mem = Memory()
        mem.store_word(DMEM_BASE, 0x11223344)
        assert mem.load_byte(DMEM_BASE, signed=False) == 0x44

    def test_out_of_bounds(self):
        mem = Memory()
        with pytest.raises(MemoryError_):
            mem.load_word(0x9999_0000)
        with pytest.raises(MemoryError_):
            mem.store_word(DMEM_BASE + 16 * 1024, 1)

    def test_otp_read_only(self):
        mem = Memory()
        with pytest.raises(MemoryError_):
            mem.store_word(0x0020_0000, 1)
        mem.store_bytes(0x0020_0000, b"\x01", force=True)
        assert mem.load_byte(0x0020_0000) == 1


def run_program(instrs, enable_sdotp=True):
    core = IbexCore(enable_sdotp=enable_sdotp)
    stats = core.run(instrs + [Instruction("ebreak")])
    return core, stats


class TestCore:
    def test_arithmetic_program(self):
        core, _ = run_program(
            [
                Instruction("addi", rd=reg("a0"), rs1=0, imm=21),
                Instruction("addi", rd=reg("a1"), rs1=0, imm=2),
                Instruction("mul", rd=reg("a2"), rs1=reg("a0"), rs2=reg("a1")),
            ]
        )
        assert core.registers[reg("a2")] == 42

    def test_branch_loop_sums(self):
        # Sum 1..5 with a loop.
        program = [
            Instruction("addi", rd=reg("a0"), rs1=0, imm=5),  # counter
            Instruction("addi", rd=reg("a1"), rs1=0, imm=0),  # total
            Instruction("add", rd=reg("a1"), rs1=reg("a1"), rs2=reg("a0")),
            Instruction("addi", rd=reg("a0"), rs1=reg("a0"), imm=-1),
            Instruction("bne", rs1=reg("a0"), rs2=0, imm=-8),
        ]
        core, stats = run_program(program)
        assert core.registers[reg("a1")] == 15
        assert stats.instructions > 10

    def test_memory_program(self):
        program = [
            Instruction("lui", rd=reg("a0"), imm=DMEM_BASE),
            Instruction("addi", rd=reg("a1"), rs1=0, imm=-7),
            Instruction("sw", rs1=reg("a0"), rs2=reg("a1"), imm=0),
            Instruction("lw", rd=reg("a2"), rs1=reg("a0"), imm=0),
        ]
        core, _ = run_program(program)
        assert to_signed(core.registers[reg("a2")], 32) == -7

    def test_sdotp_instruction_on_maupiti(self):
        a = pack_lanes([1, 2, 3, 4], 8)
        b = pack_lanes([5, 6, 7, 8], 8)
        program = [
            Instruction("lui", rd=reg("a0"), imm=a & 0xFFFFF000),
            Instruction("addi", rd=reg("a0"), rs1=reg("a0"), imm=to_signed(a & 0xFFF, 12)),
            Instruction("lui", rd=reg("a1"), imm=b & 0xFFFFF000),
            Instruction("addi", rd=reg("a1"), rs1=reg("a1"), imm=to_signed(b & 0xFFF, 12)),
            Instruction("addi", rd=reg("a2"), rs1=0, imm=100),
            Instruction("sdotp8", rd=reg("a2"), rs1=reg("a0"), rs2=reg("a1")),
        ]
        core, stats = run_program(program)
        assert to_signed(core.registers[reg("a2")], 32) == 100 + (5 + 12 + 21 + 32)
        assert stats.sdotp_count == 1

    def test_sdotp_rejected_on_vanilla_ibex(self):
        with pytest.raises(SimulationError):
            run_program([Instruction("sdotp8", rd=1, rs1=2, rs2=3)], enable_sdotp=False)

    def test_x0_stays_zero(self):
        core, _ = run_program([Instruction("addi", rd=0, rs1=0, imm=55)])
        assert core.registers[0] == 0

    def test_runaway_detection(self):
        core = IbexCore(max_instructions=100)
        infinite = [Instruction("jal", rd=0, imm=0)]
        with pytest.raises(SimulationError):
            core.run(infinite)

    def test_cycle_model_costs(self):
        model = CycleModel()
        assert model.cost(Instruction("lw", rd=1, rs1=2)) == 2
        assert model.cost(Instruction("add", rd=1)) == 1
        assert model.cost(Instruction("sdotp4", rd=1)) == 1
        assert model.cost(Instruction("beq"), taken=True) > model.cost(
            Instruction("beq"), taken=False
        )

    def test_division_semantics(self):
        core, _ = run_program(
            [
                Instruction("addi", rd=reg("a0"), rs1=0, imm=-7),
                Instruction("addi", rd=reg("a1"), rs1=0, imm=2),
                Instruction("div", rd=reg("a2"), rs1=reg("a0"), rs2=reg("a1")),
                Instruction("rem", rd=reg("a3"), rs1=reg("a0"), rs2=reg("a1")),
            ]
        )
        assert to_signed(core.registers[reg("a2")], 32) == -3  # trunc toward zero
        assert to_signed(core.registers[reg("a3")], 32) == -1


class TestSensorAndEnergy:
    def test_sensor_power_matches_paper(self):
        config = TmosArrayConfig()
        assert config.power_w == pytest.approx(0.62e-3, rel=0.02)
        assert config.acquisition_steps == 2
        assert config.pixels == 256

    def test_sensor_acquisition(self):
        sensor = TmosArray(rng=np.random.default_rng(0))
        scene = np.full((16, 16), 22.0)
        scene[4:6, 4:6] = 30.0
        frame = sensor.acquire(scene)
        assert frame.shape == (16, 16)
        assert frame[4, 4] > frame[0, 0]
        assert sensor.frames_acquired == 1
        small = sensor.downsample_to_8x8(frame)
        assert small.shape == (8, 8)

    def test_sensor_scene_shape_validation(self):
        with pytest.raises(ValueError):
            TmosArray().acquire(np.zeros((8, 8)))

    def test_platform_specs_match_paper(self):
        assert MAUPITI_SPEC.frequency_hz == 20e6
        assert STM32_SPEC.frequency_hz == 120e6
        assert area_overhead_fraction() == pytest.approx(0.07, abs=0.001)
        assert power_overhead_fraction() == pytest.approx(0.022, abs=0.002)
        # STM32 draws ~13.2x the MAUPITI power.
        assert STM32_SPEC.active_power_w / MAUPITI_SPEC.active_power_w == pytest.approx(
            13.2, rel=0.01
        )

    def test_energy_per_inference(self):
        # 100k cycles at 20 MHz and 0.9 mW -> 4.5 uJ.
        assert MAUPITI_SPEC.energy_per_inference_uj(100_000) == pytest.approx(4.5)
        assert IBEX_SPEC.energy_per_inference_uj(100_000) < MAUPITI_SPEC.energy_per_inference_uj(
            102_300
        )

    def test_sensor_energy_per_frame(self):
        assert sensor_energy_per_frame_j() == pytest.approx(0.62e-3 / 10.0)
