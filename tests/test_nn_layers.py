"""Layer and module-system behaviour."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.nn.module import Identity, Parameter


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestModuleSystem:
    def test_named_parameters_unique_and_complete(self, rng):
        model = Sequential(
            Conv2d(1, 4, 3, padding=1, rng=rng), BatchNorm2d(4), ReLU(),
            Flatten(), Linear(4 * 64, 4, rng=rng),
        )
        names = [n for n, _ in model.named_parameters()]
        assert len(names) == len(set(names))
        # conv w+b, bn gamma+beta, linear w+b
        assert len(names) == 6

    def test_state_dict_roundtrip(self, rng):
        model = Sequential(Linear(3, 5, rng=rng), ReLU(), Linear(5, 2, rng=rng))
        state = model.state_dict()
        clone = Sequential(Linear(3, 5, rng=rng), ReLU(), Linear(5, 2, rng=rng))
        clone.load_state_dict(state)
        x = rng.normal(size=(4, 3))
        np.testing.assert_allclose(model(x), clone(x))

    def test_state_dict_mismatch_raises(self, rng):
        model = Sequential(Linear(3, 5, rng=rng))
        with pytest.raises(KeyError):
            model.load_state_dict({"bogus": np.zeros(3)})

    def test_train_eval_propagates(self, rng):
        model = Sequential(Conv2d(1, 2, 3, rng=rng), BatchNorm2d(2), ReLU())
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self, rng):
        layer = Linear(3, 2, rng=rng)
        layer.weight.grad += 1.0
        layer.zero_grad()
        assert np.all(layer.weight.grad == 0)

    def test_num_parameters(self, rng):
        layer = Linear(10, 5, rng=rng)
        assert layer.num_parameters() == 10 * 5 + 5

    def test_parameter_requires_grad_flag(self):
        p = Parameter(np.zeros(3), requires_grad=False)
        assert not p.requires_grad

    def test_identity_passthrough(self, rng):
        x = rng.normal(size=(2, 3))
        layer = Identity()
        np.testing.assert_array_equal(layer(x), x)
        np.testing.assert_array_equal(layer.backward(x), x)


class TestSequential:
    def test_forward_backward_chain(self, rng):
        model = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
        x = rng.normal(size=(3, 4))
        out = model(x)
        assert out.shape == (3, 2)
        grad_in = model.backward(np.ones_like(out))
        assert grad_in.shape == x.shape

    def test_indexing_and_iteration(self, rng):
        l1, l2 = Linear(2, 2, rng=rng), ReLU()
        model = Sequential(l1, l2)
        assert model[0] is l1
        assert list(model) == [l1, l2]
        assert len(model) == 2
        model.append(Linear(2, 1, rng=rng))
        assert len(model) == 3


class TestConvLayer:
    def test_macs_and_output_shape(self, rng):
        conv = Conv2d(1, 64, 3, padding=1, rng=rng)
        assert conv.output_shape(8, 8) == (8, 8)
        assert conv.macs(8, 8) == 8 * 8 * 64 * 1 * 9

    def test_bias_disabled(self, rng):
        conv = Conv2d(2, 3, 3, bias=False, rng=rng)
        assert conv.bias is None
        out = conv(rng.normal(size=(1, 2, 5, 5)))
        assert out.shape == (1, 3, 3, 3)

    def test_gradients_accumulate(self, rng):
        conv = Conv2d(1, 2, 3, rng=rng)
        x = rng.normal(size=(1, 1, 5, 5))
        out = conv(x)
        conv.backward(np.ones_like(out))
        first = conv.weight.grad.copy()
        conv(x)
        conv.backward(np.ones_like(out))
        np.testing.assert_allclose(conv.weight.grad, 2 * first)


class TestBatchNorm:
    def test_normalizes_in_training(self, rng):
        bn = BatchNorm2d(3)
        x = rng.normal(loc=5.0, scale=3.0, size=(16, 3, 4, 4))
        out = bn(x)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(2)
        x = rng.normal(loc=2.0, size=(32, 2, 4, 4))
        for _ in range(50):
            bn(x)
        bn.eval()
        out = bn(x)
        # Running stats converge toward batch stats, so eval output is close
        # to normalized.
        assert abs(out.mean()) < 0.2

    def test_gradient_check(self, rng):
        bn = BatchNorm2d(2)
        x = rng.normal(size=(4, 2, 3, 3))
        grad_out = rng.normal(size=x.shape)
        bn(x)
        grad_x = bn.backward(grad_out)

        eps = 1e-6
        num = np.zeros_like(x)
        it = np.nditer(x, flags=["multi_index"])
        while not it.finished:
            idx = it.multi_index
            orig = x[idx]
            x[idx] = orig + eps
            plus = float((bn(x) * grad_out).sum())
            x[idx] = orig - eps
            minus = float((bn(x) * grad_out).sum())
            x[idx] = orig
            num[idx] = (plus - minus) / (2 * eps)
            it.iternext()
        # Re-run forward to restore cache consistency before comparing.
        np.testing.assert_allclose(grad_x, num, atol=1e-4)

    def test_fold_into_matches_sequence(self, rng):
        conv = Conv2d(2, 3, 3, padding=1, rng=rng)
        bn = BatchNorm2d(3)
        x = rng.normal(size=(8, 2, 6, 6))
        # Populate running stats, then compare eval-mode conv+bn vs folded conv.
        for _ in range(30):
            bn(conv(x))
        bn.eval()
        reference = bn(conv(x))
        folded_w, folded_b = bn.fold_into(conv.weight.data, conv.bias.data)
        folded = Conv2d(2, 3, 3, padding=1, rng=rng)
        folded.weight.data = folded_w
        folded.bias.data = folded_b
        np.testing.assert_allclose(folded(x), reference, atol=1e-10)

    def test_shape_validation(self):
        bn = BatchNorm2d(4)
        with pytest.raises(ValueError):
            bn(np.zeros((2, 3, 4, 4)))


class TestDropoutFlattenPool:
    def test_dropout_eval_is_identity(self, rng):
        drop = Dropout(0.5, rng=rng)
        drop.eval()
        x = rng.normal(size=(4, 10))
        np.testing.assert_array_equal(drop(x), x)

    def test_dropout_scales_in_training(self, rng):
        drop = Dropout(0.5, rng=rng)
        x = np.ones((1000, 10))
        out = drop(x)
        # Inverted dropout keeps the expectation roughly unchanged.
        assert abs(out.mean() - 1.0) < 0.1

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_flatten_roundtrip(self, rng):
        flat = Flatten()
        x = rng.normal(size=(2, 3, 4, 4))
        out = flat(x)
        assert out.shape == (2, 48)
        assert flat.backward(out).shape == x.shape

    def test_maxpool_layer(self, rng):
        pool = MaxPool2d(2)
        x = rng.normal(size=(2, 3, 8, 8))
        out = pool(x)
        assert out.shape == (2, 3, 4, 4)
        assert pool.backward(np.ones_like(out)).shape == x.shape
