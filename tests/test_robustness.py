"""The repro.robustness harness: grid shape, determinism, degradation curves."""

import json

import numpy as np
import pytest

import repro
from repro.robustness import RobustnessReport, evaluate

FAULTS = ("dead-pixels", "gaussian-noise")
SEVERITIES = (0.2, 0.8)


@pytest.fixture(scope="module")
def report(quantized_model, prepared_data, tiny_dataset):
    held = tiny_dataset.session(2)
    return evaluate(
        quantized_model,
        held.frames[:24],
        held.labels[:24],
        preprocess=prepared_data["preprocessor"],
        faults=FAULTS,
        severities=SEVERITIES,
        targets=("int-golden",),
        window=3,
        seed=0,
    )


class TestEvaluate:
    def test_grid_is_complete(self, report):
        assert len(report.scenarios) == len(FAULTS) * len(SEVERITIES)
        seen = {(s.fault, s.severity, s.target) for s in report.scenarios}
        assert len(seen) == len(report.scenarios)
        assert report.frames == 24

    def test_baseline_per_target(self, report):
        base = report.baselines["int-golden"]
        for key in ("accuracy_raw", "accuracy_voted", "bas_raw", "bas_voted"):
            assert 0.0 <= base[key] <= 1.0

    def test_degradation_is_relative_to_baseline(self, report):
        base = report.baselines["int-golden"]
        for s in report.scenarios:
            assert s.degradation_voted == pytest.approx(
                base["bas_voted"] - s.bas_voted
            )
            assert s.voting_recovery == pytest.approx(
                s.degradation_raw - s.degradation_voted
            )

    def test_curve_is_severity_ordered(self, report):
        curve = report.curve("int-golden", "gaussian-noise")
        assert curve["severities"] == sorted(SEVERITIES)
        assert len(curve["bas_voted"]) == len(SEVERITIES)

    def test_curves_cover_the_grid(self, report):
        curves = report.curves()
        assert set(curves) == {"int-golden"}
        assert set(curves["int-golden"]) == set(FAULTS)

    def test_worst_case_maximizes_voted_degradation(self, report):
        worst = report.worst_case("int-golden")
        assert worst.degradation_voted == max(
            s.degradation_voted for s in report.scenarios
        )
        assert report.worst_case("missing-target") is None

    def test_as_json_is_serializable_and_complete(self, report):
        payload = json.loads(json.dumps(report.as_json()))
        assert payload["config"]["faults"] == list(FAULTS)
        assert len(payload["scenarios"]) == len(report.scenarios)
        assert "curves" in payload and "baselines" in payload

    def test_deterministic_across_reruns(
        self, quantized_model, prepared_data, tiny_dataset, report
    ):
        held = tiny_dataset.session(2)
        again = evaluate(
            quantized_model,
            held.frames[:24],
            held.labels[:24],
            preprocess=prepared_data["preprocessor"],
            faults=FAULTS,
            severities=SEVERITIES,
            targets=("int-golden",),
            window=3,
            seed=0,
        )
        assert json.dumps(again.as_json(), sort_keys=True) == json.dumps(
            report.as_json(), sort_keys=True
        )

    def test_accepts_prebuilt_engines(
        self, quantized_model, prepared_data, tiny_dataset
    ):
        held = tiny_dataset.session(2)
        engines = {"golden": repro.compile(quantized_model, target="int-golden")}
        rep = evaluate(
            None,  # model unused when engines are supplied
            held.frames[:12],
            held.labels[:12],
            preprocess=prepared_data["preprocessor"],
            faults=("dead-pixels",),
            severities=(0.5,),
            targets=engines,
            window=3,
            seed=1,
        )
        assert rep.targets == ("golden",)
        assert len(rep.scenarios) == 1

    def test_label_count_mismatch_rejected(
        self, quantized_model, tiny_dataset
    ):
        held = tiny_dataset.session(2)
        with pytest.raises(ValueError, match="labels"):
            evaluate(quantized_model, held.frames[:10], held.labels[:8])

    def test_severity_zero_cell_matches_baseline(
        self, quantized_model, prepared_data, tiny_dataset
    ):
        held = tiny_dataset.session(2)
        rep = evaluate(
            quantized_model,
            held.frames[:16],
            held.labels[:16],
            preprocess=prepared_data["preprocessor"],
            faults=("gaussian-noise",),
            severities=(0.0,),
            targets=("int-golden",),
            window=3,
            seed=0,
        )
        cell = rep.scenarios[0]
        base = rep.baselines["int-golden"]
        assert cell.bas_raw == base["bas_raw"]
        assert cell.bas_voted == base["bas_voted"]
        assert cell.degradation_voted == 0.0
