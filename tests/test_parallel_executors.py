"""Executor lifecycle and shared-memory handoff.

What PR 8 fixed: the process pool used to fork per ``run()`` call and to
re-pickle the full datasets into every task payload, making it *slower*
than serial.  These tests pin the fix:

* the pool is persistent — one fork per executor, reused across ``run()``
  calls — and ``close()`` is idempotent (a closed executor transparently
  restarts if used again);
* datasets ride in ``multiprocessing.shared_memory`` blocks that workers
  attach zero-copy and read-only, payloads shrink to descriptors, and every
  block is unlinked on normal exit *and* on exception;
* a crashed worker surfaces a clear error instead of a bare
  ``BrokenProcessPool``, and the executor stays usable afterwards.
"""

import os
import pickle
import threading

import numpy as np
import pytest

from repro.nn import ArrayDataset
from repro.parallel import (
    ProcessExecutor,
    SerialExecutor,
    SharedArray,
    ShmArena,
    ThreadExecutor,
    fingerprint,
)


def _double(x):
    return 2 * x


def _worker_pid(_):
    return os.getpid()


def _sum_dataset(dataset):
    return float(dataset.inputs.sum()) + float(dataset.targets.sum())


def _write_into_dataset(dataset):
    dataset.inputs[0, 0] = 42.0


def _crash(_):
    os._exit(13)


def _block_is_linked(name: str) -> bool:
    from multiprocessing import shared_memory

    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    seg.close()
    return True


@pytest.fixture
def dataset():
    rng = np.random.default_rng(0)
    return ArrayDataset(
        rng.normal(size=(512, 1, 8, 8)), rng.integers(0, 4, size=512)
    )


class TestSharedMemory:
    def test_shared_dataset_pickles_as_descriptors(self, dataset):
        arena = ShmArena()
        try:
            shared = arena.share_dataset(dataset)
            # Same class, same content, same fingerprint => same cache keys.
            assert type(shared) is ArrayDataset
            np.testing.assert_array_equal(shared.inputs, dataset.inputs)
            assert fingerprint(shared) == fingerprint(dataset)
            # The payload cost collapses from megabytes to descriptors.
            assert len(pickle.dumps(shared)) < 2_000 < len(pickle.dumps(dataset))
        finally:
            arena.close()

    def test_roundtrip_attaches_cached_readonly_views(self, dataset):
        arena = ShmArena()
        try:
            shared = arena.share_dataset(dataset)
            once = pickle.loads(pickle.dumps(shared))
            again = pickle.loads(pickle.dumps(shared))
            np.testing.assert_array_equal(once.inputs, dataset.inputs)
            assert once.inputs is again.inputs  # per-process attach cache
            assert not once.inputs.flags.writeable
            with pytest.raises(ValueError):
                once.inputs[0, 0, 0, 0] = 1.0
        finally:
            arena.close()

    def test_share_is_idempotent(self, dataset):
        arena = ShmArena()
        try:
            first = arena.share_dataset(dataset)
            assert arena.share_dataset(dataset).inputs is first.inputs
            assert arena.share_dataset(first) is first  # already shared
            assert len(arena) == 2  # inputs + targets, shared once
        finally:
            arena.close()

    def test_derived_arrays_pickle_by_value(self, dataset):
        """Slices/copies of a shared view do not alias the block."""
        arena = ShmArena()
        try:
            shared = arena.share_array(dataset.inputs)
            for derived in (shared[:3], shared + 1.0, np.asarray(shared).copy()):
                loaded = pickle.loads(pickle.dumps(derived))
                np.testing.assert_array_equal(loaded, derived)
        finally:
            arena.close()
        # close() unlinks the names but never unmaps live mappings, so views
        # handed out earlier stay readable instead of dangling.
        assert float(np.asarray(shared).sum()) == float(dataset.inputs.sum())
        assert isinstance(pickle.loads(pickle.dumps(np.asarray(shared)[:2])), np.ndarray)

    def test_empty_and_foreign_arrays_pass_through(self):
        arena = ShmArena()
        try:
            empty = np.zeros((0, 4))
            assert arena.share_array(empty) is empty
        finally:
            arena.close()

    def test_blocks_unlinked_on_close_and_exception(self, dataset):
        # Normal exit.
        executor = ProcessExecutor(max_workers=2)
        executor.share_dataset(dataset)
        names = executor.shared_block_names
        assert names and all(_block_is_linked(n) for n in names)
        executor.close()
        assert not any(_block_is_linked(n) for n in names)

        # Exception inside the context manager.
        with pytest.raises(RuntimeError, match="boom"):
            with ProcessExecutor(max_workers=2) as executor:
                executor.share_dataset(dataset)
                names = executor.shared_block_names
                assert all(_block_is_linked(n) for n in names)
                raise RuntimeError("boom")
        assert not any(_block_is_linked(n) for n in names)

    def test_workers_consume_shared_dataset_readonly(self, dataset):
        with ProcessExecutor(max_workers=2) as executor:
            shared = executor.share_dataset(dataset)
            want = _sum_dataset(dataset)
            assert executor.run(_sum_dataset, [shared, shared]) == [want, want]
            # Writes into the shared block fail loudly in the worker.
            with pytest.raises(ValueError, match="read-only"):
                executor.run(_write_into_dataset, [shared])


class TestExecutorLifecycle:
    def test_process_pool_is_reused_across_runs(self):
        with ProcessExecutor(max_workers=2) as executor:
            first = set(executor.run(_worker_pid, range(6)))
            pool = executor._pool
            assert pool is not None
            second = set(executor.run(_worker_pid, range(6)))
            assert executor._pool is pool  # same pool object, no re-fork
            assert (first | second) <= set(pool._processes)

    def test_close_is_idempotent_and_revivable(self):
        executor = ProcessExecutor(max_workers=1)
        assert executor.run(_double, [3]) == [6]
        executor.close()
        executor.close()  # idempotent
        assert executor.run(_double, [4]) == [8]  # lazily restarts
        executor.close()

        threads = ThreadExecutor(max_workers=2)
        assert threads.run(_double, [5]) == [10]
        threads.close()
        threads.close()
        assert threads.run(_double, [6]) == [12]
        threads.close()

        SerialExecutor().close()  # no-op, but part of the interface

    def test_worker_crash_surfaces_clear_error(self):
        with ProcessExecutor(max_workers=1) as executor:
            with pytest.raises(RuntimeError, match="worker died"):
                executor.run(_crash, [1])
            # The broken pool was discarded; the executor stays usable.
            assert executor.run(_double, [21]) == [42]

    def test_thread_executor_matches_serial(self):
        payloads = list(range(16))
        want = SerialExecutor().run(_double, payloads)
        with ThreadExecutor(max_workers=4) as threads:
            assert threads.run(_double, payloads) == want
        assert ThreadExecutor().run(_double, []) == []

    def test_chunksize_heuristic(self):
        chunk = ProcessExecutor._chunksize
        assert chunk(2, 4) == 1        # short lists: one task per message
        assert chunk(64, 4) == 4       # ~4 chunks per worker
        assert chunk(1000, 8) == 31


# --------------------------------------------------------------------- #
class TestShmRing:
    """The SPSC byte ring under the serving pool's frame transport."""

    def _ring(self, capacity):
        from repro.parallel import ShmRing

        ring = ShmRing.create(capacity)
        return ring

    def test_write_view_release_roundtrip(self):
        ring = self._ring(256)
        try:
            payload = bytes(range(64))
            pos, end = ring.write(payload)
            assert bytes(ring.view(pos, len(payload))) == payload
            assert ring.occupancy() == pytest.approx(64 / 256)
            ring.release(end)
            assert ring.occupancy() == 0.0
        finally:
            ring.close()

    def test_attach_sees_producer_bytes(self):
        from repro.parallel import ShmRing

        ring = self._ring(128)
        try:
            pos, end = ring.write(b"hello-ring")
            peer = ShmRing.attach(ring.name)
            try:
                assert bytes(peer.view(pos, 10)) == b"hello-ring"
                peer.release(end)
                assert ring.occupancy() == 0.0  # consumer-side release is shared
            finally:
                peer.close()
        finally:
            ring.close()

    def test_wraparound_skips_tail_fragment(self):
        ring = self._ring(100)
        try:
            pos1, end1 = ring.write(b"a" * 80)
            ring.release(end1)
            # 20 bytes remain before the physical end: an followup 40-byte
            # payload must skip them and land at offset 0.
            pos2, end2 = ring.write(b"b" * 40)
            assert pos2 == 0
            assert end2 == 80 + 20 + 40  # absolute cursor accounts the skip
            assert bytes(ring.view(pos2, 40)) == b"b" * 40
            ring.release(end2)
            assert ring.head == ring.tail
        finally:
            ring.close()

    def test_nonblocking_write_raises_ring_full(self):
        from repro.parallel import RingFull

        ring = self._ring(64)
        try:
            ring.write(b"x" * 48)
            with pytest.raises(RingFull):
                ring.write(b"y" * 32, timeout=0.0)
        finally:
            ring.close()

    def test_blocked_write_proceeds_after_release(self):
        ring = self._ring(64)
        try:
            _, end = ring.write(b"x" * 48)
            release_timer = threading.Timer(0.05, lambda: ring.release(end))
            release_timer.start()
            pos, end2 = ring.write(b"y" * 32, timeout=5.0)  # blocks, then lands
            release_timer.join()
            assert bytes(ring.view(pos, 32)) == b"y" * 32
            ring.release(end2)
        finally:
            ring.close()

    def test_oversized_payload_rejected(self):
        ring = self._ring(32)
        try:
            with pytest.raises(ValueError, match="exceeds ring capacity"):
                ring.write(b"z" * 33)
        finally:
            ring.close()

    def test_exact_fit_at_ring_end_does_not_wrap(self):
        ring = self._ring(100)
        try:
            _, end1 = ring.write(b"a" * 60)
            ring.release(end1)
            # 40 bytes remain before the physical end; a 40-byte payload
            # fits exactly and must land there with no skip accounted.
            pos, end = ring.write(b"b" * 40, timeout=0.0)
            assert pos == 60
            assert end == 100  # no skip: cursors advance by payload only
            assert bytes(ring.view(pos, 40)) == b"b" * 40
            ring.release(end)
            assert ring.head == ring.tail == 100
        finally:
            ring.close()

    def test_maximal_frame_after_wraparound_skip(self):
        # Regression: a capacity-sized payload written when the ring is
        # empty but head is mid-buffer needs skip + n > capacity, which the
        # plain fit condition can never satisfy — the write used to poll
        # forever (or raise RingFull with a timeout) despite the ring
        # holding zero unconsumed bytes.
        ring = self._ring(100)
        try:
            _, end1 = ring.write(b"a" * 60)
            ring.release(end1)  # ring empty, head parked at 60
            payload = bytes((i % 251 for i in range(100)))
            pos, end = ring.write(payload, timeout=0.5)
            assert pos == 0  # skipped the 40-byte tail fragment
            assert end == 60 + 40 + 100
            assert bytes(ring.view(pos, 100)) == payload
            assert ring.occupancy() == 1.0  # clamped despite skip overhang
            ring.release(end)
            assert ring.head == ring.tail
            # The ring keeps working normally afterwards.
            pos2, end2 = ring.write(b"c" * 10, timeout=0.0)
            assert bytes(ring.view(pos2, 10)) == b"c" * 10
            ring.release(end2)
        finally:
            ring.close()

    def test_near_maximal_frame_after_skip_still_blocks_when_occupied(self):
        # The empty-ring clause must NOT fire while unconsumed bytes exist:
        # the same oversized-window write with data in flight stays a
        # RingFull, not a corruption.
        from repro.parallel import RingFull

        ring = self._ring(100)
        try:
            _, end1 = ring.write(b"a" * 60)
            ring.release(end1)
            _, end2 = ring.write(b"b" * 30)  # head at 90, 30 bytes in flight
            with pytest.raises(RingFull):
                ring.write(b"c" * 95, timeout=0.0)
            ring.release(end2)  # drain; now the oversized window is legal
            pos, end3 = ring.write(b"c" * 95, timeout=0.5)
            assert pos == 0
            assert bytes(ring.view(pos, 95)) == b"c" * 95
            ring.release(end3)
        finally:
            ring.close()

    def test_close_unlinks_owner_block(self):
        ring = self._ring(32)
        name = ring.name
        assert _block_is_linked(name)
        ring.close()
        assert not _block_is_linked(name)
