"""The `repro.parallel` subsystem: executors, result cache, flow parity.

The contract under test is the ISSUE's acceptance criterion: running any
sweep layer (NAS lambdas, QAT schemes, stage-4 deployments, or the whole
``OptimizationFlow``) with ``executor="process"`` must produce **bit-identical**
results to the serial path for any ``max_workers``, and the content-addressed
result cache must replay identical results on repeated runs while any change
to the seed, the config or the dataset content forces a re-train.
"""

import numpy as np
import pytest

from repro.flow import FlowConfig, OptimizationFlow, seed_builder
from repro.nas.search import SearchConfig, run_search
from repro.nn import ArrayDataset
from repro.parallel import (
    ProcessExecutor,
    ResultCache,
    SerialExecutor,
    ThreadExecutor,
    fingerprint,
    get_executor,
    run_tasks,
)
from repro.quant import QATConfig, explore_mixed_precision
from repro.quant.quantize import PrecisionScheme

TINY_SEARCH = dict(warmup_epochs=0, search_epochs=1, finetune_epochs=1, batch_size=128)


def _double(x):
    return 2 * x


_CALL_LOG = []


def _logged_double(x):
    _CALL_LOG.append(x)
    return 2 * x


class _Slotted:
    """__slots__-only payload object (no __dict__) for fingerprint tests."""

    __slots__ = ("a", "b")

    def __init__(self, a, b):
        self.a = a
        self.b = b


def _arch_signature(points):
    """Everything observable about a sweep result, weights included."""
    return [
        (
            p.strength,
            p.params,
            p.macs,
            p.bas,
            tuple((u["out"]) for u in p.arch_summary),
            tuple(param.data.tobytes() for param in p.model.parameters()),
        )
        for p in points
    ]


def _quant_signature(points):
    return [
        (
            tuple(p.scheme.bits),
            p.bas,
            p.memory_bytes,
            p.macs,
            p.params,
            tuple(param.data.tobytes() for param in p.model.parameters()),
        )
        for p in points
    ]


class TestExecutors:
    def test_get_executor_resolution(self):
        assert isinstance(get_executor(None), SerialExecutor)
        assert isinstance(get_executor("serial"), SerialExecutor)
        proc = get_executor("process", max_workers=3)
        assert isinstance(proc, ProcessExecutor) and proc.max_workers == 3
        threads = get_executor("thread", max_workers=2)
        assert isinstance(threads, ThreadExecutor) and threads.max_workers == 2
        # Instances pass through untouched.
        assert get_executor(proc) is proc

    def test_max_workers_with_instance_warns(self):
        """Regression: `max_workers` used to be silently ignored when an
        executor instance was passed alongside it."""
        proc = ProcessExecutor(max_workers=2)
        with pytest.warns(UserWarning, match="max_workers=8 is ignored"):
            assert get_executor(proc, max_workers=8) is proc
        assert proc.max_workers == 2
        proc.close()

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="serial"):
            get_executor("gpu-cluster")
        with pytest.raises(TypeError, match="run"):
            get_executor(object())
        with pytest.raises(ValueError):
            ProcessExecutor(max_workers=0)

    def test_process_pool_preserves_submission_order(self):
        payloads = list(range(8))
        assert ProcessExecutor(max_workers=2).run(_double, payloads) == [
            2 * p for p in payloads
        ]
        assert SerialExecutor().run(_double, []) == []
        assert ProcessExecutor().run(_double, []) == []


class TestFingerprint:
    def test_content_not_identity(self):
        a = np.arange(6, dtype=np.float64).reshape(2, 3)
        assert fingerprint(a) == fingerprint(a.copy())
        assert fingerprint(a) != fingerprint(a + 1)
        assert fingerprint(a) != fingerprint(a.astype(np.float32))
        assert fingerprint({"x": 1, "y": 2}) == fingerprint({"y": 2, "x": 1})
        assert fingerprint(1) != fingerprint(1.0)
        assert fingerprint((1, 2)) != fingerprint((2, 1))

    def test_seed_sequence_and_spawn_children(self):
        root = np.random.SeedSequence(5)
        again = np.random.SeedSequence(5)
        assert fingerprint(root.spawn(2)[1]) == fingerprint(again.spawn(2)[1])
        assert fingerprint(root.spawn(1)[0]) != fingerprint(root)

    def test_dataset_fingerprint_tracks_content(self):
        x = np.zeros((4, 1, 8, 8))
        y = np.zeros(4, dtype=np.int64)
        assert fingerprint(ArrayDataset(x, y)) == fingerprint(
            ArrayDataset(x.copy(), y.copy())
        )
        assert fingerprint(ArrayDataset(x + 1, y)) != fingerprint(ArrayDataset(x, y))
        assert fingerprint(ArrayDataset(x, y + 1)) != fingerprint(ArrayDataset(x, y))

    def test_module_fingerprint_covers_weights_and_structure(self):
        rng = np.random.default_rng(0)
        a = seed_builder((4, 4), 6)(rng)
        b = seed_builder((4, 4), 6)(np.random.default_rng(0))
        assert fingerprint(a) == fingerprint(b)
        b[0].weight.data += 1e-3
        assert fingerprint(a) != fingerprint(b)
        assert fingerprint(a) != fingerprint(seed_builder((4, 5), 6)(rng))

    def test_builder_fingerprint_distinguishes_configs(self):
        assert fingerprint(seed_builder((4, 4), 6)) == fingerprint(seed_builder((4, 4), 6))
        assert fingerprint(seed_builder((4, 4), 6)) != fingerprint(seed_builder((4, 4), 7))

    def test_slots_objects_hash_their_state(self):
        """Regression: the generic-object fallback only looked at __dict__,
        so any two __slots__ instances of a class collided on one digest —
        poisoning the cache with results from different payloads."""
        assert fingerprint(_Slotted(1, 2)) == fingerprint(_Slotted(1, 2))
        assert fingerprint(_Slotted(1, 2)) != fingerprint(_Slotted(1, 3))
        assert fingerprint(_Slotted(1, 2)) != fingerprint(_Slotted(2, 1))
        # Unassigned slots are tolerated (and distinct from assigned ones).
        partial = _Slotted.__new__(_Slotted)
        partial.a = 1
        assert fingerprint(partial) != fingerprint(_Slotted(1, 2))

    def test_module_fingerprint_covers_non_parameter_buffers(self):
        """Regression: BatchNorm running stats drive eval-mode inference and
        BN folding but are not Parameters; they must invalidate cache keys."""
        a = seed_builder((4, 4), 6)(np.random.default_rng(0))
        b = seed_builder((4, 4), 6)(np.random.default_rng(0))
        bn = next(m for m in b.modules() if hasattr(m, "running_mean"))
        bn.running_mean = bn.running_mean + 0.5
        assert fingerprint(a) != fingerprint(b)


class TestResultCache:
    def test_roundtrip_and_counters(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = fingerprint("unit", 1)
        hit, _ = cache.get(key)
        assert not hit and cache.misses == 1
        value = {"arr": np.arange(3), "n": 7}
        cache.put(key, value)
        hit, loaded = cache.get(key)
        assert hit and cache.hits == 1
        np.testing.assert_array_equal(loaded["arr"], value["arr"])
        assert key in cache and len(cache) == 1
        cache.clear()
        assert len(cache) == 0 and key not in cache

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = fingerprint("x")
        cache.path(key).write_bytes(b"not a pickle")
        hit, _ = cache.get(key)
        assert not hit
        assert key not in cache  # the broken file was dropped

    def test_run_tasks_submits_only_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = [fingerprint("t", i) for i in range(4)]
        out = run_tasks(_double, [0, 1, 2, 3], cache=cache, keys=keys)
        assert out == [0, 2, 4, 6] and cache.misses == 4 and cache.hits == 0
        # Partial overlap: only the new payload runs.
        out = run_tasks(_double, [0, 1, 2, 3, 4], cache=cache, keys=keys + [fingerprint("t", 4)])
        assert out == [0, 2, 4, 6, 8] and cache.hits == 4 and cache.misses == 5

    def test_run_tasks_key_count_mismatch(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(ValueError, match="keys"):
            run_tasks(_double, [1, 2], cache=cache, keys=[fingerprint("k")])

    def test_run_tasks_dedupes_duplicate_keys(self, tmp_path):
        """Payloads sharing a cache key are computed once and fanned out."""
        cache = ResultCache(tmp_path)
        ka, kb = fingerprint("dup", "a"), fingerprint("dup", "b")
        _CALL_LOG.clear()
        out = run_tasks(_logged_double, [1, 1, 2, 1], cache=cache,
                        keys=[ka, ka, kb, ka])
        assert out == [2, 2, 4, 2]
        assert _CALL_LOG == [1, 2]  # one computation per distinct key
        assert cache.misses == 2 and len(cache) == 2
        # A rerun replays everything from disk without calling fn at all.
        _CALL_LOG.clear()
        again = run_tasks(_logged_double, [1, 1, 2, 1], cache=cache,
                          keys=[ka, ka, kb, ka])
        assert again == out and _CALL_LOG == [] and cache.hits == 2

    def test_stale_tmp_files_are_swept(self, tmp_path):
        """Orphaned atomic-write temporaries (a previous process died
        mid-put) are removed on init and on clear()."""
        cache_dir = tmp_path / "c"
        cache = ResultCache(cache_dir)
        key = fingerprint("keep")
        cache.put(key, 1)
        orphan = cache_dir / "deadbeef.pkl.1234.tmp"
        orphan.write_bytes(b"partial write")
        assert ResultCache(cache_dir).get(key) == (True, 1)  # entry survives
        assert not orphan.exists()  # ...but the orphan was swept on init
        orphan.write_bytes(b"partial write")
        cache.clear()
        assert not orphan.exists() and len(cache) == 0


class TestTransientBuffers:
    def test_clear_caches_sheds_activation_buffers(self):
        """Task results and cache entries must pickle at parameter size:
        clear_caches drops the `_cache` dicts *and* the ReLU/Flatten
        `_mask`/`_shape` buffers left behind by the last forward pass."""
        import pickle

        model = seed_builder((4, 4), 6)(np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(256, 1, 8, 8))
        before_forward = len(pickle.dumps(model))
        reference = model.eval()(x[:4])
        inflated = len(pickle.dumps(model))
        assert inflated > 4 * before_forward  # activations dominate
        model.clear_caches()
        assert len(pickle.dumps(model)) < before_forward * 1.1
        for m in model.modules():
            assert not getattr(m, "_cache", None)
            assert getattr(m, "_mask", None) is None
        # Clearing is behaviour-preserving.
        np.testing.assert_array_equal(model(x[:4]), reference)


@pytest.fixture(scope="module")
def sweep_data(prepared_data):
    return prepared_data["train"], prepared_data["test"]


class TestSearchDeterminism:
    """Serial vs process parity of the NAS lambda sweep, weights included."""

    @pytest.fixture(scope="class")
    def serial_points(self, sweep_data):
        train, test = sweep_data
        return run_search(
            seed_builder((6, 6), 8),
            train,
            test,
            config=SearchConfig(lambdas=(1e-5, 5e-4), **TINY_SEARCH),
            seed=11,
        )

    @pytest.mark.parametrize("max_workers", [1, 2, 4])
    def test_process_pool_is_bit_identical(self, sweep_data, serial_points, max_workers):
        train, test = sweep_data
        points = run_search(
            seed_builder((6, 6), 8),
            train,
            test,
            config=SearchConfig(lambdas=(1e-5, 5e-4), **TINY_SEARCH),
            seed=11,
            executor="process",
            max_workers=max_workers,
        )
        assert _arch_signature(points) == _arch_signature(serial_points)

    def test_thread_pool_is_bit_identical(self, sweep_data, serial_points):
        train, test = sweep_data
        points = run_search(
            seed_builder((6, 6), 8),
            train,
            test,
            config=SearchConfig(lambdas=(1e-5, 5e-4), **TINY_SEARCH),
            seed=11,
            executor="thread",
            max_workers=2,
        )
        assert _arch_signature(points) == _arch_signature(serial_points)

    def test_cache_replays_and_invalidates(self, sweep_data, serial_points, tmp_path):
        train, test = sweep_data
        cache = ResultCache(tmp_path / "nas")
        config = SearchConfig(lambdas=(1e-5, 5e-4), **TINY_SEARCH)
        kwargs = dict(config=config, seed=11, cache=cache)
        first = run_search(seed_builder((6, 6), 8), train, test, **kwargs)
        assert cache.misses == 2 and cache.hits == 0
        again = run_search(seed_builder((6, 6), 8), train, test, **kwargs)
        assert cache.hits == 2 and cache.misses == 2
        assert _arch_signature(first) == _arch_signature(again) == _arch_signature(serial_points)

        # A config change re-trains (new keys), as does a seed change...
        run_search(
            seed_builder((6, 6), 8), train, test,
            config=SearchConfig(lambdas=(1e-5, 5e-4), warmup_epochs=0,
                                search_epochs=1, finetune_epochs=2, batch_size=128),
            seed=11, cache=cache,
        )
        assert cache.misses == 4
        run_search(seed_builder((6, 6), 8), train, test, config=config, seed=12, cache=cache)
        assert cache.misses == 6

        # ...and so does a change to the dataset content.
        bumped = ArrayDataset(train.inputs + 1e-3, train.targets)
        run_search(seed_builder((6, 6), 8), bumped, test, **kwargs)
        assert cache.misses == 8

    def test_extending_the_sweep_reuses_cached_trials(self, sweep_data, tmp_path):
        """Adding lambdas to a cached sweep must only train the new points:
        SeedSequence.spawn is prefix-stable and each trial depends only on
        its own strength + seed child, not on the full lambda list."""
        train, test = sweep_data
        cache = ResultCache(tmp_path / "grow")
        short = SearchConfig(lambdas=(1e-5, 5e-4), **TINY_SEARCH)
        first = run_search(seed_builder((6, 6), 8), train, test, config=short, seed=11, cache=cache)
        assert cache.misses == 2
        longer = SearchConfig(lambdas=(1e-5, 5e-4, 1e-3), **TINY_SEARCH)
        grown = run_search(seed_builder((6, 6), 8), train, test, config=longer, seed=11, cache=cache)
        assert cache.hits == 2 and cache.misses == 3  # only the new lambda trained
        by_strength = {p.strength: p for p in grown}
        assert _arch_signature(first) == _arch_signature(
            sorted((by_strength[p.strength] for p in first), key=lambda p: p.params)
        )

    def test_verbose_flag_does_not_invalidate(self, sweep_data, tmp_path):
        train, test = sweep_data
        cache = ResultCache(tmp_path / "v")
        quiet = SearchConfig(lambdas=(5e-4,), **TINY_SEARCH)
        run_search(seed_builder((6, 6), 8), train, test, config=quiet, seed=11, cache=cache)
        loud = SearchConfig(lambdas=(5e-4,), verbose=True, **TINY_SEARCH)
        run_search(seed_builder((6, 6), 8), train, test, config=loud, seed=11, cache=cache)
        assert cache.hits == 1  # cosmetic knob, same key


class TestQatDeterminism:
    SCHEMES = [PrecisionScheme((8, 8, 8, 8)), PrecisionScheme((8, 4, 4, 8))]

    @pytest.fixture(scope="class")
    def serial_points(self, trained_small_model, prepared_data):
        return explore_mixed_precision(
            trained_small_model,
            prepared_data["train"],
            prepared_data["test"],
            schemes=self.SCHEMES,
            config=QATConfig(epochs=1, batch_size=128),
            seed=3,
        )

    @pytest.mark.parametrize("max_workers", [2, 4])
    def test_process_pool_is_bit_identical(
        self, trained_small_model, prepared_data, serial_points, max_workers
    ):
        points = explore_mixed_precision(
            trained_small_model,
            prepared_data["train"],
            prepared_data["test"],
            schemes=self.SCHEMES,
            config=QATConfig(epochs=1, batch_size=128),
            seed=3,
            executor="process",
            max_workers=max_workers,
        )
        assert _quant_signature(points) == _quant_signature(serial_points)

    def test_cache_hit_and_weight_invalidation(
        self, trained_small_model, prepared_data, serial_points, tmp_path
    ):
        cache = ResultCache(tmp_path / "qat")
        kwargs = dict(
            schemes=self.SCHEMES, config=QATConfig(epochs=1, batch_size=128),
            seed=3, cache=cache,
        )
        first = explore_mixed_precision(
            trained_small_model, prepared_data["train"], prepared_data["test"], **kwargs
        )
        again = explore_mixed_precision(
            trained_small_model, prepared_data["train"], prepared_data["test"], **kwargs
        )
        assert cache.misses == 2 and cache.hits == 2
        assert _quant_signature(first) == _quant_signature(again) == _quant_signature(serial_points)

        # Perturbing the source model's weights must invalidate the entries.
        import copy

        nudged = copy.deepcopy(trained_small_model)
        nudged[0].weight.data += 1e-6
        explore_mixed_precision(
            nudged, prepared_data["train"], prepared_data["test"], **kwargs
        )
        assert cache.misses == 4


class TestFlowParity:
    """End-to-end: identical Pareto fronts, Table-I selection and deployment
    reports between `executor="serial"` and `executor="process"`."""

    def _config(self, **overrides):
        base = FlowConfig(
            lambdas=(1e-4,),
            search=SearchConfig(**TINY_SEARCH),
            qat=QATConfig(epochs=1, batch_size=128),
            max_quantized_architectures=1,
            seed=0,
            deploy_targets=("stm32", "maupiti"),
            deploy_frames=2,
        )
        return base.replace(**overrides)

    @pytest.fixture(scope="class")
    def serial_result(self, tiny_dataset):
        return OptimizationFlow(self._config()).run(
            tiny_dataset, test_session_id=2, seed_channels=(6, 6), seed_hidden=8
        )

    def test_process_flow_matches_serial(self, tiny_dataset, serial_result, tmp_path):
        result = OptimizationFlow(
            self._config(executor="process", max_workers=2, cache_dir=str(tmp_path / "flow"))
        ).run(tiny_dataset, test_session_id=2, seed_channels=(6, 6), seed_hidden=8)

        assert result.seed_point == serial_result.seed_point
        assert _arch_signature(result.float_points) == _arch_signature(
            serial_result.float_points
        )
        assert _quant_signature(result.quantized_points) == _quant_signature(
            serial_result.quantized_points
        )
        assert [
            (p.label, p.bas, p.bas_majority, p.memory_bytes, p.macs)
            for p in result.flow_points
        ] == [
            (p.label, p.bas, p.bas_majority, p.memory_bytes, p.macs)
            for p in serial_result.flow_points
        ]
        for front in ("pareto_memory", "pareto_macs"):
            assert [
                (p.label, p.score, p.cost) for p in getattr(result, front)()
            ] == [(p.label, p.score, p.cost) for p in getattr(serial_result, front)()]
        assert {
            label: point.label for label, point in result.table1_selection().items()
        } == {
            label: point.label
            for label, point in serial_result.table1_selection().items()
        }
        assert set(result.deployment_reports) == set(serial_result.deployment_reports)
        for label, report in result.deployment_reports.items():
            assert report.entries == serial_result.deployment_reports[label].entries

    def test_cached_rerun_is_identical_and_trains_nothing(
        self, tiny_dataset, serial_result, tmp_path
    ):
        cache_dir = tmp_path / "warm"
        config = self._config(cache_dir=str(cache_dir))
        OptimizationFlow(config).run(
            tiny_dataset, test_session_id=2, seed_channels=(6, 6), seed_hidden=8
        )
        populated = ResultCache(cache_dir)
        entries = len(populated)
        assert entries > 0

        rerun = OptimizationFlow(self._config(cache_dir=str(cache_dir))).run(
            tiny_dataset, test_session_id=2, seed_channels=(6, 6), seed_hidden=8
        )
        assert len(ResultCache(cache_dir)) == entries  # nothing new trained
        assert rerun.seed_point == serial_result.seed_point
        assert _arch_signature(rerun.float_points) == _arch_signature(
            serial_result.float_points
        )
        for label, report in rerun.deployment_reports.items():
            assert report.entries == serial_result.deployment_reports[label].entries


