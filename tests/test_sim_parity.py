"""Simulator parity: "fast" and "jit" must be bit-exact vs the interpreter.

The contract of :mod:`repro.hw.sim`: for any program that runs to
completion, the trace-compiled simulator ("fast") and the exec-compiled
JIT tier ("jit") leave **registers, data memory, final pc, instruction
count, cycle count and per-mnemonic statistics** exactly as the reference
interpreter would.  This suite checks the contract

* on every Table-I deployment configuration (INT8 / mixed / INT4, scalar
  and SDOTP kernels),
* on the four recognized kernel loops in isolation (driven through the
  real codegen emitters),
* on randomized straight-line / branchy programs that exercise the
  single-step fallback and the closure semantics of every instruction,
* and on adversarial near-miss loops that must fall back gracefully.
"""

import numpy as np
import pytest

from repro.deploy import compile_network, simulate_batch, verify_against_golden
from repro.deploy.codegen import Assembler, _emit_inner_product
from repro.deploy.packing import pack_padded_run, padded_run_length
from repro.hw import (
    DMEM_BASE,
    DMEM_SIZE,
    IbexCore,
    Instruction,
    compile_trace,
    ibex_platform,
    maupiti_platform,
    reg,
)
from repro.quant import PrecisionScheme, convert_to_integer, quantize_model


# --------------------------------------------------------------------------- #
# Harness
# --------------------------------------------------------------------------- #
def assert_cores_equal(interp: IbexCore, fast: IbexCore) -> None:
    assert fast.registers == interp.registers
    assert fast.pc == interp.pc
    assert fast.halted == interp.halted
    assert fast.stats.instructions == interp.stats.instructions
    assert fast.stats.cycles == interp.stats.cycles
    assert fast.stats.per_mnemonic == interp.stats.per_mnemonic
    assert fast.memory.load_bytes(DMEM_BASE, DMEM_SIZE) == interp.memory.load_bytes(
        DMEM_BASE, DMEM_SIZE
    )


SIM_MODES = ("interp", "fast", "jit")


def run_both(program, setup=None, enable_sdotp=True):
    """Run ``program`` in every mode, assert full-state parity vs interp."""
    cores = []
    for mode in SIM_MODES:
        core = IbexCore(enable_sdotp=enable_sdotp, mode=mode)
        if setup is not None:
            setup(core)
        core.run(program)
        cores.append(core)
    interp = cores[0]
    for other in cores[1:]:
        assert_cores_equal(interp, other)
    return interp, cores[1]


# --------------------------------------------------------------------------- #
# Table-I deployment configurations
# --------------------------------------------------------------------------- #
# First layer stays 8-bit: the input buffer always holds 8-bit activations.
TABLE1_SCHEMES = [(8, 8, 8, 8), (8, 4, 4, 8), (8, 4, 8, 4)]


@pytest.fixture(scope="module", params=TABLE1_SCHEMES, ids=lambda s: "-".join(map(str, s)))
def table1_network(request, trained_small_model, prepared_data):
    qmodel = quantize_model(
        trained_small_model,
        PrecisionScheme(request.param),
        calibration_data=prepared_data["train"].inputs[:200],
    )
    return convert_to_integer(qmodel)


@pytest.mark.parametrize("use_sdotp", [False, True], ids=["scalar", "sdotp"])
def test_table1_config_bit_exact(table1_network, prepared_data, use_sdotp):
    """Registers, memory, cycles, energy: fast == jit == interp on real models."""
    frames = prepared_data["preprocessor"](prepared_data["test_session"].frames[:2])
    compiled = compile_network(table1_network, use_sdotp=use_sdotp)
    factory = maupiti_platform if use_sdotp else ibex_platform
    platforms = {mode: factory(sim_mode=mode) for mode in SIM_MODES}
    batches = {
        mode: simulate_batch(platform, compiled, frames)
        for mode, platform in platforms.items()
    }
    bi = batches["interp"]
    for mode in ("fast", "jit"):
        bf = batches[mode]
        np.testing.assert_array_equal(bf.predictions, bi.predictions)
        np.testing.assert_array_equal(bf.logits, bi.logits)
        np.testing.assert_array_equal(bf.cycles_per_frame, bi.cycles_per_frame)
        spec = platforms[mode].spec
        for ci, cf in zip(bi.cycles_per_frame, bf.cycles_per_frame):
            assert spec.energy_per_inference_uj(
                int(cf)
            ) == spec.energy_per_inference_uj(int(ci))
        assert_cores_equal(platforms["interp"].core, platforms[mode].core)
    # And all agree with the vectorized integer golden model.
    for mode in ("fast", "jit"):
        verify_against_golden(
            factory(sim_mode=mode), compiled, table1_network, frames
        )


def test_every_codegen_hint_is_vectorized(table1_network):
    """Every loop codegen annotates must hit a vectorized handler."""
    for use_sdotp in (False, True):
        compiled = compile_network(table1_network, use_sdotp=use_sdotp)
        platform = (maupiti_platform if use_sdotp else ibex_platform)(sim_mode="fast")
        trace = compile_trace(
            compiled.program, platform.memory, enable_sdotp=use_sdotp
        )
        assert compiled.kernel_hints, "codegen should annotate its loops"
        vectorized = trace.vectorized_labels()
        missing = {h.label for h in compiled.kernel_hints} - vectorized
        assert not missing, f"unvectorized codegen loops: {sorted(missing)}"


# --------------------------------------------------------------------------- #
# Kernel loops in isolation (through the real codegen emitters)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("bits", [4, 8])
@pytest.mark.parametrize("use_sdotp", [False, True], ids=["scalar", "sdotp"])
@pytest.mark.parametrize("run_values", [1, 3, 17, 64])
def test_inner_product_loops_bit_exact(bits, use_sdotp, run_values):
    rng = np.random.default_rng(run_values * 10 + bits + use_sdotp)
    lo, hi = -(2 ** (bits - 1)), 2 ** (bits - 1) - 1
    acts = rng.integers(0, hi + 1, size=run_values)  # PACT: non-negative
    weights = rng.integers(lo, hi + 1, size=run_values)
    act_addr = DMEM_BASE
    padded = padded_run_length(run_values, bits)
    wt_addr = DMEM_BASE + 2048

    asm = Assembler()
    asm.li("t1", act_addr)
    asm.li("t2", wt_addr)
    asm.li("s7", 12345)  # accumulator seed
    _emit_inner_product(asm, "ip", bits, use_sdotp, run_values)
    asm.emit("ebreak")
    program = asm.assemble()

    def setup(core):
        core.memory.store_bytes(act_addr, pack_padded_run(acts, bits))
        core.memory.store_bytes(wt_addr, pack_padded_run(weights, bits))

    interp, fast = run_both(program, setup=setup)
    expected = (12345 + int(acts @ weights)) & 0xFFFFFFFF
    assert interp.registers[reg("s7")] == expected


@pytest.mark.parametrize("size_words", [1, 7, 33])
def test_memset_loop_bit_exact(size_words):
    from repro.deploy.codegen import emit_memset

    asm = Assembler()
    emit_memset(asm, "clr", DMEM_BASE + 64, size_words * 4)
    asm.emit("ebreak")
    program = asm.assemble()

    def setup(core):
        core.memory.store_bytes(DMEM_BASE, bytes(range(1, 200)))

    interp, _fast = run_both(program, setup=setup)
    assert interp.memory.load_bytes(DMEM_BASE + 64, size_words * 4) == bytes(
        4 * size_words
    )


def test_memset_nonzero_value_vectorized():
    """A word-fill of a non-zero register still matches the interpreter."""
    asm = Assembler()
    asm.li("a5", 0x1234ABCD)
    asm.li("t1", DMEM_BASE)
    asm.li("t2", DMEM_BASE + 32)
    asm.label("fill")
    asm.emit("sw", rs1="t1", rs2="a5", imm=0)
    asm.emit("addi", rd="t1", rs1="t1", imm=4)
    asm.emit("bne", rs1="t1", rs2="t2", target="fill")
    asm.emit("ebreak")
    interp, _ = run_both(asm.assemble())
    assert interp.memory.load_word(DMEM_BASE + 28, signed=False) == 0x1234ABCD


def test_conv_tap_superloop_fused(table1_network):
    """The SDOTP conv tap loops are fused into 'sdotp-taps' kernels."""
    compiled = compile_network(table1_network, use_sdotp=True)
    platform = maupiti_platform(sim_mode="fast")
    trace = compile_trace(compiled.program, platform.memory, enable_sdotp=True)
    assert trace.kernel_counts().get("sdotp-taps", 0) >= 1


# --------------------------------------------------------------------------- #
# Adversarial near-misses: must fall back, not mis-vectorize
# --------------------------------------------------------------------------- #
def test_aliased_sdotp_loop_falls_back():
    """An sdotp-shaped loop whose accumulator aliases a pointer register
    must not be vectorized (and must still match the interpreter)."""
    asm = Assembler()
    asm.li("t1", DMEM_BASE)
    asm.li("t2", DMEM_BASE + 64)
    asm.li("t3", 4)
    asm.label("loop")
    asm.emit("lw", rd="t4", rs1="t1", imm=0)
    asm.emit("lw", rd="t5", rs1="t2", imm=0)
    asm.emit("sdotp8", rd="t1", rs1="t4", rs2="t5")  # acc == act pointer!
    asm.emit("addi", rd="t1", rs1="t1", imm=4)
    asm.emit("addi", rd="t2", rs1="t2", imm=4)
    asm.emit("addi", rd="t3", rs1="t3", imm=-1)
    asm.emit("bne", rs1="t3", rs2="zero", target="loop")
    asm.emit("ebreak")
    program = asm.assemble()

    core = IbexCore(mode="fast")
    trace = compile_trace(program, core.memory, enable_sdotp=True)
    assert not trace.vectorized_labels()

    def setup(c):
        c.memory.store_bytes(DMEM_BASE, bytes([1] * 128))

    run_both(program, setup=setup)


def test_jump_into_block_interior_single_steps():
    """A jalr landing mid-block exercises the single-step fallback."""
    asm = Assembler()
    asm.li("t0", 16)  # address of the 5th instruction slot (li a2 below)
    asm.emit("jalr", rd="ra", rs1="t0", imm=0)
    asm.li("a0", 111)  # skipped
    asm.li("a1", 222)  # skipped
    # Interior landing point: these three form one straight block with the
    # two above, entered at its middle.
    asm.li("a2", 333)
    asm.li("a3", 444)
    asm.emit("ebreak")
    program = asm.assemble()
    interp, fast = run_both(program)
    assert interp.registers[reg("a2")] == 333
    assert interp.registers[reg("a0")] == 0


def test_auipc_at_misaligned_pc_matches_interpreter():
    """jalr only clears bit 0, so auipc can execute at pc % 4 != 0; the
    fallback must use the live pc, not the closure's static address."""
    program = [
        Instruction("addi", rd=reg("t0"), rs1=0, imm=10),
        Instruction("jalr", rd=reg("ra"), rs1=reg("t0"), imm=0),
        Instruction("auipc", rd=reg("a0"), imm=0),  # runs at pc=10
        Instruction("addi", rd=reg("a1"), rs1=0, imm=5),
        Instruction("ebreak"),
    ]
    interp, _fast = run_both(program)
    assert interp.registers[reg("a0")] == 10


# --------------------------------------------------------------------------- #
# Randomized programs
# --------------------------------------------------------------------------- #
R_OPS = ["add", "sub", "and", "or", "xor", "sll", "srl", "sra", "slt", "sltu",
         "mul", "mulh", "div", "rem", "sdotp8", "sdotp4"]
I_OPS = ["addi", "andi", "ori", "xori", "slti", "sltiu"]
SHIFT_OPS = ["slli", "srli", "srai"]


def _random_program(rng: np.random.Generator, length: int = 80):
    """A random halting program: ALU soup + aligned dmem traffic + forward
    branches.  Register x5 holds the dmem base and is never overwritten."""
    base = reg("t0")  # x5
    program = [
        Instruction("lui", rd=base, imm=DMEM_BASE),
    ]
    regs_pool = [r for r in range(1, 32) if r != base]
    for i in range(length):
        kind = rng.random()
        rd = int(rng.choice(regs_pool))
        rs1 = int(rng.integers(0, 32))
        rs2 = int(rng.integers(0, 32))
        if kind < 0.55:
            program.append(
                Instruction(str(rng.choice(R_OPS)), rd=rd, rs1=rs1, rs2=rs2)
            )
        elif kind < 0.75:
            imm = int(rng.integers(-2048, 2048))
            program.append(Instruction(str(rng.choice(I_OPS)), rd=rd, rs1=rs1, imm=imm))
        elif kind < 0.82:
            program.append(
                Instruction(str(rng.choice(SHIFT_OPS)), rd=rd, rs1=rs1,
                            imm=int(rng.integers(0, 32)))
            )
        elif kind < 0.90:
            offset = int(rng.integers(0, 510)) * 4
            mnemonic = str(rng.choice(["lw", "lh", "lhu", "lb", "lbu"]))
            program.append(Instruction(mnemonic, rd=rd, rs1=base, imm=offset))
        elif kind < 0.96:
            offset = int(rng.integers(0, 510)) * 4
            mnemonic = str(rng.choice(["sw", "sh", "sb"]))
            program.append(Instruction(mnemonic, rs1=base, rs2=rs2, imm=offset))
        else:
            # Forward branch: always terminates.
            mnemonic = str(rng.choice(sorted(["beq", "bne", "blt", "bge", "bltu", "bgeu"])))
            skip = int(rng.integers(1, 6))
            program.append(
                Instruction(mnemonic, rs1=rs1, rs2=rs2, imm=4 * (skip + 1))
            )
    program.append(Instruction("ebreak"))
    # Forward branches may overshoot the ebreak; pad with harmless targets.
    program.extend(Instruction("addi", rd=1, rs1=1, imm=1) for _ in range(8))
    program.append(Instruction("ebreak"))
    return program


@pytest.mark.parametrize("seed", range(12))
def test_randomized_programs_bit_exact(seed):
    rng = np.random.default_rng(seed)
    program = _random_program(rng)
    init_regs = [0] + [int(v) for v in rng.integers(0, 2**32, size=31, dtype=np.uint64)]
    dmem_fill = rng.integers(0, 256, size=4096, dtype=np.uint64).astype("uint8").tobytes()

    def setup(core):
        core.registers = list(init_regs)
        core.memory.store_bytes(DMEM_BASE, dmem_fill)

    run_both(program, setup=setup)


def test_empty_program_raises_simulation_error_in_all_modes():
    from repro.hw import SimulationError

    for mode in SIM_MODES:
        core = IbexCore(mode=mode)
        with pytest.raises(SimulationError, match="outside the program"):
            core.run([])


def test_runaway_program_raises_in_all_modes():
    from repro.hw import SimulationError

    infinite = [Instruction("jal", rd=0, imm=0)]
    for mode in SIM_MODES:
        core = IbexCore(max_instructions=1000, mode=mode)
        with pytest.raises(SimulationError, match="instruction limit"):
            core.run(infinite)


@pytest.mark.parametrize("mode", ["fast", "jit"])
def test_trace_cache_invalidated_on_in_place_edit(mode):
    """Mutating a program list between runs must recompile the trace."""
    program = [
        Instruction("addi", rd=reg("t0"), rs1=0, imm=7),
        Instruction("ebreak"),
    ]
    core = IbexCore(mode=mode)
    core.run(program)
    assert core.registers[reg("t0")] == 7
    program[0] = Instruction("addi", rd=reg("t0"), rs1=0, imm=99)
    core.reset()
    core.run(program)
    assert core.registers[reg("t0")] == 99


@pytest.mark.parametrize("mode", ["fast", "jit"])
def test_sdotp_rejected_on_vanilla_core(mode):
    from repro.hw import SimulationError

    program = [Instruction("sdotp8", rd=1, rs1=2, rs2=3), Instruction("ebreak")]
    core = IbexCore(enable_sdotp=False, mode=mode)
    with pytest.raises(SimulationError, match="SDOTP"):
        core.run(program)


# --------------------------------------------------------------------------- #
# Batched execution
# --------------------------------------------------------------------------- #
class TestSimulateBatch:
    @pytest.mark.parametrize("mode", ["fast", "jit"])
    def test_matches_per_frame_runs(self, integer_network, prepared_data, mode):
        from repro.deploy.runtime import load_model, run_frame

        frames = prepared_data["preprocessor"](
            prepared_data["test_session"].frames[:4]
        )
        compiled = compile_network(integer_network, use_sdotp=True)
        batch_platform = maupiti_platform(sim_mode=mode)
        batch = simulate_batch(batch_platform, compiled, frames)

        single_platform = maupiti_platform(sim_mode=mode)
        load_model(single_platform, compiled)
        singles = [run_frame(single_platform, compiled, f) for f in frames]
        np.testing.assert_array_equal(
            batch.predictions, [r.prediction for r in singles]
        )
        np.testing.assert_array_equal(
            batch.cycles_per_frame, [r.cycles for r in singles]
        )
        np.testing.assert_array_equal(batch.logits, np.stack([r.logits for r in singles]))

    def test_engine_predict_batch_modes_agree(self, integer_network, prepared_data):
        import repro

        frames = prepared_data["preprocessor"](
            prepared_data["test_session"].frames[:3]
        )
        interp = repro.compile(integer_network, target="maupiti", sim_mode="interp")
        bi = interp.predict_batch(frames)
        for mode in ("fast", "jit"):
            engine = repro.compile(integer_network, target="maupiti", sim_mode=mode)
            bf = engine.predict_batch(frames)
            np.testing.assert_array_equal(bf.predictions, bi.predictions)
            np.testing.assert_array_equal(bf.logits, bi.logits)
            np.testing.assert_array_equal(bf.cycles_per_frame, bi.cycles_per_frame)
            np.testing.assert_array_equal(
                bf.energy_uj_per_frame, bi.energy_uj_per_frame
            )

    def test_empty_batch(self, integer_network):
        compiled = compile_network(integer_network, use_sdotp=True)
        for empty in (np.empty((0, 1, 8, 8)), [], np.asarray([])):
            batch = simulate_batch(maupiti_platform(), compiled, empty)
            assert len(batch.predictions) == 0
            assert batch.logits.shape == (0, compiled.num_classes)
        verify_against_golden(
            maupiti_platform(), compiled, integer_network, np.asarray([])
        )

    def test_empty_batch_through_engine(self, integer_network):
        import repro

        batch = repro.compile(integer_network, target="maupiti").predict_batch([])
        assert len(batch) == 0

    def test_conflicting_platform_and_sim_mode_rejected(self, integer_network):
        import repro
        from repro.engine import EngineError

        platform = maupiti_platform(sim_mode="fast")
        with pytest.raises(EngineError, match="conflicting"):
            repro.compile(
                integer_network, target="maupiti",
                platform=platform, sim_mode="interp",
            )
        # Matching or omitted sim_mode is fine.
        engine = repro.compile(
            integer_network, target="maupiti", platform=platform, sim_mode="fast"
        )
        assert engine.backend.sim_mode == "fast"

    def test_keep_results_carries_stats(self, integer_network, prepared_data):
        frames = prepared_data["preprocessor"](
            prepared_data["test_session"].frames[:2]
        )
        compiled = compile_network(integer_network, use_sdotp=True)
        batch = simulate_batch(maupiti_platform(), compiled, frames, keep_results=True)
        assert len(batch.results) == 2
        assert all(r.stats.instructions > 0 for r in batch.results)
