"""Randomized property tests for the quantization layer.

Complements the example-based checks in ``test_quant.py`` with properties
that must hold over *arbitrary* seeded random tensors:

* INT4/INT8 symmetric quantize→dequantize round-trips stay within half a
  quantization step and never leave the representable signed range;
* the fake-quant grids are idempotent (requantizing a dequantized tensor is
  exact) and monotonic;
* the integer requantization pipeline (fixed-point multiply + rounding
  shift) is monotonically non-decreasing in the accumulator and tracks the
  real multiplier within the precision implied by its bit width.

The tensors are drawn through ``numpy.random.default_rng`` generators seeded
by hypothesis, so every failure is replayable from the printed example.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant.fake_quant import (
    InputQuantizer,
    PactActivationQuantizer,
    dequantize,
    quantize_symmetric,
    signed_weight_levels,
)
from repro.quant.integer import quantize_multiplier, round_shift

BITS = st.sampled_from([4, 8])
SEEDS = st.integers(min_value=0, max_value=2**32 - 1)
SCALES = st.floats(min_value=1e-3, max_value=1e3)


def _tensor(seed: int, scale: float, size: int = 257) -> np.ndarray:
    """A reproducible random tensor with both tails and near-zero mass."""
    rng = np.random.default_rng(seed)
    return np.concatenate(
        [rng.normal(0.0, scale, size), rng.uniform(-scale, scale, size), [0.0]]
    )


class TestSymmetricWeightRoundTrip:
    @given(seed=SEEDS, bits=BITS, scale=SCALES)
    @settings(max_examples=60, deadline=None)
    def test_round_trip_error_within_half_step(self, seed, bits, scale):
        x = _tensor(seed, scale)
        q, qscale = quantize_symmetric(x, bits)
        levels = signed_weight_levels(bits)
        assert q.dtype == np.int64
        assert np.abs(q).max() <= levels
        # The scale is range-based, so no value saturates and the rounding
        # error is bounded by half a step everywhere.
        err = np.abs(dequantize(q, qscale) - x)
        assert err.max() <= qscale / 2 + 1e-12
        # Relative to the tensor's own range: 4 bits has 7 positive levels.
        assert err.max() <= np.abs(x).max() / (2 * levels) + 1e-12

    @given(seed=SEEDS, bits=BITS, scale=SCALES)
    @settings(max_examples=60, deadline=None)
    def test_requantization_is_idempotent(self, seed, bits, scale):
        x = _tensor(seed, scale)
        q, qscale = quantize_symmetric(x, bits)
        # Quantizing the dequantized tensor on the same grid changes nothing.
        q2, _ = quantize_symmetric(dequantize(q, qscale), bits, scale=qscale)
        np.testing.assert_array_equal(q, q2)

    @given(seed=SEEDS, bits=BITS)
    @settings(max_examples=40, deadline=None)
    def test_quantization_is_monotonic(self, seed, bits):
        x = np.sort(_tensor(seed, 1.0))
        q, _ = quantize_symmetric(x, bits)
        assert (np.diff(q) >= 0).all()

    def test_all_zero_tensor_is_stable(self):
        q, scale = quantize_symmetric(np.zeros(16), 4)
        assert scale == 1.0 and not q.any()


class TestActivationQuantizers:
    @given(seed=SEEDS, bits=BITS, alpha=st.floats(min_value=0.1, max_value=50.0))
    @settings(max_examples=60, deadline=None)
    def test_pact_round_trip_and_range(self, seed, bits, alpha):
        quant = PactActivationQuantizer(bits, alpha_init=alpha)
        x = _tensor(seed, alpha)
        out = quant(x)
        scale = quant.scale
        assert out.min() >= 0.0 and out.max() <= alpha + 1e-12
        # Outputs live exactly on the integer grid...
        np.testing.assert_allclose(out / scale, np.round(out / scale), atol=1e-9)
        # ...and inside the clipping range the error is at most half a step.
        interior = (x > 0) & (x < alpha)
        assert (np.abs(out - x)[interior] <= scale / 2 + 1e-12).all()
        # quantize_to_int agrees with the fake-quant forward.
        np.testing.assert_allclose(out, quant.quantize_to_int(x) * scale, atol=1e-9)

    @given(seed=SEEDS, bits=BITS)
    @settings(max_examples=40, deadline=None)
    def test_pact_is_monotonic(self, seed, bits):
        quant = PactActivationQuantizer(bits, alpha_init=3.0)
        x = np.sort(_tensor(seed, 3.0))
        assert (np.diff(quant(x)) >= -1e-12).all()
        assert (np.diff(quant.quantize_to_int(x)) >= 0).all()

    @given(seed=SEEDS, bits=BITS, scale=SCALES)
    @settings(max_examples=60, deadline=None)
    def test_input_quantizer_round_trip_inside_calibrated_range(
        self, seed, bits, scale
    ):
        x = _tensor(seed, scale)
        quant = InputQuantizer(bits).calibrate(x)
        out = quant(x)
        # Calibration covers the whole tensor, so every value round-trips
        # within half a step of the affine grid.
        assert np.abs(out - x).max() <= quant.scale / 2 + 1e-12
        ints = quant.quantize_to_int(x)
        assert ints.min() >= -(2 ** (bits - 1)) and ints.max() <= 2 ** (bits - 1) - 1
        np.testing.assert_allclose(
            out, (ints - quant.zero_point) * quant.scale, atol=1e-9
        )

    @given(seed=SEEDS, bits=BITS)
    @settings(max_examples=40, deadline=None)
    def test_input_quantizer_is_monotonic_and_clips_outliers(self, seed, bits):
        rng = np.random.default_rng(seed)
        calib = rng.normal(0, 1, 64)
        quant = InputQuantizer(bits).calibrate(calib)
        x = np.sort(rng.normal(0, 5, 301))  # deliberately exceeds the range
        assert (np.diff(quant.quantize_to_int(x)) >= 0).all()
        out = quant(x)
        assert (np.diff(out) >= -1e-12).all()
        qmin = -(2 ** (bits - 1))
        qmax = 2 ** (bits - 1) - 1
        assert out.min() >= (qmin - quant.zero_point) * quant.scale - 1e-9
        assert out.max() <= (qmax - quant.zero_point) * quant.scale + 1e-9


class TestIntegerRequantization:
    @given(
        seed=SEEDS,
        multiplier=st.floats(min_value=1e-6, max_value=0.999),
        bits=st.integers(min_value=2, max_value=15),
    )
    @settings(max_examples=80, deadline=None)
    def test_requantization_is_monotonic(self, seed, multiplier, bits):
        """clamp(round_shift(acc * m, s)) never decreases when acc grows."""
        m, shift = quantize_multiplier(multiplier, bits=bits)
        rng = np.random.default_rng(seed)
        acc = np.sort(rng.integers(0, 2**20, size=400))
        out = round_shift(acc * m, shift)
        assert (np.diff(out) >= 0).all()
        clipped = np.clip(out, 0, 127)
        assert (np.diff(clipped) >= 0).all()

    @given(
        multiplier=st.floats(min_value=1e-6, max_value=0.999),
        bits=st.integers(min_value=2, max_value=15),
    )
    @settings(max_examples=80, deadline=None)
    def test_fixed_point_multiplier_accuracy(self, multiplier, bits):
        m, shift = quantize_multiplier(multiplier, bits=bits)
        assert 0 < m < 2**bits
        approx = m * 2.0**-shift
        # One unit in the last place of an m with `bits` significant bits.
        assert abs(approx - multiplier) <= multiplier * 2.0 ** -(bits - 1)

    @given(seed=SEEDS, shift=st.integers(min_value=1, max_value=31))
    @settings(max_examples=60, deadline=None)
    def test_round_shift_rounds_to_nearest(self, seed, shift):
        rng = np.random.default_rng(seed)
        value = rng.integers(0, 2**40, size=300)
        out = round_shift(value, shift)
        # Round-to-nearest: at most half a unit from the exact quotient.
        assert np.abs(out - value / 2.0**shift).max() <= 0.5 + 1e-9

    def test_round_shift_negative_shift_is_left_shift(self):
        np.testing.assert_array_equal(round_shift(np.array([3]), -2), [12])

    def test_quantize_multiplier_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            quantize_multiplier(0.0)
        with pytest.raises(ValueError):
            quantize_multiplier(-1.5)
