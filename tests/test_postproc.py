"""Majority-voting post-processing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.postproc import (
    MajorityVoter,
    evaluate_majority_voting,
    majority_filter,
    sweep_window_lengths,
)


class TestMajorityVoter:
    def test_filters_sporadic_misprediction(self):
        voter = MajorityVoter(window=5)
        stream = [1, 1, 1, 3, 1, 1]
        out = [voter.update(p) for p in stream]
        assert out[3] == 1  # the isolated "3" is filtered out
        assert out == [1, 1, 1, 1, 1, 1]

    def test_tracks_genuine_change_with_delay(self):
        voter = MajorityVoter(window=5)
        stream = [0] * 5 + [2] * 5
        out = [voter.update(p) for p in stream]
        assert out[-1] == 2
        # The change is detected within about half a window.
        first_detect = next(i for i, v in enumerate(out) if v == 2)
        assert 5 <= first_detect <= 5 + 3

    def test_window_one_is_identity(self):
        voter = MajorityVoter(window=1)
        stream = [0, 3, 1, 2]
        assert [voter.update(p) for p in stream] == stream

    def test_tie_break_prefers_most_recent(self):
        voter = MajorityVoter(window=4)
        out = [voter.update(p) for p in [0, 0, 1, 1]]
        assert out[-1] == 1

    def test_reset_and_len(self):
        voter = MajorityVoter(window=3)
        voter.update(1)
        voter.update(2)
        assert len(voter) == 2
        voter.reset()
        assert len(voter) == 0

    def test_memory_cost_is_window_bytes(self):
        assert MajorityVoter(window=5).memory_bytes() == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            MajorityVoter(window=0)
        with pytest.raises(ValueError):
            MajorityVoter(window=3).update(7)

    @given(
        st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=100),
        st.sampled_from([1, 3, 5, 7]),
    )
    @settings(max_examples=50, deadline=None)
    def test_output_is_a_recent_prediction(self, stream, window):
        """The filtered value is always one of the values currently in the FIFO."""
        voter = MajorityVoter(window=window)
        for i, p in enumerate(stream):
            out = voter.update(p)
            recent = stream[max(0, i - window + 1) : i + 1]
            assert out in recent

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_constant_stream_is_unchanged(self, stream):
        constant = [stream[0]] * len(stream)
        np.testing.assert_array_equal(majority_filter(constant, window=5), constant)


class TestMajorityVoterThreadSafety:
    """The serving layer votes from its batcher thread while session
    open/close/eviction resets run on HTTP threads — updates must never
    observe a half-cleared FIFO or corrupt it."""

    def test_concurrent_updates_stay_valid(self):
        import threading

        voter = MajorityVoter(window=5)
        outputs = []
        errors = []

        def worker(cls):
            try:
                outputs.extend(voter.update(cls) for _ in range(500))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(c,)) for c in (0, 1, 2, 3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        # Every output is a valid class and the FIFO never overfills.
        assert all(0 <= v < 4 for v in outputs)
        assert len(outputs) == 2000
        assert len(voter) == 5

    def test_concurrent_resets_never_corrupt(self):
        import threading

        voter = MajorityVoter(window=3)
        stop = threading.Event()
        errors = []

        def resetter():
            while not stop.is_set():
                voter.reset()

        def updater():
            try:
                for _ in range(2000):
                    assert voter.update(1) == 1  # sole class always wins
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                stop.set()

        threads = [
            threading.Thread(target=resetter),
            threading.Thread(target=updater),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert len(voter) <= 3

    def test_reset_between_streams_forgets_history(self):
        voter = MajorityVoter(window=5)
        for p in (2, 2, 2, 2):
            voter.update(p)
        voter.reset()
        # A fresh stream is not dragged toward the pre-reset majority.
        assert voter.update(0) == 0
        assert len(voter) == 1


class TestEvaluation:
    def test_majority_improves_noisy_predictions(self):
        rng = np.random.default_rng(0)
        # Slowly-varying ground truth with sporadic independent errors.
        labels = np.repeat(rng.integers(0, 4, size=40), 25)
        predictions = labels.copy()
        flip = rng.random(labels.size) < 0.2
        predictions[flip] = rng.integers(0, 4, size=int(flip.sum()))
        result = evaluate_majority_voting(predictions, labels, window=5)
        assert result.bas_filtered > result.bas_raw
        assert result.bas_gain > 0.03
        assert result.detection_delay_frames == pytest.approx(2.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            evaluate_majority_voting([0, 1], [0], window=3)

    def test_sweep_window_lengths(self):
        rng = np.random.default_rng(1)
        labels = np.repeat(rng.integers(0, 4, size=20), 30)
        preds = labels.copy()
        flip = rng.random(labels.size) < 0.15
        preds[flip] = rng.integers(0, 4, size=int(flip.sum()))
        results = sweep_window_lengths(preds, labels, windows=(1, 3, 5, 9))
        assert [r.window for r in results] == [1, 3, 5, 9]
        # window=1 equals the raw accuracy.
        assert results[0].bas_filtered == pytest.approx(results[0].bas_raw)
