"""The repro.faults subsystem: registry, models, injectors.

The three contracts every registered fault model must honor (replay
determinism, chunk invariance, severity-0 identity) are property-tested by
hypothesis, so every failure is replayable from the printed example.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.faults import (
    DeadPixels,
    FaultError,
    FaultInjectingClient,
    FaultModel,
    FaultPipeline,
    FrameDrop,
    StreamInjector,
    StuckPixels,
    available_faults,
    build_fault,
    fault_table,
    get_fault,
    make_faulted_variant,
    register_fault,
    unregister_fault,
    wrap_stream,
)

ALL_FAULTS = available_faults()


def _frames(data_seed: int, n: int, channel: bool = False) -> np.ndarray:
    """A deterministic stream of plausible (Celsius-range) 8x8 frames."""
    rng = np.random.default_rng(data_seed)
    shape = (n, 1, 8, 8) if channel else (n, 8, 8)
    return 20.0 + 8.0 * rng.random(shape)


class TestProperties:
    @given(
        name=st.sampled_from(ALL_FAULTS),
        severity=st.floats(0.05, 1.0),
        seed=st.integers(0, 2**31 - 1),
        data_seed=st.integers(0, 2**31 - 1),
        n=st.integers(1, 12),
    )
    @settings(max_examples=60, deadline=None)
    def test_replay_is_bit_identical(self, name, severity, seed, data_seed, n):
        frames = _frames(data_seed, n)
        fault = build_fault(name, severity)
        a = fault.apply(frames, seed=np.random.SeedSequence(seed))
        b = fault.apply(frames, seed=np.random.SeedSequence(seed))
        assert a.tobytes() == b.tobytes()

    @given(
        name=st.sampled_from(ALL_FAULTS),
        severity=st.floats(0.0, 1.0),
        dtype=st.sampled_from([np.float32, np.float64]),
        channel=st.booleans(),
        n=st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_shape_and_dtype_preserved(self, name, severity, dtype, channel, n):
        frames = _frames(0, n, channel).astype(dtype)
        out = build_fault(name, severity).apply(frames, seed=7)
        assert out.shape == frames.shape
        assert out.dtype == frames.dtype

    @given(
        name=st.sampled_from(ALL_FAULTS),
        data_seed=st.integers(0, 2**31 - 1),
        n=st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_severity_zero_is_identity(self, name, data_seed, n):
        frames = _frames(data_seed, n)
        out = build_fault(name, 0.0).apply(frames, seed=3)
        assert out.tobytes() == frames.tobytes()
        assert out is not frames  # still a private copy

    @given(
        name=st.sampled_from(ALL_FAULTS),
        severity=st.floats(0.05, 1.0),
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(2, 12),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_chunk_invariance(self, name, severity, seed, n, data):
        """Any split of the stream equals the whole-array application."""
        frames = _frames(seed ^ 0x5EED, n)
        fault = build_fault(name, severity)
        whole = fault.apply(frames, seed=np.random.SeedSequence(seed))
        cuts = sorted(
            data.draw(st.lists(st.integers(0, n), max_size=3, unique=True))
        )
        state = fault.state(np.random.SeedSequence(seed))
        pieces = []
        for lo, hi in zip([0, *cuts], [*cuts, n]):
            if hi > lo:
                pieces.append(fault.apply(frames[lo:hi], state))
        chunked = np.concatenate(pieces)
        assert chunked.tobytes() == whole.tobytes()


class TestRegistry:
    def test_builtin_faults_present(self):
        assert {
            "dead-pixels", "stuck-pixels", "gaussian-noise", "salt-pepper",
            "ambient-drift", "gain-drift", "frame-drop", "burst-dropout",
            "sensor-reset",
        } <= set(ALL_FAULTS)

    def test_lookup_is_case_insensitive(self):
        assert get_fault("DEAD-pixels").fault_cls is DeadPixels

    def test_unknown_fault_lists_alternatives(self):
        with pytest.raises(FaultError, match="dead-pixels"):
            get_fault("cosmic-rays")

    def test_bad_severity_rejected(self):
        with pytest.raises(FaultError, match="severity"):
            build_fault("gaussian-noise", 1.5)

    def test_register_unregister_roundtrip(self):
        @register_fault("test-null", description="does nothing", aliases=("tn",))
        class NullFault(FaultModel):
            def _apply_frame(self, frame, rng, state):
                return frame

        try:
            assert get_fault("tn").fault_cls is NullFault
            assert isinstance(build_fault("test-null", 0.5), NullFault)
        finally:
            unregister_fault("test-null")
        with pytest.raises(FaultError):
            get_fault("test-null")
        with pytest.raises(FaultError):
            get_fault("tn")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_fault("dead-pixels")(type("Dup", (FaultModel,), {}))

    def test_fault_table_mentions_every_fault(self):
        table = fault_table()
        for name in ALL_FAULTS:
            assert name in table

    def test_temporal_flag(self):
        assert get_fault("ambient-drift").temporal
        assert not get_fault("gaussian-noise").temporal


class TestModels:
    def test_bad_frame_rank_rejected(self):
        with pytest.raises(FaultError, match="frames"):
            DeadPixels(0.5).apply(np.zeros((8, 8)))

    def test_dead_pixels_read_the_constant(self):
        frames = _frames(1, 6)
        fault = DeadPixels(1.0, max_fraction=0.25, value=-5.0)
        out = fault.apply(frames, seed=2)
        dead = np.isclose(out, -5.0).reshape(6, -1)
        # The same (nonzero) pixel set is dead in every frame.
        assert dead[0].sum() == round(0.25 * 64)
        assert (dead == dead[0]).all()

    def test_stuck_pixels_latch_first_observation(self):
        frames = _frames(2, 5)
        fault = StuckPixels(1.0, max_fraction=0.1)
        state = fault.state(seed=3)
        out = fault.apply(frames, state)
        mask = state.extra["mask"]
        flat = out.reshape(5, -1)
        first = frames.reshape(5, -1)[0, mask]
        assert np.array_equal(flat[:, mask], np.tile(first, (5, 1)))

    def test_frame_drop_repeats_last_delivery(self):
        frames = _frames(3, 6)
        fault = FrameDrop(1.0, max_rate=1.0)  # every frame dropped
        out = fault.apply(frames, seed=4)
        # Nothing precedes frame 0, so it passes through; everything after
        # repeats it — the stream length (and label alignment) is preserved.
        assert np.array_equal(out, np.tile(frames[0], (6, 1, 1)))

    def test_pipeline_composes_in_order(self):
        from repro.faults import FaultState

        frames = _frames(4, 4)
        dead = DeadPixels(1.0, value=99.0)
        drop = FrameDrop(0.8)
        pipe = FaultPipeline([dead, drop])
        out = pipe.apply(frames, pipe.state(seed=5))
        # A pipeline is exactly the sequential application of its members,
        # each seeded from one spawn of the shared root.
        children = np.random.SeedSequence(5).spawn(2)
        manual = drop.apply(
            dead.apply(frames, FaultState(seed_seq=children[0])),
            FaultState(seed_seq=children[1]),
        )
        assert out.tobytes() == manual.tobytes()
        assert (out == 99.0).any()

    def test_pipeline_is_replayable(self):
        frames = _frames(5, 8)
        pipe = FaultPipeline([DeadPixels(0.5), FrameDrop(0.7)])
        a = pipe.apply(frames, pipe.state(seed=6))
        b = pipe.apply(frames, pipe.state(seed=6))
        assert a.tobytes() == b.tobytes()

    def test_pipeline_rejects_non_faults(self):
        with pytest.raises(FaultError, match="not a FaultModel"):
            FaultPipeline([DeadPixels(0.5), "gaussian-noise"])


class TestInjectors:
    def test_stream_injector_matches_offline(self):
        frames = _frames(6, 10)
        offline = build_fault("gaussian-noise", 0.4).apply(
            frames, seed=np.random.SeedSequence(11)
        )
        injector = StreamInjector("gaussian-noise", 0.4, seed=np.random.SeedSequence(11))
        online = np.concatenate([injector(frames[i : i + 1]) for i in range(10)])
        assert online.tobytes() == offline.tobytes()
        assert injector.frames_seen == 10

    def test_injector_reset_replays(self):
        frames = _frames(7, 5)
        injector = StreamInjector("salt-pepper", 0.6, seed=8)
        first = injector(frames)
        injector.reset()
        assert injector.frames_seen == 0
        assert injector(frames).tobytes() == first.tobytes()

    def test_injector_requires_severity_for_names(self):
        with pytest.raises(ValueError, match="severity"):
            StreamInjector("gaussian-noise")

    def test_wrap_stream_matches_offline_replay(self, quantized_model, prepared_data):
        engine = repro.compile(quantized_model, target="int-golden")
        frames = prepared_data["test"].inputs[:12]
        faulted = build_fault("dead-pixels", 0.8).apply(
            frames, seed=np.random.SeedSequence(9)
        )
        with engine.stream(window=3) as session:
            for frame in faulted:
                session.push(frame)
            offline = session.summary()
        with wrap_stream(
            engine.stream(window=3), "dead-pixels", 0.8,
            seed=np.random.SeedSequence(9),
        ) as faulty:
            for frame in frames:
                faulty.push(frame)
            online = faulty.summary()
        assert np.array_equal(online.raw_predictions, offline.raw_predictions)
        assert np.array_equal(online.voted_predictions, offline.voted_predictions)

    def test_fault_injecting_client_intercepts_both_signatures(self):
        pushes = []

        class FakeClient:
            def push(self, *args):
                pushes.append(args)
                return {"results": []}

            def close(self):
                pass

        frames = _frames(8, 4, channel=True)  # (N, 1, 8, 8) chunks
        offline = build_fault("gaussian-noise", 0.3).apply(frames, seed=0)
        with FaultInjectingClient(FakeClient(), "gaussian-noise", 0.3) as client:
            client.push("sid", frames[:2])  # ServeClient style
            client.push(frames[2:])  # SessionStream style
        assert pushes[0][0] == "sid"
        sent = np.concatenate([np.asarray(pushes[0][1]), np.asarray(pushes[1][0])])
        assert sent.tobytes() == offline.tobytes()

    def test_make_faulted_variant_keeps_length(self):
        frames = _frames(9, 7)
        out = make_faulted_variant(frames, "burst-dropout", 1.0, seed=1)
        assert out.shape == frames.shape
        assert out.tobytes() == make_faulted_variant(
            frames, "burst-dropout", 1.0, seed=1
        ).tobytes()
