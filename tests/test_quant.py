"""Quantization: fake quantizers, QAT conversion, mixed precision, integer lowering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import ArrayDataset, predict
from repro.quant import (
    InputQuantizer,
    MinMaxObserver,
    MovingAverageObserver,
    PactActivationQuantizer,
    PrecisionScheme,
    QATConfig,
    QuantConv2d,
    QuantLinear,
    SymmetricWeightQuantizer,
    convert_to_integer,
    count_quantizable_layers,
    dequantize,
    enumerate_schemes,
    explore_mixed_precision,
    quantize_model,
    quantize_multiplier,
    quantize_symmetric,
    round_shift,
)


class TestObservers:
    def test_minmax(self):
        obs = MinMaxObserver()
        obs.observe(np.array([1.0, 5.0]))
        obs.observe(np.array([-2.0, 3.0]))
        assert obs.range() == (-2.0, 5.0)

    def test_minmax_uninitialized_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxObserver().range()

    def test_moving_average_smooths(self):
        obs = MovingAverageObserver(momentum=0.5)
        obs.observe(np.array([0.0, 10.0]))
        obs.observe(np.array([0.0, 20.0]))
        lo, hi = obs.range()
        assert 10.0 < hi < 20.0


class TestFakeQuantizers:
    @given(
        st.lists(st.floats(min_value=-50, max_value=50), min_size=1, max_size=64),
        st.sampled_from([4, 8]),
    )
    @settings(max_examples=60, deadline=None)
    def test_symmetric_quantization_error_bound(self, values, bits):
        tensor = np.asarray(values)
        q, scale = quantize_symmetric(tensor, bits)
        restored = dequantize(q, scale)
        # The error of round-to-nearest is at most half a step.
        assert np.all(np.abs(restored - tensor) <= scale / 2 + 1e-9)
        assert np.abs(q).max() <= 2 ** (bits - 1) - 1

    def test_symmetric_zero_tensor(self):
        q, scale = quantize_symmetric(np.zeros(4), 8)
        np.testing.assert_array_equal(q, 0)
        assert scale == 1.0

    def test_unsupported_bits(self):
        with pytest.raises(ValueError):
            quantize_symmetric(np.ones(2), 3)

    def test_weight_quantizer_is_idempotent(self):
        rng = np.random.default_rng(0)
        quant = SymmetricWeightQuantizer(8)
        w = rng.normal(size=(4, 4))
        once = quant(w)
        twice = quant(once)
        np.testing.assert_allclose(once, twice, atol=1e-12)

    def test_pact_clips_and_quantizes(self):
        pact = PactActivationQuantizer(bits=4, alpha_init=7.0)
        x = np.array([-1.0, 0.5, 3.0, 10.0])
        out = pact(x)
        assert out[0] == 0.0  # negative clipped (ReLU role)
        assert out[-1] == pytest.approx(7.0)  # saturates at alpha
        levels = pact.levels
        np.testing.assert_allclose(out * levels / 7.0, np.round(out * levels / 7.0), atol=1e-9)

    def test_pact_gradients(self):
        pact = PactActivationQuantizer(bits=8, alpha_init=2.0)
        x = np.array([-0.5, 1.0, 3.0])
        pact(x)
        grad_in = pact.backward(np.ones(3))
        np.testing.assert_array_equal(grad_in, [0.0, 1.0, 0.0])
        assert pact.alpha.grad[0] == pytest.approx(1.0)  # only the saturated element

    def test_pact_alpha_validation(self):
        with pytest.raises(ValueError):
            PactActivationQuantizer(bits=8, alpha_init=0.0)

    def test_input_quantizer_roundtrip(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(100,)) * 3
        quant = InputQuantizer(8).calibrate(data)
        out = quant(data)
        assert np.abs(out - data).max() <= quant.scale / 2 + 1e-9
        ints = quant.quantize_to_int(data)
        assert ints.min() >= -128 and ints.max() <= 127

    def test_input_quantizer_requires_calibration(self):
        with pytest.raises(RuntimeError):
            InputQuantizer(8)(np.zeros(3))


class TestRequantizationPrimitives:
    @given(st.floats(min_value=1e-6, max_value=0.9), st.integers(min_value=4, max_value=15))
    @settings(max_examples=60, deadline=None)
    def test_quantize_multiplier_accuracy(self, real, bits):
        m, shift = quantize_multiplier(real, bits=bits)
        approx = m / (2**shift)
        assert approx == pytest.approx(real, rel=2 ** -(bits - 2))

    def test_quantize_multiplier_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            quantize_multiplier(0.0)

    @given(st.integers(min_value=-(2**20), max_value=2**20), st.integers(min_value=1, max_value=20))
    @settings(max_examples=60, deadline=None)
    def test_round_shift_matches_float(self, value, shift):
        result = int(round_shift(np.array([value]), shift)[0])
        expected = int(np.floor(value / 2**shift + 0.5))
        assert result == expected


class TestSchemes:
    def test_enumeration_first_layer_pinned(self):
        schemes = enumerate_schemes(4)
        assert len(schemes) == 8
        assert all(s.bits[0] == 8 for s in schemes)
        labels = {s.label for s in schemes}
        assert "INT 8-4-4-4" in labels and "INT 8-8-8-8" in labels

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            PrecisionScheme((8, 2, 8, 8))

    def test_label(self):
        assert PrecisionScheme((8, 4, 4, 8)).label == "INT 8-4-4-8"


class TestQuantizeModel:
    def test_structure(self, trained_small_model, prepared_data):
        qmodel = quantize_model(
            trained_small_model,
            PrecisionScheme((8, 4, 4, 8)),
            calibration_data=prepared_data["train"].inputs[:100],
        )
        quant_layers = qmodel.quant_layers()
        assert len(quant_layers) == 4
        assert [l.weight_bits for l in quant_layers] == [8, 4, 4, 8]
        # Output activations of layer l use layer l+1's precision (MAUPITI
        # couples weights and input activations of the consumer layer).
        assert [l.activation_bits for l in quant_layers] == [4, 4, 8, None]
        # BatchNorm folded away: no BN modules remain.
        from repro.nn import BatchNorm2d

        assert not any(isinstance(m, BatchNorm2d) for m in qmodel.network.modules())

    def test_scheme_length_mismatch(self, trained_small_model):
        with pytest.raises(ValueError):
            quantize_model(trained_small_model, PrecisionScheme((8, 8)))

    def test_int8_preserves_float_predictions(self, trained_small_model, prepared_data):
        """Before any QAT, INT8 post-training quantization should already
        agree with the float model on most frames."""
        qmodel = quantize_model(
            trained_small_model,
            PrecisionScheme((8, 8, 8, 8)),
            calibration_data=prepared_data["train"].inputs[:200],
        )
        x = prepared_data["test"].inputs[:300]
        agreement = (predict(qmodel, x) == predict(trained_small_model, x)).mean()
        assert agreement > 0.85

    def test_memory_accounting(self, trained_small_model, prepared_data):
        q8 = quantize_model(
            trained_small_model, PrecisionScheme((8, 8, 8, 8)),
            calibration_data=prepared_data["train"].inputs[:50],
        )
        q4 = quantize_model(
            trained_small_model, PrecisionScheme((8, 4, 4, 4)),
            calibration_data=prepared_data["train"].inputs[:50],
        )
        assert q4.weights_bytes() < q8.weights_bytes()
        assert q4.macs() == q8.macs()  # MACs do not depend on precision

    def test_macs_match_float_model(self, trained_small_model, prepared_data):
        from repro.nas import count_macs

        qmodel = quantize_model(
            trained_small_model, PrecisionScheme((8, 8, 8, 8)),
            calibration_data=prepared_data["train"].inputs[:50],
        )
        assert qmodel.macs() == count_macs(trained_small_model)


class TestMixedPrecisionExploration:
    def test_exploration_returns_all_schemes(self, trained_small_model, prepared_data):
        schemes = [PrecisionScheme((8, 8, 8, 8)), PrecisionScheme((8, 4, 4, 4))]
        points = explore_mixed_precision(
            trained_small_model,
            prepared_data["train"],
            prepared_data["test"],
            schemes=schemes,
            config=QATConfig(epochs=1, batch_size=128),
            seed=0,
        )
        assert len(points) == 2
        assert points[0].memory_bytes <= points[1].memory_bytes
        for p in points:
            assert 0.0 <= p.bas <= 1.0
            assert p.model is not None

    def test_count_quantizable_layers(self, trained_small_model):
        assert count_quantizable_layers(trained_small_model) == 4


class TestIntegerLowering:
    def test_integer_agrees_with_fake_quant(self, quantized_model, prepared_data):
        inet = convert_to_integer(quantized_model)
        x = prepared_data["test"].inputs[:300]
        int_preds = inet.predict(x)
        fq_preds = predict(quantized_model, x)
        # The fixed-point requantization multiplier is coarser than the float
        # scales used during QAT, so a small fraction of borderline frames may
        # flip class; the bulk of predictions must agree.
        assert (int_preds == fq_preds).mean() > 0.8

    def test_weights_are_in_range(self, integer_network):
        for layer in integer_network.layers():
            bound = 2 ** (layer.weight_bits - 1) - 1
            assert np.abs(layer.weight).max() <= bound

    def test_requantized_activations_bounded(self, integer_network, prepared_data):
        x = prepared_data["test"].inputs[:10]
        act = integer_network.quantize_input(x)
        for node in integer_network.graph:
            from repro.quant import IntegerLayer, PoolSpec

            if isinstance(node, PoolSpec):
                act = integer_network._pool(act, node)
            else:
                act = integer_network._layer(act, node)
                if node.requantize:
                    assert act.min() >= 0
                    assert act.max() <= node.out_levels

    def test_macs_and_memory(self, integer_network, quantized_model):
        assert integer_network.macs() == quantized_model.macs()
        assert integer_network.weights_bytes() > 0

    def test_final_layer_not_requantized(self, integer_network):
        assert integer_network.layers()[-1].requantize is False

    def test_uncalibrated_model_rejected(self, trained_small_model):
        qmodel = quantize_model(trained_small_model, PrecisionScheme((8, 8, 8, 8)))
        with pytest.raises(RuntimeError):
            convert_to_integer(qmodel)
