"""Shared fixtures.

Heavy objects (the synthetic dataset, a trained float model, quantized and
integer models) are built once per session and reused across test modules to
keep the suite fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import generate_linaige
from repro.flow import Preprocessor, build_seed_cnn
from repro.nn import ArrayDataset, TrainConfig, train_model
from repro.quant import (
    PrecisionScheme,
    QATConfig,
    convert_to_integer,
    qat_finetune,
    quantize_model,
)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small but complete 5-session synthetic LINAIGE dataset."""
    return generate_linaige(
        seed=7, samples_per_session={1: 400, 2: 160, 3: 120, 4: 120, 5: 120}
    )


@pytest.fixture(scope="session")
def prepared_data(tiny_dataset):
    """Preprocessed train/test arrays with session 2 held out."""
    test_session = tiny_dataset.session(2)
    train_frames = np.concatenate(
        [s.frames for s in tiny_dataset.sessions if s.session_id != 2]
    )
    train_labels = np.concatenate(
        [s.labels for s in tiny_dataset.sessions if s.session_id != 2]
    )
    pre = Preprocessor.fit(train_frames)
    train_set = ArrayDataset(pre(train_frames), train_labels)
    test_set = ArrayDataset(pre(test_session.frames), test_session.labels)
    return {
        "train": train_set,
        "test": test_set,
        "test_session": test_session,
        "preprocessor": pre,
    }


@pytest.fixture(scope="session")
def trained_small_model(prepared_data):
    """A small trained float CNN from the paper's model family."""
    rng = np.random.default_rng(0)
    model = build_seed_cnn(rng, conv_channels=(6, 7), hidden_features=10)
    train_model(
        model,
        prepared_data["train"],
        config=TrainConfig(epochs=4, batch_size=128),
        rng=rng,
    )
    return model


@pytest.fixture(scope="session")
def quantized_model(trained_small_model, prepared_data):
    """The trained model quantized with the INT 8-4-4-8 mixed scheme."""
    qmodel = quantize_model(
        trained_small_model,
        PrecisionScheme((8, 4, 4, 8)),
        calibration_data=prepared_data["train"].inputs[:200],
    )
    qat_finetune(
        qmodel,
        prepared_data["train"],
        prepared_data["test"],
        QATConfig(epochs=1, batch_size=128),
        rng=np.random.default_rng(1),
    )
    return qmodel


@pytest.fixture(scope="session")
def integer_network(quantized_model):
    return convert_to_integer(quantized_model)
