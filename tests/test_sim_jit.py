"""JIT tier tests: trace cache, codegen semantics, batching, concurrency.

Complements ``test_sim_parity.py`` (which asserts bit-exactness of the JIT
against the interpreter): here we test the machinery that is specific to
the second-generation simulator — the process-wide compiled-trace cache
(one decode for N engines, LRU bound), the generated-code fault semantics
(exception types preserved mid-loop), ``jalr`` into block interiors, the
cross-frame batched executor, thread-safety of one shared template under
concurrent ``Engine.predict``, and the report plumbing.
"""

import threading

import numpy as np
import pytest

import repro
from repro.deploy import compile_network, simulate_batch
from repro.hw import (
    DMEM_BASE,
    DMEM_SIZE,
    IbexCore,
    Instruction,
    SimulationError,
    ibex_platform,
    maupiti_platform,
    reg,
)
from repro.hw.sim import (
    JitTemplate,
    cache_stats,
    clear_trace_cache,
    get_template,
    set_trace_cache_capacity,
)
from repro.hw.sim.trace_cache import TraceCache


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_trace_cache()
    yield
    clear_trace_cache()
    set_trace_cache_capacity(16)


def _tiny_program(value=7):
    return [
        Instruction("addi", rd=reg("t0"), rs1=0, imm=value),
        Instruction("ebreak"),
    ]


# --------------------------------------------------------------------------- #
# Trace cache
# --------------------------------------------------------------------------- #
class TestTraceCache:
    def test_one_decode_for_n_engines(self, integer_network, prepared_data):
        """N engines compiling the same model share one JIT compile."""
        frames = prepared_data["preprocessor"](
            prepared_data["test_session"].frames[:1]
        )
        engines = [
            repro.compile(integer_network, target="maupiti", sim_mode="jit")
            for _ in range(3)
        ]
        for engine in engines:
            engine.predict_batch(frames)
        stats = cache_stats()
        assert stats.misses == 1, "the same program must be JIT-compiled once"
        assert stats.hits >= 2
        # The cached template is literally the same object for every engine.
        core = engines[0].backend.platform.core
        templates = {
            id(
                get_template(
                    e.backend.compiled.program,
                    core.cycle_model,
                    core.enable_sdotp,
                )
            )
            for e in engines
        }
        assert len(templates) == 1

    def test_content_keyed_not_identity_keyed(self):
        """Two equal-content program lists share one cache entry."""
        t1 = get_template(_tiny_program(), None, True)
        t2 = get_template(_tiny_program(), None, True)
        assert t1 is t2
        assert cache_stats().misses == 1
        assert cache_stats().hits == 1

    def test_distinct_flags_get_distinct_entries(self):
        t1 = get_template(_tiny_program(), None, True)
        t2 = get_template(_tiny_program(), None, False)
        assert t1 is not t2
        assert cache_stats().misses == 2

    def test_lru_eviction_bound(self):
        cache = TraceCache(capacity=2)
        programs = [_tiny_program(v) for v in (1, 2, 3)]
        for p in programs:
            cache.get(p, None, True)
        assert len(cache) == 2
        assert cache.stats().evictions == 1
        # program 0 was evicted (LRU); 1 and 2 still hit.
        cache.get(programs[1], None, True)
        cache.get(programs[2], None, True)
        assert cache.stats().hits == 2
        cache.get(programs[0], None, True)
        assert cache.stats().misses == 4

    def test_set_capacity_shrinks(self):
        set_trace_cache_capacity(1)
        get_template(_tiny_program(1), None, True)
        get_template(_tiny_program(2), None, True)
        from repro.hw.sim.trace_cache import _CACHE

        assert len(_CACHE) == 1

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_TRACE_CACHE", "5")
        assert TraceCache().capacity == 5


# --------------------------------------------------------------------------- #
# Generated-code semantics
# --------------------------------------------------------------------------- #
class TestJitSemantics:
    def test_jalr_into_block_interior(self):
        """Entering a block mid-stream uses the closure fallback, bit-exact."""
        core_i = IbexCore(mode="interp")
        core_j = IbexCore(mode="jit")
        program = [
            Instruction("addi", rd=reg("t0"), rs1=0, imm=16),
            Instruction("jalr", rd=reg("ra"), rs1=reg("t0"), imm=0),
            Instruction("addi", rd=reg("a0"), rs1=0, imm=111),  # skipped
            Instruction("addi", rd=reg("a1"), rs1=0, imm=222),  # skipped
            Instruction("addi", rd=reg("a2"), rs1=0, imm=333),  # landing pad
            Instruction("ebreak"),
        ]
        for core in (core_i, core_j):
            core.run(program)
        assert core_j.registers == core_i.registers
        assert core_j.stats.cycles == core_i.stats.cycles
        assert core_j.registers[reg("a2")] == 333
        assert core_j.registers[reg("a0")] == 0

    def test_oob_fault_preserves_exception_type(self):
        """A mid-block out-of-bounds store raises the same error as interp."""
        program = [
            Instruction("lui", rd=reg("t0"), imm=0x7FFFF000),
            Instruction("sw", rs1=reg("t0"), rs2=reg("t0"), imm=0),
            Instruction("ebreak"),
        ]
        errors = {}
        for mode in ("interp", "jit"):
            core = IbexCore(mode=mode)
            with pytest.raises(Exception) as info:
                core.run(program)
            errors[mode] = info.value
        assert type(errors["jit"]) is type(errors["interp"])
        assert str(errors["jit"]) == str(errors["interp"])

    def test_oob_load_fault_matches(self):
        program = [
            Instruction("lui", rd=reg("t0"), imm=0x7FFFF000),
            Instruction("lw", rd=reg("a0"), rs1=reg("t0"), imm=0),
            Instruction("ebreak"),
        ]
        errors = {}
        for mode in ("interp", "jit"):
            core = IbexCore(mode=mode)
            with pytest.raises(Exception) as info:
                core.run(program)
            errors[mode] = info.value
        assert type(errors["jit"]) is type(errors["interp"])
        assert str(errors["jit"]) == str(errors["interp"])

    def test_instruction_limit_exception_type(self):
        """A mid-loop budget blowup raises SimulationError in jit mode too."""
        infinite = [
            Instruction("addi", rd=reg("t0"), rs1=reg("t0"), imm=1),
            Instruction("jal", rd=0, imm=-4),
        ]
        core = IbexCore(max_instructions=5000, mode="jit")
        with pytest.raises(SimulationError, match="instruction limit"):
            core.run(infinite)

    def test_block_tallies_and_source(self):
        template = get_template(_tiny_program(), None, True)
        tallies = template.block_tallies()
        assert tallies["total"] >= 1
        assert tallies["jit"] + tallies["closure"] == tallies["total"]
        assert tallies["jit"] >= 1
        assert "def _b0" in template.source
        assert isinstance(template, JitTemplate)

    def test_x0_never_written(self):
        """Generated code must keep x0 hard-wired to zero."""
        program = [
            Instruction("addi", rd=0, rs1=0, imm=123),
            Instruction("add", rd=reg("a0"), rs1=0, rs2=0),
            Instruction("ebreak"),
        ]
        core = IbexCore(mode="jit")
        core.run(program)
        assert core.registers[0] == 0
        assert core.registers[reg("a0")] == 0


# --------------------------------------------------------------------------- #
# Cross-frame batching
# --------------------------------------------------------------------------- #
class TestBatchedExecution:
    def test_batched_path_actually_engages(
        self, integer_network, prepared_data, monkeypatch
    ):
        """The jit batch path must run, not silently fall back."""
        import repro.deploy.runtime as runtime

        frames = prepared_data["preprocessor"](
            prepared_data["test_session"].frames[:3]
        )
        compiled = compile_network(integer_network, use_sdotp=True)
        calls = []
        original = runtime._simulate_batch_jit

        def spy(*args, **kwargs):
            result = original(*args, **kwargs)
            calls.append(result)
            return result

        monkeypatch.setattr(runtime, "_simulate_batch_jit", spy)
        batch = simulate_batch(maupiti_platform(sim_mode="jit"), compiled, frames)
        assert len(calls) == 1, "batched jit path fell back to sequential"
        assert len(batch.predictions) == 3

    def test_batched_matches_sequential_platform_state(
        self, integer_network, prepared_data
    ):
        """After a batched run the platform holds the last frame's state."""
        frames = prepared_data["preprocessor"](
            prepared_data["test_session"].frames[:3]
        )
        compiled = compile_network(integer_network, use_sdotp=True)
        p_jit = maupiti_platform(sim_mode="jit")
        p_int = maupiti_platform(sim_mode="interp")
        simulate_batch(p_jit, compiled, frames)
        simulate_batch(p_int, compiled, frames)
        assert p_jit.core.registers == p_int.core.registers
        assert p_jit.core.pc == p_int.core.pc
        assert p_jit.core.stats.cycles == p_int.core.stats.cycles
        assert p_jit.memory.load_bytes(DMEM_BASE, DMEM_SIZE) == p_int.memory.load_bytes(
            DMEM_BASE, DMEM_SIZE
        )

    def test_single_frame_uses_sequential_path(self, integer_network, prepared_data):
        frames = prepared_data["preprocessor"](
            prepared_data["test_session"].frames[:1]
        )
        compiled = compile_network(integer_network, use_sdotp=True)
        batch = simulate_batch(maupiti_platform(sim_mode="jit"), compiled, frames)
        assert len(batch.predictions) == 1

    def test_keep_results_through_batched_path(self, integer_network, prepared_data):
        frames = prepared_data["preprocessor"](
            prepared_data["test_session"].frames[:3]
        )
        compiled = compile_network(integer_network, use_sdotp=True)
        batch = simulate_batch(
            maupiti_platform(sim_mode="jit"), compiled, frames, keep_results=True
        )
        assert len(batch.results) == 3
        assert all(r.stats.instructions > 0 for r in batch.results)
        np.testing.assert_array_equal(
            batch.cycles_per_frame, [r.stats.cycles for r in batch.results]
        )


# --------------------------------------------------------------------------- #
# Thread safety
# --------------------------------------------------------------------------- #
class TestThreadSafety:
    def test_concurrent_predict_on_shared_template(
        self, integer_network, prepared_data
    ):
        """Many engines hammer one cached template from worker threads."""
        frames = prepared_data["preprocessor"](
            prepared_data["test_session"].frames[:2]
        )
        reference = repro.compile(
            integer_network, target="maupiti", sim_mode="interp"
        ).predict_batch(frames)

        n_threads = 6
        results = [None] * n_threads
        errors = []
        barrier = threading.Barrier(n_threads)

        def worker(i):
            try:
                engine = repro.compile(
                    integer_network, target="maupiti", sim_mode="jit"
                )
                barrier.wait()
                for _ in range(3):
                    results[i] = engine.predict_batch(frames)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        for batch in results:
            np.testing.assert_array_equal(batch.predictions, reference.predictions)
            np.testing.assert_array_equal(batch.logits, reference.logits)
            np.testing.assert_array_equal(
                batch.cycles_per_frame, reference.cycles_per_frame
            )
        # Racing threads may transiently double-compile (by design: compiles
        # happen outside the lock), but the cache converges to one entry.
        from repro.hw.sim.trace_cache import _CACHE

        assert len(_CACHE) == 1

    def test_concurrent_cache_population_single_entry(self):
        """Racing threads compiling the same program end with one entry."""
        cache = TraceCache(capacity=8)
        program = _tiny_program()
        templates = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            templates.append(cache.get(program, None, True))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) == 1
        assert len({id(t) for t in templates}) == 1


# --------------------------------------------------------------------------- #
# Reports
# --------------------------------------------------------------------------- #
class TestReportPlumbing:
    def test_report_carries_sim_info(self, integer_network, prepared_data):
        frames = prepared_data["preprocessor"](
            prepared_data["test_session"].frames[:1]
        )
        report = repro.compile(
            integer_network, target="maupiti", sim_mode="jit"
        ).report(frames)
        assert report.sim["mode"] == "jit"
        assert report.sim["blocks"]["total"] > 0
        assert report.sim["blocks"]["jit"] > 0
        assert sum(report.sim["kernel_counts"].values()) >= 1
        assert report.sim["kernel_counts"].get("sdotp-taps", 0) >= 1

    def test_fast_mode_report_sim_info(self, integer_network, prepared_data):
        frames = prepared_data["preprocessor"](
            prepared_data["test_session"].frames[:1]
        )
        report = repro.compile(
            integer_network, target="ibex", sim_mode="fast"
        ).report(frames)
        assert report.sim["mode"] == "fast"
        assert report.sim["blocks"]["jit"] == 0
        assert report.sim["blocks"]["kernel"] >= 1

    def test_compiled_model_fingerprint_stable(self, integer_network):
        a = compile_network(integer_network, use_sdotp=True)
        b = compile_network(integer_network, use_sdotp=True)
        c = compile_network(integer_network, use_sdotp=False)
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != c.fingerprint
