"""Deployment toolchain: packing, assembler, compilation, bit-exact execution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deploy import (
    Assembler,
    AssemblerError,
    Stm32DeploymentModel,
    compile_network,
    full_deployment_report,
    pack_padded_run,
    pack_values,
    padded_run_bytes,
    padded_run_length,
    report_on_stm32,
    run_frames,
    unpack_values,
    verify_against_golden,
)
from repro.hw import DMEM_BASE, IbexCore, ibex_platform, maupiti_platform, reg, to_signed
from repro.quant import PrecisionScheme, convert_to_integer, quantize_model


class TestPacking:
    @given(
        st.lists(st.integers(min_value=-128, max_value=127), min_size=1, max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_int8_roundtrip(self, values):
        raw = pack_values(values, 8)
        assert unpack_values(raw, len(values), 8) == values

    @given(
        st.lists(st.integers(min_value=-8, max_value=7), min_size=2, max_size=40).filter(
            lambda v: len(v) % 2 == 0
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_int4_roundtrip(self, values):
        raw = pack_values(values, 4)
        assert len(raw) == len(values) // 2
        assert unpack_values(raw, len(values), 4) == values

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            pack_values([200], 8)
        with pytest.raises(ValueError):
            pack_values([9, 0], 4)

    def test_padded_run_lengths(self):
        assert padded_run_length(1, 8) == 4
        assert padded_run_length(4, 8) == 4
        assert padded_run_length(5, 8) == 8
        assert padded_run_length(7, 4) == 8
        assert padded_run_length(9, 4) == 16
        assert padded_run_bytes(1, 8) == 4
        assert padded_run_bytes(7, 4) == 4

    @given(
        st.lists(st.integers(min_value=-8, max_value=7), min_size=1, max_size=30),
        st.sampled_from([4, 8]),
    )
    @settings(max_examples=60, deadline=None)
    def test_padded_run_restores_values_and_zero_pad(self, values, bits):
        raw = pack_padded_run(np.array(values), bits)
        assert len(raw) % 4 == 0
        restored = unpack_values(raw, padded_run_length(len(values), bits), bits)
        assert restored[: len(values)] == values
        assert all(v == 0 for v in restored[len(values):])


class TestAssembler:
    def test_li_small_and_large(self):
        asm = Assembler()
        asm.li("a0", 42)
        asm.li("a1", DMEM_BASE + 123)
        asm.emit("ebreak")
        core = IbexCore()
        core.run(asm.assemble())
        assert core.registers[reg("a0")] == 42
        assert core.registers[reg("a1")] == DMEM_BASE + 123

    def test_li_negative(self):
        asm = Assembler()
        asm.li("a0", -100000)
        asm.emit("ebreak")
        core = IbexCore()
        core.run(asm.assemble())
        assert to_signed(core.registers[reg("a0")], 32) == -100000

    def test_label_resolution_backward_and_forward(self):
        asm = Assembler()
        asm.li("a0", 3)
        asm.li("a1", 0)
        asm.label("loop")
        asm.emit("add", rd="a1", rs1="a1", rs2="a0")
        asm.emit("addi", rd="a0", rs1="a0", imm=-1)
        asm.emit("bne", rs1="a0", rs2="zero", target="loop")
        asm.emit("jal", rd="zero", target="end")
        asm.emit("addi", rd="a1", rs1="a1", imm=100)  # skipped
        asm.label("end")
        asm.emit("ebreak")
        core = IbexCore()
        core.run(asm.assemble())
        assert core.registers[reg("a1")] == 6

    def test_undefined_label_raises(self):
        asm = Assembler()
        asm.emit("jal", rd="zero", target="missing")
        with pytest.raises(AssemblerError):
            asm.assemble()

    def test_duplicate_label_raises(self):
        asm = Assembler()
        asm.label("x")
        asm.emit("addi", rd=1, rs1=0, imm=0)
        with pytest.raises(AssemblerError):
            asm.label("x")

    def test_code_size_accounting(self):
        asm = Assembler()
        asm.emit("add", rd=1, rs1=1, rs2=2)  # compressible -> 2 bytes
        asm.emit("sdotp8", rd=1, rs1=2, rs2=3)  # never compressed -> 4 bytes
        assert asm.code_size_bytes(compressed=True) == 6
        assert asm.code_size_bytes(compressed=False) == 8


@pytest.fixture(scope="module")
def compiled_pair(integer_network):
    scalar = compile_network(integer_network, use_sdotp=False)
    simd = compile_network(integer_network, use_sdotp=True)
    return scalar, simd


class TestCompilation:
    def test_fits_on_chip(self, compiled_pair):
        for compiled in compiled_pair:
            assert compiled.code_size_bytes < 16 * 1024
            assert compiled.data_size_bytes < 16 * 1024

    def test_data_accounting_consistent(self, compiled_pair):
        for compiled in compiled_pair:
            assert compiled.data_size_bytes == pytest.approx(
                compiled.weights_size_bytes + compiled.activations_size_bytes
            )
            chunk_total = sum(c.size for c in compiled.data_chunks)
            assert chunk_total == compiled.weights_size_bytes

    def test_mixed_precision_shrinks_weights(self, quantized_model, trained_small_model, prepared_data):
        q8 = quantize_model(
            trained_small_model,
            PrecisionScheme((8, 8, 8, 8)),
            calibration_data=prepared_data["train"].inputs[:100],
        )
        net8 = convert_to_integer(q8)
        net_mixed = convert_to_integer(quantized_model)
        c8 = compile_network(net8, use_sdotp=True)
        cm = compile_network(net_mixed, use_sdotp=True)
        assert cm.weights_size_bytes < c8.weights_size_bytes

    def test_layer_summaries(self, compiled_pair):
        scalar, _ = compiled_pair
        kinds = [s.kind for s in scalar.layer_summaries]
        assert kinds == ["conv", "maxpool", "conv", "linear", "linear"]
        assert all(s.macs >= 0 for s in scalar.layer_summaries)

    def test_simd_program_uses_sdotp(self, compiled_pair):
        scalar, simd = compiled_pair
        scalar_mnemonics = {i.mnemonic for i in scalar.program}
        simd_mnemonics = {i.mnemonic for i in simd.program}
        assert not scalar_mnemonics & {"sdotp8", "sdotp4"}
        assert simd_mnemonics & {"sdotp8", "sdotp4"}


class TestWriteInput:
    def test_payload_byte_identical_to_reference_loop(
        self, compiled_pair, prepared_data
    ):
        """The vectorized pad-and-scatter must produce exactly the bytes the
        original per-pixel Python loop produced."""
        from repro.deploy.runtime import quantize_frame, write_input
        from repro.hw import ibex_platform

        scalar, _ = compiled_pair
        frames = prepared_data["preprocessor"](
            prepared_data["test_session"].frames[:3]
        )
        platform = ibex_platform()
        buf = scalar.input_buffer
        for frame in frames:
            write_input(platform, scalar, frame)
            payload = platform.memory.load_bytes(buf.address, buf.size_bytes)

            # Reference: the original scalar loop, kept verbatim in the test.
            frame_int = quantize_frame(scalar, frame)
            c, h, w = frame_int.shape
            expected = bytearray(buf.size_bytes)
            zp = scalar.input_zero_point & 0xFF
            for py in range(buf.height):
                for px in range(buf.width):
                    base = py * buf.row_stride + px * buf.pixel_stride
                    inside = (
                        buf.pad <= py < buf.pad + h and buf.pad <= px < buf.pad + w
                    )
                    for ci in range(c):
                        if inside:
                            value = int(frame_int[ci, py - buf.pad, px - buf.pad]) & 0xFF
                        else:
                            value = zp
                        expected[base + ci] = value
            assert payload == bytes(expected)


class TestExecution:
    def test_bit_exact_on_both_platforms(self, compiled_pair, integer_network, prepared_data):
        frames = prepared_data["preprocessor"](prepared_data["test_session"].frames[:3])
        scalar, simd = compiled_pair
        verify_against_golden(ibex_platform(), scalar, integer_network, frames)
        verify_against_golden(maupiti_platform(), simd, integer_network, frames)

    def test_sdotp_reduces_cycles(self, compiled_pair, prepared_data):
        frames = prepared_data["preprocessor"](prepared_data["test_session"].frames[:2])
        scalar, simd = compiled_pair
        scalar_batch = run_frames(ibex_platform(), scalar, frames)
        simd_batch = run_frames(maupiti_platform(), simd, frames)
        assert simd_batch.mean_cycles < scalar_batch.mean_cycles

    def test_sdotp_model_rejected_on_ibex(self, compiled_pair, prepared_data):
        frames = prepared_data["preprocessor"](prepared_data["test_session"].frames[:1])
        _, simd = compiled_pair
        with pytest.raises(ValueError):
            run_frames(ibex_platform(), simd, frames)

    def test_predictions_match_golden_accuracy(self, compiled_pair, integer_network, prepared_data):
        frames = prepared_data["preprocessor"](prepared_data["test_session"].frames[:4])
        scalar, _ = compiled_pair
        batch = run_frames(ibex_platform(), scalar, frames)
        golden = integer_network.predict(frames)
        np.testing.assert_array_equal(batch.predictions, golden)


class TestStm32AndReports:
    def test_stm32_model_shape(self, integer_network):
        model = Stm32DeploymentModel()
        code = model.code_size_bytes(integer_network)
        data = model.data_size_bytes(integer_network)
        assert code > 20_000  # dominated by the X-CUBE-AI runtime
        assert data > integer_network.weights_bytes() * 0.5
        assert model.inference_cycles(integer_network) > model.fixed_cycles

    def test_full_report(self, integer_network, prepared_data):
        frames = prepared_data["preprocessor"](prepared_data["test_session"].frames[:2])
        report = full_deployment_report(integer_network, frames, model_label="test")
        assert set(report.entries) == {"STM32", "IBEX", "MAUPITI"}
        # Key qualitative claims of Table I: large code-size reduction vs the
        # STM32 runtime, and MAUPITI more energy-efficient than vanilla IBEX.
        assert report.improvement("code_bytes") > 5.0
        assert report.entries["MAUPITI"].energy_uj < report.entries["IBEX"].energy_uj
        assert report.entries["STM32"].latency_ms < report.entries["MAUPITI"].latency_ms
        assert len(report.rows()) == 3

    def test_report_on_stm32_standalone(self, integer_network):
        entry = report_on_stm32(integer_network)
        assert entry.platform == "STM32"
        assert entry.energy_uj > 0
