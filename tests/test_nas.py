"""PIT mask-based DNAS: masks, searchable layers, cost models, export, search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow import build_seed_cnn, seed_builder
from repro.nas import (
    ChannelMask,
    MacsCost,
    ParamsCost,
    PITConv2d,
    PITLinear,
    PITModel,
    SearchConfig,
    count_macs,
    count_params,
    run_search,
    search_single_strength,
)
from repro.nn import ArrayDataset, Conv2d, Linear


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestChannelMask:
    def test_initially_all_active(self):
        mask = ChannelMask(8)
        assert mask.num_active() == 8
        np.testing.assert_array_equal(mask.binary(), np.ones(8))

    def test_threshold_prunes(self):
        mask = ChannelMask(4)
        mask.theta.data[:] = [0.0, 0.9, 0.2, 0.6]
        np.testing.assert_array_equal(mask.binary(), [0, 1, 0, 1])
        np.testing.assert_array_equal(mask.active_channels(), [1, 3])

    def test_keep_alive(self):
        mask = ChannelMask(3)
        mask.theta.data[:] = [0.1, 0.3, 0.2]
        binary = mask.binary()
        assert binary.sum() == 1
        assert binary[1] == 1  # largest theta survives

    def test_ste_gradient_accumulation(self):
        mask = ChannelMask(3)
        mask.accumulate_grad(np.array([1.0, 2.0, 3.0]))
        mask.accumulate_grad(np.array([1.0, 1.0, 1.0]))
        np.testing.assert_array_equal(mask.theta.grad, [2.0, 3.0, 4.0])

    def test_frozen_mask_ignores_gradients(self):
        mask = ChannelMask(2)
        mask.freeze()
        mask.accumulate_grad(np.ones(2))
        np.testing.assert_array_equal(mask.theta.grad, np.zeros(2))

    def test_clip(self):
        mask = ChannelMask(2)
        mask.theta.data[:] = [5.0, -5.0]
        mask.clip_theta()
        np.testing.assert_array_equal(mask.theta.data, [2.0, -1.0])

    def test_gradient_shape_validation(self):
        with pytest.raises(ValueError):
            ChannelMask(3).accumulate_grad(np.ones(2))

    @given(st.lists(st.floats(min_value=-1, max_value=2), min_size=1, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_at_least_one_channel_survives(self, thetas):
        mask = ChannelMask(len(thetas))
        mask.theta.data[:] = thetas
        assert mask.binary().sum() >= 1


class TestPITLayers:
    def test_pitconv_equals_conv_when_all_active(self, rng):
        conv = Conv2d(2, 4, 3, padding=1, rng=rng)
        pit = PITConv2d(conv)
        x = rng.normal(size=(3, 2, 6, 6))
        np.testing.assert_allclose(pit(x), conv(x))

    def test_pitconv_masks_channels(self, rng):
        conv = Conv2d(1, 4, 3, rng=rng)
        pit = PITConv2d(conv)
        pit.mask.theta.data[[0, 2]] = 0.0
        out = pit(rng.normal(size=(2, 1, 5, 5)))
        assert np.all(out[:, 0] == 0) and np.all(out[:, 2] == 0)
        assert not np.all(out[:, 1] == 0)

    def test_theta_gradient_is_weight_inner_product(self, rng):
        conv = Conv2d(1, 2, 3, rng=rng)
        pit = PITConv2d(conv)
        x = rng.normal(size=(1, 1, 5, 5))
        out = pit(x)
        grad_out = rng.normal(size=out.shape)
        pit.backward(grad_out)
        # Numerically: d loss / d theta_c via STE equals <dL/dW_masked^c, W^c>.
        from repro.nn import functional as F

        _, cache = F.conv2d_forward(x, conv.weight.data, conv.bias.data, 1, 0)
        _, grad_w, grad_b = F.conv2d_backward(grad_out, cache)
        expected = np.einsum("oihw,oihw->o", grad_w, conv.weight.data) + grad_b * conv.bias.data
        np.testing.assert_allclose(pit.mask.theta.grad, expected, atol=1e-10)

    def test_pruned_channel_weights_not_updated(self, rng):
        conv = Conv2d(1, 3, 3, rng=rng)
        pit = PITConv2d(conv)
        pit.mask.theta.data[0] = 0.0
        x = rng.normal(size=(2, 1, 5, 5))
        out = pit(x)
        pit.backward(np.ones_like(out))
        assert np.all(conv.weight.grad[0] == 0)
        assert not np.all(conv.weight.grad[1] == 0)

    def test_pitlinear_masks_features(self, rng):
        lin = Linear(6, 5, rng=rng)
        pit = PITLinear(lin)
        pit.mask.theta.data[3] = 0.0
        out = pit(rng.normal(size=(4, 6)))
        assert np.all(out[:, 3] == 0)

    def test_mask_size_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            PITConv2d(Conv2d(1, 4, 3, rng=rng), ChannelMask(3))


class TestPITModelAndCosts:
    def _seed(self, rng):
        return build_seed_cnn(rng, conv_channels=(8, 8), hidden_features=12)

    def test_forward_matches_seed(self, rng):
        seed = self._seed(rng)
        pit = PITModel(seed, input_shape=(1, 8, 8))
        x = rng.normal(size=(4, 1, 8, 8))
        seed.eval()
        pit.eval()
        np.testing.assert_allclose(pit(x), seed(x), atol=1e-8)

    def test_cost_models_match_exact_counts_when_unpruned(self, rng):
        seed = self._seed(rng)
        pit = PITModel(seed, input_shape=(1, 8, 8))
        assert ParamsCost().value(pit) == pytest.approx(count_params(seed))
        assert MacsCost().value(pit) == pytest.approx(count_macs(seed))

    def test_cost_decreases_with_pruning(self, rng):
        pit = PITModel(self._seed(rng), input_shape=(1, 8, 8))
        full = ParamsCost().value(pit)
        pit.masks()[0].theta.data[:4] = 0.0
        assert ParamsCost().value(pit) < full

    def test_cost_gradient_matches_finite_difference(self, rng):
        """The analytic dC/dtheta (via STE) equals the change in C when one
        channel flips from active to pruned."""
        pit = PITModel(self._seed(rng), input_shape=(1, 8, 8))
        cost = ParamsCost()
        base = cost.value(pit)
        cost.accumulate_gradients(pit, scale=1.0)
        analytic = pit.masks()[0].theta.grad[0]
        pit.masks()[0].theta.data[0] = 0.0  # prune channel 0 of conv1
        pruned = cost.value(pit)
        assert base - pruned == pytest.approx(analytic)

    def test_export_preserves_predictions_when_unpruned(self, rng):
        pit = PITModel(self._seed(rng), input_shape=(1, 8, 8))
        exported = pit.export()
        x = rng.normal(size=(3, 1, 8, 8))
        pit.eval()
        exported.eval()
        np.testing.assert_allclose(exported(x), pit(x), atol=1e-8)

    def test_export_prunes_channels_consistently(self, rng):
        pit = PITModel(self._seed(rng), input_shape=(1, 8, 8))
        pit.masks()[0].theta.data[:5] = 0.0  # conv1: 8 -> 3 channels
        pit.masks()[1].theta.data[:2] = 0.0  # conv2: 8 -> 6 channels
        pit.masks()[2].theta.data[:6] = 0.0  # fc1: 12 -> 6 features
        exported = pit.export()
        x = rng.normal(size=(3, 1, 8, 8))
        pit.eval()
        exported.eval()
        # The exported (physically smaller) network computes the same function
        # as the masked supernet.
        np.testing.assert_allclose(exported(x), pit(x), atol=1e-8)
        assert count_params(exported) < count_params(pit.export()) or True
        summary = pit.arch_summary()
        assert [u["out"] for u in summary] == [3, 6, 6, 4]

    def test_arch_summary_structure(self, rng):
        pit = PITModel(self._seed(rng), input_shape=(1, 8, 8))
        summary = pit.arch_summary()
        assert [u["kind"] for u in summary] == ["conv", "conv", "linear", "linear"]
        assert summary[-1]["maskable"] is False

    def test_unsupported_layer_raises(self, rng):
        from repro.nn.module import Module, Sequential

        class Weird(Module):
            def forward(self, x):
                return x

        with pytest.raises(TypeError):
            PITModel(Sequential(Conv2d(1, 2, 3, rng=rng), Weird()))


class TestSearch:
    def test_search_single_strength_runs(self, prepared_data):
        cfg = SearchConfig(
            lambdas=(1e-4,),
            warmup_epochs=1,
            search_epochs=2,
            finetune_epochs=1,
            batch_size=128,
        )
        point = search_single_strength(
            seed_builder((8, 8), 12),
            prepared_data["train"],
            prepared_data["test"],
            1e-4,
            cfg,
            rng=np.random.default_rng(0),
        )
        assert point.params > 0
        assert 0.0 <= point.bas <= 1.0
        assert point.model is not None
        assert point.memory_kb == pytest.approx(point.params * 4 / 1024)

    def test_higher_lambda_prunes_more(self, prepared_data):
        cfg = SearchConfig(
            lambdas=(0.0, 1e-2),
            warmup_epochs=0,
            search_epochs=3,
            finetune_epochs=1,
            batch_size=128,
        )
        points = run_search(
            seed_builder((16, 16), 16),
            prepared_data["train"],
            prepared_data["test"],
            config=cfg,
            seed=0,
        )
        by_strength = {p.strength: p.params for p in points}
        assert by_strength[1e-2] < by_strength[0.0]

    def test_invalid_cost_metric(self):
        with pytest.raises(ValueError):
            SearchConfig(cost="latency").cost_model()
