"""Losses, metrics, optimizers, schedulers, data utilities and the trainer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    Adam,
    ArrayDataset,
    CosineAnnealingLR,
    CrossEntropyLoss,
    DataLoader,
    Linear,
    MSELoss,
    ReLU,
    SGD,
    Sequential,
    StepLR,
    TrainConfig,
    accuracy,
    balanced_accuracy,
    balanced_class_weights,
    confusion_matrix,
    evaluate_bas,
    macro_f1,
    per_class_recall,
    predict,
    train_model,
    train_val_split,
)
from repro.nn.module import Parameter


class TestCrossEntropy:
    def test_loss_matches_manual(self):
        loss_fn = CrossEntropyLoss()
        logits = np.array([[2.0, 0.0, 0.0], [0.0, 3.0, 0.0]])
        targets = np.array([0, 1])
        loss, grad = loss_fn(logits, targets)
        manual = -np.mean(
            [np.log(np.exp(2) / (np.exp(2) + 2)), np.log(np.exp(3) / (np.exp(3) + 2))]
        )
        assert loss == pytest.approx(manual, abs=1e-10)
        assert grad.shape == logits.shape

    def test_gradient_numerically(self):
        rng = np.random.default_rng(0)
        loss_fn = CrossEntropyLoss(class_weights=np.array([1.0, 2.0, 0.5]))
        logits = rng.normal(size=(5, 3))
        targets = rng.integers(0, 3, size=5)
        _, grad = loss_fn(logits, targets)
        eps = 1e-6
        num = np.zeros_like(logits)
        for i in range(5):
            for j in range(3):
                plus = logits.copy()
                plus[i, j] += eps
                minus = logits.copy()
                minus[i, j] -= eps
                num[i, j] = (loss_fn(plus, targets)[0] - loss_fn(minus, targets)[0]) / (2 * eps)
        np.testing.assert_allclose(grad, num, atol=1e-6)

    def test_target_range_validation(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss()(np.zeros((2, 3)), np.array([0, 5]))

    def test_class_weight_length_validation(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss(class_weights=np.ones(2))(np.zeros((2, 3)), np.array([0, 1]))

    def test_mse(self):
        loss, grad = MSELoss()(np.array([1.0, 2.0]), np.array([0.0, 0.0]))
        assert loss == pytest.approx(2.5)
        np.testing.assert_allclose(grad, [1.0, 2.0])

    def test_balanced_class_weights(self):
        labels = np.array([0] * 90 + [1] * 10)
        weights = balanced_class_weights(labels, 4)
        assert weights[1] > weights[0]
        assert weights.mean() == pytest.approx(1.0)
        # Absent classes get the maximum weight among present ones.
        assert weights[2] == pytest.approx(weights[1])


class TestMetrics:
    def test_confusion_matrix(self):
        cm = confusion_matrix([0, 0, 1, 2], [0, 1, 1, 2], 3)
        np.testing.assert_array_equal(cm, [[1, 1, 0], [0, 1, 0], [0, 0, 1]])

    def test_balanced_accuracy_ignores_missing_classes(self):
        # Class 3 never appears in y_true: it must not dilute the average.
        y_true = [0, 0, 1, 1]
        y_pred = [0, 0, 1, 0]
        assert balanced_accuracy(y_true, y_pred, 4) == pytest.approx((1.0 + 0.5) / 2)

    def test_balanced_vs_plain_accuracy_on_imbalance(self):
        y_true = np.array([0] * 95 + [1] * 5)
        y_pred = np.zeros(100, dtype=int)  # always predict the majority class
        assert accuracy(y_true, y_pred) == pytest.approx(0.95)
        assert balanced_accuracy(y_true, y_pred) == pytest.approx(0.5)

    def test_per_class_recall_nan_for_missing(self):
        recall = per_class_recall([0, 1], [0, 1], 3)
        assert np.isnan(recall[2])

    def test_macro_f1_perfect(self):
        assert macro_f1([0, 1, 2], [0, 1, 2], 3) == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            balanced_accuracy([], [], 4)

    @given(
        st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=50),
    )
    @settings(max_examples=30, deadline=None)
    def test_balanced_accuracy_bounds(self, labels):
        labels = np.asarray(labels)
        rng = np.random.default_rng(0)
        preds = rng.integers(0, 4, size=labels.size)
        bas = balanced_accuracy(labels, preds, 4)
        assert 0.0 <= bas <= 1.0

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_perfect_prediction_gives_one(self, labels):
        labels = np.asarray(labels)
        assert balanced_accuracy(labels, labels, 4) == pytest.approx(1.0)


class TestOptimizers:
    def _quadratic_problem(self):
        target = np.array([3.0, -2.0, 0.5])
        param = Parameter(np.zeros(3))

        def step_grad():
            param.grad[...] = 2 * (param.data - target)

        return param, target, step_grad

    def test_sgd_converges(self):
        param, target, step_grad = self._quadratic_problem()
        opt = SGD([param], lr=0.1, momentum=0.5)
        for _ in range(200):
            opt.zero_grad()
            step_grad()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-4)

    def test_adam_converges(self):
        param, target, step_grad = self._quadratic_problem()
        opt = Adam([param], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            step_grad()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-3)

    def test_weight_decay_shrinks(self):
        param = Parameter(np.ones(3) * 10.0)
        opt = SGD([param], lr=0.1, weight_decay=0.5)
        for _ in range(100):
            opt.zero_grad()
            opt.step()
        assert np.all(np.abs(param.data) < 1.0)

    def test_frozen_parameter_not_updated(self):
        param = Parameter(np.ones(2), requires_grad=False)
        opt = Adam([param], lr=1.0)
        param.grad += 5.0
        opt.step()
        np.testing.assert_array_equal(param.data, np.ones(2))

    def test_empty_and_bad_lr_raise(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_step_lr(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == pytest.approx(1.0)
        sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_cosine_lr_endpoints(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.0)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-12)


class TestDataUtilities:
    def test_dataset_shape_validation(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((10, 2)), np.zeros(5))

    def test_dataloader_covers_all_samples(self):
        ds = ArrayDataset(np.arange(10)[:, None], np.arange(10))
        seen = []
        for x, y in DataLoader(ds, batch_size=3, shuffle=True, rng=np.random.default_rng(0)):
            seen.extend(y.tolist())
        assert sorted(seen) == list(range(10))

    def test_dataloader_drop_last(self):
        ds = ArrayDataset(np.zeros((10, 1)), np.zeros(10))
        loader = DataLoader(ds, batch_size=3, drop_last=True)
        assert len(loader) == 3
        assert sum(1 for _ in loader) == 3

    def test_train_val_split_stratified(self):
        labels = np.array([0] * 90 + [1] * 10)
        ds = ArrayDataset(np.zeros((100, 1)), labels)
        train, val = train_val_split(ds, 0.2, rng=np.random.default_rng(0))
        assert len(train) + len(val) == 100
        assert (val.targets == 1).sum() >= 1  # rare class represented

    def test_split_fraction_validation(self):
        ds = ArrayDataset(np.zeros((10, 1)), np.zeros(10))
        with pytest.raises(ValueError):
            train_val_split(ds, 1.5)


class TestTrainer:
    def _toy_classification(self, n=200):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(n, 4))
        y = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
        return ArrayDataset(x, y)

    def test_training_reduces_loss(self):
        ds = self._toy_classification()
        rng = np.random.default_rng(1)
        model = Sequential(Linear(4, 16, rng=rng), ReLU(), Linear(16, 2, rng=rng))
        history = train_model(model, ds, config=TrainConfig(epochs=10, batch_size=32), rng=rng)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_validation_restores_best_weights(self):
        ds = self._toy_classification()
        rng = np.random.default_rng(2)
        model = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
        history = train_model(
            model, ds, val_set=ds, config=TrainConfig(epochs=5, batch_size=32), rng=rng
        )
        assert history.best_epoch >= 0
        assert evaluate_bas(model, ds, 2) == pytest.approx(history.best_val_bas)

    def test_early_stopping(self):
        ds = self._toy_classification(100)
        rng = np.random.default_rng(3)
        model = Sequential(Linear(4, 4, rng=rng), ReLU(), Linear(4, 2, rng=rng))
        history = train_model(
            model,
            ds,
            val_set=ds,
            config=TrainConfig(epochs=50, batch_size=32, early_stop_patience=2),
            rng=rng,
        )
        assert len(history.train_loss) < 50

    def test_predict_shape(self):
        ds = self._toy_classification(30)
        rng = np.random.default_rng(4)
        model = Sequential(Linear(4, 2, rng=rng))
        preds = predict(model, ds.inputs)
        assert preds.shape == (30,)
        assert set(np.unique(preds)).issubset({0, 1})
