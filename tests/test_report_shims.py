"""The deprecated ``deploy.report.*`` shims: warn, but stay result-identical."""

import warnings

import pytest

import repro
from repro.deploy import report_on_simulated_platform, report_on_stm32
from repro.hw import ibex_platform, maupiti_platform


@pytest.fixture()
def frames(prepared_data):
    return prepared_data["preprocessor"](prepared_data["test_session"].frames[:2])


class TestDeprecatedReportShims:
    def test_simulated_shim_warns(self, integer_network, frames):
        with pytest.warns(DeprecationWarning, match="report_on_simulated_platform"):
            report_on_simulated_platform(integer_network, maupiti_platform(), frames)

    def test_stm32_shim_warns(self, integer_network):
        with pytest.warns(DeprecationWarning, match="report_on_stm32"):
            report_on_stm32(integer_network)

    @pytest.mark.parametrize("target", ["ibex", "maupiti"])
    def test_simulated_shim_matches_engine_report(self, integer_network, frames, target):
        platform = maupiti_platform() if target == "maupiti" else ibex_platform()
        with pytest.warns(DeprecationWarning):
            legacy = report_on_simulated_platform(integer_network, platform, frames)
        fresh = repro.compile(integer_network, target=target).report(frames)
        assert legacy == fresh

    def test_stm32_shim_matches_engine_report(self, integer_network):
        with pytest.warns(DeprecationWarning):
            legacy = report_on_stm32(integer_network)
        assert legacy == repro.compile(integer_network, target="stm32").report()

    def test_canonical_helper_does_not_warn(self, integer_network, frames):
        """full_deployment_report is not deprecated and must stay silent."""
        from repro.deploy import full_deployment_report

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            report = full_deployment_report(integer_network, frames)
        assert set(report.entries) == {"STM32", "IBEX", "MAUPITI"}
