"""Numerical correctness of the low-level primitives (gradient checks)."""

import numpy as np
import pytest

from repro.nn import functional as F


def numerical_gradient(fn, x, eps=1e-6):
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        plus = fn(x)
        x[idx] = orig - eps
        minus = fn(x)
        x[idx] = orig
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


class TestConvShapes:
    def test_output_shape_basic(self):
        assert F.conv_output_shape(8, 8, 3, 1, 1) == (8, 8)
        assert F.conv_output_shape(8, 8, 3, 1, 0) == (6, 6)
        assert F.conv_output_shape(8, 8, 2, 2, 0) == (4, 4)

    def test_output_shape_rectangular(self):
        assert F.conv_output_shape(10, 6, (3, 1), (1, 1), (0, 0)) == (8, 6)

    def test_empty_output_raises(self):
        with pytest.raises(ValueError):
            F.conv_output_shape(2, 2, 5, 1, 0)

    def test_pair_validation(self):
        with pytest.raises(ValueError):
            F._pair((1, 2, 3))


class TestIm2Col:
    def test_roundtrip_shapes(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 8, 8))
        cols, (oh, ow) = F.im2col(x, 3, 1, 1)
        assert cols.shape == (2 * 8 * 8, 3 * 9)
        assert (oh, ow) == (8, 8)

    def test_col2im_inverts_sum(self):
        # col2im(im2col(x)) accumulates each input position once per window
        # that covers it; with a 1x1 kernel the mapping is exactly inverse.
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 4, 5, 5))
        cols, _ = F.im2col(x, 1, 1, 0)
        back = F.col2im(cols, x.shape, 1, 1, 0)
        np.testing.assert_allclose(back, x)


class TestConvForwardBackward:
    def test_matches_direct_convolution(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        b = rng.normal(size=3)
        out, _ = F.conv2d_forward(x, w, b, 1, 1)
        # Direct (slow) reference convolution.
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        ref = np.zeros_like(out)
        for oc in range(3):
            for oy in range(5):
                for ox in range(5):
                    patch = xp[0, :, oy : oy + 3, ox : ox + 3]
                    ref[0, oc, oy, ox] = (patch * w[oc]).sum() + b[oc]
        np.testing.assert_allclose(out, ref, atol=1e-10)

    def test_gradient_wrt_input(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 2, 4, 4))
        w = rng.normal(size=(3, 2, 3, 3))
        b = rng.normal(size=3)
        grad_out = rng.normal(size=(2, 3, 4, 4))

        def loss(xv):
            out, _ = F.conv2d_forward(xv, w, b, 1, 1)
            return float((out * grad_out).sum())

        out, cache = F.conv2d_forward(x, w, b, 1, 1)
        grad_x, _, _ = F.conv2d_backward(grad_out, cache)
        num = numerical_gradient(loss, x.copy())
        np.testing.assert_allclose(grad_x, num, atol=1e-5)

    def test_gradient_wrt_weights_and_bias(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(2, 2, 4, 4))
        w = rng.normal(size=(2, 2, 3, 3))
        b = rng.normal(size=2)
        grad_out = rng.normal(size=(2, 2, 2, 2))

        out, cache = F.conv2d_forward(x, w, b, 1, 0)
        _, grad_w, grad_b = F.conv2d_backward(grad_out, cache)

        def loss_w(wv):
            out, _ = F.conv2d_forward(x, wv, b, 1, 0)
            return float((out * grad_out).sum())

        def loss_b(bv):
            out, _ = F.conv2d_forward(x, w, bv, 1, 0)
            return float((out * grad_out).sum())

        np.testing.assert_allclose(grad_w, numerical_gradient(loss_w, w.copy()), atol=1e-5)
        np.testing.assert_allclose(grad_b, numerical_gradient(loss_b, b.copy()), atol=1e-5)

    def test_stride_two(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(1, 1, 6, 6))
        w = rng.normal(size=(1, 1, 2, 2))
        out, _ = F.conv2d_forward(x, w, None, 2, 0)
        assert out.shape == (1, 1, 3, 3)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.conv2d_forward(np.zeros((1, 3, 4, 4)), np.zeros((2, 4, 3, 3)), None)


class TestMaxPool:
    def test_forward_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out, _ = F.maxpool2d_forward(x, 2)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_gradient(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(2, 3, 4, 4))
        grad_out = rng.normal(size=(2, 3, 2, 2))
        out, cache = F.maxpool2d_forward(x, 2)
        grad_x = F.maxpool2d_backward(grad_out, cache)

        def loss(xv):
            out, _ = F.maxpool2d_forward(xv, 2)
            return float((out * grad_out).sum())

        np.testing.assert_allclose(grad_x, numerical_gradient(loss, x.copy()), atol=1e-5)

    def test_gradient_routes_to_argmax_only(self):
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        out, cache = F.maxpool2d_forward(x, 2)
        grad_x = F.maxpool2d_backward(np.ones((1, 1, 1, 1)), cache)
        np.testing.assert_array_equal(grad_x[0, 0], [[0, 0], [0, 1]])


class TestLinearAndActivations:
    def test_linear_gradients(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(4, 6))
        w = rng.normal(size=(3, 6))
        b = rng.normal(size=3)
        grad_out = rng.normal(size=(4, 3))
        out, cache = F.linear_forward(x, w, b)
        grad_x, grad_w, grad_b = F.linear_backward(grad_out, cache)

        def loss_x(xv):
            out, _ = F.linear_forward(xv, w, b)
            return float((out * grad_out).sum())

        np.testing.assert_allclose(grad_x, numerical_gradient(loss_x, x.copy()), atol=1e-6)
        np.testing.assert_allclose(grad_w, grad_out.T @ x, atol=1e-12)
        np.testing.assert_allclose(grad_b, grad_out.sum(axis=0), atol=1e-12)

    def test_relu(self):
        x = np.array([-1.0, 0.0, 2.0])
        out, mask = F.relu_forward(x)
        np.testing.assert_array_equal(out, [0.0, 0.0, 2.0])
        np.testing.assert_array_equal(F.relu_backward(np.ones(3), mask), [0.0, 0.0, 1.0])

    def test_softmax_properties(self):
        rng = np.random.default_rng(8)
        logits = rng.normal(size=(5, 4)) * 10
        probs = F.softmax(logits)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-12)
        assert (probs >= 0).all()

    def test_log_softmax_matches_log_of_softmax(self):
        rng = np.random.default_rng(9)
        logits = rng.normal(size=(3, 6))
        np.testing.assert_allclose(
            F.log_softmax(logits), np.log(F.softmax(logits)), atol=1e-12
        )

    def test_softmax_is_shift_invariant(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(F.softmax(logits), F.softmax(logits + 100.0), atol=1e-12)
