"""Quickstart: train a small people-counting CNN on synthetic LINAIGE data.

This example shows the minimal path through the library:

1. generate the synthetic 8x8 infrared dataset,
2. pre-process frames (ambient removal + standardization),
3. train a compact CNN from the paper's model family,
4. compile it with the engine façade and evaluate balanced accuracy on a
   held-out session,
5. apply the majority-voting post-processing through a streaming session.

Run with:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.datasets import generate_linaige
from repro.flow import Preprocessor, build_seed_cnn
from repro.nn import ArrayDataset, TrainConfig, evaluate_bas, train_model
from repro.nn.metrics import balanced_accuracy


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. Synthetic LINAIGE-like dataset (scaled down for a quick run).
    dataset = generate_linaige(seed=0, scale=0.15)
    print(f"dataset: {dataset.num_samples} frames, class counts {dataset.class_counts()}")

    # 2. Train on sessions 1,3,4,5 and hold out session 2, as in the paper's
    # leave-one-session-out protocol.
    test_session = dataset.session(2)
    train_frames = np.concatenate(
        [s.frames for s in dataset.sessions if s.session_id != 2]
    )
    train_labels = np.concatenate(
        [s.labels for s in dataset.sessions if s.session_id != 2]
    )
    pre = Preprocessor.fit(train_frames)
    train_set = ArrayDataset(pre(train_frames), train_labels)
    test_set = ArrayDataset(pre(test_session.frames), test_session.labels)

    # 3. A small member of the paper's CNN family (conv-conv-fc-fc).
    model = build_seed_cnn(rng, conv_channels=(16, 16), hidden_features=32)
    history = train_model(
        model,
        train_set,
        val_set=test_set,
        config=TrainConfig(epochs=10, batch_size=128, learning_rate=1e-3),
        rng=rng,
    )
    print(f"final training loss: {history.train_loss[-1]:.4f}")

    # 4. Compile for the numpy target and measure single-frame accuracy.
    # The same call compiles for "int-golden" or "maupiti" once quantized.
    engine = repro.compile(model, target="numpy-float")
    predictions = engine.predict_batch(test_set.inputs).predictions
    bas_raw = balanced_accuracy(test_session.labels, predictions)
    print(f"held-out session BAS (single frame): {bas_raw:.3f}")
    assert bas_raw == evaluate_bas(model, test_set)

    # 5. Majority voting over a 5-frame sliding window, streaming the session
    # frame by frame as the deployed sensor would.
    with engine.stream(window=5) as session:
        for frame in test_set.inputs:
            session.push(frame)
        voted = session.summary().voted_predictions
    bas_voted = balanced_accuracy(test_session.labels, voted)
    print(
        f"held-out session BAS (majority voting, window=5): {bas_voted:.3f} "
        f"(+{(bas_voted - bas_raw) * 100:.1f} points)"
    )


if __name__ == "__main__":
    main()
