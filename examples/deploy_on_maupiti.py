"""Deploy a quantized people-counting model on the simulated MAUPITI chip.

This example covers the hardware half of the paper:

1. train and quantize a small CNN (INT 8-4-4-8 mixed precision),
2. lower it to a pure-integer network,
3. compile it twice — scalar kernels for the vanilla IBEX core and SDOTP
   SIMD kernels for MAUPITI,
4. run both programs on the instruction-level simulator, verifying they are
   bit-exact against the numpy integer golden model,
5. print the Table-I style comparison (code size, data size, cycles, energy)
   including the analytical STM32 + X-CUBE-AI baseline.

Run with:  python examples/deploy_on_maupiti.py
"""

import numpy as np

from repro.datasets import generate_linaige
from repro.deploy import (
    compile_network,
    report_on_stm32,
    verify_against_golden,
)
from repro.flow import Preprocessor, build_seed_cnn
from repro.hw import ibex_platform, maupiti_platform
from repro.nn import ArrayDataset, TrainConfig, train_model
from repro.quant import PrecisionScheme, QATConfig, convert_to_integer, qat_finetune, quantize_model


def main() -> None:
    rng = np.random.default_rng(0)
    dataset = generate_linaige(seed=0, scale=0.08)
    test_session = dataset.session(2)
    train_frames = np.concatenate(
        [s.frames for s in dataset.sessions if s.session_id != 2]
    )
    train_labels = np.concatenate(
        [s.labels for s in dataset.sessions if s.session_id != 2]
    )
    pre = Preprocessor.fit(train_frames)
    train_set = ArrayDataset(pre(train_frames), train_labels)
    test_set = ArrayDataset(pre(test_session.frames), test_session.labels)

    # Train a deployable CNN and quantize it with a mixed-precision scheme.
    model = build_seed_cnn(rng, conv_channels=(8, 12), hidden_features=16)
    train_model(model, train_set, config=TrainConfig(epochs=8, batch_size=128), rng=rng)
    scheme = PrecisionScheme((8, 4, 4, 8))
    qmodel = quantize_model(model, scheme, calibration_data=train_set.inputs[:256])
    bas = qat_finetune(qmodel, train_set, test_set, QATConfig(epochs=3), rng=rng)
    print(f"quantized model {scheme.label}: held-out BAS = {bas:.3f}")

    # Lower to integers and deploy on both simulated cores.
    integer_net = convert_to_integer(qmodel)
    frames = pre(test_session.frames[:5])
    print(f"\n{'platform':<8} {'code [B]':>9} {'data [B]':>9} {'cycles':>10} {'energy [uJ]':>12}")

    stm32 = report_on_stm32(integer_net)
    print(
        f"{stm32.platform:<8} {stm32.code_bytes:>9} {stm32.data_bytes:>9} "
        f"{stm32.cycles:>10.0f} {stm32.energy_uj:>12.3f}"
    )

    for platform in (ibex_platform(), maupiti_platform()):
        compiled = compile_network(
            integer_net,
            use_sdotp=platform.spec.supports_sdotp,
            code_overhead_bytes=platform.spec.code_overhead_bytes,
        )
        batch = verify_against_golden(platform, compiled, integer_net, frames)
        cycles = int(batch.mean_cycles)
        print(
            f"{platform.spec.name:<8} {compiled.code_size_bytes:>9} "
            f"{compiled.data_size_bytes:>9} {cycles:>10} "
            f"{platform.inference_energy_uj(cycles):>12.3f}"
        )
    print("\nISA-simulator outputs verified bit-exact against the integer golden model.")


if __name__ == "__main__":
    main()
