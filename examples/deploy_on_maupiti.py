"""Deploy a quantized people-counting model on the simulated MAUPITI chip.

This example covers the hardware half of the paper:

1. train and quantize a small CNN (INT 8-4-4-8 mixed precision),
2. ``repro.compile`` it for every deployment target — the analytical STM32
   baseline, scalar kernels on the vanilla IBEX core, SDOTP SIMD kernels on
   MAUPITI — through the same engine interface,
3. verify the ISA-simulated programs bit-exact against the numpy integer
   golden model,
4. print the Table-I style comparison (code size, data size, cycles, energy).

Run with:  python examples/deploy_on_maupiti.py
"""

import numpy as np

import repro
from repro.datasets import generate_linaige
from repro.flow import Preprocessor, build_seed_cnn
from repro.nn import ArrayDataset, TrainConfig, train_model
from repro.quant import PrecisionScheme, QATConfig, qat_finetune, quantize_model


def main() -> None:
    rng = np.random.default_rng(0)
    dataset = generate_linaige(seed=0, scale=0.08)
    test_session = dataset.session(2)
    train_frames = np.concatenate(
        [s.frames for s in dataset.sessions if s.session_id != 2]
    )
    train_labels = np.concatenate(
        [s.labels for s in dataset.sessions if s.session_id != 2]
    )
    pre = Preprocessor.fit(train_frames)
    train_set = ArrayDataset(pre(train_frames), train_labels)
    test_set = ArrayDataset(pre(test_session.frames), test_session.labels)

    # Train a deployable CNN and quantize it with a mixed-precision scheme.
    model = build_seed_cnn(rng, conv_channels=(8, 12), hidden_features=16)
    train_model(model, train_set, config=TrainConfig(epochs=8, batch_size=128), rng=rng)
    scheme = PrecisionScheme((8, 4, 4, 8))
    qmodel = quantize_model(model, scheme, calibration_data=train_set.inputs[:256])
    bas = qat_finetune(qmodel, train_set, test_set, QATConfig(epochs=3), rng=rng)
    print(f"quantized model {scheme.label}: held-out BAS = {bas:.3f}")

    # Deploy on every target through the same engine interface.  Wrapping the
    # QAT model in a shared bundle lowers it to the integer golden network
    # once, reused by all three targets.
    bundle = repro.engine.ModelBundle(qmodel, label=scheme.label)
    frames = pre(test_session.frames[:5])
    print(f"\n{'platform':<8} {'code [B]':>9} {'data [B]':>9} {'cycles':>10} {'energy [uJ]':>12}")

    for target in ("stm32", "ibex", "maupiti"):
        engine = repro.compile(bundle, target=target)
        # The ISA-simulated targets check bit-exactness; the verification run
        # doubles as the cycle measurement for the report.
        measured = engine.verify(frames) if engine.can_verify else None
        entry = engine.report(frames, measured=measured)
        print(
            f"{entry.platform:<8} {entry.code_bytes:>9} {entry.data_bytes:>9} "
            f"{entry.cycles:>10.0f} {entry.energy_uj:>12.3f}"
        )
    print("\nISA-simulator outputs verified bit-exact against the integer golden model.")


if __name__ == "__main__":
    main()
