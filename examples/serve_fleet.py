"""A fleet of infrared sensors streaming into one serving process.

Where ``streaming_occupancy_monitor.py`` runs ONE sensor through an
in-process ``Engine.stream``, this example deploys the serving subsystem:
an in-process :mod:`repro.serve` HTTP server hosts a single compiled
engine, and N simulated sensor nodes (threads, each with its own
``ServeClient`` connection) concurrently replay held-out LINAIGE sessions
in small chunks.  The server keeps one majority-voting FIFO per session
and coalesces frames arriving from different sensors into single
``Engine.predict_batch`` calls — the cross-session micro-batching that
amortizes per-frame overhead across the fleet.

The example prints each sensor's smoothed occupancy estimate (identical to
what an offline ``Engine.stream`` replay would produce) and the server's
final ``/metrics`` snapshot showing how well the fleet's frames batched.

With ``--workers N`` the server shards the fleet across N engine worker
processes (consistent-hash on the session id, frames over shared-memory
rings); the example then also prints which worker served each sensor and
the pool's aggregated batching counters.  Results are bit-identical to the
in-process run either way.

Run with:  PYTHONPATH=src python examples/serve_fleet.py [--workers N]
"""

import argparse
import threading

import numpy as np

import repro
from repro.datasets import generate_linaige
from repro.flow import Preprocessor, build_seed_cnn
from repro.nn import ArrayDataset, TrainConfig, train_model
from repro.nn.metrics import balanced_accuracy
from repro.serve import ServeClient, start_server

NUM_SENSORS = 6
FRAMES_PER_SENSOR = 70
CHUNK = 8  # frames per HTTP push (a sensor uplink buffer)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="engine worker processes (0 = in-process serving, the default)",
    )
    args = parser.parse_args()

    rng = np.random.default_rng(1)
    dataset = generate_linaige(seed=3, scale=0.12)

    # Train on sessions 1-4; session 5 provides the fleet's "live" streams.
    fleet_session = dataset.session(5)
    train_frames = np.concatenate(
        [s.frames for s in dataset.sessions if s.session_id != 5]
    )
    train_labels = np.concatenate(
        [s.labels for s in dataset.sessions if s.session_id != 5]
    )
    pre = Preprocessor.fit(train_frames)
    model = build_seed_cnn(rng, conv_channels=(16, 16), hidden_features=32)
    train_model(
        model,
        ArrayDataset(pre(train_frames), train_labels),
        config=TrainConfig(epochs=10, batch_size=128),
        rng=rng,
    )
    engine = repro.compile(model, target="numpy-float", majority_window=5)

    # Slice session 5 into one stream per sensor node.
    frames = pre(fleet_session.frames)
    labels = fleet_session.labels
    streams = [
        (
            frames[i * FRAMES_PER_SENSOR : (i + 1) * FRAMES_PER_SENSOR],
            labels[i * FRAMES_PER_SENSOR : (i + 1) * FRAMES_PER_SENSOR],
        )
        for i in range(NUM_SENSORS)
    ]

    results = [None] * NUM_SENSORS
    shards = [None] * NUM_SENSORS  # worker index per sensor (pool mode only)

    def sensor_node(idx: int, host: str, port: int) -> None:
        stream, _ = streams[idx]
        with ServeClient(host, port) as client:
            opened = client.open_session(window=5)
            sid = opened["session_id"]
            shards[idx] = opened.get("worker")
            voted = []
            for start in range(0, len(stream), CHUNK):
                out = client.push(sid, stream[start : start + CHUNK])
                voted.extend(r["voted"] for r in out["results"])
            closed = client.close_session(sid)
            results[idx] = (np.asarray(voted), closed["frames_seen"])

    pool_note = f", {args.workers} engine workers" if args.workers else ""
    print(f"=== {NUM_SENSORS} sensors -> one serving process{pool_note} ===")
    with start_server(
        engine, max_batch=32, max_wait_ms=2.0, workers=args.workers
    ) as server:
        print(f"serving {engine.target} on {server.host}:{server.port}")
        nodes = [
            threading.Thread(target=sensor_node, args=(i, server.host, server.port))
            for i in range(NUM_SENSORS)
        ]
        for node in nodes:
            node.start()
        for node in nodes:
            node.join()

        for idx, (voted, seen) in enumerate(results):
            truth = streams[idx][1]
            bas = balanced_accuracy(truth, voted)
            counts = ", ".join(
                f"{c}p:{(voted == c).sum():3d}" for c in range(4)
            )
            print(
                f"sensor {idx}: {seen} frames | majority-vote BAS {bas:.3f} | "
                f"occupancy [{counts}]"
            )

        if args.workers:
            by_worker = {}
            for idx, worker in enumerate(shards):
                by_worker.setdefault(worker, []).append(f"sensor {idx}")
            print("\n=== shard map (sha256(session_id) mod workers) ===")
            for worker in sorted(by_worker):
                print(f"worker {worker}: {', '.join(by_worker[worker])}")
            stats = server.service.pool_stats()
            print(
                f"pool: {stats['frames_total']} frames in "
                f"{stats['batches_total']} batches | mean batch "
                f"{stats['mean_batch_size'] or 0:.2f} | "
                f"crashes {stats['crashes_total']} restarts {stats['restarts_total']}"
            )

        with ServeClient(server.host, server.port) as probe:
            print("\n=== final /metrics snapshot ===")
            print(probe.metrics(), end="")


if __name__ == "__main__":
    main()
