"""Streaming occupancy monitoring — the application the paper motivates.

Simulates a deployed smart sensor watching a room: frames arrive one by one
at 10 FPS from the (synthetic) infrared sensor, the on-device classifier
produces a per-frame people count, and the majority-voting FIFO smooths the
stream.  The whole loop is one engine ``StreamSession``: per-frame inference
fused with the voting FIFO behind ``repro.compile``.  The example reports
per-class recall, the occupancy timeline, and an estimate of the node's
energy budget over the monitored period using the MAUPITI power figures.

Run with:  python examples/streaming_occupancy_monitor.py
"""

import numpy as np

import repro
from repro.datasets import generate_linaige
from repro.flow import Preprocessor, build_seed_cnn
from repro.hw import MAUPITI_SPEC, sensor_energy_per_frame_j
from repro.nn import ArrayDataset, TrainConfig, train_model
from repro.nn.metrics import balanced_accuracy, confusion_matrix, per_class_recall


def main() -> None:
    rng = np.random.default_rng(1)
    dataset = generate_linaige(seed=3, scale=0.12)

    # Train on sessions 1-4, monitor session 5 as the "live" stream.
    monitor_session = dataset.session(5)
    train_frames = np.concatenate(
        [s.frames for s in dataset.sessions if s.session_id != 5]
    )
    train_labels = np.concatenate(
        [s.labels for s in dataset.sessions if s.session_id != 5]
    )
    pre = Preprocessor.fit(train_frames)
    model = build_seed_cnn(rng, conv_channels=(16, 16), hidden_features=32)
    train_model(
        model,
        ArrayDataset(pre(train_frames), train_labels),
        config=TrainConfig(epochs=10, batch_size=128),
        rng=rng,
    )

    # Stream the monitored session frame by frame: the engine session fuses
    # per-frame inference with the 5-deep majority-voting FIFO.
    engine = repro.compile(model, target="numpy-float", majority_window=5)
    frames = pre(monitor_session.frames)
    with engine.stream() as session:
        for frame in frames:
            session.push(frame)
        summary = session.summary()
    raw_predictions = summary.raw_predictions
    smoothed = summary.voted_predictions
    labels = monitor_session.labels

    print("=== Occupancy monitoring on session 5 ===")
    print(f"frames monitored: {len(labels)} (~{len(labels) / 10 / 60:.1f} minutes at 10 FPS)")
    print(f"single-frame BAS: {balanced_accuracy(labels, raw_predictions):.3f}")
    print(f"majority-vote BAS: {balanced_accuracy(labels, smoothed):.3f}")
    print("per-class recall (majority):", np.round(per_class_recall(labels, smoothed, 4), 3))
    print("confusion matrix (majority):")
    print(confusion_matrix(labels, smoothed, 4))

    # Occupancy timeline summary: how long was the room at each count?
    seconds_per_frame = 0.1
    for count in range(4):
        occupancy_s = float((smoothed == count).sum()) * seconds_per_frame
        print(f"  estimated time with {count} people: {occupancy_s:6.1f} s")

    # Energy budget of the smart sensor over the monitored period, assuming
    # a mid-sized deployed model (~100k cycles per inference on MAUPITI).
    cycles_per_inference = 100_000
    inference_j = MAUPITI_SPEC.energy_per_inference_j(cycles_per_inference)
    total_j = len(labels) * (inference_j + sensor_energy_per_frame_j())
    print(
        f"energy over the period: {total_j * 1e3:.2f} mJ "
        f"({inference_j * 1e6:.2f} uJ/inference + sensor)"
    )


if __name__ == "__main__":
    main()
