"""Architecture and precision search (a scaled-down version of Fig. 5).

Runs the PIT mask-based DNAS for a few regularization strengths, then
explores INT4/INT8 mixed-precision quantization of the discovered
architectures, printing the accuracy / memory / MACs trade-off of every
point and the resulting Pareto front.  The best quantized point is finally
compiled to the integer golden model through the engine façade to confirm
its post-lowering accuracy.

Both sweeps run their trials as parallel task units on a process pool
(``executor="process"``) with an on-disk result cache — re-running this
example replays the already-trained points bit-identically instead of
training them again.  Delete the cache directory (or switch to
``executor="serial"``) to retrain from scratch.

Run with:  python examples/nas_and_quantization.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.parallel import ResultCache

import repro
from repro.datasets import generate_linaige
from repro.flow import Preprocessor, pareto_front, points_from, seed_builder
from repro.nas import SearchConfig, run_search
from repro.nn import ArrayDataset
from repro.nn.metrics import balanced_accuracy
from repro.quant import QATConfig, explore_mixed_precision


def main() -> None:
    cache = ResultCache(Path(tempfile.gettempdir()) / "repro-example-cache")
    dataset = generate_linaige(seed=0, scale=0.12)
    test_session = dataset.session(2)
    train_frames = np.concatenate(
        [s.frames for s in dataset.sessions if s.session_id != 2]
    )
    train_labels = np.concatenate(
        [s.labels for s in dataset.sessions if s.session_id != 2]
    )
    pre = Preprocessor.fit(train_frames)
    train_set = ArrayDataset(pre(train_frames), train_labels)
    test_set = ArrayDataset(pre(test_session.frames), test_session.labels)

    # --- Stage 1: PIT architecture search (lambda sweep). -------------------
    search_config = SearchConfig(
        lambdas=(1e-5, 1e-4, 1e-3),
        cost="params",
        warmup_epochs=1,
        search_epochs=4,
        finetune_epochs=4,
        batch_size=128,
    )
    print("=== Architecture search (PIT, lambda sweep) ===")
    architectures = run_search(
        seed_builder((32, 32), 32), train_set, test_set, config=search_config, seed=0,
        executor="process", cache=cache,
    )
    for point in architectures:
        print("  " + point.describe())

    # --- Stage 2: mixed-precision quantization of the best architecture. ----
    front = pareto_front(
        points_from(architectures, score=lambda p: p.bas, cost=lambda p: float(p.params))
    )
    best = front[-1].payload  # the most accurate Pareto-optimal architecture
    print(f"\n=== Mixed-precision exploration of: {best.describe()} ===")
    quantized = explore_mixed_precision(
        best.model,
        train_set,
        test_set,
        config=QATConfig(epochs=3, batch_size=128),
        seed=0,
        executor="process",
        cache=cache,
    )
    for point in quantized:
        print("  " + point.describe())

    # --- Global Pareto front in the BAS vs memory plane. ---------------------
    merged = pareto_front(
        points_from(
            quantized, score=lambda p: p.bas, cost=lambda p: p.memory_bytes,
            label=lambda p: p.scheme.label,
        )
    )
    print("\n=== Pareto-optimal quantized models (BAS vs memory) ===")
    for point in merged:
        print(f"  {point.label:<14} bas={point.score:.3f} memory={point.cost / 1024:.2f} kB")

    # --- Lower the most accurate Pareto point to true-integer inference. -----
    best_quantized = merged[-1].payload
    golden = repro.compile(best_quantized, target="int-golden")
    preds = golden.predict_batch(test_set.inputs).predictions
    bas_int = balanced_accuracy(test_set.targets, preds)
    print(
        f"\nbest point {best_quantized.scheme.label} lowered to integers "
        f"({golden.target}): BAS = {bas_int:.3f} (QAT BAS = {best_quantized.bas:.3f})"
    )


if __name__ == "__main__":
    main()
