"""repro — reproduction of "HW-SW Optimization of DNNs for Privacy-Preserving
People Counting on Low-Resolution Infrared Arrays" (DATE 2024).

The quickest way in is the engine façade: define or train a model once, then
``repro.compile(model, target=...)`` it for any execution target —

>>> engine = repro.compile(model, target="maupiti")
>>> engine.predict_batch(frames).predictions

Sub-packages
------------
``repro.engine``
    The unified execution API: ``repro.compile(model, target=...)`` returns
    an ``Engine`` with ``predict`` / ``predict_batch`` / ``stream`` /
    ``report`` over a registry of targets (``numpy-float``, ``int-golden``,
    ``ibex``, ``maupiti``, ``stm32`` — extensible via ``register_target``).
``repro.nn``
    Numpy-based DNN training framework (layers, losses, optimizers, metrics).
``repro.datasets``
    Synthetic LINAIGE-compatible 8x8 infrared dataset and transforms.
``repro.nas``
    PIT mask-based differentiable architecture search.
``repro.quant``
    INT4/INT8 mixed-precision quantization-aware training and integer lowering.
``repro.postproc``
    Sliding-window majority-voting post-processing.
``repro.hw``
    MAUPITI smart-sensor platform: RV32IM+SDOTP ISA simulator, memories,
    sensor and energy models.
``repro.deploy``
    Deployment toolchain: kernels/code generation, runtime, STM32 baseline,
    Table-I reports.
``repro.flow``
    End-to-end flow orchestration, Pareto utilities and the manual baseline.
``repro.parallel``
    Executor-based trial parallelism (serial / process pools) and the
    content-addressed result cache behind ``FlowConfig(executor=...)``.
``repro.serve``
    Multi-session streaming inference service: asyncio HTTP/1.1 (or WSGI)
    front-end, per-session majority FIFOs, cross-session micro-batching
    through ``Engine.predict_batch``, backpressure, TTL eviction, metrics.
``repro.faults``
    Seeded, composable sensor/uplink fault models (dead pixels, drift,
    noise, dropouts) behind a ``@register_fault`` registry, applicable to
    offline datasets and live streams with bit-identical results.
``repro.robustness``
    Fault x severity x target degradation grid: accuracy/BAS curves (raw
    and majority-voted) plus cycle/energy cost per scenario.
"""

from . import datasets, deploy, engine, faults, flow, hw, nas, nn, parallel
from . import postproc, quant, robustness, serve
from .engine import Engine, StreamSession, available_targets, compile, register_target

__version__ = "1.4.0"

__all__ = [
    "compile",
    "Engine",
    "StreamSession",
    "available_targets",
    "register_target",
    "engine",
    "nn",
    "datasets",
    "nas",
    "quant",
    "postproc",
    "hw",
    "deploy",
    "faults",
    "flow",
    "parallel",
    "robustness",
    "serve",
    "__version__",
]
