"""repro — reproduction of "HW-SW Optimization of DNNs for Privacy-Preserving
People Counting on Low-Resolution Infrared Arrays" (DATE 2024).

Sub-packages
------------
``repro.nn``
    Numpy-based DNN training framework (layers, losses, optimizers, metrics).
``repro.datasets``
    Synthetic LINAIGE-compatible 8x8 infrared dataset and transforms.
``repro.nas``
    PIT mask-based differentiable architecture search.
``repro.quant``
    INT4/INT8 mixed-precision quantization-aware training and integer lowering.
``repro.postproc``
    Sliding-window majority-voting post-processing.
``repro.hw``
    MAUPITI smart-sensor platform: RV32IM+SDOTP ISA simulator, memories,
    sensor and energy models.
``repro.deploy``
    Deployment toolchain: kernels/code generation, runtime, STM32 baseline,
    Table-I reports.
``repro.flow``
    End-to-end flow orchestration, Pareto utilities and the manual baseline.
"""

from . import datasets, deploy, flow, hw, nas, nn, postproc, quant

__version__ = "1.0.0"

__all__ = [
    "nn",
    "datasets",
    "nas",
    "quant",
    "postproc",
    "hw",
    "deploy",
    "flow",
    "__version__",
]
