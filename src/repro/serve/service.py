"""Transport-agnostic core of the serving subsystem.

:class:`ServeService` glues one thread-safe :class:`~repro.engine.Engine`
to the session registry, the cross-session micro-batcher and the metrics
registry, and implements the HTTP route semantics once — both front-ends
(the hand-rolled asyncio HTTP/1.1 server and the WSGI adapter) route into
:meth:`ServeService.handle` and only differ in how they wait for the
batcher's future: the asyncio server awaits it, WSGI blocks on it.
"""

from __future__ import annotations

import json
import re
import sys
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from ..engine.guard import InvalidFrameError
from .batcher import MicroBatcher
from .errors import (
    BadRequestError,
    InvalidFramesError,
    ServeError,
    ShuttingDownError,
)
from .metrics import ServeMetrics
from .sessions import SessionManager

_FRAMES_PATH = re.compile(r"^/v1/sessions/([0-9a-f]+)/frames$")
_SESSION_PATH = re.compile(r"^/v1/sessions/([0-9a-f]+)$")


@dataclass
class ChaosConfig:
    """Deterministic failure injection for the worker pool (tests/CI).

    No randomness: every trigger is a plain counter over submits/frames, so
    a chaos scenario replays identically.  All knobs default to off; the
    config only takes effect with ``workers >= 1``.
    """

    #: SIGKILL a worker once this many frames have been submitted pool-wide
    #: (exercises the PR 9 crash path: in-flight 503, session purge, lazy
    #: respawn) — ``None`` disables.
    kill_after_frames: Optional[int] = None
    #: restrict the kill to one worker index (``None``: whichever worker
    #: receives the submit that crosses the threshold).
    kill_worker: Optional[int] = None
    #: at most this many chaos kills per pool lifetime.
    max_kills: int = 1
    #: every Nth submit fails as if the request ring were full (HTTP 429).
    reject_every: Optional[int] = None
    #: added latency per submit, in milliseconds (slow-worker simulation).
    delay_ms: float = 0.0


@dataclass
class ServeConfig:
    """Knobs of the serving layer (micro-batching, backpressure, eviction).

    ``workers=0`` (the default) keeps everything in-process: one engine, one
    micro-batcher, today's exact behavior.  ``workers=N`` shards sessions by
    consistent hash onto N engine worker processes, each with its own
    engine + micro-batcher, with frames travelling through per-worker
    shared-memory rings (see :mod:`repro.serve.pool`).
    """

    max_batch: int = 32
    max_wait_ms: float = 2.0
    max_queue: int = 1024
    max_session_queue: int = 256
    session_ttl_s: float = 300.0
    request_timeout_s: float = 30.0
    majority_window: Optional[int] = None  # None: the engine's default
    num_classes: Optional[int] = None  # None: the engine's default
    # --- input guardrails (None = no validation, the historical behavior) ---
    on_invalid: Optional[str] = None  # "reject" | "clamp" | "hold_last"
    input_range: Optional[Tuple[float, float]] = None
    # --- worker pool (0 = single-process serving, the default) ---
    workers: int = 0
    mp_context: str = "spawn"  # "fork" is faster to start but unsafe with threads
    ring_bytes: int = 4 * 1024 * 1024  # per direction, per worker
    worker_start_timeout_s: float = 120.0
    #: deterministic failure injection (pool mode only; None = off)
    chaos: Optional[ChaosConfig] = None

    def as_json(self) -> dict:
        payload = {
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "max_queue": self.max_queue,
            "max_session_queue": self.max_session_queue,
            "session_ttl_s": self.session_ttl_s,
        }
        if self.workers:  # keep the workers=0 wire format byte-identical
            payload["workers"] = self.workers
        if self.on_invalid is not None:  # ditto for unguarded deployments
            payload["on_invalid"] = self.on_invalid
            if self.input_range is not None:
                payload["input_range"] = list(self.input_range)
        return payload


@dataclass
class Response:
    """One materialized HTTP response."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: Optional[Dict[str, str]] = None  # extra headers (e.g. Retry-After)

    @classmethod
    def json(
        cls, status: int, payload: Any, headers: Optional[Dict[str, str]] = None
    ) -> "Response":
        return cls(
            status=status, body=(json.dumps(payload) + "\n").encode(), headers=headers
        )

    @classmethod
    def text(cls, status: int, payload: str) -> "Response":
        return cls(
            status=status,
            body=payload.encode(),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    @classmethod
    def error(cls, exc: ServeError) -> "Response":
        return cls.json(
            exc.status,
            {"error": exc.code, "detail": exc.detail},
            headers=getattr(exc, "headers", None),
        )


@dataclass
class PendingResponse:
    """A frames request waiting on the micro-batcher.

    The front-end waits for :attr:`future` its own way (``await`` vs
    ``.result()``) and then calls :meth:`complete` / :meth:`fail` to turn
    the outcome into a uniform :class:`Response`.
    """

    future: Future
    session_id: str
    count: int
    endpoint: str = "frames"
    started: float = field(default_factory=time.perf_counter)
    _metrics: Optional[ServeMetrics] = None

    def complete(self, results) -> Response:
        if self._metrics is not None:
            self._metrics.observe_latency(time.perf_counter() - self.started)
        return Response.json(
            200,
            {
                "session_id": self.session_id,
                "count": self.count,
                "results": [r.as_json() for r in results],
            },
        )

    def fail(self, exc: BaseException) -> Response:
        if isinstance(exc, ServeError):
            return Response.error(exc)
        return Response.json(500, {"error": "internal", "detail": str(exc)})


@dataclass
class DeferredResponse:
    """A fully-routed response being computed off the caller's thread.

    Returned by :meth:`ServeService.handle` for routes that may block for
    seconds (the worker pool's lazy spawn + priming on session open); the
    asyncio front-end awaits :attr:`future`, WSGI blocks on it, and either
    way it resolves to a plain, already-observed :class:`Response`.
    """

    future: Future


class ServeService:
    """Sessions + micro-batcher + metrics over one compiled engine."""

    def __init__(
        self,
        engine,
        config: Optional[ServeConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.engine = engine
        self.config = config or ServeConfig()
        self._clock = clock
        self.metrics = ServeMetrics()
        self.sessions = SessionManager(
            ttl_s=self.config.session_ttl_s,
            default_window=self.config.majority_window
            if self.config.majority_window is not None
            else getattr(engine, "majority_window", 5),
            num_classes=self.config.num_classes
            if self.config.num_classes is not None
            else getattr(engine, "num_classes", 4),
            clock=clock,
            on_invalid=self.config.on_invalid,
            input_range=self.config.input_range,
        )
        self.batcher = MicroBatcher(
            engine.predict_batch,
            max_batch=self.config.max_batch,
            max_wait_ms=self.config.max_wait_ms,
            max_queue=self.config.max_queue,
            max_session_queue=self.config.max_session_queue,
            metrics=self.metrics,
            clock=clock,
        )
        self.metrics.register_gauge("active_sessions", lambda: len(self.sessions))
        self.metrics.register_gauge("queue_depth", lambda: self.batcher.depth)
        self.metrics.register_renderer(self._render_session_health)
        self._started = False
        self._stopping = False

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        self.batcher.start()
        self._started = True
        self._stopping = False

    def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: refuse new work, drain in-flight batches."""
        self._stopping = True
        self.batcher.stop(drain=drain)
        self.sessions.close_all()
        self._started = False

    @property
    def accepting(self) -> bool:
        return self._started and not self._stopping

    # ------------------------------------------------------------------ #
    def open_session(
        self, window: Optional[int] = None, num_classes: Optional[int] = None
    ) -> dict:
        if not self.accepting:
            raise ShuttingDownError("server is draining")
        try:
            session = self.sessions.open(window=window, num_classes=num_classes)
        except ValueError as exc:
            raise BadRequestError(str(exc)) from exc
        self.metrics.inc("sessions_opened_total")
        return {
            "session_id": session.id,
            "window": session.window,
            "num_classes": session.num_classes,
            "target": getattr(self.engine, "target", "unknown"),
            "config": self.config.as_json(),
        }

    def _guard_frames(self, session, frames: np.ndarray) -> np.ndarray:
        """Apply the session's input guard (no-op when unconfigured).

        Runs under the session lock so the guard's hold-last state and
        counters see frames in admission order; maps a rejection to the
        HTTP 400 ``invalid_frames`` error.
        """
        guard = session.guard
        if guard is None:
            return frames
        with session.lock:
            before = guard.health.invalid_frames
            try:
                frames = guard.apply(frames)
            finally:
                bad = guard.health.invalid_frames - before
        if bad:
            self.metrics.inc("invalid_frames_total", bad)
        return frames

    def submit_frames(self, session_id: str, frames: np.ndarray) -> PendingResponse:
        session = self.sessions.get(session_id)
        try:
            frames = self._guard_frames(session, frames)
        except InvalidFrameError as exc:
            raise InvalidFramesError(str(exc)) from exc
        future = self.batcher.submit(session, frames)
        return PendingResponse(
            future=future,
            session_id=session_id,
            count=int(frames.shape[0]),
            _metrics=self.metrics,
        )

    def close_session(self, session_id: str) -> dict:
        session = self.sessions.close(session_id)
        self.metrics.inc("sessions_closed_total")
        return session.describe()

    def evict_idle(self) -> int:
        evicted = self.sessions.evict_idle()
        if evicted:
            self.metrics.inc("evictions_total", len(evicted))
        return len(evicted)

    def healthz(self) -> Tuple[int, dict]:
        status = 200 if self.accepting else 503
        return status, {
            "status": "ok" if self.accepting else "shutting_down",
            "target": getattr(self.engine, "target", "unknown"),
            "active_sessions": len(self.sessions),
            "queue_depth": self.batcher.depth,
        }

    # ------------------------------------------------------------------ #
    @staticmethod
    def _parse_json(body: bytes) -> dict:
        if not body:
            return {}
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise BadRequestError(f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise BadRequestError("JSON body must be an object")
        return payload

    @staticmethod
    def _parse_frames(payload: dict) -> np.ndarray:
        if "frames" not in payload:
            raise BadRequestError("missing 'frames' field")
        try:
            frames = np.asarray(payload["frames"], dtype=np.float64)
        except (ValueError, TypeError) as exc:
            raise BadRequestError(f"frames are not a numeric array: {exc}") from exc
        if frames.ndim == 3:  # a single (C, H, W) frame
            frames = frames[None]
        if frames.ndim != 4 or frames.shape[0] < 1:
            raise BadRequestError(
                "frames must be one (C, H, W) frame or an (N, C, H, W) batch; "
                f"got shape {frames.shape}"
            )
        return frames

    def handle(self, method: str, path: str, body: bytes):
        """Route one request; returns a :class:`Response` or, for the frames
        endpoint, a :class:`PendingResponse` the caller must wait on."""
        path = path.split("?", 1)[0]
        try:
            if path == "/healthz":
                if method != "GET":
                    return self._method_not_allowed("healthz")
                status, payload = self.healthz()
                return self._observed("healthz", Response.json(status, payload))
            if path == "/metrics":
                if method != "GET":
                    return self._method_not_allowed("metrics")
                return self._observed("metrics", Response.text(200, self.metrics.render()))
            if path == "/v1/sessions":
                if method != "POST":
                    return self._method_not_allowed("sessions")
                payload = self._parse_json(body)
                opened = self.open_session(
                    window=payload.get("window"),
                    num_classes=payload.get("num_classes"),
                )
                return self._observed("sessions", Response.json(201, opened))
            match = _FRAMES_PATH.match(path)
            if match:
                if method != "POST":
                    return self._method_not_allowed("frames")
                frames = self._parse_frames(self._parse_json(body))
                return self.submit_frames(match.group(1), frames)
            match = _SESSION_PATH.match(path)
            if match:
                if method != "DELETE":
                    return self._method_not_allowed("sessions")
                return self._observed(
                    "sessions", Response.json(200, self.close_session(match.group(1)))
                )
            return self._observed(
                "unknown",
                Response.json(404, {"error": "not_found", "detail": f"no route {path}"}),
            )
        except ServeError as exc:
            endpoint = "frames" if "/frames" in path else path.strip("/") or "unknown"
            if exc.status == 429:
                self.metrics.inc("rejected_total")
            return self._observed(endpoint, Response.error(exc))

    def resolve(self, pending: PendingResponse) -> Response:
        """Synchronously wait out a pending frames request (WSGI path)."""
        try:
            results = pending.future.result(timeout=self.config.request_timeout_s)
        except BaseException as exc:  # noqa: BLE001 - mapped to a response
            return self._observed(pending.endpoint, pending.fail(exc))
        return self._observed(pending.endpoint, pending.complete(results))

    def _render_session_health(self) -> str:
        """Per-session health gauges appended to the ``/metrics`` payload:
        the faulty-frame fraction seen by each session's input guard and
        the vote margin of its majority FIFO."""
        sessions = self.sessions.snapshot()
        if not sessions:
            return ""
        p = "repro_serve_session"
        lines = [f"# TYPE {p}_invalid_fraction gauge"]
        for s in sessions:
            lines.append(
                f'{p}_invalid_fraction{{session="{s.id}"}} {s.invalid_fraction:.6f}'
            )
        margins = [s for s in sessions if s.last_margin is not None]
        if margins:
            lines.append(f"# TYPE {p}_vote_margin gauge")
            for s in margins:
                lines.append(f'{p}_vote_margin{{session="{s.id}"}} {s.last_margin:.6f}')
        return "\n".join(lines)

    def _observed(self, endpoint: str, response: Response) -> Response:
        self.metrics.observe_request(endpoint, response.status)
        return response

    def _method_not_allowed(self, endpoint: str) -> Response:
        return self._observed(
            endpoint,
            Response.json(405, {"error": "method_not_allowed", "detail": ""}),
        )


def available_cpus() -> int:
    """CPUs actually *available* to this process, not the machine total.

    Inside containers / cgroups ``os.cpu_count()`` reports the host's
    cores even when the process is pinned to a subset, which would let
    the >=4-CPU benchmark gates fire on hosts that cannot deliver the
    parallelism.  ``sched_getaffinity`` reflects the real allowance.
    """
    import os

    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # non-Linux platforms
        return os.cpu_count() or 1


def describe_host() -> dict:
    """Host fingerprint recorded in benchmark payloads."""
    return {
        "cpus": available_cpus(),
        "python": sys.version.split()[0],
        "platform": sys.platform,
    }
