"""Error taxonomy of the serving layer.

Every failure the service can report to a client is a :class:`ServeError`
carrying an HTTP status code and a short machine-readable ``code``; the
HTTP front-ends (asyncio and WSGI) translate them uniformly into JSON
``{"error": code, "detail": ...}`` bodies.
"""

from __future__ import annotations


class ServeError(RuntimeError):
    """Base class: a client-reportable serving failure."""

    status = 500
    code = "internal"

    def __init__(self, detail: str = ""):
        super().__init__(detail or self.code)
        self.detail = detail or self.code


class UnknownSessionError(ServeError):
    """The session id does not exist (never opened, closed, or evicted)."""

    status = 404
    code = "unknown_session"


class SessionClosedError(ServeError):
    """The session was closed or evicted while frames were still in flight."""

    status = 409
    code = "session_closed"


class OverloadedError(ServeError):
    """Backpressure: the global or per-session queue bound was hit."""

    status = 429
    code = "overloaded"


class ShuttingDownError(ServeError):
    """The server is draining and no longer accepts new work."""

    status = 503
    code = "shutting_down"


class BadRequestError(ServeError):
    """Malformed request body (bad JSON, wrong frame shape, ...)."""

    status = 400
    code = "bad_request"


class InvalidFramesError(ServeError):
    """Frames failed input validation under the ``"reject"`` policy
    (NaN/Inf pixels, or values outside the configured ``input_range``)."""

    status = 400
    code = "invalid_frames"


class WorkerCrashedError(ServeError):
    """The engine worker process holding this session's shard died.

    The pool respawns the worker lazily; clients should retry after the
    advertised delay (the session itself is gone — re-open one).
    """

    status = 503
    code = "worker_crashed"
    headers = {"Retry-After": "1"}


#: code -> class, for surfaces that reconstruct errors from their wire form
#: (the stdlib client, and the pool parent mapping worker-side failures).
ERRORS_BY_CODE = {
    cls.code: cls
    for cls in (
        UnknownSessionError,
        SessionClosedError,
        OverloadedError,
        ShuttingDownError,
        BadRequestError,
        InvalidFramesError,
        WorkerCrashedError,
    )
}
