"""Hand-rolled asyncio HTTP/1.1 front-end of the serving subsystem.

No web framework and no ``http.server``: connections are plain
``asyncio.start_server`` streams, requests are parsed with a minimal
HTTP/1.1 reader (request line, headers, ``Content-Length`` body,
keep-alive), and every route is delegated to the transport-agnostic
:class:`~repro.serve.service.ServeService`.  The frames endpoint awaits
the micro-batcher's future without ever blocking the event loop, so one
process sustains many concurrent sensor streams.

``ServeServer.run_in_thread`` (or the :func:`start_server` convenience)
hosts the event loop on a daemon thread, which is how the example, the
tests and the load benchmark embed the server in-process.

Endpoints::

    POST   /v1/sessions              open a stream     -> 201 {session_id, ...}
    POST   /v1/sessions/{id}/frames  push 1..N frames  -> 200 {results: [...]}
    DELETE /v1/sessions/{id}         close the stream  -> 200 {frames_seen}
    GET    /healthz                  liveness + queue  -> 200 / 503
    GET    /metrics                  Prometheus text   -> 200
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from .errors import BadRequestError
from .service import (
    DeferredResponse,
    PendingResponse,
    Response,
    ServeConfig,
    ServeService,
)

_MAX_REQUEST_LINE = 8192
_MAX_HEADERS = 64
_MAX_BODY = 64 * 1024 * 1024

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def make_service(engine, config: Optional[ServeConfig] = None) -> ServeService:
    """Build the serving core for ``engine``: in-process for ``workers=0``
    (the default — today's exact single-engine path), the sharded
    multi-process :class:`~repro.serve.pool.PoolServeService` otherwise."""
    config = config or ServeConfig()
    if config.workers and config.workers > 0:
        from .pool import PoolServeService  # deferred: pool imports service

        return PoolServeService(engine, config)
    return ServeService(engine, config)


class ServeServer:
    """One engine served over HTTP/1.1 on an asyncio event loop."""

    def __init__(
        self,
        engine,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[ServeConfig] = None,
        eviction_interval_s: Optional[float] = None,
    ):
        self.service = (
            engine if isinstance(engine, ServeService) else make_service(engine, config)
        )
        self.host = host
        self.port = port  # 0: ephemeral; replaced by the bound port on start
        self._eviction_interval_s = eviction_interval_s
        self._server: Optional[asyncio.AbstractServer] = None
        self._sweeper: Optional[asyncio.Task] = None
        self._handlers: set = set()
        self._writers: set = set()
        self._busy: set = set()  # handler tasks currently mid-request
        self._stopping = False

    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        self._stopping = False
        self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        interval = self._eviction_interval_s
        if interval is None:
            interval = max(0.5, self.service.config.session_ttl_s / 4.0)
        self._sweeper = asyncio.get_running_loop().create_task(self._sweep(interval))

    async def stop(self, grace_s: float = 10.0) -> None:
        """Graceful shutdown: stop accepting, finish in-flight requests,
        drain the micro-batcher, then close idle keep-alive connections.

        ``Server.wait_closed()`` is deliberately not awaited — on Python
        >= 3.12 it waits for *all* client connections, so one idle
        keep-alive peer would stall shutdown forever.  Instead, handlers
        that are mid-request get ``grace_s`` to complete, then every
        remaining connection is closed.
        """
        self._stopping = True
        if self._server is not None:
            self._server.close()
            self._server = None
        if self._sweeper is not None:
            self._sweeper.cancel()
            self._sweeper = None
        loop = asyncio.get_running_loop()
        deadline = loop.time() + grace_s
        while self._busy and loop.time() < deadline:
            await asyncio.sleep(0.01)
        for writer in list(self._writers):
            try:
                writer.close()
            except (ConnectionError, OSError):  # pragma: no cover - best effort
                pass
        if self._handlers:
            await asyncio.wait(list(self._handlers), timeout=grace_s)
        # Drain whatever is still queued in the batcher (blocking: run off-loop).
        await loop.run_in_executor(None, lambda: self.service.stop(True))

    async def _sweep(self, interval: float) -> None:
        while True:
            await asyncio.sleep(interval)
            self.service.evict_idle()

    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._handlers.add(task)
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                if request is None:
                    break
                self._busy.add(task)
                try:
                    method, path, headers, body, parse_error = request
                    if parse_error is not None:
                        response = Response.error(parse_error)
                        keep_alive = False
                    else:
                        response = self.service.handle(method, path, body)
                        if isinstance(response, DeferredResponse):
                            # Routed off-loop (pool session opens spawn
                            # workers); resolves to a plain Response.
                            response = await asyncio.wrap_future(response.future)
                        elif isinstance(response, PendingResponse):
                            response = await self._await_pending(response)
                        keep_alive = headers.get("connection", "keep-alive") != "close"
                    try:
                        await self._write_response(writer, response, keep_alive)
                    except (ConnectionError, OSError):
                        break
                finally:
                    self._busy.discard(task)
                if not keep_alive or self._stopping:
                    break
        finally:
            self._busy.discard(task)
            self._handlers.discard(task)
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _await_pending(self, pending: PendingResponse) -> Response:
        try:
            results = await asyncio.wait_for(
                asyncio.wrap_future(pending.future),
                timeout=self.service.config.request_timeout_s,
            )
        except BaseException as exc:  # noqa: BLE001 - mapped to a response
            return self.service._observed(pending.endpoint, pending.fail(exc))
        return self.service._observed(pending.endpoint, pending.complete(results))

    async def _read_request(self, reader):
        """Parse one HTTP/1.1 request; None on clean EOF."""
        line = await reader.readline()
        if not line:
            return None
        if len(line) > _MAX_REQUEST_LINE:
            return "GET", "/", {}, b"", BadRequestError("request line too long")
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            return "GET", "/", {}, b"", BadRequestError("malformed request line")
        method, path = parts[0].upper(), parts[1]
        headers = {}
        for _ in range(_MAX_HEADERS):
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip().lower()
        else:
            return method, path, headers, b"", BadRequestError("too many headers")
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            return method, path, headers, b"", BadRequestError("bad Content-Length")
        if length > _MAX_BODY:
            return method, path, headers, b"", BadRequestError("body too large")
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body, None

    async def _write_response(self, writer, response: Response, keep_alive: bool) -> None:
        reason = _REASONS.get(response.status, "Unknown")
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (response.headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {response.status} {reason}\r\n"
            f"Content-Type: {response.content_type}\r\n"
            f"Content-Length: {len(response.body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"{extra}"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + response.body)
        await writer.drain()


class RunningServer:
    """A ServeServer hosted on a background thread (context manager)."""

    def __init__(self, server: ServeServer):
        self.server = server
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------ #
    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def service(self) -> ServeService:
        return self.server.service

    def start(self) -> "RunningServer":
        if self._thread is not None:  # idempotent: already running
            return self
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            self._thread = None
            raise self._startup_error
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:  # surface bind errors to the caller
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.close()

    def stop(self) -> None:
        if self._loop is None or self._thread is None:
            return
        done = threading.Event()

        async def _shutdown():
            try:
                await self.server.stop()
            finally:
                done.set()
                asyncio.get_running_loop().stop()

        self._loop.call_soon_threadsafe(
            lambda: self._loop.create_task(_shutdown())
        )
        done.wait(timeout=60)
        self._thread.join(timeout=60)
        self._loop = None
        self._thread = None

    def __enter__(self) -> "RunningServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def start_server(
    engine,
    host: str = "127.0.0.1",
    port: int = 0,
    config: Optional[ServeConfig] = None,
    **config_kwargs,
) -> RunningServer:
    """Serve ``engine`` over HTTP on a background thread.

    ``config_kwargs`` (e.g. ``max_batch=32, max_wait_ms=2.0``) build a
    :class:`ServeConfig` when ``config`` is not given.  ``workers=N``
    shards sessions across N engine worker processes (shared-memory frame
    transport; see :mod:`repro.serve.pool`); ``workers=0`` — the default —
    is the single-process path.  Returns a started :class:`RunningServer`;
    use it as a context manager or call ``stop()``.
    """
    if config is None:
        config = ServeConfig(**config_kwargs)
    elif config_kwargs:
        raise ValueError("pass either config= or keyword knobs, not both")
    return RunningServer(ServeServer(engine, host=host, port=port, config=config)).start()
