"""Cross-session micro-batching through one engine ``predict_batch`` call.

The batcher owns the serving hot path.  Frames arriving from any number of
concurrent sessions are enqueued as individual work items on one bounded
FIFO; a single dispatch thread pops the head item, keeps collecting until
``max_batch`` frames are in hand or ``max_wait_ms`` has elapsed since the
window opened, stacks the frames into one ``(N, C, H, W)`` array and runs a
single ``Engine.predict_batch`` — so the per-frame Python overhead
amortizes exactly like the batched simulator path, while each session's
majority FIFO is updated strictly in that session's arrival order.

Ordering guarantee: items are appended under the queue lock in submit
order and dispatched FIFO by one thread, so for any single session the
voter sees frames in exactly the order the client pushed them — which is
what makes served outputs bit-identical to an offline ``Engine.stream``
replay regardless of how sessions interleave (property-tested in
``tests/test_serve.py``).

Backpressure is reject-not-block: a submit that would exceed the global or
per-session bound raises :class:`~repro.serve.errors.OverloadedError`
immediately (the HTTP layer maps it to 429) instead of stalling the
event loop.  ``stop(drain=True)`` refuses new work but runs the dispatch
loop until the queue is empty, so graceful shutdown never drops an
in-flight frame.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from .errors import OverloadedError, SessionClosedError, ShuttingDownError
from .sessions import Session


@dataclass
class FrameResult:
    """Raw + majority-voted outcome of one served frame."""

    seq: int
    raw: int
    voted: int
    cycles: Optional[int] = None
    energy_uj: Optional[float] = None

    def as_json(self) -> dict:
        return {
            "seq": self.seq,
            "raw": self.raw,
            "voted": self.voted,
            "cycles": self.cycles,
            "energy_uj": self.energy_uj,
        }


class _Request:
    """Aggregates the per-frame results of one client push."""

    def __init__(self, count: int):
        self.future: Future = Future()
        self._results: List[Optional[FrameResult]] = [None] * count
        self._remaining = count

    def complete(self, slot: int, result: FrameResult) -> None:
        self._results[slot] = result
        self._remaining -= 1
        if self._remaining == 0 and not self.future.done():
            self.future.set_result(self._results)

    def fail(self, exc: BaseException) -> None:
        if not self.future.done():
            self.future.set_exception(exc)


@dataclass
class _Item:
    session: Session
    frame: np.ndarray
    request: _Request
    slot: int
    seq: int


class MicroBatcher:
    """Bounded FIFO + one dispatch thread coalescing frames across sessions.

    Parameters
    ----------
    runner:
        ``(N, ...) ndarray -> BatchPrediction``-shaped callable; in the
        service this is the engine's thread-safe ``predict_batch``.  All
        calls happen on the single dispatch thread the batcher owns.
    max_batch:
        Largest number of frames fused into one ``runner`` call
        (``1`` disables batching — the unbatched reference path).
    max_wait_ms:
        How long the dispatcher holds an under-full batch open waiting for
        more frames, measured from the first queued frame of the batch.
    max_queue / max_session_queue:
        Global / per-session admission bounds (reject with 429 beyond).
    """

    def __init__(
        self,
        runner: Callable[[np.ndarray], object],
        *,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        max_queue: int = 1024,
        max_session_queue: int = 256,
        metrics=None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        self._runner = runner
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_ms) / 1e3
        self.max_queue = int(max_queue)
        self.max_session_queue = int(max_session_queue)
        self._metrics = metrics
        self._clock = clock
        self._queue: deque = deque()
        self._cond = threading.Condition()
        self._stopping = False
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    @property
    def depth(self) -> int:
        with self._cond:
            return len(self._queue)

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stopping = False
        self._thread = threading.Thread(
            target=self._loop, name="repro-serve-batcher", daemon=True
        )
        self._thread.start()

    def submit(self, session: Session, frames: np.ndarray) -> Future:
        """Admit ``(N, ...)`` frames for one session; all-or-nothing.

        Returns a future resolving to the ordered ``List[FrameResult]``.
        """
        frames = np.asarray(frames)
        n = int(frames.shape[0])
        if n < 1:
            raise ValueError("submit needs at least one frame")
        request = _Request(n)
        with self._cond:
            if self._stopping or self._thread is None:
                raise ShuttingDownError("server is draining")
            if len(self._queue) + n > self.max_queue:
                raise OverloadedError(
                    f"global queue full ({len(self._queue)}/{self.max_queue})"
                )
            if session.pending + n > self.max_session_queue:
                raise OverloadedError(
                    f"session {session.id} queue full "
                    f"({session.pending}/{self.max_session_queue})"
                )
            with session.lock:
                if session.closed:
                    raise SessionClosedError(f"session {session.id} is closed")
                first_seq = session.next_seq
                session.next_seq += n
                session.touch(self._clock())
            session.pending += n
            for slot in range(n):
                self._queue.append(
                    _Item(
                        session=session,
                        frame=frames[slot],
                        request=request,
                        slot=slot,
                        seq=first_seq + slot,
                    )
                )
            self._cond.notify_all()
        return request.future

    def stop(self, drain: bool = True, timeout: Optional[float] = 30.0) -> None:
        """Refuse new work; with ``drain`` finish the queue first."""
        with self._cond:
            self._stopping = True
            if not drain:
                while self._queue:
                    item = self._queue.popleft()
                    item.session.pending -= 1
                    item.request.fail(ShuttingDownError("server stopped"))
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    # ------------------------------------------------------------------ #
    def _collect(self) -> Optional[List[_Item]]:
        """Block for the next batch (None once stopped and drained)."""
        with self._cond:
            while not self._queue and not self._stopping:
                self._cond.wait()
            if not self._queue:
                return None  # stopping and fully drained
            batch = [self._queue.popleft()]
            deadline = self._clock() + self.max_wait_s
            while len(batch) < self.max_batch:
                if self._queue:
                    batch.append(self._queue.popleft())
                    continue
                if self._stopping:
                    break
                remaining = deadline - self._clock()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            return batch

    def _loop(self) -> None:
        while True:
            batch = self._collect()
            if batch is None:
                return
            self._run_batch(batch)

    def _run_batch(self, batch: List[_Item]) -> None:
        # Frames of sessions closed/evicted while queued never reach the
        # engine; their requests fail with 409.
        live: List[_Item] = []
        for item in batch:
            with item.session.lock:
                closed = item.session.closed
            if closed:
                item.request.fail(
                    SessionClosedError(f"session {item.session.id} closed mid-stream")
                )
            else:
                live.append(item)
        if live:
            # Count the batch before any request future resolves: a client
            # that has seen its response must find its frames in /metrics.
            if self._metrics is not None:
                self._metrics.observe_batch(len(live))
                self._metrics.inc("batches_total")
                self._metrics.inc("frames_total", len(live))
            try:
                result = self._runner(np.stack([item.frame for item in live]))
            except Exception as exc:  # propagate engine failures per request
                for item in live:
                    item.request.fail(exc)
            else:
                predictions = result.predictions
                cycles = result.cycles_per_frame
                energy = result.energy_uj_per_frame
                for i, item in enumerate(live):
                    raw = int(predictions[i])
                    with item.session.lock:
                        if item.session.closed:
                            item.request.fail(
                                SessionClosedError(
                                    f"session {item.session.id} closed mid-stream"
                                )
                            )
                            continue
                        voted = item.session.record_vote(raw)
                        item.session.frames_done += 1
                    item.request.complete(
                        item.slot,
                        FrameResult(
                            seq=item.seq,
                            raw=raw,
                            voted=voted,
                            cycles=None if cycles is None else int(cycles[i]),
                            energy_uj=None if energy is None else float(energy[i]),
                        ),
                    )
        with self._cond:
            for item in batch:
                item.session.pending -= 1
