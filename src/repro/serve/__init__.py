"""`repro.serve` — multi-session streaming inference with micro-batching.

The serving subsystem takes one compiled :class:`~repro.engine.Engine` and
turns it into a fleet-facing service: many concurrent sensor sessions, each
with its own majority-FIFO state (the paper's post-processing filter), fed
through a **cross-session micro-batcher** that coalesces frames arriving
within a small window into single ``Engine.predict_batch`` calls — so the
per-frame Python overhead amortizes exactly like the batched simulator
path, while every session's outputs stay bit-identical to an offline
``Engine.stream()`` replay.

Quick start (in-process server on a background thread)::

    import repro
    from repro.serve import ServeClient, start_server

    engine = repro.compile(qmodel, target="int-golden")
    with start_server(engine, max_batch=32, max_wait_ms=2.0) as server:
        client = ServeClient(server.host, server.port)
        sid = client.open_session(window=5)["session_id"]
        out = client.push(sid, frames[:4])      # raw + voted per frame
        print(client.healthz(), client.metrics())
        client.close_session(sid)

Pieces
------
``ServeService``   transport-agnostic core: sessions + batcher + metrics
``ServeServer``    hand-rolled asyncio HTTP/1.1 front-end
``start_server``   run the asyncio server on a daemon thread (tests/examples)
``make_wsgi_app``  thin WSGI adapter over the same service
``ServeClient``    stdlib ``http.client`` client (one per stream)
``MicroBatcher``   the bounded FIFO + dispatch thread doing the coalescing
``PoolServeService``  sharded multi-process pool behind the same front-ends

Scaling out: ``start_server(engine, workers=N)`` shards sessions by
consistent hash onto N engine worker processes (each with its own engine
and micro-batcher) with frames travelling through per-worker
shared-memory rings — same wire protocol, same bit-exact outputs;
``workers=0`` (the default) is the single-process path above.
"""

from .batcher import FrameResult, MicroBatcher
from .client import (
    ConnectionDroppedError,
    RetryPolicy,
    ServeClient,
    ServeClientError,
    SessionStream,
)
from .errors import (
    BadRequestError,
    InvalidFramesError,
    OverloadedError,
    ServeError,
    SessionClosedError,
    ShuttingDownError,
    UnknownSessionError,
    WorkerCrashedError,
)
from .metrics import ServeMetrics, quantile
from .pool import EngineWorkerPool, PoolServeService, WorkerHandle, shard_of
from .server import RunningServer, ServeServer, make_service, start_server
from .service import (
    ChaosConfig,
    DeferredResponse,
    PendingResponse,
    Response,
    ServeConfig,
    ServeService,
    available_cpus,
    describe_host,
)
from .sessions import Session, SessionManager
from .worker import WorkerSpec
from .wsgi import make_wsgi_app

__all__ = [
    "BadRequestError",
    "ChaosConfig",
    "ConnectionDroppedError",
    "DeferredResponse",
    "EngineWorkerPool",
    "FrameResult",
    "InvalidFramesError",
    "MicroBatcher",
    "OverloadedError",
    "PendingResponse",
    "PoolServeService",
    "Response",
    "RetryPolicy",
    "RunningServer",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "ServeError",
    "SessionStream",
    "ServeMetrics",
    "ServeServer",
    "ServeService",
    "Session",
    "SessionClosedError",
    "SessionManager",
    "ShuttingDownError",
    "UnknownSessionError",
    "WorkerCrashedError",
    "WorkerHandle",
    "WorkerSpec",
    "available_cpus",
    "describe_host",
    "make_service",
    "make_wsgi_app",
    "quantile",
    "shard_of",
    "start_server",
]
