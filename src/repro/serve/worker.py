"""The engine worker process of the serving pool.

One worker owns one compiled :class:`~repro.engine.Engine`, one
:class:`~repro.serve.batcher.MicroBatcher` and the session mirrors of its
shard — the same pieces the in-process server uses, just isolated in a
process so N workers beat the GIL on the stats/voting paths.  The parent
talks to it over a duplex pipe (the "doorbell": a few hundred bytes of
control data per request) while frame payloads arrive through a
shared-memory :class:`~repro.parallel.shm.ShmRing` and packed results
leave through a second ring — no numpy array is ever pickled on the hot
path.

Protocol (all control messages are small dicts over the pipe):

========  =============================================================
op        meaning
========  =============================================================
frames    run a ``(N, C, H, W)`` payload at ``(pos, end)`` in the
          request ring through the batcher for session ``sid``
open      mirror a parent-allocated session (explicit ``sid``)
close     retire a session; replies with its ``describe()``
prime     one throwaway batch to warm the trace cache / numpy dispatch
stats     batching counters snapshot
drain     flush the batcher queue, reply, exit cleanly
exit!     test injection: die immediately (simulated crash)
========  =============================================================

Every reply carries the originating ``req`` id; ``frames`` replies point
at a packed ``(count, 5)`` float64 block — ``seq, raw, voted, cycles
(-1 = None), energy_uj (NaN = None)`` — in the result ring.  Replies that
ran the batcher piggyback a counters snapshot so the parent's aggregated
``/metrics`` never has to block on a worker round-trip.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Any, Dict

import numpy as np

from ..parallel.shm import ShmRing
from .batcher import MicroBatcher
from .errors import ServeError, UnknownSessionError
from .metrics import ServeMetrics
from .sessions import SessionManager

#: packed result row: seq, raw, voted, cycles (-1 = None), energy (NaN = None)
RESULT_FIELDS = 5

#: the readiness handshake uses a reserved request id
READY_REQ = -1

# Workers never self-evict: the parent owns TTLs and sends explicit closes,
# so a worker-local eviction could never race the parent's view.
_WORKER_TTL_S = 1e12


@dataclass
class WorkerSpec:
    """Picklable recipe to rebuild the parent's engine inside a worker."""

    bundle: Any
    target: str
    majority_window: int
    num_classes: int
    backend_opts: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_engine(cls, engine) -> "WorkerSpec":
        backend = getattr(engine, "backend", None)
        if backend is None or not hasattr(backend, "bundle"):
            raise ValueError(
                "the worker pool needs a real repro.engine.Engine (the spec "
                "rebuilds it per worker from its ModelBundle); got "
                f"{type(engine).__name__}"
            )
        bundle = backend.bundle
        # Shed cached activation buffers before the spec is pickled to the
        # spawn machinery (same policy as the parallel flow's task units).
        for model in (bundle.float_model, bundle.quant_model):
            clear = getattr(model, "clear_caches", None)
            if clear is not None:
                clear()
        opts: Dict[str, Any] = {}
        sim_mode = getattr(backend, "sim_mode", None)
        if sim_mode is not None:
            opts["sim_mode"] = sim_mode
        return cls(
            bundle=bundle,
            target=engine.target,
            majority_window=engine.majority_window,
            num_classes=engine.num_classes,
            backend_opts=opts,
        )

    def build_engine(self):
        from ..engine.api import compile as compile_engine

        return compile_engine(
            self.bundle,
            target=self.target,
            majority_window=self.majority_window,
            num_classes=self.num_classes,
            **self.backend_opts,
        )


def _encode_error(exc: BaseException) -> dict:
    if isinstance(exc, ServeError):
        return {"code": exc.code, "status": exc.status, "detail": exc.detail}
    return {"code": "internal", "status": 500, "detail": f"{type(exc).__name__}: {exc}"}


def pack_results(results) -> np.ndarray:
    """``List[FrameResult]`` -> the ``(count, 5)`` float64 wire block."""
    packed = np.empty((len(results), RESULT_FIELDS), dtype=np.float64)
    for i, r in enumerate(results):
        packed[i, 0] = r.seq
        packed[i, 1] = r.raw
        packed[i, 2] = r.voted
        packed[i, 3] = -1.0 if r.cycles is None else float(r.cycles)
        packed[i, 4] = np.nan if r.energy_uj is None else float(r.energy_uj)
    return packed


def worker_main(
    spec: WorkerSpec,
    knobs: Dict[str, Any],
    req_ring_name: str,
    resp_ring_name: str,
    conn,
    index: int,
) -> None:
    """Entry point of one engine worker process."""
    req_ring = ShmRing.attach(req_ring_name)
    resp_ring = ShmRing.attach(resp_ring_name)
    send_lock = threading.Lock()

    def send(msg: dict) -> None:
        with send_lock:
            try:
                conn.send(msg)
            except (BrokenPipeError, OSError):  # parent is gone; exiting anyway
                pass

    metrics = ServeMetrics()

    def snapshot() -> dict:
        batch_sum, batch_n = metrics.batch_totals()
        return {
            "frames_total": metrics.counter("frames_total"),
            "batches_total": metrics.counter("batches_total"),
            "batch_sum": batch_sum,
            "batch_n": batch_n,
        }

    try:
        engine = spec.build_engine()
    except Exception as exc:
        send({"op": "reply", "req": READY_REQ, "error": _encode_error(exc)})
        return

    sessions = SessionManager(
        ttl_s=_WORKER_TTL_S,
        default_window=engine.majority_window,
        num_classes=engine.num_classes,
    )
    batcher = MicroBatcher(
        engine.predict_batch,
        max_batch=knobs["max_batch"],
        max_wait_ms=knobs["max_wait_ms"],
        max_queue=knobs["max_queue"],
        max_session_queue=knobs["max_session_queue"],
        metrics=metrics,
    )
    batcher.start()
    send(
        {
            "op": "reply",
            "req": READY_REQ,
            "payload": {"pid": os.getpid(), "target": engine.target, "worker": index},
        }
    )

    def finish(req: int, future) -> None:
        # Runs on the batcher dispatch thread, strictly in dispatch order,
        # so result-ring allocations release in order on the parent side.
        exc = future.exception()
        if exc is not None:
            send({"op": "reply", "req": req, "error": _encode_error(exc), "stats": snapshot()})
            return
        results = future.result()
        pos, end = resp_ring.write(pack_results(results))  # blocks if parent lags
        send(
            {
                "op": "reply",
                "req": req,
                "result": {"pos": pos, "end": end, "count": len(results)},
                "stats": snapshot(),
            }
        )

    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break  # parent died or closed: nothing left to serve
            op, req = msg["op"], msg["req"]
            if op == "frames":
                dtype = np.dtype(msg["dtype"])
                shape = tuple(msg["shape"])
                nbytes = dtype.itemsize * int(np.prod(shape))
                view = req_ring.view(msg["pos"], nbytes)
                # One private copy, then hand the ring space straight back:
                # releasing in recv order keeps the cursor monotonic even
                # when a submit is rejected below.
                frames = np.frombuffer(view, dtype=dtype).reshape(shape).copy()
                del view
                req_ring.release(msg["end"])
                try:
                    session = sessions.get(msg["sid"])
                    future = batcher.submit(session, frames)
                except ServeError as exc:
                    send({"op": "reply", "req": req, "error": _encode_error(exc)})
                else:
                    future.add_done_callback(lambda f, req=req: finish(req, f))
            elif op == "open":
                try:
                    session = sessions.open(
                        window=msg.get("window"),
                        num_classes=msg.get("num_classes"),
                        session_id=msg["sid"],
                    )
                except ValueError as exc:
                    send(
                        {
                            "op": "reply",
                            "req": req,
                            "error": {"code": "bad_request", "status": 400, "detail": str(exc)},
                        }
                    )
                else:
                    send(
                        {
                            "op": "reply",
                            "req": req,
                            "payload": {
                                "session_id": session.id,
                                "window": session.window,
                                "num_classes": session.num_classes,
                            },
                        }
                    )
            elif op == "close":
                try:
                    session = sessions.close(msg["sid"])
                except UnknownSessionError as exc:
                    send({"op": "reply", "req": req, "error": _encode_error(exc)})
                else:
                    send(
                        {
                            "op": "reply",
                            "req": req,
                            "payload": session.describe(),
                            "stats": snapshot(),
                        }
                    )
            elif op == "prime":
                # One throwaway batch decodes the trace into this process's
                # TraceCache and warms numpy dispatch before real traffic.
                try:
                    engine.predict_batch(np.zeros((1, *msg["shape"]), dtype=np.float64))
                except Exception as exc:
                    send({"op": "reply", "req": req, "error": _encode_error(exc)})
                else:
                    send({"op": "reply", "req": req, "payload": {"primed": True}})
            elif op == "stats":
                send(
                    {
                        "op": "reply",
                        "req": req,
                        "payload": {
                            **snapshot(),
                            "queue_depth": batcher.depth,
                            "sessions": len(sessions),
                        },
                    }
                )
            elif op == "drain":
                batcher.stop(drain=True)  # every queued frame replies first
                send({"op": "reply", "req": req, "payload": {"drained": True}, "stats": snapshot()})
                break
            elif op == "exit!":
                os._exit(17)
            else:
                send(
                    {
                        "op": "reply",
                        "req": req,
                        "error": {"code": "internal", "status": 500, "detail": f"unknown op {op!r}"},
                    }
                )
    finally:
        try:
            batcher.stop(drain=False, timeout=5.0)
        except Exception:
            pass
        try:
            conn.close()
        except OSError:
            pass
        req_ring.close()
        resp_ring.close()
