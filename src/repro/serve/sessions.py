"""Per-sensor session state and the TTL-evicting session registry.

One :class:`Session` is the serving-side mirror of an offline
``Engine.stream()`` run: it owns a :class:`~repro.postproc.majority.MajorityVoter`
(the paper's sliding-window mode filter) plus bookkeeping — a monotonic
sequence counter for frame ordering, activity timestamps on the monotonic
clock for idle eviction, and a ``closed`` flag checked by the batcher so
frames of a deleted session never reach the voter.

The manager is thread-safe: sessions are opened/closed from HTTP handler
threads while the batcher dispatch thread votes and the sweeper evicts.
"""

from __future__ import annotations

import threading
import time
import uuid
from typing import Callable, Dict, List, Optional

from ..engine.guard import InputGuard, make_guard
from ..postproc.majority import MajorityVoter
from .errors import UnknownSessionError


class Session:
    """State of one connected sensor stream."""

    def __init__(
        self,
        session_id: str,
        window: int,
        num_classes: int,
        now: float,
        guard: Optional[InputGuard] = None,
    ):
        self.id = session_id
        self.window = window
        self.num_classes = num_classes
        self.voter = MajorityVoter(window=window, num_classes=num_classes)
        #: input guardrail (None unless the service configures ``on_invalid``)
        self.guard = guard
        self.created = now
        self.last_active = now
        self.next_seq = 0  # frames admitted (sequence numbers handed out)
        self.frames_done = 0  # frames fully predicted + voted
        self.pending = 0  # frames admitted but not yet dispatched
        self.closed = False
        # Vote-stability health: margin of the majority FIFO after the most
        # recent frame (1.0 unanimous, 0.0 tie), plus running aggregates.
        self.last_margin: Optional[float] = None
        self.min_margin: Optional[float] = None
        self._margin_sum = 0.0
        self._margin_n = 0
        self.lock = threading.Lock()

    def touch(self, now: float) -> None:
        self.last_active = now

    def record_vote(self, raw: int) -> int:
        """Vote one raw prediction and track the resulting FIFO margin.

        The caller must hold ``self.lock`` (the batcher dispatch thread or
        the pool's settle callback already does).
        """
        voted = self.voter.update(raw)
        margin = self.voter.margin()
        self.last_margin = margin
        self.min_margin = margin if self.min_margin is None else min(self.min_margin, margin)
        self._margin_sum += margin
        self._margin_n += 1
        return voted

    @property
    def mean_margin(self) -> Optional[float]:
        return self._margin_sum / self._margin_n if self._margin_n else None

    @property
    def invalid_frames(self) -> int:
        return self.guard.health.invalid_frames if self.guard is not None else 0

    @property
    def invalid_fraction(self) -> float:
        return self.guard.health.invalid_fraction if self.guard is not None else 0.0

    def describe(self) -> dict:
        payload = {
            "session_id": self.id,
            "window": self.window,
            "num_classes": self.num_classes,
            "frames_seen": self.frames_done,
        }
        # Health keys appear only when guarding is configured, keeping the
        # default wire format byte-identical to unguarded deployments.
        if self.guard is not None:
            payload["invalid_frames"] = self.invalid_frames
            payload["vote_margin"] = self.last_margin
        return payload


class SessionManager:
    """Registry of live sessions with monotonic-clock TTL eviction.

    ``clock`` is injectable (defaults to :func:`time.monotonic`) so the
    eviction logic is testable without sleeping.
    """

    def __init__(
        self,
        ttl_s: float = 300.0,
        default_window: int = 5,
        num_classes: int = 4,
        clock: Callable[[], float] = time.monotonic,
        on_evict: Optional[Callable[[Session], None]] = None,
        on_invalid: Optional[str] = None,
        input_range=None,
    ):
        if ttl_s <= 0:
            raise ValueError("ttl_s must be positive")
        self.ttl_s = ttl_s
        self.default_window = default_window
        self.num_classes = num_classes
        self.on_invalid = on_invalid
        self.input_range = input_range
        self._clock = clock
        self._sessions: Dict[str, Session] = {}
        self._lock = threading.Lock()
        #: called (outside the registry lock) for every TTL-evicted session,
        #: both from the sweeper and from lazy eviction in :meth:`get` — the
        #: worker pool uses this to retire the session on its shard's worker.
        self.on_evict = on_evict

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def open(
        self,
        window: Optional[int] = None,
        num_classes: Optional[int] = None,
        session_id: Optional[str] = None,
    ) -> Session:
        """Register a new session (``session_id=None``: a fresh uuid).

        Explicit ids exist for the worker pool, whose worker processes
        mirror the sessions the parent allocated.
        """
        session = Session(
            session_id=session_id or uuid.uuid4().hex[:16],
            window=int(window) if window is not None else self.default_window,
            num_classes=int(num_classes) if num_classes is not None else self.num_classes,
            now=self._clock(),
            guard=make_guard(self.on_invalid, self.input_range),
        )
        with self._lock:
            self._sessions[session.id] = session
        return session

    def get(self, session_id: str) -> Session:
        """Look up a session, lazily evicting it if its TTL has expired."""
        now = self._clock()
        expired = None
        with self._lock:
            session = self._sessions.get(session_id)
            if session is not None and now - session.last_active > self.ttl_s:
                self._sessions.pop(session_id, None)
                with session.lock:
                    session.closed = True
                expired, session = session, None
        if expired is not None and self.on_evict is not None:
            self.on_evict(expired)
        if session is None:
            raise UnknownSessionError(f"no session {session_id!r}")
        return session

    def close(self, session_id: str) -> Session:
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is None:
            raise UnknownSessionError(f"no session {session_id!r}")
        with session.lock:
            session.closed = True
        return session

    def close_all(self) -> None:
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            with session.lock:
                session.closed = True

    def evict_idle(self, now: Optional[float] = None) -> List[Session]:
        """Drop every session idle longer than the TTL; returns the evicted."""
        now = self._clock() if now is None else now
        evicted: List[Session] = []
        with self._lock:
            for sid, session in list(self._sessions.items()):
                if now - session.last_active > self.ttl_s:
                    self._sessions.pop(sid)
                    evicted.append(session)
        for session in evicted:
            with session.lock:
                session.closed = True
            if self.on_evict is not None:
                self.on_evict(session)
        return evicted

    def ids(self) -> List[str]:
        with self._lock:
            return list(self._sessions)

    def snapshot(self) -> List[Session]:
        """Live sessions at this instant (for the health metrics renderer)."""
        with self._lock:
            return list(self._sessions.values())
