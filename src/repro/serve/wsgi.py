"""Thin WSGI adapter over :class:`~repro.serve.service.ServeService`.

For deployments that already run a WSGI container (gunicorn, uWSGI,
``wsgiref.simple_server`` for smoke tests) the same service — sessions,
micro-batcher, metrics, backpressure — is exposed as a standard WSGI
callable with zero new dependencies.  The only semantic difference from
the asyncio front-end is the waiting style: WSGI worker threads block on
the batcher future (``Future.result``) instead of awaiting it, so
cross-session micro-batching still happens whenever several workers are
in flight at once.

Usage::

    from wsgiref.simple_server import make_server
    from repro.serve import ServeService, make_wsgi_app

    service = ServeService(engine)
    service.start()
    make_server("127.0.0.1", 8080, make_wsgi_app(service)).serve_forever()
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Tuple

from .service import DeferredResponse, PendingResponse, Response, ServeService

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def make_wsgi_app(service: ServeService) -> Callable:
    """Build a WSGI application delegating every route to ``service``.

    The caller owns the service lifecycle (``service.start()`` before
    serving, ``service.stop()`` to drain on shutdown); lazily evicted idle
    sessions are swept on each request since WSGI has no background task.
    """

    def app(environ: dict, start_response: Callable) -> Iterable[bytes]:
        method = environ.get("REQUEST_METHOD", "GET").upper()
        path = environ.get("PATH_INFO", "/")
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            length = 0
        body = environ["wsgi.input"].read(length) if length else b""

        service.evict_idle()  # no event loop: sweep lazily per request
        response = service.handle(method, path, body)
        if isinstance(response, DeferredResponse):
            response = response.future.result()  # off-thread session open
        elif isinstance(response, PendingResponse):
            response = service.resolve(response)
        return _emit(response, start_response)

    return app


def _emit(response: Response, start_response: Callable) -> List[bytes]:
    reason = _REASONS.get(response.status, "Unknown")
    headers: List[Tuple[str, str]] = [
        ("Content-Type", response.content_type),
        ("Content-Length", str(len(response.body))),
    ]
    headers.extend((response.headers or {}).items())
    start_response(f"{response.status} {reason}", headers)
    return [response.body]
