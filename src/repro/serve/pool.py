"""Sharded multi-process serving: the engine worker pool.

The asyncio (or WSGI) front-end stays the single ingress; behind it
:class:`PoolServeService` replaces the in-process engine with an
:class:`EngineWorkerPool` of N worker processes, each owning its own
engine + micro-batcher (see :mod:`repro.serve.worker`).  Sessions are
sharded onto workers by a consistent hash of the session id, so every
frame of a session flows through exactly one worker in submission order
— which is why served outputs stay bit-identical to an offline
``Engine.stream`` replay for every worker count.

Transport: frame payloads travel parent -> worker through a per-worker
shared-memory ring (:class:`repro.parallel.shm.ShmRing`), packed results
come back through a second ring, and a duplex pipe carries the few
hundred bytes of control data per request (the "doorbell").  No numpy
array is pickled on the hot path.

Failure model: a worker that dies (segfault, OOM-kill) is detected by
the parent's pump thread via pipe EOF.  Every in-flight request on that
worker fails with 503 + ``Retry-After: 1``, its sessions are retired
(voter state lived in the dead process, so subsequent pushes 404), and
the next session hashing onto that shard lazily respawns a fresh,
re-primed worker.  ``/metrics`` reports per-worker ``worker_up``, shard
sizes, ring occupancy and cumulative crash/restart counters.

Lifecycle: workers spawn lazily — the first session landing on a shard
pays the spawn + trace-cache priming cost; ``prime()`` (used by the
benchmark) spawns and warms all of them up front.  ``stop(drain=True)``
sends each worker a ``drain`` op, which flushes its batcher queue and
replies to every outstanding frame before the "drained" ack, so graceful
shutdown never drops an in-flight frame.
"""

from __future__ import annotations

import hashlib
import math
import multiprocessing as mp
import threading
import time
from concurrent.futures import Future, InvalidStateError, ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..engine.guard import InvalidFrameError
from ..parallel.shm import RingFull, ShmRing
from .batcher import FrameResult
from .errors import (
    ERRORS_BY_CODE,
    BadRequestError,
    InvalidFramesError,
    OverloadedError,
    ServeError,
    ShuttingDownError,
    UnknownSessionError,
    WorkerCrashedError,
)
from .service import (
    DeferredResponse,
    PendingResponse,
    Response,
    ServeConfig,
    ServeService,
)
from .worker import READY_REQ, RESULT_FIELDS, WorkerSpec, worker_main


def _settle_future(
    future: Future, result=None, exc: Optional[BaseException] = None
) -> None:
    """Resolve a request future, tolerating one the front-end abandoned.

    ``asyncio.wait_for`` cancels the wrapped future on request timeout or
    client disconnect, so a late worker reply (or crash/abort sweep) must
    be a no-op — not an ``InvalidStateError`` that would kill the pump
    thread and wedge the shard.
    """
    try:
        if future.done():
            return
        if exc is not None:
            future.set_exception(exc)
        else:
            future.set_result(result)
    except InvalidStateError:
        pass  # cancelled between the done() check and the set


def shard_of(session_id: str, workers: int) -> int:
    """Consistent shard of a session id: sha256 is stable across processes
    and Python runs (unlike ``hash()`` under PYTHONHASHSEED)."""
    digest = hashlib.sha256(session_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % workers


class WorkerHandle:
    """Parent-side endpoint of one engine worker process.

    Owns the process, both rings, the doorbell pipe and the pump thread
    that drains worker replies.  All request/lifecycle state transitions
    happen under ``_lock``; process (re)spawn is serialized by
    ``_spawn_lock`` so two sessions racing onto a cold shard start it
    exactly once.
    """

    def __init__(
        self,
        index: int,
        spec: WorkerSpec,
        config: ServeConfig,
        ctx,
        on_crash: Optional[Callable[["WorkerHandle"], None]] = None,
    ):
        self.index = index
        self.state = "new"  # new | up | dead | stopped
        self.restarts = 0  # successful respawns after a crash
        self.sessions: set = set()  # parent-side shard map
        self.last_stats: Dict[str, float] = {}
        self.inflight = 0  # frames written to the ring, result not yet back
        self._spec = spec
        self._config = config
        self._ctx = ctx
        self._on_crash = on_crash
        self._lock = threading.Lock()
        self._spawn_lock = threading.Lock()
        self._next_req = 0
        self._pending: Dict[int, Tuple[int, Future]] = {}  # req -> (n_frames, fut)
        self._proc = None
        self._conn = None
        self._req_ring: Optional[ShmRing] = None
        self._resp_ring: Optional[ShmRing] = None
        self._pump_thread: Optional[threading.Thread] = None
        self._draining = False

    # ------------------------------------------------------------------ #
    @property
    def alive(self) -> bool:
        return self.state == "up" and self._proc is not None and self._proc.is_alive()

    def ensure_started(self, prime_shape: Optional[Tuple[int, ...]] = None) -> None:
        """Spawn (or respawn after a crash) if this shard is cold."""
        with self._spawn_lock:
            if self.state == "up":
                return
            if self.state == "stopped":
                raise ShuttingDownError("worker pool is stopped")
            respawn = self.state == "dead"
            self._start()
            if respawn:
                self.restarts += 1
            if prime_shape is not None:
                self.rpc(
                    "prime",
                    timeout=self._config.worker_start_timeout_s,
                    shape=tuple(int(d) for d in prime_shape),
                )

    def _start(self) -> None:
        config = self._config
        self._draining = False
        self._req_ring = ShmRing.create(config.ring_bytes)
        self._resp_ring = ShmRing.create(config.ring_bytes)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        self._conn = parent_conn
        knobs = {
            "max_batch": config.max_batch,
            "max_wait_ms": config.max_wait_ms,
            "max_queue": config.max_queue,
            "max_session_queue": config.max_session_queue,
        }
        self._proc = self._ctx.Process(
            target=worker_main,
            args=(
                self._spec,
                knobs,
                self._req_ring.name,
                self._resp_ring.name,
                child_conn,
                self.index,
            ),
            name=f"repro-serve-worker-{self.index}",
            daemon=True,
        )
        self._proc.start()
        child_conn.close()  # the worker holds the other end now
        # Synchronous readiness handshake before the pump owns the pipe.
        try:
            if not parent_conn.poll(config.worker_start_timeout_s):
                raise WorkerCrashedError(
                    f"engine worker {self.index} did not come up within "
                    f"{config.worker_start_timeout_s:.0f}s"
                )
            ready = parent_conn.recv()
        except (EOFError, OSError) as exc:
            self._teardown(unlink=True)
            raise WorkerCrashedError(
                f"engine worker {self.index} died during startup"
            ) from exc
        except WorkerCrashedError:
            self._teardown(unlink=True)
            raise
        if ready.get("req") != READY_REQ or "error" in ready:
            detail = ready.get("error", {}).get("detail", "bad handshake")
            self._teardown(unlink=True)
            raise WorkerCrashedError(
                f"engine worker {self.index} failed to start: {detail}"
            )
        with self._lock:
            self.state = "up"
            self.inflight = 0
            self._pending = {}
        self._pump_thread = threading.Thread(
            target=self._pump, name=f"repro-serve-pump-{self.index}", daemon=True
        )
        self._pump_thread.start()

    # ------------------------------------------------------------------ #
    def _pump(self) -> None:
        """Drain worker replies: decode results out of the response ring and
        resolve the matching futures.  Pipe EOF without a drain in progress
        means the worker crashed."""
        conn = self._conn
        resp_ring = self._resp_ring
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            try:
                self._pump_one(msg, resp_ring)
            except Exception:
                # One bad reply must never kill the pump: the shard would
                # wedge with inflight never decremented and every other
                # future unresolved.  _pump_one already settled its future.
                continue
        if self._draining:
            with self._lock:
                self.state = "stopped"
        else:
            self._mark_dead()

    def _pump_one(self, msg: dict, resp_ring: ShmRing) -> None:
        """Decode one worker reply and settle its future.  Always decrements
        ``inflight`` and releases the result-ring allocation, even when the
        front-end already abandoned the future (request timeout / client
        disconnect) — otherwise the worker would eventually block forever on
        a full result ring."""
        stats = msg.get("stats")
        if stats:
            self.last_stats = stats
        with self._lock:
            entry = self._pending.pop(msg.get("req"), None)
        if entry is None:
            return
        n, future = entry
        result = None
        exc: Optional[BaseException] = None
        try:
            if "error" in msg:
                err = msg["error"]
                exc_cls = ERRORS_BY_CODE.get(err.get("code"), ServeError)
                exc = exc_cls(err.get("detail", ""))
            elif "result" in msg:
                ref = msg["result"]
                count = int(ref["count"])
                view = resp_ring.view(ref["pos"], count * RESULT_FIELDS * 8)
                packed = (
                    np.frombuffer(view, dtype=np.float64)
                    .reshape(count, RESULT_FIELDS)
                    .copy()
                )
                del view
                resp_ring.release(ref["end"])
                result = [
                    FrameResult(
                        seq=int(row[0]),
                        raw=int(row[1]),
                        voted=int(row[2]),
                        cycles=None if row[3] < 0 else int(row[3]),
                        energy_uj=None if math.isnan(row[4]) else float(row[4]),
                    )
                    for row in packed
                ]
            else:
                result = msg.get("payload")
        except Exception as decode_exc:  # malformed reply: fail this caller only
            exc = ServeError(f"undecodable worker reply: {decode_exc}")
        finally:
            with self._lock:
                self.inflight -= n
        _settle_future(future, result=result, exc=exc)

    def _mark_dead(self) -> None:
        with self._lock:
            if self.state != "up":
                return
            self.state = "dead"
            pending, self._pending = self._pending, {}
            self.inflight = 0
        exc = WorkerCrashedError(
            f"engine worker {self.index} died unexpectedly; session state lost"
        )
        for _, future in pending.values():
            _settle_future(future, exc=exc)
        self._teardown(unlink=True)
        if self._on_crash is not None:
            self._on_crash(self)

    def _teardown(self, unlink: bool) -> None:
        conn, self._conn = self._conn, None
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        proc, self._proc = self._proc, None
        if proc is not None:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)
        for attr in ("_req_ring", "_resp_ring"):
            ring = getattr(self, attr)
            setattr(self, attr, None)
            if ring is not None:
                ring.close(unlink=unlink)

    # ------------------------------------------------------------------ #
    def submit(self, session_id: str, frames: np.ndarray, max_queue: int) -> Future:
        """Ship one frames payload to the worker; returns the result future.

        Reject-not-block: a full worker queue or a full request ring raises
        :class:`OverloadedError` (HTTP 429) instead of stalling the ingress.
        """
        frames = np.ascontiguousarray(frames, dtype=np.float64)
        n = int(frames.shape[0])
        payload = memoryview(frames).cast("B")
        with self._lock:
            if self.state != "up":
                raise WorkerCrashedError(f"engine worker {self.index} is down")
            if self.inflight + n > max_queue:
                raise OverloadedError(
                    f"worker {self.index} queue full "
                    f"({self.inflight}/{max_queue} frames in flight)"
                )
            try:
                pos, end = self._req_ring.write(payload, timeout=0.0)
            except RingFull as exc:
                raise OverloadedError(
                    f"worker {self.index} request ring full"
                ) from exc
            req = self._next_req
            self._next_req += 1
            future: Future = Future()
            self._pending[req] = (n, future)
            self.inflight += n
            try:
                self._conn.send(
                    {
                        "op": "frames",
                        "req": req,
                        "sid": session_id,
                        "pos": pos,
                        "end": end,
                        "shape": frames.shape,
                        "dtype": frames.dtype.str,
                    }
                )
            except (BrokenPipeError, OSError) as exc:
                # The pump will observe EOF and run the full crash path;
                # fail this caller immediately.
                self._pending.pop(req, None)
                self.inflight -= n
                raise WorkerCrashedError(
                    f"engine worker {self.index} is down"
                ) from exc
        return future

    def _enqueue_rpc(self, op: str, payload: dict) -> Future:
        with self._lock:
            if self.state != "up":
                raise WorkerCrashedError(f"engine worker {self.index} is down")
            req = self._next_req
            self._next_req += 1
            future: Future = Future()
            self._pending[req] = (0, future)
            try:
                self._conn.send({"op": op, "req": req, **payload})
            except (BrokenPipeError, OSError) as exc:
                self._pending.pop(req, None)
                raise WorkerCrashedError(
                    f"engine worker {self.index} is down"
                ) from exc
        return future

    def rpc(self, op: str, timeout: float = 30.0, **payload):
        """Blocking control round-trip (open/close/prime/stats/drain)."""
        future = self._enqueue_rpc(op, payload)
        try:
            return future.result(timeout=timeout)
        except TimeoutError as exc:
            raise ServeError(
                f"engine worker {self.index} {op!r} timed out after {timeout:.0f}s"
            ) from exc

    def rpc_nowait(self, op: str, **payload) -> None:
        """Fire-and-forget control message (session retirement on eviction)."""
        try:
            future = self._enqueue_rpc(op, payload)
        except ServeError:
            return  # worker already gone: nothing to retire
        future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )

    # ------------------------------------------------------------------ #
    def drain(self, timeout: float = 60.0) -> None:
        """Flush the worker's batcher queue, then shut the process down.

        The ``drain`` op is pipelined behind any frames already written, so
        every in-flight request resolves before the "drained" ack.  Holding
        ``_spawn_lock`` lets a concurrent lazy spawn finish (or fail) first,
        so a worker started moments before the stop cannot leak."""
        with self._spawn_lock, self._lock:
            if self.state != "up":
                self.state = "stopped"
                return
            self._draining = True
        try:
            self.rpc("drain", timeout=timeout)
        except ServeError:  # died mid-drain: fall through to teardown
            pass
        pump = self._pump_thread
        if pump is not None:
            pump.join(timeout=5)
            self._pump_thread = None
        with self._lock:
            self.state = "stopped"
        self._teardown(unlink=True)

    def abort(self) -> None:
        """Immediate shutdown: terminate the process, drop in-flight work."""
        with self._spawn_lock, self._lock:
            if self.state not in ("up", "dead"):
                self.state = "stopped"
                return
            self._draining = True  # pump EOF -> stopped, not crashed
            pending, self._pending = self._pending, {}
            self.inflight = 0
            self.state = "stopped"
        exc = ShuttingDownError("server stopped")
        for _, future in pending.values():
            _settle_future(future, exc=exc)
        proc = self._proc
        if proc is not None and proc.is_alive():
            proc.terminate()
        self._teardown(unlink=True)
        pump = self._pump_thread
        if pump is not None:
            pump.join(timeout=5)
            self._pump_thread = None

    def kill(self) -> None:
        """Test hook: SIGKILL the worker (simulates a crash; the pump thread
        observes pipe EOF and runs the normal crash path)."""
        proc = self._proc
        if proc is not None and proc.is_alive():
            proc.kill()

    # ------------------------------------------------------------------ #
    def describe(self) -> dict:
        d = {
            "up": 1 if self.alive else 0,
            "state": self.state,
            "sessions": len(self.sessions),
            "inflight": self.inflight,
            "restarts": self.restarts,
            "stats": dict(self.last_stats),
        }
        req_ring, resp_ring = self._req_ring, self._resp_ring
        try:
            if req_ring is not None:
                d["req_ring_occupancy"] = req_ring.occupancy()
            if resp_ring is not None:
                d["resp_ring_occupancy"] = resp_ring.occupancy()
        except (ValueError, OSError):  # racing a teardown
            pass
        return d

    def ring_names(self) -> List[str]:
        return [
            ring.name for ring in (self._req_ring, self._resp_ring) if ring is not None
        ]


class EngineWorkerPool:
    """N lazily-spawned engine workers plus the shard routing between them."""

    def __init__(
        self,
        spec: WorkerSpec,
        config: ServeConfig,
        on_crash: Optional[Callable[[WorkerHandle], None]] = None,
    ):
        if config.workers < 1:
            raise ValueError("EngineWorkerPool needs workers >= 1")
        self.config = config
        self.crashes_total = 0
        self._on_crash = on_crash
        self._stopping = False
        self._frame_shape: Optional[Tuple[int, ...]] = None
        # Deterministic chaos bookkeeping (config.chaos; all counters, no RNG).
        self.chaos_kills = 0
        self._chaos_frames = 0
        self._chaos_submits = 0
        self._chaos_lock = threading.Lock()
        ctx = mp.get_context(config.mp_context)
        self.handles = [
            WorkerHandle(i, spec, config, ctx, on_crash=self._crashed)
            for i in range(config.workers)
        ]

    # ------------------------------------------------------------------ #
    @property
    def workers(self) -> int:
        return len(self.handles)

    def shard_of(self, session_id: str) -> int:
        return shard_of(session_id, self.workers)

    def handle(self, session_id: str) -> WorkerHandle:
        return self.handles[self.shard_of(session_id)]

    def _crashed(self, handle: WorkerHandle) -> None:
        self.crashes_total += 1
        if self._on_crash is not None:
            self._on_crash(handle)

    # ------------------------------------------------------------------ #
    def open_session(
        self,
        session_id: str,
        window: Optional[int] = None,
        num_classes: Optional[int] = None,
    ) -> int:
        """Mirror a parent-allocated session on its shard's worker; returns
        the worker index.  Spawns (and re-primes) the worker if cold."""
        if self._stopping:
            raise ShuttingDownError("worker pool is draining")
        h = self.handle(session_id)
        h.ensure_started(prime_shape=self._frame_shape)
        try:
            h.rpc("open", sid=session_id, window=window, num_classes=num_classes)
        except WorkerCrashedError:
            raise  # the worker (and any mirror it held) is gone
        except ServeError:
            # Timed out (or otherwise failed) after the request was sent:
            # the worker may still have executed the open, and workers never
            # self-evict — fire-and-forget a close so no mirror is orphaned.
            h.rpc_nowait("close", sid=session_id)
            raise
        h.sessions.add(session_id)
        return h.index

    def _apply_chaos(self, handle: WorkerHandle, n: int) -> None:
        """Run the configured deterministic failure injection for one submit.

        Trigger evaluation is counter-based under one lock; the disruptive
        actions (sleep, SIGKILL, simulated ring-full 429) happen outside it.
        A killed worker takes the normal PR 9 crash path — pump EOF, 503 on
        in-flight requests, session purge, lazy respawn — so chaos tests
        exercise exactly the machinery real crashes do.
        """
        chaos = self.config.chaos
        if chaos is None:
            return
        with self._chaos_lock:
            self._chaos_submits += 1
            reject = bool(chaos.reject_every) and (
                self._chaos_submits % chaos.reject_every == 0
            )
            kill = (
                chaos.kill_after_frames is not None
                and self.chaos_kills < chaos.max_kills
                and (chaos.kill_worker is None or handle.index == chaos.kill_worker)
                and self._chaos_frames + n >= chaos.kill_after_frames
            )
            if kill:
                self.chaos_kills += 1
            self._chaos_frames += n
        if chaos.delay_ms > 0:
            time.sleep(chaos.delay_ms / 1e3)
        if kill:
            handle.kill()
        if reject:
            raise OverloadedError(
                f"chaos: simulated full request ring on worker {handle.index}"
            )

    def submit(self, session_id: str, frames: np.ndarray) -> Future:
        if self._frame_shape is None and getattr(frames, "ndim", 0) == 4:
            self._frame_shape = tuple(int(d) for d in frames.shape[1:])
        handle = self.handle(session_id)
        self._apply_chaos(handle, int(frames.shape[0]))
        return handle.submit(session_id, frames, self.config.max_queue)

    def close_session(self, session_id: str) -> Optional[dict]:
        """Close on the worker; None when the worker is gone (the caller
        falls back to the parent-side describe)."""
        h = self.handle(session_id)
        h.sessions.discard(session_id)
        try:
            return h.rpc("close", sid=session_id)
        except ServeError:
            return None

    def retire_session(self, session_id: str) -> None:
        """Fire-and-forget close (TTL eviction path)."""
        h = self.handle(session_id)
        h.sessions.discard(session_id)
        h.rpc_nowait("close", sid=session_id)

    def prime(self, frame_shape: Tuple[int, ...]) -> None:
        """Spawn every worker and warm each one's trace cache now (one
        decode per worker) instead of on first traffic."""
        self._frame_shape = tuple(int(d) for d in frame_shape)
        for h in self.handles:
            h.ensure_started(prime_shape=self._frame_shape)

    # ------------------------------------------------------------------ #
    def stop(self, drain: bool = True) -> None:
        self._stopping = True
        for h in self.handles:
            if drain:
                h.drain()
            else:
                h.abort()

    # ------------------------------------------------------------------ #
    @property
    def inflight(self) -> int:
        return sum(h.inflight for h in self.handles)

    def workers_up(self) -> int:
        return sum(1 for h in self.handles if h.alive)

    def restarts_total(self) -> int:
        return sum(h.restarts for h in self.handles)

    def shard_map(self) -> Dict[int, List[str]]:
        return {h.index: sorted(h.sessions) for h in self.handles}

    def describe_workers(self) -> List[dict]:
        return [h.describe() for h in self.handles]

    def ring_names(self) -> List[str]:
        names: List[str] = []
        for h in self.handles:
            names.extend(h.ring_names())
        return names


class PoolServeService(ServeService):
    """ServeService whose engine work runs on a sharded worker pool.

    The parent keeps the authoritative session registry (ids, TTLs,
    backpressure bookkeeping); each worker mirrors the sessions of its
    shard and owns the voter state.  HTTP semantics, routing and the
    ``/metrics`` core are inherited unchanged — this class swaps the
    in-process batcher for pool dispatch and adds the pool telemetry.
    """

    def __init__(
        self,
        engine,
        config: Optional[ServeConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        config = config or ServeConfig(workers=1)
        if config.workers < 1:
            raise ValueError("PoolServeService needs config.workers >= 1")
        spec = WorkerSpec.from_engine(engine)  # validate before building state
        super().__init__(engine, config, clock)
        self.pool = EngineWorkerPool(spec, self.config, on_crash=self._worker_crashed)
        self.sessions.on_evict = self._session_evicted
        # The parent's batcher is never started: queue depth is the pool's
        # in-flight frame count instead.
        self.metrics.register_gauge("queue_depth", lambda: self.pool.inflight)
        self.metrics.register_gauge("pool_workers", lambda: self.pool.workers)
        self.metrics.register_gauge("pool_workers_up", lambda: self.pool.workers_up())
        self.metrics.register_renderer(self._render_pool)
        # Session opens may spawn + prime a cold worker (seconds to minutes):
        # handle() defers them onto this executor so the asyncio front-end's
        # loop — /healthz, /metrics, every other shard's traffic — never
        # stalls behind a spawn (reject-not-block).
        self._open_executor = ThreadPoolExecutor(
            max_workers=max(2, self.config.workers),
            thread_name_prefix="repro-serve-open",
        )

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        # Workers spawn lazily on first session per shard; nothing to do.
        self._started = True
        self._stopping = False

    def stop(self, drain: bool = True) -> None:
        self._stopping = True
        # wait=False: an open mid-spawn finishes on its own thread (and then
        # fails against the stopping pool) instead of stalling the shutdown.
        self._open_executor.shutdown(wait=False)
        self.pool.stop(drain=drain)
        self.sessions.close_all()
        self._started = False

    def prime(self, frame_shape) -> None:
        """Spawn + warm every worker up front (benchmarks, smoke tests)."""
        self.pool.prime(frame_shape)

    # ------------------------------------------------------------------ #
    def handle(self, method: str, path: str, body: bytes):
        if method == "POST" and path.split("?", 1)[0] == "/v1/sessions":
            try:
                return DeferredResponse(
                    self._open_executor.submit(super().handle, method, path, body)
                )
            except RuntimeError:  # executor shut down: the service is stopping
                return self._observed(
                    "sessions",
                    Response.error(ShuttingDownError("server is draining")),
                )
        return super().handle(method, path, body)

    def open_session(
        self, window: Optional[int] = None, num_classes: Optional[int] = None
    ) -> dict:
        if not self.accepting:
            raise ShuttingDownError("server is draining")
        try:
            session = self.sessions.open(window=window, num_classes=num_classes)
        except ValueError as exc:
            raise BadRequestError(str(exc)) from exc
        try:
            worker = self.pool.open_session(
                session.id, window=window, num_classes=num_classes
            )
        except BaseException:
            # Roll the parent registration back so a failed spawn/RPC does
            # not leave a session no worker knows about.
            try:
                self.sessions.close(session.id)
            except UnknownSessionError:
                pass
            raise
        self.metrics.inc("sessions_opened_total")
        return {
            "session_id": session.id,
            "window": session.window,
            "num_classes": session.num_classes,
            "target": getattr(self.engine, "target", "unknown"),
            "worker": worker,
            "config": self.config.as_json(),
        }

    def submit_frames(self, session_id: str, frames: np.ndarray) -> PendingResponse:
        session = self.sessions.get(session_id)
        if self._stopping:
            raise ShuttingDownError("server is draining")
        try:
            frames = self._guard_frames(session, frames)
        except InvalidFrameError as exc:
            raise InvalidFramesError(str(exc)) from exc
        n = int(frames.shape[0])
        # Check-and-increment atomically: two concurrent pushes to the same
        # session must not both pass the limit and over-admit.
        with session.lock:
            if session.pending + n > self.config.max_session_queue:
                raise OverloadedError(
                    f"session {session_id} queue full "
                    f"({session.pending}/{self.config.max_session_queue})"
                )
            session.pending += n
        try:
            future = self.pool.submit(session_id, frames)
        except BaseException:
            with session.lock:
                session.pending -= n
            raise
        with session.lock:
            session.next_seq += n
            session.touch(self._clock())
        future.add_done_callback(lambda f, s=session, n=n: self._settle(s, n, f))
        return PendingResponse(
            future=future, session_id=session_id, count=n, _metrics=self.metrics
        )

    def _settle(self, session, n: int, future: Future) -> None:
        with session.lock:
            session.pending -= n
        if not future.cancelled() and future.exception() is None:
            results = future.result()
            with session.lock:
                session.frames_done += n
                if isinstance(results, list):
                    # Shadow-vote the worker's raw predictions through the
                    # parent-side voter (unused otherwise in pool mode) so
                    # the per-session vote-margin gauge works for every
                    # worker count.  Settle callbacks run on the pump thread
                    # in per-session FIFO order, matching the worker's own
                    # voting order.
                    for r in results:
                        session.record_vote(r.raw)
            self.metrics.inc("frames_total", n)

    def close_session(self, session_id: str) -> dict:
        session = self.sessions.close(session_id)
        payload = self.pool.close_session(session_id)
        self.metrics.inc("sessions_closed_total")
        # The worker's describe carries the authoritative frames_seen; fall
        # back to the parent's view if the worker is already gone.
        return payload if payload is not None else session.describe()

    # ------------------------------------------------------------------ #
    def _session_evicted(self, session) -> None:
        self.pool.retire_session(session.id)

    def _worker_crashed(self, handle: WorkerHandle) -> None:
        """Voter state of the dead worker's sessions is unrecoverable:
        retire them parent-side so the next push gets a clean 404 and the
        client re-opens (landing on the respawned worker)."""
        self.metrics.inc("pool_worker_crashes_total")
        for sid in list(handle.sessions):
            try:
                self.sessions.close(sid)
            except UnknownSessionError:
                pass
        handle.sessions.clear()

    # ------------------------------------------------------------------ #
    def healthz(self) -> Tuple[int, dict]:
        status, payload = super().healthz()
        payload["queue_depth"] = self.pool.inflight
        payload["workers"] = self.pool.workers
        payload["workers_up"] = self.pool.workers_up()
        return status, payload

    def pool_stats(self) -> dict:
        """Aggregated per-worker batching counters (piggybacked snapshots)."""
        frames = batches = batch_sum = batch_n = 0
        for h in self.pool.handles:
            stats = h.last_stats
            frames += int(stats.get("frames_total", 0))
            batches += int(stats.get("batches_total", 0))
            batch_sum += int(stats.get("batch_sum", 0))
            batch_n += int(stats.get("batch_n", 0))
        return {
            "frames_total": frames,
            "batches_total": batches,
            "mean_batch_size": (batch_sum / batch_n) if batch_n else None,
            "workers": self.pool.workers,
            "workers_up": self.pool.workers_up(),
            "crashes_total": self.pool.crashes_total,
            "restarts_total": self.pool.restarts_total(),
            "chaos_kills": self.pool.chaos_kills,
        }

    def _render_pool(self) -> str:
        """Per-worker labeled series appended to the ``/metrics`` payload."""
        p = "repro_serve_pool"
        lines = [
            f"# TYPE {p}_worker_restarts_total counter",
            f"{p}_worker_restarts_total {self.pool.restarts_total()}",
            f"# TYPE {p}_worker_up gauge",
        ]
        described = self.pool.describe_workers()
        for i, d in enumerate(described):
            lines.append(f'{p}_worker_up{{worker="{i}"}} {d["up"]}')
        lines.append(f"# TYPE {p}_shard_sessions gauge")
        for i, d in enumerate(described):
            lines.append(f'{p}_shard_sessions{{worker="{i}"}} {d["sessions"]}')
        lines.append(f"# TYPE {p}_inflight_frames gauge")
        for i, d in enumerate(described):
            lines.append(f'{p}_inflight_frames{{worker="{i}"}} {d["inflight"]}')
        lines.append(f"# TYPE {p}_ring_occupancy gauge")
        for i, d in enumerate(described):
            for ring, key in (("requests", "req_ring_occupancy"), ("results", "resp_ring_occupancy")):
                if key in d:
                    lines.append(
                        f'{p}_ring_occupancy{{worker="{i}",ring="{ring}"}} {d[key]:.6f}'
                    )
        lines.append(f"# TYPE {p}_worker_frames_total counter")
        for i, d in enumerate(described):
            frames = int(d["stats"].get("frames_total", 0))
            lines.append(f'{p}_worker_frames_total{{worker="{i}"}} {frames}')
        lines.append(f"# TYPE {p}_worker_batches_total counter")
        for i, d in enumerate(described):
            batches = int(d["stats"].get("batches_total", 0))
            lines.append(f'{p}_worker_batches_total{{worker="{i}"}} {batches}')
        return "\n".join(lines)
