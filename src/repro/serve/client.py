"""Minimal stdlib client for the serving API, with a resilience layer.

One :class:`ServeClient` holds one keep-alive ``http.client`` connection —
exactly what a sensor node (or one load-generator thread) uses.  Instances
are not thread-safe; give each concurrent stream its own client.

Resilience is opt-in and layered:

* **Transport honesty** — a request that *verifiably never reached the
  server* (the TCP connect failed) is always safe to replay; a connection
  that drops after the request may have been sent is replayed automatically
  only for idempotent GETs, and surfaces as the distinct, retriable
  :class:`ConnectionDroppedError` otherwise.  The old behavior of blindly
  re-sending POSTs over a stale keep-alive connection could double-submit a
  frame (duplicate seq) when the first request *was* processed before the
  drop.
* **:class:`RetryPolicy`** — jittered exponential backoff (deterministic,
  seeded) for responses that guarantee the request was not processed:
  429 backpressure and worker-crash 503s, honoring ``Retry-After``.
* **:class:`SessionStream`** — one logical sensor stream that survives
  worker crashes: on a 503/404 (the pool purged the session) or an
  ambiguous connection drop it re-opens a session, warm-replays the last
  ``window - 1`` acknowledged frames to rebuild the majority-FIFO state,
  and re-pushes the failed chunk — so the voted outputs the caller
  collects stay bit-identical to an uninterrupted offline replay.
"""

from __future__ import annotations

import json
import random
import time
from collections import deque
from dataclasses import dataclass, field
from http.client import HTTPConnection
from typing import List, Optional, Union

import numpy as np

from .errors import (
    ERRORS_BY_CODE,
    OverloadedError,
    ServeError,
    WorkerCrashedError,
    UnknownSessionError,
)


class ServeClientError(ServeError):
    """A server-side error surfaced client-side (unknown code or 5xx)."""


class ConnectionDroppedError(ServeClientError):
    """The connection failed during a request.

    ``request_sent`` distinguishes the two cases that matter for retry
    safety: ``False`` means the TCP connect itself failed — the request
    verifiably never reached the server and a replay is always safe;
    ``True`` means the drop happened after (part of) the request may have
    been sent — the server might have processed it, so blindly re-sending
    a non-idempotent request risks a duplicate submission.  Callers that
    own stream semantics (:class:`SessionStream`) recover by re-opening
    the session instead.
    """

    code = "connection_dropped"

    def __init__(self, detail: str = "", request_sent: bool = True):
        super().__init__(detail)
        self.request_sent = request_sent


@dataclass
class RetryPolicy:
    """Jittered exponential backoff for retriable serving errors.

    Retriable means *the request was provably not processed*: 429
    backpressure rejections, worker-crash 503s, and connection failures
    where nothing was sent.  Ambiguous drops (:class:`ConnectionDroppedError`
    with ``request_sent=True``) are never retried here — resolve them at
    the stream level (:class:`SessionStream`) or in the caller.

    The jitter is drawn from a seeded PRNG, so a client's exact retry
    timing is reproducible — consistent with the repo-wide determinism
    rule.  ``Retry-After`` response headers are honored as a lower bound,
    capped by ``backoff_max_s``.
    """

    max_attempts: int = 5
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    jitter: float = 0.25  # +/- fraction applied to each delay
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self._rng = random.Random(self.seed)

    def retriable(self, exc: BaseException) -> bool:
        if isinstance(exc, ConnectionDroppedError):
            return not exc.request_sent
        return isinstance(exc, (OverloadedError, WorkerCrashedError))

    def delay(self, attempt: int, retry_after: Optional[float] = None) -> float:
        base = self.backoff_base_s * (2.0 ** attempt)
        if retry_after is not None:
            base = max(base, retry_after)
        base = min(base, self.backoff_max_s)
        if self.jitter > 0:
            base *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return max(0.0, base)


class ServeClient:
    """Synchronous HTTP client mirroring the serving endpoints.

    ``retry=None`` (the default) keeps the historical single-shot behavior
    apart from the transport fix; pass a :class:`RetryPolicy` to absorb
    429/worker-crash responses transparently.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        self._conn: Optional[HTTPConnection] = None

    # ------------------------------------------------------------------ #
    def _connection(self) -> HTTPConnection:
        if self._conn is None:
            self._conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        return self._conn

    def _request_once(self, method: str, path: str, payload: Optional[dict]):
        """One HTTP round trip with honest connection-failure semantics."""
        body = None if payload is None else json.dumps(payload).encode()
        headers = {"Content-Type": "application/json"} if body else {}
        retried_stale = False
        while True:
            conn = self._connection()
            # Connect explicitly so connect-phase failures — where the
            # request verifiably never left this process — are
            # distinguishable from drops mid-exchange.
            if conn.sock is None:
                try:
                    conn.connect()
                except (ConnectionError, OSError) as exc:
                    self.close()
                    raise ConnectionDroppedError(
                        f"cannot connect to {self.host}:{self.port}: {exc}",
                        request_sent=False,
                    ) from exc
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except (ConnectionError, OSError) as exc:
                self.close()
                if method == "GET" and not retried_stale:
                    # Idempotent: replaying is safe even if the server saw
                    # the first attempt (the classic stale keep-alive race).
                    retried_stale = True
                    continue
                raise ConnectionDroppedError(
                    f"connection dropped during {method} {path} "
                    f"(the server may or may not have processed it): {exc}",
                ) from exc
            break
        content_type = response.getheader("Content-Type", "")
        if content_type.startswith("application/json"):
            data = json.loads(raw.decode()) if raw else {}
        else:
            data = raw.decode()
        if response.status >= 400:
            code = data.get("error", "") if isinstance(data, dict) else ""
            detail = data.get("detail", "") if isinstance(data, dict) else str(data)
            exc = ERRORS_BY_CODE.get(code, ServeClientError)(detail)
            retry_after = response.getheader("Retry-After")
            if retry_after is not None:
                try:
                    exc.retry_after = float(retry_after)
                except ValueError:
                    pass
            raise exc
        return data

    def _request(self, method: str, path: str, payload: Optional[dict] = None):
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, payload)
            except ServeError as exc:
                policy = self.retry
                if (
                    policy is None
                    or not policy.retriable(exc)
                    or attempt >= policy.max_attempts - 1
                ):
                    raise
                time.sleep(policy.delay(attempt, getattr(exc, "retry_after", None)))
                attempt += 1

    # ------------------------------------------------------------------ #
    def open_session(
        self, window: Optional[int] = None, num_classes: Optional[int] = None
    ) -> dict:
        payload = {}
        if window is not None:
            payload["window"] = window
        if num_classes is not None:
            payload["num_classes"] = num_classes
        return self._request("POST", "/v1/sessions", payload or None)

    def push(self, session_id: str, frames: Union[np.ndarray, list]) -> dict:
        """Push one ``(C, H, W)`` frame or an ``(N, C, H, W)`` chunk."""
        if isinstance(frames, np.ndarray):
            frames = frames.tolist()
        return self._request(
            "POST", f"/v1/sessions/{session_id}/frames", {"frames": frames}
        )

    def close_session(self, session_id: str) -> dict:
        return self._request("DELETE", f"/v1/sessions/{session_id}")

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        return self._request("GET", "/metrics")

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class SessionStream:
    """One resilient logical sensor stream over a :class:`ServeClient`.

    Wraps session lifecycle so that a worker crash mid-stream is invisible
    to the caller: when a push fails with the pool's worker-crash 503, a
    404 for the purged session, or an ambiguous connection drop, the
    stream opens a fresh session, silently re-pushes the last
    ``window - 1`` *acknowledged* frames to rebuild the server-side
    majority-FIFO state, and then retries the failed chunk.  Because the
    voter sees exactly the frame sequence the caller pushed — each frame
    acknowledged exactly once — the collected raw/voted outputs stay
    bit-identical to an uninterrupted offline ``Engine.stream`` replay.

    ``seq`` values restart when a session is re-opened; the cross-recovery
    contract is the raw/voted stream, not the per-session counter.
    """

    _RECOVERABLE = (UnknownSessionError, WorkerCrashedError, ConnectionDroppedError)

    def __init__(
        self,
        client: ServeClient,
        window: Optional[int] = None,
        num_classes: Optional[int] = None,
        max_recoveries: int = 8,
        recovery_backoff_s: float = 0.05,
    ):
        self.client = client
        self.window = window
        self.num_classes = num_classes
        self.max_recoveries = max_recoveries
        self.recovery_backoff_s = recovery_backoff_s
        self.session_id: Optional[str] = None
        self.recoveries = 0  # successful transparent recoveries so far
        self.frames_acked = 0
        self._tail: deque = deque(maxlen=0)

    # ------------------------------------------------------------------ #
    def open(self) -> dict:
        info = self.client.open_session(
            window=self.window, num_classes=self.num_classes
        )
        self.session_id = info["session_id"]
        self.window = int(info["window"])
        # Keep any previously acknowledged tail (recovery path) but honor
        # the server-confirmed window.
        self._tail = deque(self._tail, maxlen=max(0, self.window - 1))
        if self._tail:
            # Rebuild the voter state; the replayed frames' results were
            # already delivered to the caller once, so they are discarded.
            self.client.push(self.session_id, np.stack(list(self._tail)))
        return info

    def push(self, frames: Union[np.ndarray, list]) -> List[dict]:
        """Push a frame/chunk; returns the per-frame result dicts."""
        frames = np.asarray(frames, dtype=np.float64)
        if frames.ndim == 3:
            frames = frames[None]
        failures = 0
        while True:
            try:
                if self.session_id is None:
                    self.open()
                out = self.client.push(self.session_id, frames)
            except self._RECOVERABLE as exc:
                failures += 1
                if failures > self.max_recoveries:
                    raise
                self._prepare_recovery(exc)
                continue
            break
        if failures:
            self.recoveries += 1
        for frame in frames:
            self._tail.append(np.array(frame))
        self.frames_acked += int(frames.shape[0])
        return out["results"]

    def _prepare_recovery(self, exc: BaseException) -> None:
        """Drop the (possibly poisoned) session; the next loop iteration
        re-opens and warm-replays.  An ambiguous connection drop must NOT
        reuse the old session — the server may have processed the lost
        push, and re-sending there would double-vote those frames."""
        old, self.session_id = self.session_id, None
        if old is not None and not isinstance(exc, UnknownSessionError):
            try:
                self.client.close_session(old)
            except (ServeError, OSError):
                pass  # best-effort: the pool purge usually beat us to it
        time.sleep(self.recovery_backoff_s)

    def close(self) -> dict:
        if self.session_id is None:
            return {}
        try:
            return self.client.close_session(self.session_id)
        finally:
            self.session_id = None

    def __enter__(self) -> "SessionStream":
        if self.session_id is None:
            self.open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            self.close()
        except ServeError:
            pass
