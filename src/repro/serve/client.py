"""Minimal stdlib client for the serving API.

One :class:`ServeClient` holds one keep-alive ``http.client`` connection —
exactly what a sensor node (or one load-generator thread) uses.  Instances
are not thread-safe; give each concurrent stream its own client.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection
from typing import Optional, Union

import numpy as np

from .errors import ERRORS_BY_CODE, ServeError


class ServeClientError(ServeError):
    """A server-side error surfaced client-side (unknown code or 5xx)."""


class ServeClient:
    """Synchronous HTTP client mirroring the serving endpoints."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8080, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[HTTPConnection] = None

    # ------------------------------------------------------------------ #
    def _connection(self) -> HTTPConnection:
        if self._conn is None:
            self._conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        return self._conn

    def _request(self, method: str, path: str, payload: Optional[dict] = None):
        body = None if payload is None else json.dumps(payload).encode()
        headers = {"Content-Type": "application/json"} if body else {}
        conn = self._connection()
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
        except (ConnectionError, OSError):
            # Stale keep-alive connection: reconnect once.
            self.close()
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
        raw = response.read()
        content_type = response.getheader("Content-Type", "")
        if content_type.startswith("application/json"):
            data = json.loads(raw.decode()) if raw else {}
        else:
            data = raw.decode()
        if response.status >= 400:
            code = data.get("error", "") if isinstance(data, dict) else ""
            detail = data.get("detail", "") if isinstance(data, dict) else str(data)
            raise ERRORS_BY_CODE.get(code, ServeClientError)(detail)
        return data

    # ------------------------------------------------------------------ #
    def open_session(
        self, window: Optional[int] = None, num_classes: Optional[int] = None
    ) -> dict:
        payload = {}
        if window is not None:
            payload["window"] = window
        if num_classes is not None:
            payload["num_classes"] = num_classes
        return self._request("POST", "/v1/sessions", payload or None)

    def push(self, session_id: str, frames: Union[np.ndarray, list]) -> dict:
        """Push one ``(C, H, W)`` frame or an ``(N, C, H, W)`` chunk."""
        if isinstance(frames, np.ndarray):
            frames = frames.tolist()
        return self._request(
            "POST", f"/v1/sessions/{session_id}/frames", {"frames": frames}
        )

    def close_session(self, session_id: str) -> dict:
        return self._request("DELETE", f"/v1/sessions/{session_id}")

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        return self._request("GET", "/metrics")

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
