"""Serving metrics, rendered in Prometheus text exposition format.

The registry is deliberately tiny and dependency-free: monotonic counters,
gauges backed by callables (so queue depth / active sessions are read at
scrape time), one histogram for micro-batch sizes, and a bounded latency
reservoir from which ``/metrics`` reports p50/p99 summary quantiles.

All mutating methods are thread-safe — they are called from the HTTP
handlers, the batcher dispatch thread and the eviction sweeper concurrently.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

_PREFIX = "repro_serve"

# Micro-batch size buckets: powers of two up to a generous ceiling.
DEFAULT_BATCH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)


def quantile(sample: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of a non-empty sample (q in [0, 1])."""
    if not sample:
        raise ValueError("quantile of an empty sample")
    ordered = sorted(sample)
    rank = max(1, math.ceil(q * len(ordered)))
    return float(ordered[rank - 1])


class ServeMetrics:
    """Counters / gauges / histogram / latency reservoir for one service."""

    def __init__(
        self,
        batch_buckets: Sequence[int] = DEFAULT_BATCH_BUCKETS,
        latency_reservoir: int = 4096,
    ):
        self._lock = threading.Lock()
        self._requests: Dict[Tuple[str, int], int] = {}
        self._counters: Dict[str, int] = {
            "frames_total": 0,
            "batches_total": 0,
            "rejected_total": 0,
            "evictions_total": 0,
            "sessions_opened_total": 0,
            "sessions_closed_total": 0,
        }
        self._gauges: Dict[str, Callable[[], float]] = {}
        self._batch_buckets = tuple(sorted(batch_buckets))
        self._batch_counts = [0] * (len(self._batch_buckets) + 1)  # +Inf
        self._batch_sum = 0
        self._batch_n = 0
        self._latencies: deque = deque(maxlen=latency_reservoir)
        self._renderers: List[Callable[[], str]] = []

    # ------------------------------------------------------------------ #
    def register_gauge(self, name: str, fn: Callable[[], float]) -> None:
        self._gauges[name] = fn

    def register_renderer(self, fn: Callable[[], str]) -> None:
        """Append extra exposition text to ``render()`` (e.g. the worker
        pool's per-worker labeled series, which don't fit the flat
        counter/gauge registry)."""
        self._renderers.append(fn)

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def observe_request(self, endpoint: str, status: int) -> None:
        with self._lock:
            key = (endpoint, status)
            self._requests[key] = self._requests.get(key, 0) + 1

    def observe_batch(self, size: int) -> None:
        with self._lock:
            self._batch_sum += size
            self._batch_n += 1
            for i, edge in enumerate(self._batch_buckets):
                if size <= edge:
                    self._batch_counts[i] += 1
                    return
            self._batch_counts[-1] += 1

    def observe_latency(self, seconds: float) -> None:
        with self._lock:
            self._latencies.append(float(seconds))

    # ------------------------------------------------------------------ #
    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def latency_quantiles(self, qs: Sequence[float] = (0.5, 0.99)) -> Dict[float, Optional[float]]:
        with self._lock:
            sample = list(self._latencies)
        return {q: (quantile(sample, q) if sample else None) for q in qs}

    def batch_histogram(self) -> Dict[str, int]:
        """Cumulative bucket counts keyed by upper edge (Prometheus ``le``)."""
        with self._lock:
            out, running = {}, 0
            for edge, count in zip(self._batch_buckets, self._batch_counts):
                running += count
                out[str(edge)] = running
            out["+Inf"] = running + self._batch_counts[-1]
            return out

    def mean_batch_size(self) -> Optional[float]:
        with self._lock:
            return self._batch_sum / self._batch_n if self._batch_n else None

    def batch_totals(self) -> Tuple[int, int]:
        """``(sum of batch sizes, number of batches)`` — the aggregatable
        form of the mean (worker snapshots sum these across processes)."""
        with self._lock:
            return self._batch_sum, self._batch_n

    # ------------------------------------------------------------------ #
    def render(self) -> str:
        """The ``/metrics`` payload (Prometheus text format, version 0.0.4)."""
        with self._lock:
            requests = dict(self._requests)
            counters = dict(self._counters)
            batch_counts = list(self._batch_counts)
            batch_sum, batch_n = self._batch_sum, self._batch_n
            sample = list(self._latencies)
        lines: List[str] = []

        lines.append(f"# TYPE {_PREFIX}_requests_total counter")
        for (endpoint, status), count in sorted(requests.items()):
            lines.append(
                f'{_PREFIX}_requests_total{{endpoint="{endpoint}",status="{status}"}} {count}'
            )
        for name, value in sorted(counters.items()):
            lines.append(f"# TYPE {_PREFIX}_{name} counter")
            lines.append(f"{_PREFIX}_{name} {value}")
        for name, fn in sorted(self._gauges.items()):
            lines.append(f"# TYPE {_PREFIX}_{name} gauge")
            lines.append(f"{_PREFIX}_{name} {fn()}")

        lines.append(f"# TYPE {_PREFIX}_batch_size histogram")
        running = 0
        for edge, count in zip(self._batch_buckets, batch_counts):
            running += count
            lines.append(f'{_PREFIX}_batch_size_bucket{{le="{edge}"}} {running}')
        lines.append(
            f'{_PREFIX}_batch_size_bucket{{le="+Inf"}} {running + batch_counts[-1]}'
        )
        lines.append(f"{_PREFIX}_batch_size_sum {batch_sum}")
        lines.append(f"{_PREFIX}_batch_size_count {batch_n}")

        lines.append(f"# TYPE {_PREFIX}_request_latency_seconds summary")
        for q in (0.5, 0.99):
            if sample:
                value = quantile(sample, q)
                lines.append(
                    f'{_PREFIX}_request_latency_seconds{{quantile="{q}"}} {value:.9f}'
                )
        lines.append(f"{_PREFIX}_request_latency_seconds_sum {sum(sample):.9f}")
        lines.append(f"{_PREFIX}_request_latency_seconds_count {len(sample)}")
        for renderer in self._renderers:
            extra = renderer().rstrip("\n")
            if extra:
                lines.append(extra)
        return "\n".join(lines) + "\n"
