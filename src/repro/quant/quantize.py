"""Model conversion: trained FLOAT32 network → quantization-aware network.

The conversion follows Sec. III-A2 of the paper:

1. BatchNorm layers are folded into the preceding convolution.
2. Every convolutional / linear layer is wrapped into its QAT counterpart
   with the per-layer precision given by a :class:`PrecisionScheme`.
3. ReLU activations are absorbed into the PACT output quantizers.
4. The network input is quantized at 8 bits by an :class:`InputQuantizer`
   calibrated on training data.

The resulting :class:`QuantModel` is trained with the standard loop
(quantization-aware training) and later converted to a pure-integer network
for deployment (:mod:`repro.quant.integer`).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..nn.layers import BatchNorm2d, Conv2d, Dropout, Flatten, Linear, MaxPool2d, ReLU
from ..nn.module import Identity, Module, Sequential
from .fake_quant import InputQuantizer
from .qlayers import QuantConv2d, QuantLinear


@dataclass(frozen=True)
class PrecisionScheme:
    """Per-layer bit-width assignment.

    ``bits[i]`` applies to both the weights and the output activations of the
    i-th quantizable (conv/linear) layer, matching the MAUPITI constraint
    that a layer's weights and activations share the same precision.
    """

    bits: Tuple[int, ...]

    def __post_init__(self) -> None:
        for b in self.bits:
            if b not in (4, 8):
                raise ValueError(f"unsupported bit-width {b}; MAUPITI supports 4 and 8")

    @property
    def label(self) -> str:
        return "INT " + "-".join(str(b) for b in self.bits)

    def __len__(self) -> int:
        return len(self.bits)

    def __iter__(self):
        return iter(self.bits)


def enumerate_schemes(
    num_layers: int, first_layer_bits: int = 8, choices: Sequence[int] = (4, 8)
) -> List[PrecisionScheme]:
    """All per-layer precision assignments explored by the paper.

    The first layer is pinned to ``first_layer_bits`` because quantizing the
    network input at 4 bits caused severe accuracy degradation (Sec. IV-B).
    """
    if num_layers < 1:
        raise ValueError("num_layers must be >= 1")
    schemes: List[PrecisionScheme] = []
    free = num_layers - 1

    def expand(prefix: Tuple[int, ...]) -> None:
        if len(prefix) == free:
            schemes.append(PrecisionScheme((first_layer_bits,) + prefix))
            return
        for choice in choices:
            expand(prefix + (choice,))

    expand(())
    return schemes


class QuantModel(Module):
    """A quantization-aware network: input quantizer + quantized layers."""

    def __init__(
        self,
        input_quantizer: InputQuantizer,
        network: Sequential,
        scheme: PrecisionScheme,
        input_shape: Tuple[int, int, int] = (1, 8, 8),
    ):
        super().__init__()
        self.input_quantizer = input_quantizer
        self.network = network
        self.scheme = scheme
        self.input_shape = tuple(input_shape)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.input_quantizer(x)
        return self.network(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.network.backward(grad_output)
        return self.input_quantizer.backward(grad)

    # ------------------------------------------------------------------ #
    def quant_layers(self) -> List[Module]:
        return [
            layer
            for layer in self.network
            if isinstance(layer, (QuantConv2d, QuantLinear))
        ]

    def weights_bytes(self) -> float:
        """Total weight + bias storage in bytes under the mixed-precision scheme."""
        return float(sum(layer.params_bytes() for layer in self.quant_layers()))

    def memory_kb(self) -> float:
        return self.weights_bytes() / 1024.0

    def macs(self) -> int:
        """MAC count per inference (independent of precision)."""
        from ..nn.functional import conv_output_shape

        total = 0
        spatial = (self.input_shape[1], self.input_shape[2])
        for layer in self.network:
            if isinstance(layer, QuantConv2d):
                total += layer.conv.macs(*spatial)
                spatial = layer.conv.output_shape(*spatial)
            elif isinstance(layer, MaxPool2d):
                spatial = conv_output_shape(
                    spatial[0], spatial[1], layer.kernel_size, layer.stride, 0
                )
            elif isinstance(layer, QuantLinear):
                total += layer.linear.macs()
        return int(total)


def _fold_bn(conv: Conv2d, bn: Optional[BatchNorm2d]) -> Conv2d:
    """Return a copy of ``conv`` with ``bn`` folded into weights and bias."""
    folded = Conv2d(
        conv.in_channels,
        conv.out_channels,
        conv.kernel_size,
        conv.stride,
        conv.padding,
        bias=True,
    )
    if bn is None:
        folded.weight.data = conv.weight.data.copy()
        folded.bias.data = (
            conv.bias.data.copy() if conv.bias is not None else np.zeros(conv.out_channels)
        )
        return folded
    bias = conv.bias.data if conv.bias is not None else None
    w, b = bn.fold_into(conv.weight.data, bias)
    folded.weight.data = w
    folded.bias.data = b
    return folded


def _calibrate_alphas(
    fp_model: Sequential, calibration_data: np.ndarray, percentile: float = 99.9
) -> List[float]:
    """Per-ReLU activation clipping initial values from FP32 statistics."""
    alphas: List[float] = []
    x = calibration_data
    for layer in fp_model:
        x = layer(x)
        if isinstance(layer, ReLU):
            positive = x[x > 0]
            alpha = float(np.percentile(positive, percentile)) if positive.size else 1.0
            alphas.append(max(alpha, 1e-3))
    return alphas


def quantize_model(
    fp_model: Sequential,
    scheme: PrecisionScheme,
    calibration_data: Optional[np.ndarray] = None,
    input_bits: int = 8,
    input_shape: Tuple[int, int, int] = (1, 8, 8),
) -> QuantModel:
    """Convert a trained FLOAT32 network into a QAT-ready :class:`QuantModel`.

    Parameters
    ----------
    fp_model:
        Trained float network (a ``Sequential`` of Conv2d / BatchNorm2d /
        ReLU / MaxPool2d / Flatten / Linear / Dropout layers).
    scheme:
        Per-layer precision; must have one entry per conv/linear layer.
    calibration_data:
        A batch of (standardized) training frames used to calibrate the input
        quantizer range and the initial PACT clipping values.  Strongly
        recommended; without it, default ranges are used.
    """
    fp_model = copy.deepcopy(fp_model)
    fp_model.eval()

    quantizable = [l for l in fp_model if isinstance(l, (Conv2d, Linear))]
    if len(quantizable) != len(scheme):
        raise ValueError(
            f"scheme has {len(scheme)} entries but the model has "
            f"{len(quantizable)} quantizable layers"
        )

    alphas: List[float] = []
    if calibration_data is not None:
        alphas = _calibrate_alphas(fp_model, np.asarray(calibration_data, dtype=np.float64))

    layers = list(fp_model)
    new_layers: List[Module] = []
    # The output activations of quantizable layer ``j`` feed layer ``j + 1``,
    # whose SDOTP unit needs them at layer ``j + 1``'s precision (weights and
    # input activations of a layer share the same bit-width on MAUPITI).
    bits_list = list(scheme)
    activation_bits_list = bits_list[1:] + [None]
    quant_index = 0
    alpha_iter = iter(alphas)
    last_quantizable = max(
        i for i, l in enumerate(layers) if isinstance(l, (Conv2d, Linear))
    )

    i = 0
    while i < len(layers):
        layer = layers[i]
        if isinstance(layer, Conv2d):
            bits = bits_list[quant_index]
            act_bits = activation_bits_list[quant_index]
            quant_index += 1
            bn = layers[i + 1] if i + 1 < len(layers) and isinstance(layers[i + 1], BatchNorm2d) else None
            folded = _fold_bn(layer, bn)
            consumed = 1 + (1 if bn is not None else 0)
            has_relu = (
                i + consumed < len(layers) and isinstance(layers[i + consumed], ReLU)
            )
            is_output = i == last_quantizable
            alpha_init = next(alpha_iter, 6.0) if has_relu else 6.0
            new_layers.append(
                QuantConv2d(
                    folded,
                    bits,
                    activation_bits=act_bits,
                    quantize_output=has_relu and not is_output,
                    alpha_init=alpha_init,
                )
            )
            i += consumed + (1 if has_relu else 0)
        elif isinstance(layer, Linear):
            bits = bits_list[quant_index]
            act_bits = activation_bits_list[quant_index]
            quant_index += 1
            has_relu = i + 1 < len(layers) and isinstance(layers[i + 1], ReLU)
            is_output = i == last_quantizable
            alpha_init = next(alpha_iter, 6.0) if has_relu else 6.0
            lin = copy.deepcopy(layer)
            new_layers.append(
                QuantLinear(
                    lin,
                    bits,
                    activation_bits=act_bits,
                    quantize_output=has_relu and not is_output,
                    alpha_init=alpha_init,
                )
            )
            i += 1 + (1 if has_relu else 0)
        elif isinstance(layer, (MaxPool2d, Flatten, Identity)):
            new_layers.append(copy.deepcopy(layer))
            i += 1
        elif isinstance(layer, (BatchNorm2d, ReLU, Dropout)):
            # BatchNorm was folded above; a stray ReLU (e.g. after the output
            # layer) or Dropout is dropped at inference time.
            i += 1
        else:
            raise TypeError(f"unsupported layer type {type(layer).__name__}")

    input_quantizer = InputQuantizer(input_bits)
    if calibration_data is not None:
        input_quantizer.calibrate(calibration_data)
    return QuantModel(input_quantizer, Sequential(*new_layers), scheme, input_shape)
