"""Fake quantizers used during quantization-aware training (QAT).

A fake quantizer simulates integer quantization inside the float training
graph (Eq. 3 of the paper): the tensor is clamped to a range, mapped onto the
integer grid, rounded, and mapped back to float.  Rounding has zero gradient,
so the backward pass uses straight-through estimators.

Two quantizer families are implemented:

* :class:`SymmetricWeightQuantizer` — range-based, recomputed from the weight
  tensor at every forward pass ("range-based quantization for weights").
* :class:`PactActivationQuantizer` — PACT-style quantizer with a learnable
  clipping value ``alpha``; it also plays the role of the ReLU that precedes
  it ("a learnable one for activations").

The MAUPITI hardware only supports *signed* operands, so both weights and
activations are represented on the signed grid: an ``N``-bit activation uses
the non-negative half ``[0, 2^(N-1) - 1]`` of the signed range.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..nn.module import Module, Parameter

SUPPORTED_BITWIDTHS = (2, 4, 8)


def signed_weight_levels(bits: int) -> int:
    """Largest representable magnitude for a signed ``bits``-wide weight."""
    return 2 ** (bits - 1) - 1


def unsigned_activation_levels(bits: int) -> int:
    """Number of positive levels available to activations stored as signed
    integers (MAUPITI has no unsigned SDOTP variant)."""
    return 2 ** (bits - 1) - 1


def _check_bits(bits: int) -> None:
    if bits not in SUPPORTED_BITWIDTHS:
        raise ValueError(
            f"unsupported bit-width {bits}; supported: {SUPPORTED_BITWIDTHS}"
        )


def quantize_symmetric(
    tensor: np.ndarray, bits: int, scale: float | None = None
) -> Tuple[np.ndarray, float]:
    """Quantize a tensor to signed integers with a symmetric range.

    Returns ``(int_tensor, scale)`` where ``float ≈ int * scale``.
    """
    _check_bits(bits)
    tensor = np.asarray(tensor, dtype=np.float64)
    levels = signed_weight_levels(bits)
    if scale is None:
        max_abs = float(np.abs(tensor).max()) if tensor.size else 0.0
        scale = max_abs / levels if max_abs > 0 else 1.0
    q = np.clip(np.round(tensor / scale), -levels, levels).astype(np.int64)
    return q, float(scale)


def dequantize(int_tensor: np.ndarray, scale: float) -> np.ndarray:
    return np.asarray(int_tensor, dtype=np.float64) * scale


class SymmetricWeightQuantizer:
    """Range-based symmetric fake quantizer for weights.

    The scale is recomputed from the current weight tensor at every call, so
    no calibration pass is needed; the straight-through estimator passes the
    gradient unchanged (no values are clipped by a symmetric max-abs range).
    """

    def __init__(self, bits: int):
        _check_bits(bits)
        self.bits = bits
        self.last_scale: float = 1.0

    def __call__(self, weights: np.ndarray) -> np.ndarray:
        q, scale = quantize_symmetric(weights, self.bits)
        self.last_scale = scale
        return dequantize(q, scale)

    def integer_weights(self, weights: np.ndarray) -> Tuple[np.ndarray, float]:
        """Return the integer image and scale of ``weights``."""
        return quantize_symmetric(weights, self.bits)


class PactActivationQuantizer(Module):
    """PACT: clip activations to ``[0, alpha]`` with a learnable ``alpha``,
    then fake-quantize onto the available positive levels.

    The quantizer subsumes the ReLU non-linearity.  Gradients:

    * w.r.t. the input: 1 inside ``(0, alpha)``, 0 outside (STE through the
      rounding);
    * w.r.t. ``alpha``: 1 where the input saturated at ``alpha``.
    """

    def __init__(self, bits: int, alpha_init: float = 6.0):
        super().__init__()
        _check_bits(bits)
        if alpha_init <= 0:
            raise ValueError("alpha_init must be positive")
        self.bits = bits
        self.alpha = Parameter(np.array([float(alpha_init)]))
        self._cache: dict = {}

    @property
    def levels(self) -> int:
        return unsigned_activation_levels(self.bits)

    @property
    def scale(self) -> float:
        """Activation scale: ``float ≈ int * scale``."""
        return float(self.alpha.data[0]) / self.levels

    def forward(self, x: np.ndarray) -> np.ndarray:
        alpha = float(self.alpha.data[0])
        clipped = np.clip(x, 0.0, alpha)
        scale = alpha / self.levels
        q = np.round(clipped / scale)
        out = q * scale
        self._cache = {"x": x, "alpha": alpha}
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x = self._cache["x"]
        alpha = self._cache["alpha"]
        in_range = (x > 0.0) & (x < alpha)
        saturated = x >= alpha
        self.alpha.grad += np.array([float((grad_output * saturated).sum())])
        return grad_output * in_range

    def quantize_to_int(self, x: np.ndarray) -> np.ndarray:
        """Integer image of an activation tensor (used by tests/tools)."""
        alpha = float(self.alpha.data[0])
        scale = alpha / self.levels
        return np.clip(np.round(np.clip(x, 0.0, alpha) / scale), 0, self.levels).astype(
            np.int64
        )


class InputQuantizer(Module):
    """Affine fake quantizer for the network input.

    The input frames are standardized floats; the paper quantizes the first
    layer's input at 8 bits.  The range ``[beta_min, beta_max]`` is calibrated
    once on training data and kept fixed; values are mapped to the signed
    8-bit grid with a zero point so that the integer image is what the
    deployed firmware receives from the sensor pre-processing.
    """

    def __init__(self, bits: int = 8):
        super().__init__()
        _check_bits(bits)
        self.bits = bits
        self.minimum: float | None = None
        self.maximum: float | None = None

    def calibrate(self, data: np.ndarray) -> "InputQuantizer":
        data = np.asarray(data, dtype=np.float64)
        self.minimum = float(data.min())
        self.maximum = float(data.max())
        if self.maximum - self.minimum < 1e-12:
            self.maximum = self.minimum + 1e-12
        return self

    @property
    def calibrated(self) -> bool:
        return self.minimum is not None

    @property
    def num_steps(self) -> int:
        return 2**self.bits - 1

    @property
    def scale(self) -> float:
        self._require_calibration()
        return (self.maximum - self.minimum) / self.num_steps

    @property
    def zero_point(self) -> int:
        """Integer such that ``float = (int - zero_point) * scale`` with the
        integer lying in the signed ``bits``-wide range."""
        self._require_calibration()
        qmin = -(2 ** (self.bits - 1))
        return int(round(qmin - self.minimum / self.scale))

    def _require_calibration(self) -> None:
        if not self.calibrated:
            raise RuntimeError("InputQuantizer.calibrate must be called before use")

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._require_calibration()
        qmin = -(2 ** (self.bits - 1))
        qmax = 2 ** (self.bits - 1) - 1
        q = np.clip(np.round(x / self.scale) + self.zero_point, qmin, qmax)
        return (q - self.zero_point) * self.scale

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        # STE: the input range is calibrated wide enough that clipping is
        # negligible; pass the gradient through unchanged.
        return grad_output

    def quantize_to_int(self, x: np.ndarray) -> np.ndarray:
        self._require_calibration()
        qmin = -(2 ** (self.bits - 1))
        qmax = 2 ** (self.bits - 1) - 1
        return np.clip(np.round(np.asarray(x) / self.scale) + self.zero_point, qmin, qmax).astype(
            np.int64
        )
