"""True-integer inference ("golden model") derived from a QAT network.

After quantization-aware training, every layer's arithmetic is lowered to the
integer operations the MAUPITI firmware executes:

* weights are stored as signed INT4/INT8 values,
* biases as INT32 (already including the input zero-point correction),
* accumulation happens in INT32,
* the requantization back to the next layer's activation grid is a
  fixed-point multiply-and-shift:  ``out = clamp(round_shift(acc * m, shift), 0, levels)``.

This module is the single source of truth for the integer arithmetic: the
deployment code generator emits instruction streams implementing exactly the
same operations, and the ISA-simulator results are checked bit-exactly
against :class:`IntegerNetwork`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

import numpy as np

from ..nn.layers import Flatten, MaxPool2d
from ..nn.module import Sequential
from .qlayers import QuantConv2d, QuantLinear
from .quantize import QuantModel

INT32_MIN = -(2**31)
INT32_MAX = 2**31 - 1


def quantize_multiplier(real_multiplier: float, bits: int = 15) -> Tuple[int, int]:
    """Approximate a positive real multiplier as ``m * 2**-shift``.

    ``m`` fits in ``bits`` bits so that the INT32 accumulator times ``m``
    stays within 64-bit intermediate range (the hardware uses a MUL/MULH
    pair).  Returns ``(m, shift)``.
    """
    if real_multiplier <= 0:
        raise ValueError("requantization multiplier must be positive")
    shift = 0
    m = real_multiplier
    while m < 2 ** (bits - 1) and shift < 63:
        m *= 2.0
        shift += 1
    m_int = int(round(m))
    if m_int >= 2**bits:
        m_int //= 2
        shift -= 1
    return m_int, shift


def round_shift(value: np.ndarray, shift: int) -> np.ndarray:
    """Arithmetic right shift with round-to-nearest (ties away from zero are
    not needed: inputs here are non-negative products)."""
    value = np.asarray(value, dtype=np.int64)
    if shift <= 0:
        return value << (-shift)
    rounding = np.int64(1) << (shift - 1)
    return (value + rounding) >> shift


@dataclass
class IntegerLayer:
    """One integer conv/linear layer ready for deployment.

    Attributes
    ----------
    kind:
        ``"conv"`` or ``"linear"``.
    weight:
        Signed integer weights, shape ``(C_out, C_in, kh, kw)`` or
        ``(out_features, in_features)``.
    bias:
        INT32 bias per output channel (includes the zero-point correction of
        the layer input when the input is affine-quantized).
    weight_bits / act_bits:
        Storage precision of the weights and of the requantized output.
    multiplier / shift:
        Fixed-point requantization parameters.
    out_levels:
        Upper clamp bound of the requantized output (0 lower bound).
    requantize:
        ``False`` for the final classifier layer: its INT32 accumulator is the
        network output (argmax is taken directly on it).
    input_zero_point:
        Zero point of the layer's integer input (non-zero only for the first
        layer); used by the kernels to pad correctly.
    """

    kind: str
    weight: np.ndarray
    bias: np.ndarray
    weight_bits: int
    act_bits: int
    stride: Tuple[int, int] = (1, 1)
    padding: Tuple[int, int] = (0, 0)
    multiplier: int = 1
    shift: int = 0
    out_levels: int = 127
    requantize: bool = True
    input_zero_point: int = 0
    weight_scale: float = 1.0
    input_scale: float = 1.0
    output_scale: float = 1.0

    def weight_storage_bytes(self) -> float:
        return self.weight.size * self.weight_bits / 8.0

    def bias_storage_bytes(self) -> float:
        return self.bias.size * 4.0

    def macs(self, in_h: int = 0, in_w: int = 0) -> int:
        if self.kind == "linear":
            return int(self.weight.shape[0] * self.weight.shape[1])
        c_out, c_in, kh, kw = self.weight.shape
        out_h = (in_h + 2 * self.padding[0] - kh) // self.stride[0] + 1
        out_w = (in_w + 2 * self.padding[1] - kw) // self.stride[1] + 1
        return int(out_h * out_w * c_out * c_in * kh * kw)


@dataclass
class PoolSpec:
    """Structural (non-parametric) op in the integer graph."""

    kind: str  # "maxpool" or "flatten"
    kernel: Tuple[int, int] = (2, 2)
    stride: Tuple[int, int] = (2, 2)


@dataclass
class IntegerNetwork:
    """A fully-integer network: ordered layers plus the input quantization."""

    input_scale: float
    input_zero_point: int
    input_bits: int
    input_shape: Tuple[int, int, int]
    graph: List[Union[IntegerLayer, PoolSpec]] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def quantize_input(self, x: np.ndarray) -> np.ndarray:
        qmin = -(2 ** (self.input_bits - 1))
        qmax = 2 ** (self.input_bits - 1) - 1
        q = np.round(np.asarray(x, dtype=np.float64) / self.input_scale) + self.input_zero_point
        return np.clip(q, qmin, qmax).astype(np.int64)

    def forward_int(self, x_int: np.ndarray) -> np.ndarray:
        """Run integer inference on already-quantized input.

        ``x_int`` has shape ``(N, C, H, W)``; returns INT32 logits ``(N, classes)``.
        """
        act = np.asarray(x_int, dtype=np.int64)
        for node in self.graph:
            if isinstance(node, PoolSpec):
                act = self._pool(act, node)
            else:
                act = self._layer(act, node)
        return act

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.forward_int(self.quantize_input(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.argmax(self.forward(x), axis=1)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # ------------------------------------------------------------------ #
    def _pool(self, act: np.ndarray, node: PoolSpec) -> np.ndarray:
        if node.kind == "flatten":
            return act.reshape(act.shape[0], -1)
        n, c, h, w = act.shape
        kh, kw = node.kernel
        sh, sw = node.stride
        out_h = (h - kh) // sh + 1
        out_w = (w - kw) // sw + 1
        out = np.full((n, c, out_h, out_w), np.iinfo(np.int64).min, dtype=np.int64)
        for i in range(kh):
            for j in range(kw):
                out = np.maximum(
                    out, act[:, :, i : i + out_h * sh : sh, j : j + out_w * sw : sw]
                )
        return out

    def _layer(self, act: np.ndarray, layer: IntegerLayer) -> np.ndarray:
        if layer.kind == "conv":
            acc = self._conv_int(act, layer)
        else:
            acc = act @ layer.weight.T.astype(np.int64) + layer.bias[None, :]
        if not layer.requantize:
            return np.clip(acc, INT32_MIN, INT32_MAX)
        out = round_shift(acc * layer.multiplier, layer.shift)
        return np.clip(out, 0, layer.out_levels)

    def _conv_int(self, act: np.ndarray, layer: IntegerLayer) -> np.ndarray:
        n, c, h, w = act.shape
        c_out, c_in, kh, kw = layer.weight.shape
        if c != c_in:
            raise ValueError(f"channel mismatch: {c} vs {c_in}")
        ph, pw = layer.padding
        sh, sw = layer.stride
        if ph or pw:
            act = np.pad(
                act,
                ((0, 0), (0, 0), (ph, ph), (pw, pw)),
                mode="constant",
                constant_values=layer.input_zero_point,
            )
        out_h = (h + 2 * ph - kh) // sh + 1
        out_w = (w + 2 * pw - kw) // sw + 1
        s0, s1, s2, s3 = act.strides
        windows = np.lib.stride_tricks.as_strided(
            act,
            shape=(n, c_in, out_h, out_w, kh, kw),
            strides=(s0, s1, s2 * sh, s3 * sw, s2, s3),
            writeable=False,
        )
        cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * out_h * out_w, -1)
        w_mat = layer.weight.reshape(c_out, -1).astype(np.int64)
        acc = cols @ w_mat.T + layer.bias[None, :]
        # Remove the zero-point contribution of the real (non padded) inputs:
        # bias already contains -zp * sum(w) assuming every tap sees zp; the
        # padded taps do see zp, and the interior taps see x_int, so the
        # correction is exact (see DESIGN.md, integer lowering).
        return acc.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)

    # ------------------------------------------------------------------ #
    # Size accounting
    # ------------------------------------------------------------------ #
    def layers(self) -> List[IntegerLayer]:
        return [n for n in self.graph if isinstance(n, IntegerLayer)]

    def weights_bytes(self) -> float:
        return float(
            sum(l.weight_storage_bytes() + l.bias_storage_bytes() for l in self.layers())
        )

    def macs(self) -> int:
        total = 0
        h, w = self.input_shape[1], self.input_shape[2]
        for node in self.graph:
            if isinstance(node, PoolSpec):
                if node.kind == "maxpool":
                    h = (h - node.kernel[0]) // node.stride[0] + 1
                    w = (w - node.kernel[1]) // node.stride[1] + 1
            elif node.kind == "conv":
                total += node.macs(h, w)
                kh, kw = node.weight.shape[2], node.weight.shape[3]
                h = (h + 2 * node.padding[0] - kh) // node.stride[0] + 1
                w = (w + 2 * node.padding[1] - kw) // node.stride[1] + 1
            else:
                total += node.macs()
        return total


def convert_to_integer(qmodel: QuantModel) -> IntegerNetwork:
    """Lower a trained :class:`QuantModel` to an :class:`IntegerNetwork`."""
    if not qmodel.input_quantizer.calibrated:
        raise RuntimeError("the QuantModel's input quantizer is not calibrated")
    qmodel.eval()

    input_scale = qmodel.input_quantizer.scale
    input_zp = qmodel.input_quantizer.zero_point
    net = IntegerNetwork(
        input_scale=input_scale,
        input_zero_point=input_zp,
        input_bits=qmodel.input_quantizer.bits,
        input_shape=qmodel.input_shape,
    )

    current_scale = input_scale
    current_zp = input_zp
    prev_levels = 2 ** (qmodel.input_quantizer.bits - 1) - 1
    for layer in qmodel.network:
        if isinstance(layer, MaxPool2d):
            from ..nn.functional import _pair

            net.graph.append(
                PoolSpec("maxpool", _pair(layer.kernel_size), _pair(layer.stride))
            )
        elif isinstance(layer, Flatten):
            net.graph.append(PoolSpec("flatten"))
        elif isinstance(layer, (QuantConv2d, QuantLinear)):
            is_conv = isinstance(layer, QuantConv2d)
            base = layer.conv if is_conv else layer.linear
            w_int, w_scale = layer.weight_quantizer.integer_weights(base.weight.data)
            bias = base.bias.data if base.bias is not None else np.zeros(w_int.shape[0])
            bias_int = np.round(bias / (current_scale * w_scale)).astype(np.int64)
            # Fold the input zero point into the bias: every weight tap sees
            # (x_int - zp), so subtract zp * sum(weights) per output channel.
            if current_zp != 0:
                axes = tuple(range(1, w_int.ndim))
                bias_int = bias_int - current_zp * w_int.sum(axis=axes)

            requant = layer.output_quantizer is not None
            if requant:
                out_scale = layer.output_quantizer.scale
                # Choose the fixed-point multiplier width so that the INT32
                # accumulator times the multiplier still fits in 31 bits (the
                # firmware requantizes with a single 32-bit MUL).
                in_max = 2 ** (qmodel.input_quantizer.bits - 1) if current_zp != 0 else prev_levels
                acc_bound = int(
                    (np.abs(w_int).reshape(w_int.shape[0], -1).sum(axis=1) * in_max
                     + np.abs(bias_int)).max()
                )
                headroom = 30 - max(acc_bound, 1).bit_length()
                mult_bits = int(np.clip(headroom, 2, 15))
                m, shift = quantize_multiplier(
                    current_scale * w_scale / out_scale, bits=mult_bits
                )
                out_levels = layer.output_quantizer.levels
            else:
                out_scale = current_scale * w_scale
                m, shift, out_levels = 1, 0, INT32_MAX

            net.graph.append(
                IntegerLayer(
                    kind="conv" if is_conv else "linear",
                    weight=w_int,
                    bias=bias_int,
                    weight_bits=layer.weight_bits,
                    act_bits=layer.activation_bits or 32,
                    stride=base.stride if is_conv else (1, 1),
                    padding=base.padding if is_conv else (0, 0),
                    multiplier=m,
                    shift=shift,
                    out_levels=out_levels,
                    requantize=requant,
                    input_zero_point=current_zp,
                    weight_scale=w_scale,
                    input_scale=current_scale,
                    output_scale=out_scale,
                )
            )
            current_scale = out_scale
            current_zp = 0
            prev_levels = out_levels if requant else prev_levels
        else:
            raise TypeError(
                f"unsupported layer in quantized network: {type(layer).__name__}"
            )
    return net
