"""Range observers used to calibrate quantizers."""

from __future__ import annotations

import numpy as np


class MinMaxObserver:
    """Track the global min / max of every tensor passed through ``observe``."""

    def __init__(self) -> None:
        self.minimum = np.inf
        self.maximum = -np.inf

    def observe(self, tensor: np.ndarray) -> None:
        tensor = np.asarray(tensor)
        if tensor.size == 0:
            return
        self.minimum = min(self.minimum, float(tensor.min()))
        self.maximum = max(self.maximum, float(tensor.max()))

    @property
    def initialized(self) -> bool:
        return np.isfinite(self.minimum) and np.isfinite(self.maximum)

    def range(self) -> tuple[float, float]:
        if not self.initialized:
            raise RuntimeError("observer has not seen any data")
        lo, hi = self.minimum, self.maximum
        if hi - lo < 1e-12:
            hi = lo + 1e-12
        return lo, hi


class MovingAverageObserver:
    """Exponential-moving-average min/max observer (smoother than MinMax for
    noisy activation statistics during QAT)."""

    def __init__(self, momentum: float = 0.9):
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self.minimum: float | None = None
        self.maximum: float | None = None

    def observe(self, tensor: np.ndarray) -> None:
        tensor = np.asarray(tensor)
        if tensor.size == 0:
            return
        lo, hi = float(tensor.min()), float(tensor.max())
        if self.minimum is None:
            self.minimum, self.maximum = lo, hi
        else:
            self.minimum = self.momentum * self.minimum + (1 - self.momentum) * lo
            self.maximum = self.momentum * self.maximum + (1 - self.momentum) * hi

    @property
    def initialized(self) -> bool:
        return self.minimum is not None

    def range(self) -> tuple[float, float]:
        if self.minimum is None or self.maximum is None:
            raise RuntimeError("observer has not seen any data")
        lo, hi = self.minimum, self.maximum
        if hi - lo < 1e-12:
            hi = lo + 1e-12
        return lo, hi
