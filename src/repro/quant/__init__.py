"""Mixed-precision quantization and quantization-aware training (Sec. III-A2)."""

from .fake_quant import (
    InputQuantizer,
    PactActivationQuantizer,
    SymmetricWeightQuantizer,
    dequantize,
    quantize_symmetric,
    signed_weight_levels,
    unsigned_activation_levels,
)
from .observers import MinMaxObserver, MovingAverageObserver
from .qlayers import QuantConv2d, QuantLinear
from .quantize import PrecisionScheme, QuantModel, enumerate_schemes, quantize_model
from .mixed import (
    QATConfig,
    QuantizedPoint,
    count_quantizable_layers,
    explore_mixed_precision,
    qat_finetune,
)
from .integer import (
    IntegerLayer,
    IntegerNetwork,
    PoolSpec,
    convert_to_integer,
    quantize_multiplier,
    round_shift,
)

__all__ = [
    "InputQuantizer",
    "PactActivationQuantizer",
    "SymmetricWeightQuantizer",
    "quantize_symmetric",
    "dequantize",
    "signed_weight_levels",
    "unsigned_activation_levels",
    "MinMaxObserver",
    "MovingAverageObserver",
    "QuantConv2d",
    "QuantLinear",
    "PrecisionScheme",
    "QuantModel",
    "enumerate_schemes",
    "quantize_model",
    "QATConfig",
    "QuantizedPoint",
    "count_quantizable_layers",
    "explore_mixed_precision",
    "qat_finetune",
    "IntegerLayer",
    "IntegerNetwork",
    "PoolSpec",
    "convert_to_integer",
    "quantize_multiplier",
    "round_shift",
]
