"""Mixed-precision exploration (Sec. III-A2, second half).

Because MAUPITI only supports 4x4-bit and 8x8-bit SDOTP operations, the
precision of weights and activations of a layer must match, and only the
per-layer choice between INT4 and INT8 remains.  With the first layer pinned
to 8 bits (quantizing the sensor input at 4 bits destroys accuracy) a 4-layer
network has 2^3 = 8 candidate schemes, so the paper simply trains all of
them with QAT and keeps the Pareto-optimal ones.  This module implements that
exhaustive exploration.

Each (architecture, scheme) QAT run is an independent task unit with its own
spawned :class:`numpy.random.SeedSequence` child, so the exploration runs on
a :mod:`repro.parallel` executor (``executor="process"`` gives bit-identical
points for any worker count) with optional result caching.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

import numpy as np

from ..nn.data import ArrayDataset
from ..nn.layers import Conv2d, Linear
from ..nn.losses import CrossEntropyLoss
from ..nn.module import Sequential
from ..nn.trainer import TrainConfig, evaluate_bas, train_model
from .quantize import PrecisionScheme, QuantModel, enumerate_schemes, quantize_model


@dataclass
class QATConfig:
    """Hyper-parameters of one quantization-aware fine-tuning run."""

    epochs: int = 5
    batch_size: int = 128
    learning_rate: float = 5e-4
    calibration_samples: int = 512
    input_bits: int = 8
    verbose: bool = False


@dataclass
class QuantizedPoint:
    """One (architecture, precision scheme) combination and its metrics."""

    scheme: PrecisionScheme
    bas: float
    memory_bytes: float
    macs: int
    params: int
    model: Optional[QuantModel] = None
    source_label: str = ""

    @property
    def memory_kb(self) -> float:
        return self.memory_bytes / 1024.0

    def describe(self) -> str:
        return (
            f"{self.scheme.label:<16} bas={self.bas:.3f} "
            f"memory={self.memory_kb:.2f}kB macs={self.macs}"
        )


def count_quantizable_layers(model: Sequential) -> int:
    return sum(1 for layer in model if isinstance(layer, (Conv2d, Linear)))


def qat_finetune(
    qmodel: QuantModel,
    train_set: ArrayDataset,
    val_set: ArrayDataset,
    config: QATConfig,
    loss_fn: Optional[CrossEntropyLoss] = None,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Quantization-aware fine-tuning; returns the validation BAS."""
    rng = rng if rng is not None else np.random.default_rng(0)
    train_model(
        qmodel,
        train_set,
        val_set=val_set,
        config=TrainConfig(
            epochs=config.epochs,
            batch_size=config.batch_size,
            learning_rate=config.learning_rate,
            verbose=config.verbose,
        ),
        loss_fn=loss_fn,
        rng=rng,
    )
    return evaluate_bas(qmodel, val_set)


def _qat_task(payload) -> QuantizedPoint:
    """One (architecture, scheme) QAT run as a picklable task unit.

    ``payload`` is ``(fp_model, scheme, train_set, val_set, config, loss_fn,
    seed_seq, source_label)``; the RNG is derived in the worker from the
    trial's spawned seed child, so process-pool and serial execution agree
    bit-for-bit.
    """
    fp_model, scheme, train_set, val_set, config, loss_fn, seed_seq, label = payload
    rng = np.random.default_rng(seed_seq)
    calibration = train_set.inputs[: config.calibration_samples]
    qmodel = quantize_model(
        fp_model, scheme, calibration_data=calibration, input_bits=config.input_bits
    )
    bas = qat_finetune(qmodel, train_set, val_set, config, loss_fn, rng)
    params = sum(
        layer.conv.weight.size + layer.conv.bias.size
        if hasattr(layer, "conv")
        else layer.linear.weight.size + layer.linear.bias.size
        for layer in qmodel.quant_layers()
    )
    qmodel.clear_caches()  # ship parameters, not activation buffers
    return QuantizedPoint(
        scheme=scheme,
        bas=bas,
        memory_bytes=qmodel.weights_bytes(),
        macs=qmodel.macs(),
        params=int(params),
        model=qmodel,
        source_label=label,
    )


def explore_mixed_precision(
    fp_model: Sequential,
    train_set: ArrayDataset,
    val_set: ArrayDataset,
    schemes: Optional[Sequence[PrecisionScheme]] = None,
    config: Optional[QATConfig] = None,
    loss_fn: Optional[CrossEntropyLoss] = None,
    seed: int = 0,
    source_label: str = "",
    executor=None,
    max_workers: Optional[int] = None,
    cache=None,
) -> List[QuantizedPoint]:
    """Run QAT for every candidate precision scheme of ``fp_model``.

    Parameters
    ----------
    fp_model:
        A trained FLOAT32 network (e.g. a NAS-exported architecture).
    schemes:
        Candidate precision schemes; defaults to the full enumeration with
        the first layer at 8 bits.
    source_label:
        Free-form tag recorded on every point (used to trace which NAS
        architecture a quantized point derives from).
    executor:
        ``"serial"`` (default), ``"process"`` or a :mod:`repro.parallel`
        executor instance; per-scheme QAT runs are independent task units.
    cache:
        Optional :class:`repro.parallel.ResultCache`; schemes whose (seed,
        config, model weights, dataset content) key is stored are replayed
        from disk instead of re-trained.

    Returns
    -------
    One :class:`QuantizedPoint` per scheme, sorted by memory footprint.
    """
    from ..parallel import executor_is_owned, fingerprint, get_executor, run_tasks

    config = config or QATConfig()
    owned = executor_is_owned(executor)
    executor = get_executor(executor, max_workers)
    # Shared-memory handoff of the (large) datasets; a no-op for the
    # serial/thread executors and content-identical for fingerprints.
    train_set = executor.share_dataset(train_set)
    val_set = executor.share_dataset(val_set)
    num_layers = count_quantizable_layers(fp_model)
    if schemes is None:
        schemes = enumerate_schemes(num_layers, first_layer_bits=8)
    schemes = list(schemes)
    children = np.random.SeedSequence(seed).spawn(len(schemes))

    payloads = [
        (fp_model, scheme, train_set, val_set, config, loss_fn, child, source_label)
        for scheme, child in zip(schemes, children)
    ]
    keys = None
    if cache is not None:
        hashed_config = replace(config, verbose=False)  # cosmetic knobs excluded
        keys = [
            fingerprint(
                "qat-explore", seed, child, tuple(scheme.bits), hashed_config,
                fp_model, train_set, val_set, loss_fn, source_label,
            )
            for scheme, child in zip(schemes, children)
        ]
    try:
        points = run_tasks(
            _qat_task,
            payloads,
            executor=executor,
            cache=cache,
            keys=keys,
        )
    finally:
        if owned:
            executor.close()
    if config.verbose:
        for point in points:
            print(point.describe())
    return sorted(points, key=lambda p: p.memory_bytes)
