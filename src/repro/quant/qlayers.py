"""Quantization-aware layers.

``QuantConv2d`` / ``QuantLinear`` carry a per-layer precision (the paper's
mixed-precision scheme assigns the *same* bit-width to the weights and to the
output activations of a layer, matching the 4x4-bit / 8x8-bit SDOTP units of
MAUPITI).  The output activation quantizer doubles as the ReLU; the final
classifier layer has no activation quantizer and returns float logits.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import functional as F
from ..nn.layers import Conv2d, Linear
from ..nn.module import Module
from .fake_quant import PactActivationQuantizer, SymmetricWeightQuantizer


class QuantConv2d(Module):
    """QAT convolution with fake-quantized weights and PACT output quantizer."""

    def __init__(
        self,
        conv: Conv2d,
        bits: int,
        activation_bits: Optional[int] = None,
        quantize_output: bool = True,
        alpha_init: float = 6.0,
    ):
        super().__init__()
        self.conv = conv
        self.bits = bits
        self.weight_quantizer = SymmetricWeightQuantizer(bits)
        self.output_quantizer = (
            PactActivationQuantizer(activation_bits or bits, alpha_init)
            if quantize_output
            else None
        )
        self._cache: dict = {}

    @property
    def weight_bits(self) -> int:
        return self.bits

    @property
    def activation_bits(self) -> Optional[int]:
        return self.output_quantizer.bits if self.output_quantizer else None

    def forward(self, x: np.ndarray) -> np.ndarray:
        w_q = self.weight_quantizer(self.conv.weight.data)
        bias = self.conv.bias.data if self.conv.bias is not None else None
        out, cache = F.conv2d_forward(x, w_q, bias, self.conv.stride, self.conv.padding)
        self._cache = cache
        if self.output_quantizer is not None:
            out = self.output_quantizer(out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self.output_quantizer is not None:
            grad_output = self.output_quantizer.backward(grad_output)
        grad_x, grad_w, grad_b = F.conv2d_backward(grad_output, self._cache)
        # STE: the gradient w.r.t. the fake-quantized weight is passed to the
        # underlying float weight unchanged.
        self.conv.weight.grad += grad_w
        if self.conv.bias is not None and grad_b is not None:
            self.conv.bias.grad += grad_b
        return grad_x

    def params_bytes(self) -> float:
        """Storage of this layer's weights and biases in bytes.

        Weights use ``bits`` bits each; biases are kept at 32 bits as in the
        deployment runtime.
        """
        weight_bytes = self.conv.weight.size * self.bits / 8.0
        bias_bytes = self.conv.bias.size * 4.0 if self.conv.bias is not None else 0.0
        return weight_bytes + bias_bytes


class QuantLinear(Module):
    """QAT fully-connected layer; mirrors :class:`QuantConv2d`."""

    def __init__(
        self,
        linear: Linear,
        bits: int,
        activation_bits: Optional[int] = None,
        quantize_output: bool = True,
        alpha_init: float = 6.0,
    ):
        super().__init__()
        self.linear = linear
        self.bits = bits
        self.weight_quantizer = SymmetricWeightQuantizer(bits)
        self.output_quantizer = (
            PactActivationQuantizer(activation_bits or bits, alpha_init)
            if quantize_output
            else None
        )
        self._cache: dict = {}

    @property
    def weight_bits(self) -> int:
        return self.bits

    @property
    def activation_bits(self) -> Optional[int]:
        return self.output_quantizer.bits if self.output_quantizer else None

    def forward(self, x: np.ndarray) -> np.ndarray:
        w_q = self.weight_quantizer(self.linear.weight.data)
        bias = self.linear.bias.data if self.linear.bias is not None else None
        out, cache = F.linear_forward(x, w_q, bias)
        self._cache = cache
        if self.output_quantizer is not None:
            out = self.output_quantizer(out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self.output_quantizer is not None:
            grad_output = self.output_quantizer.backward(grad_output)
        grad_x, grad_w, grad_b = F.linear_backward(grad_output, self._cache)
        self.linear.weight.grad += grad_w
        if self.linear.bias is not None and grad_b is not None:
            self.linear.bias.grad += grad_b
        return grad_x

    def params_bytes(self) -> float:
        weight_bytes = self.linear.weight.size * self.bits / 8.0
        bias_bytes = self.linear.bias.size * 4.0 if self.linear.bias is not None else 0.0
        return weight_bytes + bias_bytes
