"""Majority-voting post-processing (Sec. III-A3).

The people count changes slowly compared to the 10 FPS frame rate, so
subsequent frames are strongly correlated.  The paper exploits this by
keeping the last ``window`` single-frame predictions in a FIFO and emitting
the most frequent class among them (mode inference).  Unlike the earlier
approach of [4] — which re-ran the network on multiple frames — the FIFO
stores *predictions*, so the memory overhead is a handful of bytes and the
latency/energy overhead is negligible; the only cost is a detection delay of
about half the window length when the true count changes.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..nn.metrics import balanced_accuracy


class MajorityVoter:
    """Streaming sliding-window mode filter over class predictions.

    Parameters
    ----------
    window:
        Number of most recent predictions kept in the FIFO (the paper uses 5).
    num_classes:
        Number of classes (used only for validation).

    Ties are broken in favour of the most recent prediction among the tied
    classes, which keeps the filter responsive to genuine count changes.

    ``update`` / ``reset`` / ``__len__`` are thread-safe (one internal
    lock): the serving layer votes from its batcher dispatch thread while
    session open/close/eviction runs on HTTP handler threads, and an
    update must never observe a half-cleared FIFO.
    """

    def __init__(self, window: int = 5, num_classes: int = 4):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.num_classes = num_classes
        self._fifo: deque = deque(maxlen=window)
        self._lock = threading.Lock()

    def reset(self) -> None:
        with self._lock:
            self._fifo.clear()

    def update(self, prediction: int) -> int:
        """Push a new single-frame prediction and return the filtered output."""
        prediction = int(prediction)
        if not 0 <= prediction < self.num_classes:
            raise ValueError(
                f"prediction {prediction} outside [0, {self.num_classes})"
            )
        with self._lock:
            self._fifo.append(prediction)
            counts = Counter(self._fifo)
            best_count = max(counts.values())
            tied = {cls for cls, cnt in counts.items() if cnt == best_count}
            if len(tied) == 1:
                return tied.pop()
            # Tie-break: most recent prediction among the tied classes.
            for value in reversed(self._fifo):
                if value in tied:
                    return value
        raise RuntimeError("unreachable: FIFO is non-empty")  # pragma: no cover

    def margin(self) -> float:
        """Vote margin of the current FIFO, in ``[0, 1]``.

        ``(winner count - runner-up count) / len(fifo)``: 1.0 for a
        unanimous window, 0.0 for a tie.  A shrinking margin is an early
        signal that the stream's predictions are destabilizing (e.g. under
        sensor faults) before the voted output actually flips.
        """
        with self._lock:
            if not self._fifo:
                return 1.0
            top = Counter(self._fifo).most_common(2)
            if len(top) == 1:
                return 1.0
            return (top[0][1] - top[1][1]) / len(self._fifo)

    def memory_bytes(self) -> int:
        """Extra RAM required by the filter (one byte per stored prediction)."""
        return self.window

    def __len__(self) -> int:
        with self._lock:
            return len(self._fifo)


def majority_filter(
    predictions: Sequence[int], window: int = 5, num_classes: int = 4
) -> np.ndarray:
    """Apply the sliding-window mode filter to a whole prediction sequence.

    The filter is causal: output ``i`` depends on predictions ``max(0, i-window+1) .. i``.
    """
    voter = MajorityVoter(window=window, num_classes=num_classes)
    return np.asarray([voter.update(int(p)) for p in predictions], dtype=np.int64)


@dataclass
class PostProcessingResult:
    """Accuracy before/after majority voting on one evaluation sequence."""

    window: int
    bas_raw: float
    bas_filtered: float
    detection_delay_frames: float

    @property
    def bas_gain(self) -> float:
        return self.bas_filtered - self.bas_raw


def evaluate_majority_voting(
    predictions: Sequence[int],
    labels: Sequence[int],
    window: int = 5,
    num_classes: int = 4,
) -> PostProcessingResult:
    """Compare raw vs majority-filtered balanced accuracy on a temporally
    ordered prediction sequence."""
    predictions = np.asarray(predictions, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same length")
    filtered = majority_filter(predictions, window=window, num_classes=num_classes)
    return PostProcessingResult(
        window=window,
        bas_raw=balanced_accuracy(labels, predictions, num_classes),
        bas_filtered=balanced_accuracy(labels, filtered, num_classes),
        detection_delay_frames=(window - 1) / 2.0,
    )


def sweep_window_lengths(
    predictions: Sequence[int],
    labels: Sequence[int],
    windows: Iterable[int] = (1, 3, 5, 7, 9, 11),
    num_classes: int = 4,
) -> List[PostProcessingResult]:
    """Ablation helper: evaluate several window lengths (the paper found 5 to
    be the most effective on LINAIGE)."""
    return [
        evaluate_majority_voting(predictions, labels, window=w, num_classes=num_classes)
        for w in windows
    ]
