"""Majority-voting post-processing (Sec. III-A3)."""

from .majority import (
    MajorityVoter,
    PostProcessingResult,
    evaluate_majority_voting,
    majority_filter,
    sweep_window_lengths,
)

__all__ = [
    "MajorityVoter",
    "PostProcessingResult",
    "majority_filter",
    "evaluate_majority_voting",
    "sweep_window_lengths",
]
