"""`repro.engine` — one flow, many execution targets (the façade layer).

The paper's central claim is that the *same* quantized CNN runs as a numpy
golden model, on the MAUPITI RV32IM+SDOTP simulator, and against the STM32
baseline.  This package makes that claim an API::

    import repro

    engine = repro.compile(model, target="maupiti")
    engine.predict(frame)           # one frame -> Prediction (+cycles/energy)
    engine.predict_batch(frames)    # uniform batched inference
    with engine.stream() as s:      # per-frame inference + majority FIFO
        s.push(frame)
    engine.report(frames)           # Table-I PlatformReport

Targets live in a registry (:func:`register_target`) so new backends plug in
without touching the engine, examples or benchmarks.
"""

from .api import ModelBundle, compile
from .backends import (
    EngineBackend,
    IbexBackend,
    IntGoldenBackend,
    MaupitiBackend,
    NumpyFloatBackend,
    Stm32Backend,
    compile_and_report,
)
from .engine import Engine, StreamSession
from .guard import InputGuard, InvalidFrameError, make_guard
from .registry import (
    EngineError,
    TargetSpec,
    available_targets,
    get_target,
    register_target,
    target_table,
    unregister_target,
)
from .results import (
    BatchPrediction,
    Prediction,
    StreamHealth,
    StreamSummary,
    StreamUpdate,
)

__all__ = [
    "compile",
    "compile_and_report",
    "Engine",
    "StreamSession",
    "ModelBundle",
    "EngineBackend",
    "NumpyFloatBackend",
    "IntGoldenBackend",
    "IbexBackend",
    "MaupitiBackend",
    "Stm32Backend",
    "EngineError",
    "InputGuard",
    "InvalidFrameError",
    "StreamHealth",
    "make_guard",
    "TargetSpec",
    "register_target",
    "unregister_target",
    "get_target",
    "available_targets",
    "target_table",
    "Prediction",
    "BatchPrediction",
    "StreamUpdate",
    "StreamSummary",
]
