"""Result containers shared by every engine target.

All targets return the same structures; fields a target cannot measure
(cycles and energy on the pure-numpy paths) are ``None`` rather than absent,
so downstream code can be written once against a uniform shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np


@dataclass
class Prediction:
    """Outcome of running one frame through an :class:`~repro.engine.Engine`."""

    prediction: int
    logits: Optional[np.ndarray] = None
    cycles: Optional[int] = None
    energy_uj: Optional[float] = None
    latency_s: Optional[float] = None


@dataclass
class BatchPrediction:
    """Outcome of running a batch of frames through an engine."""

    predictions: np.ndarray
    logits: Optional[np.ndarray] = None
    cycles_per_frame: Optional[np.ndarray] = None
    energy_uj_per_frame: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return int(self.predictions.shape[0])

    @property
    def mean_cycles(self) -> Optional[float]:
        if self.cycles_per_frame is None or self.cycles_per_frame.size == 0:
            return None
        return float(self.cycles_per_frame.mean())

    @property
    def total_energy_uj(self) -> Optional[float]:
        if self.energy_uj_per_frame is None:
            return None
        return float(self.energy_uj_per_frame.sum())


@dataclass
class StreamUpdate:
    """One step of a :class:`~repro.engine.StreamSession`.

    ``margin`` is the majority FIFO's vote margin after this frame
    (1.0 unanimous, 0.0 tie) — a cheap stability signal for health
    monitoring under sensor faults.
    """

    index: int
    raw: int
    voted: int
    cycles: Optional[int] = None
    energy_uj: Optional[float] = None
    margin: Optional[float] = None


@dataclass
class StreamHealth:
    """Per-stream health counters (input validity and vote stability)."""

    frames: int = 0
    invalid_frames: int = 0
    last_margin: Optional[float] = None
    mean_margin: Optional[float] = None
    min_margin: Optional[float] = None

    @property
    def invalid_fraction(self) -> float:
        if self.frames == 0:
            return 0.0
        return self.invalid_frames / self.frames


@dataclass
class StreamSummary:
    """Aggregate view over everything pushed through a stream session."""

    window: int
    raw_predictions: np.ndarray
    voted_predictions: np.ndarray
    cycles_per_frame: Optional[np.ndarray] = None
    total_energy_uj: Optional[float] = None
    health: Optional[StreamHealth] = None

    @property
    def frames(self) -> int:
        return int(self.raw_predictions.shape[0])

    @property
    def mean_cycles(self) -> Optional[float]:
        if self.cycles_per_frame is None or self.cycles_per_frame.size == 0:
            return None
        return float(self.cycles_per_frame.mean())
