"""The built-in execution targets.

Five targets ship with the reproduction, mirroring the paper's evaluation
matrix:

* ``numpy-float`` — the training-time float (or fake-quant QAT) forward,
* ``int-golden`` — the bit-true numpy integer golden model,
* ``ibex``       — scalar kernels on the ISA-simulated vanilla IBEX core,
* ``maupiti``    — SDOTP SIMD kernels on the ISA-simulated MAUPITI core,
* ``stm32``      — the analytical STM32L4R5 + X-CUBE-AI baseline.

New targets register themselves with
:func:`~repro.engine.registry.register_target`; nothing else in the engine
needs to change.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..deploy.program import CompiledModel, compile_network
from ..deploy.report import PlatformReport
from ..deploy.runtime import (
    load_model,
    run_frame,
    simulate_batch,
    verify_against_golden,
)
from ..deploy.stm32 import Stm32DeploymentModel
from ..hw.platform import SmartSensorPlatform, ibex_platform, maupiti_platform
from .registry import EngineError, get_target, register_target
from .results import BatchPrediction, Prediction


class EngineBackend:
    """Common machinery of every target backend.

    Subclasses implement :meth:`predict_batch` (and usually
    :meth:`predict_frame`); :meth:`report` and :meth:`prepare` are optional.
    """

    spec = None  # set by @register_target

    def __init__(self, bundle):
        self.bundle = bundle

    def prepare(self) -> None:
        """One-time setup before a batch or stream (e.g. loading weights)."""

    def predict_frame(self, frame: np.ndarray) -> Prediction:
        batch = self.predict_batch(frame[None])
        return Prediction(
            prediction=int(batch.predictions[0]),
            logits=None if batch.logits is None else batch.logits[0],
            cycles=None
            if batch.cycles_per_frame is None
            else int(batch.cycles_per_frame[0]),
            energy_uj=None
            if batch.energy_uj_per_frame is None
            else float(batch.energy_uj_per_frame[0]),
        )

    def predict_batch(self, frames: np.ndarray) -> BatchPrediction:
        raise NotImplementedError

    def report(
        self, frames: Optional[np.ndarray] = None, *, measured=None
    ) -> PlatformReport:
        raise EngineError(
            f"target {self.spec.name!r} does not produce deployment reports"
        )


# --------------------------------------------------------------------- #
def compile_and_report(
    model,
    target: str,
    frames: np.ndarray,
    *,
    sim_mode: str = "jit",
    verify: bool = True,
) -> PlatformReport:
    """Compile ``model`` for ``target`` and produce its Table-I report.

    One deployment = one compile + (where supported) one batched bit-exact
    verification against the integer golden model, whose cycle measurements
    are reused by the report so each frame is simulated exactly once.

    Module-level on purpose: flow stage 4 submits per-target deployments as
    :mod:`repro.parallel` task units, and process executors need a picklable
    entry point (pass an ``IntegerNetwork`` so the integer lowering is done
    once in the parent rather than per worker).
    """
    from .api import compile as compile_engine

    opts = {"sim_mode": sim_mode} if get_target(target).supports_sim_mode else {}
    engine = compile_engine(model, target=target, **opts)
    measured = None
    if verify and engine.can_verify:
        measured = engine.verify(frames)
    return engine.report(frames, measured=measured)


# --------------------------------------------------------------------- #
@register_target(
    "numpy-float",
    description="Float / fake-quant numpy forward (training-time reference)",
    supports_stats=False,
    aliases=("numpy", "float"),
)
class NumpyFloatBackend(EngineBackend):
    """Chunked numpy forward pass through a float or QAT model."""

    def __init__(self, bundle, batch_size: int = 256):
        super().__init__(bundle)
        self.model = bundle.require_callable()
        self.batch_size = batch_size

    def predict_batch(self, frames: np.ndarray) -> BatchPrediction:
        self.model.eval()
        chunks = []
        for start in range(0, frames.shape[0], self.batch_size):
            chunks.append(np.asarray(self.model(frames[start : start + self.batch_size])))
        logits = (
            np.concatenate(chunks) if chunks else np.empty((0, 0), dtype=np.float64)
        )
        predictions = (
            np.argmax(logits, axis=1).astype(np.int64)
            if logits.size
            else np.empty(0, dtype=np.int64)
        )
        return BatchPrediction(predictions=predictions, logits=logits)

    def prepare(self) -> None:
        self.model.eval()


# --------------------------------------------------------------------- #
@register_target(
    "int-golden",
    description="Bit-true numpy integer golden model (INT32 logits)",
    supports_stats=False,
    aliases=("golden", "int"),
)
class IntGoldenBackend(EngineBackend):
    """Vectorized integer inference; the reference the simulators must match."""

    def __init__(self, bundle):
        super().__init__(bundle)
        self.network = bundle.require_integer()

    def predict_batch(self, frames: np.ndarray) -> BatchPrediction:
        logits = self.network.forward(frames)
        return BatchPrediction(
            predictions=np.argmax(logits, axis=1).astype(np.int64), logits=logits
        )


# --------------------------------------------------------------------- #
class _SimulatedBackend(EngineBackend):
    """Shared implementation of the two ISA-simulated targets.

    ``sim_mode`` selects the simulation engine: ``"jit"`` (default) runs
    exec-compiled block code with cross-frame batching and the process-wide
    trace cache (:mod:`repro.hw.sim.jit`), ``"fast"`` the trace-compiled
    closure simulator, ``"interp"`` the per-instruction reference
    interpreter.  All three are bit-exact in predictions, logits, cycle
    counts and energy; batches go through
    :func:`repro.deploy.runtime.simulate_batch`, which amortizes model
    load, input packing and trace compilation across frames.
    """

    _platform_factory = None  # set by subclasses

    def __init__(
        self,
        bundle,
        platform: Optional[SmartSensorPlatform] = None,
        compiled: Optional[CompiledModel] = None,
        num_classes: int = 4,
        sim_mode: Optional[str] = None,
    ):
        super().__init__(bundle)
        self.network = bundle.require_integer()
        if platform is not None:
            if sim_mode is not None and platform.sim_mode != sim_mode:
                raise EngineError(
                    f"conflicting options: the supplied platform simulates in "
                    f"{platform.sim_mode!r} mode but sim_mode={sim_mode!r} was "
                    "requested; build the platform with the desired sim_mode "
                    "or drop one of the two options"
                )
            self.platform = platform
        else:
            self.platform = type(self)._platform_factory(sim_mode=sim_mode or "jit")
        self.compiled = compiled or compile_network(
            self.network,
            use_sdotp=self.platform.spec.supports_sdotp,
            num_classes=num_classes,
            code_overhead_bytes=self.platform.spec.code_overhead_bytes,
        )
        self._loaded = False

    # ------------------------------------------------------------------ #
    @property
    def sim_mode(self) -> str:
        return self.platform.sim_mode

    def prepare(self) -> None:
        load_model(self.platform, self.compiled)
        self._loaded = True

    def predict_frame(self, frame: np.ndarray) -> Prediction:
        if not self._loaded:
            self.prepare()
        result = run_frame(self.platform, self.compiled, frame)
        spec = self.platform.spec
        return Prediction(
            prediction=result.prediction,
            logits=result.logits,
            cycles=result.cycles,
            energy_uj=spec.energy_per_inference_uj(result.cycles),
            latency_s=spec.cycles_to_seconds(result.cycles),
        )

    def predict_batch(self, frames: np.ndarray) -> BatchPrediction:
        batch = simulate_batch(self.platform, self.compiled, frames)
        self._loaded = True
        spec = self.platform.spec
        energy = np.array(
            [spec.energy_per_inference_uj(int(c)) for c in batch.cycles_per_frame],
            dtype=np.float64,
        )
        return BatchPrediction(
            predictions=batch.predictions,
            logits=batch.logits,
            cycles_per_frame=batch.cycles_per_frame,
            energy_uj_per_frame=energy,
        )

    def verify(self, frames: np.ndarray):
        """Bit-exact check of the simulated program vs the golden model."""
        return verify_against_golden(
            self.platform, self.compiled, self.network, frames
        )

    def sim_info(self) -> dict:
        """Simulator introspection: mode, kernel counts and block tallies.

        For ``"jit"`` mode, reports the vectorized-kernel counts per kind
        plus how many basic blocks run as generated code vs the closure
        fallback; for ``"fast"`` mode, the kernel counts of the compiled
        trace; for ``"interp"`` mode, just the mode.
        """
        core = self.platform.core
        info: dict = {"mode": self.sim_mode}
        if self.sim_mode == "jit":
            from ..hw.sim.trace_cache import get_template

            template = get_template(
                self.compiled.program, core.cycle_model, core.enable_sdotp
            )
            info["kernel_counts"] = template.kernel_counts()
            info["blocks"] = template.block_tallies()
        elif self.sim_mode == "fast":
            from ..hw.sim import compile_trace

            trace = None
            cached = core._trace_cache.get(id(self.compiled.program))
            if cached is not None and cached[0] is self.compiled.program:
                trace = cached[2]
            if trace is None:
                trace = compile_trace(
                    self.compiled.program,
                    memory=self.platform.memory,
                    cycle_model=core.cycle_model,
                    enable_sdotp=core.enable_sdotp,
                )
            info["kernel_counts"] = trace.kernel_counts()
            kernel = sum(1 for b in trace.blocks if b.kernel is not None)
            info["blocks"] = {
                "total": len(trace.blocks),
                "kernel": kernel,
                "jit": 0,
                "closure": len(trace.blocks) - kernel,
            }
        return info

    def report(
        self, frames: Optional[np.ndarray] = None, *, measured=None
    ) -> PlatformReport:
        if measured is not None and measured.mean_cycles:
            cycles = float(measured.mean_cycles)
        elif frames is None or len(frames) == 0:
            raise EngineError(
                f"target {self.spec.name!r} measures cycles on the simulator; "
                "report() needs at least one calibration frame (or a "
                "'measured' batch from an earlier run)"
            )
        else:
            cycles = self.predict_batch(frames).mean_cycles
        spec = self.platform.spec
        return PlatformReport(
            platform=spec.name,
            code_bytes=self.compiled.code_size_bytes,
            data_bytes=self.compiled.data_size_bytes,
            cycles=cycles,
            latency_ms=spec.cycles_to_seconds(int(cycles)) * 1e3,
            energy_uj=spec.energy_per_inference_uj(int(cycles)),
            sim=self.sim_info(),
        )


@register_target(
    "ibex",
    description="Vanilla IBEX core, scalar kernels on the ISA simulator",
    supports_stats=True,
    supports_sim_mode=True,
)
class IbexBackend(_SimulatedBackend):
    _platform_factory = staticmethod(ibex_platform)


@register_target(
    "maupiti",
    description="MAUPITI core, SDOTP SIMD kernels on the ISA simulator",
    supports_stats=True,
    supports_sim_mode=True,
)
class MaupitiBackend(_SimulatedBackend):
    _platform_factory = staticmethod(maupiti_platform)


# --------------------------------------------------------------------- #
@register_target(
    "stm32",
    description="Analytical STM32L4R5 + X-CUBE-AI baseline (8-bit only)",
    supports_stats=True,
)
class Stm32Backend(EngineBackend):
    """STM32 + X-CUBE-AI baseline.

    The X-CUBE-AI runtime is closed source, so cycle/energy figures come
    from the calibrated analytical model; functional predictions execute the
    same integer golden network the MCU would run.
    """

    def __init__(self, bundle, deployment_model: Optional[Stm32DeploymentModel] = None):
        super().__init__(bundle)
        self.network = bundle.require_integer()
        self.model = deployment_model or Stm32DeploymentModel()
        self._cycles = self.model.inference_cycles(self.network)
        self._energy_uj = self.model.energy_uj(self.network)
        self._latency_s = self.model.latency_s(self.network)

    def predict_batch(self, frames: np.ndarray) -> BatchPrediction:
        logits = self.network.forward(frames)
        n = logits.shape[0]
        return BatchPrediction(
            predictions=np.argmax(logits, axis=1).astype(np.int64),
            logits=logits,
            cycles_per_frame=np.full(n, self._cycles, dtype=np.int64),
            energy_uj_per_frame=np.full(n, self._energy_uj, dtype=np.float64),
        )

    def predict_frame(self, frame: np.ndarray) -> Prediction:
        prediction = super().predict_frame(frame)
        prediction.latency_s = self._latency_s
        return prediction

    def report(
        self, frames: Optional[np.ndarray] = None, *, measured=None
    ) -> PlatformReport:
        return PlatformReport(
            platform=self.model.spec.name,
            code_bytes=self.model.code_size_bytes(self.network),
            data_bytes=self.model.data_size_bytes(self.network),
            cycles=self._cycles,
            latency_ms=self._latency_s * 1e3,
            energy_uj=self._energy_uj,
        )
