"""Execution-target registry for the :mod:`repro.engine` façade.

Every way of *running* a model — numpy float forward, integer golden model,
the ISA-simulated IBEX / MAUPITI cores, the analytical STM32 baseline — is a
*target*.  Targets are registered with :func:`register_target`, which makes
them reachable through ``repro.compile(model, target="<name>")`` without the
caller knowing anything about the backend's construction.  Third-party or
experimental backends (e.g. a future RTL co-simulation) plug in the same way:

    @register_target("my-fpga", description="...", supports_stats=True)
    class MyFpgaBackend(EngineBackend):
        ...
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


class EngineError(RuntimeError):
    """Raised for engine-level failures: unknown targets, unsupported
    model/target combinations, or operations a target cannot perform."""


@dataclass(frozen=True)
class TargetSpec:
    """Static description of one registered execution target.

    ``supports_sim_mode`` declares that the backend's constructor accepts a
    ``sim_mode="interp"|"fast"`` keyword selecting the simulation engine
    (the ISA-simulated targets); callers such as the flow's deployment
    stage use it to decide whether to forward the option.
    """

    name: str
    description: str
    supports_stats: bool
    backend_cls: type
    aliases: Tuple[str, ...] = ()
    supports_sim_mode: bool = False


_REGISTRY: Dict[str, TargetSpec] = {}


def register_target(
    name: str,
    *,
    description: str = "",
    supports_stats: bool = False,
    aliases: Tuple[str, ...] = (),
    supports_sim_mode: bool = False,
):
    """Class decorator registering an :class:`~repro.engine.backends.EngineBackend`
    under ``name`` (and optional ``aliases``)."""

    def decorator(cls: type) -> type:
        spec = TargetSpec(
            name=name,
            description=description,
            supports_stats=supports_stats,
            backend_cls=cls,
            aliases=tuple(aliases),
            supports_sim_mode=supports_sim_mode,
        )
        keys = [key.lower() for key in (name, *aliases)]
        # Validate every key before inserting any, so a collision cannot
        # leave the registry partially populated.
        for canonical in keys:
            if canonical in _REGISTRY:
                raise ValueError(f"target {canonical!r} is already registered")
        for canonical in keys:
            _REGISTRY[canonical] = spec
        cls.spec = spec
        return cls

    return decorator


def unregister_target(name: str) -> None:
    """Remove a target and all its aliases (mainly for tests and plugins)."""
    spec = _REGISTRY.get(name.lower())
    if spec is None:
        return
    for key in (spec.name, *spec.aliases):
        _REGISTRY.pop(key.lower(), None)


def get_target(name: str) -> TargetSpec:
    """Resolve a target name (or alias) to its :class:`TargetSpec`."""
    spec = _REGISTRY.get(str(name).lower())
    if spec is None:
        raise EngineError(
            f"unknown target {name!r}; available targets: "
            + ", ".join(available_targets())
        )
    return spec


def available_targets() -> List[str]:
    """Sorted canonical names of every registered target."""
    return sorted({spec.name for spec in _REGISTRY.values()})


def target_table() -> str:
    """Human-readable table of the registered targets (used by the docs)."""
    rows = [f"{'target':<14} {'stats':<6} description"]
    for name in available_targets():
        spec = get_target(name)
        stats = "yes" if spec.supports_stats else "no"
        rows.append(f"{spec.name:<14} {stats:<6} {spec.description}")
    return "\n".join(rows)
