"""`repro.compile` — the single entry point of the engine façade.

``compile(model, target=...)`` accepts every model artifact the flow
produces and lowers it to whatever representation the chosen target needs:

* a float :class:`~repro.nn.module.Module` (``Sequential`` seed / NAS export),
* a :class:`~repro.quant.quantize.QuantModel` (QAT network),
* an :class:`~repro.quant.integer.IntegerNetwork` (lowered golden model),
* a :class:`~repro.quant.mixed.QuantizedPoint` or a flow ``FlowPoint``
  (recognized structurally, so :mod:`repro.flow` never becomes an import
  dependency of the engine).

The integer lowering (``convert_to_integer``) is performed lazily and cached
on the bundle, so compiling the same artifact for several integer targets
shares one golden model.
"""

from __future__ import annotations

from typing import Any, Optional

from ..nn.module import Module
from ..quant.integer import IntegerNetwork, convert_to_integer
from ..quant.quantize import QuantModel
from .engine import Engine
from .registry import EngineError, get_target


class ModelBundle:
    """The model artifact behind an engine, in every available form."""

    def __init__(self, source: Any, label: Optional[str] = None):
        self.source = source
        self.float_model: Optional[Module] = None
        self.quant_model: Optional[QuantModel] = None
        self._integer_network: Optional[IntegerNetwork] = None
        self.label = label or ""

        artifact = source
        # Flow points carry their quantized model; quantized points carry the
        # QAT model.  Both are detected structurally to avoid import cycles.
        if hasattr(artifact, "quantized") and hasattr(artifact, "bas_majority"):
            self.label = self.label or getattr(artifact, "label", "")
            if artifact.quantized is None or artifact.quantized.model is None:
                raise EngineError(
                    "this FlowPoint does not carry its quantized model; "
                    "re-run the flow keeping models attached"
                )
            artifact = artifact.quantized.model
        elif hasattr(artifact, "scheme") and hasattr(artifact, "model") and not isinstance(artifact, Module):
            self.label = self.label or getattr(artifact, "source_label", "")
            if artifact.model is None:
                raise EngineError("this QuantizedPoint does not carry its model")
            artifact = artifact.model

        if isinstance(artifact, IntegerNetwork):
            self._integer_network = artifact
        elif isinstance(artifact, QuantModel):
            self.quant_model = artifact
        elif isinstance(artifact, Module):
            self.float_model = artifact
        else:
            raise EngineError(
                f"cannot compile object of type {type(artifact).__name__}; "
                "expected a Module, QuantModel, IntegerNetwork, QuantizedPoint "
                "or FlowPoint"
            )

    # ------------------------------------------------------------------ #
    def require_callable(self) -> Module:
        """A float-domain forward (float model or fake-quant QAT model)."""
        model = self.quant_model or self.float_model
        if model is None:
            raise EngineError(
                "the 'numpy-float' target needs a float or QAT model; an "
                "IntegerNetwork only supports the integer targets "
                "('int-golden', 'ibex', 'maupiti', 'stm32')"
            )
        return model

    def require_integer(self) -> IntegerNetwork:
        """The integer golden model, lowering the QAT model on first use."""
        if self._integer_network is None:
            if self.quant_model is None:
                raise EngineError(
                    "integer targets need a QuantModel or IntegerNetwork; a "
                    "float model must be quantized first (see "
                    "repro.quant.quantize_model)"
                )
            self._integer_network = convert_to_integer(self.quant_model)
        return self._integer_network


def compile(
    model: Any,
    target: str = "maupiti",
    *,
    majority_window: int = 5,
    num_classes: int = 4,
    label: Optional[str] = None,
    on_invalid: Optional[str] = None,
    input_range: Optional[tuple] = None,
    **opts: Any,
) -> Engine:
    """Compile a model artifact for an execution target.

    Parameters
    ----------
    model:
        Anything the flow produces: a float ``Module``, a ``QuantModel``, an
        ``IntegerNetwork``, a ``QuantizedPoint`` or a ``FlowPoint``.
    target:
        Registered target name — ``"numpy-float"``, ``"int-golden"``,
        ``"ibex"``, ``"maupiti"`` or ``"stm32"`` (see
        :func:`repro.engine.available_targets`).
    majority_window:
        Default FIFO length of :meth:`Engine.stream` sessions.
    num_classes:
        Number of people-count classes (4 for LINAIGE).
    on_invalid:
        Input-validation policy for NaN/Inf/out-of-range frames —
        ``"reject"``, ``"clamp"`` or ``"hold_last"`` (see
        :mod:`repro.engine.guard`).  ``None`` (default) disables guarding,
        keeping behavior bit-identical to unguarded engines.
    input_range:
        Optional ``(lo, hi)`` valid pixel range enforced by the guard.
    **opts:
        Forwarded to the backend constructor (e.g. ``platform=`` or
        ``compiled=`` for the simulated targets, ``deployment_model=`` for
        STM32, ``batch_size=`` for numpy-float).

    Returns
    -------
    An :class:`~repro.engine.Engine` exposing ``predict`` /
    ``predict_batch`` / ``stream`` / ``report`` uniformly across targets.
    """
    spec = get_target(target)
    bundle = model if isinstance(model, ModelBundle) else ModelBundle(model, label=label)
    backend = spec.backend_cls(bundle, **opts)
    return Engine(
        backend,
        majority_window=majority_window,
        num_classes=num_classes,
        on_invalid=on_invalid,
        input_range=input_range,
    )
