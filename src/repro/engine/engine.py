"""The uniform executable returned by :func:`repro.compile`.

An :class:`Engine` wraps one backend (one model compiled for one target) and
exposes the same four operations everywhere:

* :meth:`Engine.predict` — one frame in, one :class:`Prediction` out,
* :meth:`Engine.predict_batch` — a batch of frames, vectorized where the
  target allows it,
* :meth:`Engine.stream` — a :class:`StreamSession` context manager fusing
  per-frame inference with the paper's majority-voting FIFO and per-frame
  cycle/energy accounting where the target supports it,
* :meth:`Engine.report` — a Table-I :class:`~repro.deploy.report.PlatformReport`.
"""

from __future__ import annotations

import threading
from typing import List, Optional

import numpy as np

from ..postproc.majority import MajorityVoter
from .guard import make_guard
from .registry import EngineError
from .results import (
    BatchPrediction,
    Prediction,
    StreamHealth,
    StreamSummary,
    StreamUpdate,
)

#: Sentinel for Engine.stream keyword defaults: "inherit the engine's value".
_INHERIT = object()


class Engine:
    """A model compiled for one execution target.

    ``predict`` / ``predict_batch`` / ``verify`` are thread-safe: they
    serialize on one internal lock, because the simulated backends mutate
    platform state (register file, data memory) per call.  The serving
    layer (:mod:`repro.serve`) additionally confines all engine calls to a
    single dispatch thread, so the lock is a safety net rather than a
    contention point.
    """

    def __init__(
        self,
        backend,
        majority_window: int = 5,
        num_classes: int = 4,
        on_invalid: Optional[str] = None,
        input_range: Optional[tuple] = None,
    ):
        self.backend = backend
        self.majority_window = majority_window
        self.num_classes = num_classes
        # Input guardrail: None (the default) keeps the historical behavior —
        # frames reach the backend untouched, bit-identical to older engines.
        self.on_invalid = on_invalid
        self.input_range = input_range
        self._guard = make_guard(on_invalid, input_range)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    @property
    def target(self) -> str:
        return self.backend.spec.name

    @property
    def supports_stats(self) -> bool:
        """Whether predictions carry per-frame cycle / energy figures."""
        return self.backend.spec.supports_stats

    @property
    def can_verify(self) -> bool:
        """Whether :meth:`verify` is meaningful for this target."""
        return hasattr(self.backend, "verify")

    @property
    def label(self) -> str:
        return self.backend.bundle.label

    # ------------------------------------------------------------------ #
    def predict(self, frame: np.ndarray) -> Prediction:
        """Run one ``(C, H, W)`` preprocessed frame."""
        with self._lock:
            frame = np.asarray(frame)
            if self._guard is not None:
                frame = self._guard.apply(frame[None])[0]
            return self.backend.predict_frame(frame)

    def predict_batch(self, frames: np.ndarray) -> BatchPrediction:
        """Run a ``(N, C, H, W)`` batch of preprocessed frames."""
        with self._lock:
            frames = np.asarray(frames)
            if self._guard is not None:
                frames = self._guard.apply(frames)
            return self.backend.predict_batch(frames)

    def stream(
        self,
        window: Optional[int] = None,
        num_classes: Optional[int] = None,
        on_invalid=_INHERIT,
        input_range=_INHERIT,
    ) -> "StreamSession":
        """Open a streaming session (majority-voting FIFO included).

        ``on_invalid`` / ``input_range`` default to the engine's settings;
        pass ``on_invalid=None`` explicitly to disable guarding for one
        session.  For the served, multi-session equivalent — many
        concurrent sensor streams over one engine, with cross-session
        micro-batching — see :mod:`repro.serve`
        (``repro.serve.start_server(engine)``).
        """
        return StreamSession(
            self.backend,
            window=window if window is not None else self.majority_window,
            num_classes=num_classes if num_classes is not None else self.num_classes,
            on_invalid=self.on_invalid if on_invalid is _INHERIT else on_invalid,
            input_range=self.input_range if input_range is _INHERIT else input_range,
        )

    def report(self, frames: Optional[np.ndarray] = None, *, measured=None):
        """Table-I metrics for this target (code/data size, cycles, energy).

        The simulated targets measure cycles by actually running ``frames``
        on the ISA simulator; the analytical STM32 target ignores them.
        ``measured`` may carry an earlier run of the same frames (anything
        with a ``mean_cycles`` attribute, e.g. the batch :meth:`verify`
        returned) so the simulator is not re-run just for the report.
        """
        return self.backend.report(frames, measured=measured)

    def verify(self, frames: np.ndarray):
        """Assert bit-exact agreement with the integer golden model (only the
        ISA-simulated targets can do this)."""
        if not self.can_verify:
            raise EngineError(
                f"target {self.target!r} does not support golden-model "
                "verification"
            )
        with self._lock:
            return self.backend.verify(np.asarray(frames))

    def describe(self) -> str:
        name = self.label or type(self.backend.bundle.source).__name__
        return f"Engine(target={self.target}, model={name})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


class StreamSession:
    """Context manager fusing per-frame inference with the majority FIFO.

    The session mirrors the deployed firmware loop: each frame is classified
    as it arrives, the raw prediction enters the sliding-window FIFO, and the
    mode of the window is the emitted people count.  Per-frame cycle and
    energy statistics are accumulated when the target reports them.
    """

    def __init__(
        self,
        backend,
        window: int = 5,
        num_classes: int = 4,
        on_invalid: Optional[str] = None,
        input_range: Optional[tuple] = None,
    ):
        self.backend = backend
        self.window = window
        self.on_invalid = on_invalid
        self.input_range = input_range
        self.voter = MajorityVoter(window=window, num_classes=num_classes)
        self._guard = make_guard(on_invalid, input_range)
        self._raw: List[int] = []
        self._voted: List[int] = []
        self._cycles: List[int] = []
        self._margins: List[float] = []
        self._energy_uj = 0.0
        self._has_stats = True
        self._open = False

    # ------------------------------------------------------------------ #
    def __enter__(self) -> "StreamSession":
        prepare = getattr(self.backend, "prepare", None)
        if prepare is not None:
            prepare()
        # Re-entering starts a fresh run: clear the FIFO and every
        # accumulator together so summary() never mixes two runs.
        self.voter.reset()
        self._guard = make_guard(self.on_invalid, self.input_range)
        self._raw = []
        self._voted = []
        self._cycles = []
        self._margins = []
        self._energy_uj = 0.0
        self._has_stats = True
        self._open = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._open = False

    # ------------------------------------------------------------------ #
    def push(self, frame: np.ndarray) -> StreamUpdate:
        """Feed one frame; returns the raw and majority-voted predictions."""
        if not self._open:
            raise EngineError("stream sessions must be entered with 'with' before push()")
        frame = np.asarray(frame)
        if self._guard is not None:
            frame = self._guard.apply(frame[None])[0]
        result = self.backend.predict_frame(frame)
        voted = self.voter.update(result.prediction)
        margin = self.voter.margin()
        self._raw.append(result.prediction)
        self._voted.append(voted)
        self._margins.append(margin)
        if result.cycles is None:
            self._has_stats = False
        else:
            self._cycles.append(result.cycles)
            self._energy_uj += result.energy_uj or 0.0
        return StreamUpdate(
            index=len(self._raw) - 1,
            raw=result.prediction,
            voted=voted,
            cycles=result.cycles,
            energy_uj=result.energy_uj,
            margin=margin,
        )

    def health(self) -> StreamHealth:
        """Input validity + vote stability counters for this session."""
        margins = self._margins
        return StreamHealth(
            frames=len(self._raw),
            invalid_frames=self._guard.health.invalid_frames if self._guard else 0,
            last_margin=margins[-1] if margins else None,
            mean_margin=float(np.mean(margins)) if margins else None,
            min_margin=float(np.min(margins)) if margins else None,
        )

    def summary(self) -> StreamSummary:
        """Everything seen so far (valid both inside and after the ``with``)."""
        stats = self._has_stats and bool(self._cycles)
        return StreamSummary(
            window=self.window,
            raw_predictions=np.asarray(self._raw, dtype=np.int64),
            voted_predictions=np.asarray(self._voted, dtype=np.int64),
            cycles_per_frame=np.asarray(self._cycles, dtype=np.int64) if stats else None,
            total_energy_uj=self._energy_uj if stats else None,
            health=self.health(),
        )

    def __len__(self) -> int:
        return len(self._raw)
