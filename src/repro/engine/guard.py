"""Input-validation guardrails for engines and serving sessions.

Real sensor streams carry NaNs (I2C glitches), Infs (divide-by-zero in
on-node calibration) and wildly out-of-range values (ADC rail hits).  An
:class:`InputGuard` screens each frame before it reaches a backend, under
one of three policies:

``"reject"``
    Raise :class:`InvalidFrameError` — the caller (or the serving layer,
    as an HTTP 400) decides what to do.
``"clamp"``
    Replace non-finite pixels with 0 and clip every pixel into
    ``input_range`` (when given).  Cheap and stateless.
``"hold_last"``
    Substitute the whole invalid frame with the last valid frame seen on
    this guard (zeros if none yet) — the firmware-style choice that keeps
    the majority FIFO fed at a constant rate.

The guard also keeps per-stream health counters (frames seen, invalid
frames) that :meth:`~repro.engine.engine.StreamSession.health` and the
serving layer's per-session ``/metrics`` gauges report.

A ``policy`` of ``None`` disables the guard entirely — the default, so
existing pipelines stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .registry import EngineError

POLICIES = ("reject", "clamp", "hold_last")


class InvalidFrameError(EngineError):
    """A frame failed validation under the ``"reject"`` policy."""


@dataclass
class GuardHealth:
    """Counters of one guard instance (one engine or one stream/session)."""

    frames_seen: int = 0
    invalid_frames: int = 0

    @property
    def invalid_fraction(self) -> float:
        if self.frames_seen == 0:
            return 0.0
        return self.invalid_frames / self.frames_seen


class InputGuard:
    """Screen ``(N, ...)`` frame batches for NaN/Inf/out-of-range values.

    Not thread-safe by itself; callers (``Engine``, serving sessions) apply
    it under their own locks.
    """

    def __init__(
        self,
        policy: str,
        input_range: Optional[Tuple[float, float]] = None,
    ):
        if policy not in POLICIES:
            raise EngineError(
                f"unknown on_invalid policy {policy!r}; expected one of {POLICIES}"
            )
        if input_range is not None:
            lo, hi = float(input_range[0]), float(input_range[1])
            if not lo < hi:
                raise EngineError(f"input_range must satisfy lo < hi, got {input_range!r}")
            input_range = (lo, hi)
        self.policy = policy
        self.input_range = input_range
        self.health = GuardHealth()
        self._last_valid: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    def _invalid_mask(self, frames: np.ndarray) -> np.ndarray:
        """Per-frame boolean: does the frame contain any offending pixel?"""
        reduce_axes = tuple(range(1, frames.ndim))
        bad = ~np.isfinite(frames)
        if self.input_range is not None:
            lo, hi = self.input_range
            with np.errstate(invalid="ignore"):
                bad |= (frames < lo) | (frames > hi)
        return bad.any(axis=reduce_axes)

    def apply(self, frames: np.ndarray) -> np.ndarray:
        """Validate/repair a ``(N, ...)`` batch according to the policy.

        Returns the input object untouched when every frame is valid, so
        the clean path stays zero-copy and bit-identical.
        """
        arr = np.asarray(frames)
        if arr.ndim < 2 or arr.shape[0] == 0:
            return frames
        invalid = self._invalid_mask(arr)
        n_invalid = int(invalid.sum())
        self.health.frames_seen += int(arr.shape[0])
        self.health.invalid_frames += n_invalid
        if n_invalid == 0:
            if self.policy == "hold_last":
                self._last_valid = np.array(arr[-1], dtype=np.float64)
            return frames
        if self.policy == "reject":
            where = np.flatnonzero(invalid)[:8].tolist()
            raise InvalidFrameError(
                f"{n_invalid}/{arr.shape[0]} frames contain NaN/Inf"
                + (" or out-of-range pixels" if self.input_range else " pixels")
                + f" (first offenders at batch indices {where})"
            )
        out = arr.astype(np.float64, copy=True)
        if self.policy == "clamp":
            out[~np.isfinite(out)] = 0.0
            if self.input_range is not None:
                np.clip(out, self.input_range[0], self.input_range[1], out=out)
            return out
        # hold_last: replace each invalid frame with the most recent valid one.
        last = self._last_valid
        for i in range(out.shape[0]):
            if invalid[i]:
                out[i] = last if last is not None else 0.0
            else:
                last = out[i]
        if last is not None:
            self._last_valid = np.array(last, dtype=np.float64)
        return out


def make_guard(
    policy: Optional[str],
    input_range: Optional[Tuple[float, float]] = None,
) -> Optional[InputGuard]:
    """``None`` policy -> no guard (the bit-identical default path)."""
    if policy is None:
        return None
    return InputGuard(policy, input_range)
