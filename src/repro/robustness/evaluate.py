"""Fault x severity x target robustness grid over compiled engines.

:func:`evaluate` answers the deployment question the accuracy tables leave
open: *how gracefully does the people-counting pipeline degrade when the
sensor misbehaves?*  For every fault model in the grid it corrupts the raw
(Celsius) frame stream at several severities — BEFORE pre-processing, where
a real sensor fault lives — runs the corrupted stream through each compiled
execution target, and reports raw and majority-voted accuracy/BAS next to
the clean-stream baseline, plus the target's cycle/energy figures where the
target measures them.

Everything is deterministic: scenario ``(fault_idx, severity_idx)`` derives
its RNG from ``np.random.SeedSequence([seed, fault_idx, severity_idx])``,
so two runs with the same seed produce bit-identical reports (enforced by
``benchmarks/perf_robust.py``).  Faulted frames are generated once per
``(fault, severity)`` cell and shared across targets, so adding a target
costs inference only, not regeneration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..engine import Engine
from ..engine import compile as compile_engine
from ..faults import build_fault
from ..nn.metrics import accuracy, balanced_accuracy
from ..postproc import majority_filter


@dataclass
class ScenarioResult:
    """One cell of the robustness grid: (fault, severity) on one target."""

    fault: str
    severity: float
    target: str
    accuracy_raw: float
    accuracy_voted: float
    bas_raw: float
    bas_voted: float
    degradation_raw: float  # baseline BAS (raw) minus this cell's
    degradation_voted: float  # baseline BAS (voted) minus this cell's
    voting_recovery: float  # degradation absorbed by the majority filter
    mean_cycles: Optional[float] = None
    total_energy_uj: Optional[float] = None

    def as_json(self) -> dict:
        return {
            "fault": self.fault,
            "severity": self.severity,
            "target": self.target,
            "accuracy_raw": self.accuracy_raw,
            "accuracy_voted": self.accuracy_voted,
            "bas_raw": self.bas_raw,
            "bas_voted": self.bas_voted,
            "degradation_raw": self.degradation_raw,
            "degradation_voted": self.degradation_voted,
            "voting_recovery": self.voting_recovery,
            "mean_cycles": self.mean_cycles,
            "total_energy_uj": self.total_energy_uj,
        }


@dataclass
class RobustnessReport:
    """Clean baselines plus the full fault grid, with degradation curves."""

    faults: Tuple[str, ...]
    severities: Tuple[float, ...]
    targets: Tuple[str, ...]
    window: int
    num_classes: int
    seed: int
    frames: int
    baselines: Dict[str, dict] = field(default_factory=dict)
    scenarios: List[ScenarioResult] = field(default_factory=list)

    def curve(self, target: str, fault: str) -> dict:
        """Severity-ordered degradation curve for one (target, fault) pair."""
        cells = sorted(
            (s for s in self.scenarios if s.target == target and s.fault == fault),
            key=lambda s: s.severity,
        )
        return {
            "severities": [s.severity for s in cells],
            "bas_raw": [s.bas_raw for s in cells],
            "bas_voted": [s.bas_voted for s in cells],
            "degradation_voted": [s.degradation_voted for s in cells],
        }

    def curves(self) -> Dict[str, Dict[str, dict]]:
        return {
            target: {fault: self.curve(target, fault) for fault in self.faults}
            for target in self.targets
        }

    def worst_case(self, target: str) -> Optional[ScenarioResult]:
        cells = [s for s in self.scenarios if s.target == target]
        if not cells:
            return None
        return max(cells, key=lambda s: s.degradation_voted)

    def as_json(self) -> dict:
        return {
            "config": {
                "faults": list(self.faults),
                "severities": list(self.severities),
                "targets": list(self.targets),
                "majority_window": self.window,
                "num_classes": self.num_classes,
                "seed": self.seed,
                "frames": self.frames,
            },
            "baselines": self.baselines,
            "scenarios": [s.as_json() for s in self.scenarios],
            "curves": self.curves(),
        }


def _run_cell(
    engine: Engine, inputs: np.ndarray, labels: np.ndarray, window: int, num_classes: int
) -> dict:
    batch = engine.predict_batch(inputs)
    raw = np.asarray(batch.predictions, dtype=np.int64)
    voted = majority_filter(raw, window=window, num_classes=num_classes)
    return {
        "accuracy_raw": accuracy(labels, raw),
        "accuracy_voted": accuracy(labels, voted),
        "bas_raw": balanced_accuracy(labels, raw, num_classes),
        "bas_voted": balanced_accuracy(labels, voted, num_classes),
        "mean_cycles": batch.mean_cycles,
        "total_energy_uj": batch.total_energy_uj,
    }


def evaluate(
    model,
    frames: np.ndarray,
    labels: Sequence[int],
    *,
    preprocess=None,
    faults: Sequence[str] = ("dead-pixels", "gaussian-noise", "ambient-drift", "frame-drop"),
    severities: Sequence[float] = (0.1, 0.3, 0.6),
    targets: Union[Sequence[str], Dict[str, Engine]] = ("int-golden",),
    window: int = 5,
    num_classes: int = 4,
    seed: int = 0,
) -> RobustnessReport:
    """Run the fault x severity x target grid and return the report.

    Parameters
    ----------
    model:
        Anything :func:`repro.compile` accepts (ignored when ``targets`` is
        already a mapping of compiled engines).
    frames:
        RAW sensor frames, ``(N, H, W)`` or ``(N, 1, H, W)``, in the units
        the sensor emits — faults are injected here, before ``preprocess``.
    labels:
        Per-frame ground-truth occupancy labels, temporally ordered (the
        majority filter is causal).
    preprocess:
        Optional callable applied after fault injection (the deployment
        pre-processing, e.g. a fitted :class:`repro.flow.Preprocessor`).
    targets:
        Target names to compile ``model`` for, or an explicit mapping of
        ``{name: Engine}`` to reuse already-compiled engines.
    """
    frames = np.asarray(frames, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    n = frames.shape[0]
    if labels.shape[0] != n:
        raise ValueError(f"{n} frames but {labels.shape[0]} labels")
    fault_names = tuple(faults)
    sev_grid = tuple(float(s) for s in severities)
    if isinstance(targets, dict):
        engines = dict(targets)
    else:
        engines = {name: compile_engine(model, target=name) for name in targets}

    report = RobustnessReport(
        faults=fault_names,
        severities=sev_grid,
        targets=tuple(engines),
        window=window,
        num_classes=num_classes,
        seed=seed,
        frames=n,
    )

    def prepared(raw: np.ndarray) -> np.ndarray:
        return preprocess(raw) if preprocess is not None else raw

    clean = prepared(frames)
    for name, engine in engines.items():
        report.baselines[name] = _run_cell(engine, clean, labels, window, num_classes)

    for fi, fault_name in enumerate(fault_names):
        for si, severity in enumerate(sev_grid):
            fault = build_fault(fault_name, severity=severity)
            # One deterministic stream per cell, shared by every target.
            faulted = fault.apply(
                frames, seed=np.random.SeedSequence([seed, fi, si])
            )
            inputs = prepared(faulted)
            for name, engine in engines.items():
                cell = _run_cell(engine, inputs, labels, window, num_classes)
                base = report.baselines[name]
                degradation_raw = base["bas_raw"] - cell["bas_raw"]
                degradation_voted = base["bas_voted"] - cell["bas_voted"]
                report.scenarios.append(
                    ScenarioResult(
                        fault=fault_name,
                        severity=severity,
                        target=name,
                        accuracy_raw=cell["accuracy_raw"],
                        accuracy_voted=cell["accuracy_voted"],
                        bas_raw=cell["bas_raw"],
                        bas_voted=cell["bas_voted"],
                        degradation_raw=degradation_raw,
                        degradation_voted=degradation_voted,
                        voting_recovery=degradation_raw - degradation_voted,
                        mean_cycles=cell["mean_cycles"],
                        total_energy_uj=cell["total_energy_uj"],
                    )
                )
    return report
