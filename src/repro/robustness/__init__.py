"""`repro.robustness` — graceful-degradation reporting under sensor faults.

Sweeps the :mod:`repro.faults` registry over severities and execution
targets and reports accuracy/BAS degradation curves (raw and
majority-voted) plus per-scenario cycle/energy cost::

    from repro.robustness import evaluate

    report = evaluate(
        qmodel, raw_frames, labels,
        preprocess=pre,
        faults=("dead-pixels", "gaussian-noise", "ambient-drift", "frame-drop"),
        severities=(0.1, 0.3, 0.6),
        targets=("int-golden", "maupiti"),
        seed=0,
    )
    report.curve("int-golden", "dead-pixels")   # severity-ordered curve
    report.as_json()                            # BENCH_robust.json payload

``benchmarks/perf_robust.py`` drives this harness end to end (including a
``--chaos`` mode that kills a serving worker mid-stream and checks the
client-side recovery) and writes ``BENCH_robust.json``.
"""

from .evaluate import RobustnessReport, ScenarioResult, evaluate

__all__ = ["RobustnessReport", "ScenarioResult", "evaluate"]
