"""Input pre-processing transforms for IR frames."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass
class Standardizer:
    """Zero-mean / unit-variance standardization fitted on training data.

    The statistics are computed globally (a single mean and std over all
    pixels of the training frames), matching how the paper pre-processes the
    single-channel thermal input before the first convolution.
    """

    mean: float = 0.0
    std: float = 1.0

    @classmethod
    def fit(cls, frames: np.ndarray) -> "Standardizer":
        frames = np.asarray(frames, dtype=np.float64)
        std = float(frames.std())
        if std < 1e-12:
            std = 1.0
        return cls(mean=float(frames.mean()), std=std)

    def __call__(self, frames: np.ndarray) -> np.ndarray:
        frames = np.asarray(frames, dtype=np.float64)
        # Degenerate scale (a constant stream — e.g. a stuck sensor, or a
        # Standardizer constructed directly with std=0): return zeros
        # instead of NaN/Inf so downstream inference stays well-defined.
        if not np.isfinite(self.std) or abs(self.std) < 1e-12:
            return np.zeros_like(frames)
        return (frames - self.mean) / self.std

    def inverse(self, frames: np.ndarray) -> np.ndarray:
        return np.asarray(frames, dtype=np.float64) * self.std + self.mean


@dataclass
class MinMaxNormalizer:
    """Scale frames into [0, 1] using training-set min/max temperatures."""

    minimum: float = 0.0
    maximum: float = 1.0

    @classmethod
    def fit(cls, frames: np.ndarray) -> "MinMaxNormalizer":
        frames = np.asarray(frames, dtype=np.float64)
        lo, hi = float(frames.min()), float(frames.max())
        if hi - lo < 1e-12:
            hi = lo + 1.0
        return cls(minimum=lo, maximum=hi)

    def __call__(self, frames: np.ndarray) -> np.ndarray:
        frames = np.asarray(frames, dtype=np.float64)
        span = self.maximum - self.minimum
        # Same stuck-sensor guard as Standardizer: a zero-width range would
        # divide by zero and flood the pipeline with NaNs.
        if not np.isfinite(span) or abs(span) < 1e-12:
            return np.zeros_like(frames)
        return np.clip((frames - self.minimum) / span, 0.0, 1.0)


def ambient_removal(frames: np.ndarray) -> np.ndarray:
    """Subtract the per-frame median temperature (a cheap ambient estimate).

    This mimics the background-compensation step commonly applied to IR-array
    data so the network sees body-heat contrast rather than absolute
    temperature.
    """
    frames = np.asarray(frames, dtype=np.float64)
    median = np.median(frames, axis=(-2, -1), keepdims=True)
    return frames - median


def stack_frames(frames: np.ndarray, window: int) -> Tuple[np.ndarray, np.ndarray]:
    """Stack ``window`` consecutive frames into the channel dimension.

    Returns ``(stacked, valid_indices)`` where ``stacked[i]`` contains frames
    ``i-window+1 .. i``; the first ``window-1`` positions are dropped and
    ``valid_indices`` maps stacked rows back to original frame indices.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    frames = np.asarray(frames)
    if frames.ndim != 4 or frames.shape[1] != 1:
        raise ValueError(f"expected (N, 1, H, W) frames, got {frames.shape}")
    n = frames.shape[0]
    if n < window:
        raise ValueError(f"not enough frames ({n}) for a window of {window}")
    stacked = np.concatenate(
        [frames[i : n - window + 1 + i] for i in range(window)], axis=1
    )
    valid = np.arange(window - 1, n)
    return stacked, valid
