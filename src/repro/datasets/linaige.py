"""Synthetic LINAIGE-compatible dataset.

The paper evaluates on LINAIGE [6], a public dataset of 25110 labelled 8x8
infrared frames collected with a ceiling-mounted Panasonic Grid-EYE style
sensor in 5 sessions (different rooms / environments), each frame labelled
with the number of people in the field of view (0-3).

The real data cannot be downloaded in this offline environment, so this
module synthesizes an equivalent dataset that preserves the properties the
paper's methods rely on:

* ultra-low resolution (8x8) thermal images in degrees Celsius;
* people appear as warm, roughly Gaussian blobs over a cooler ambient
  background, with blob amplitude a few degrees above ambient;
* per-session domain shift: each session has its own ambient temperature,
  noise level, sensor gain and person-heat signature, so leave-one-session-out
  cross-validation is a genuine generalization test;
* temporal correlation: frames form continuous "episodes" where people walk
  through the field of view, so subsequent frames are highly correlated and
  a sliding-window majority vote filters out sporadic mispredictions;
* class imbalance: empty and single-person frames dominate, 3-person frames
  are rare.

The generator is deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.data import ArrayDataset

NUM_CLASSES = 4
FRAME_SIZE = 8

# Per-session environment profiles (ambient temperature in deg C, sensor
# noise sigma, person blob amplitude, optional hot static object such as a
# radiator).  Five sessions mirror the LINAIGE collection campaign; session 1
# is the largest and is always part of the training set in the paper's CV.
_SESSION_PROFILES: Dict[int, Dict[str, float]] = {
    1: {"ambient": 22.0, "noise": 0.30, "amplitude": 4.0, "hot_spot": 0.0, "samples": 9000},
    2: {"ambient": 20.5, "noise": 0.40, "amplitude": 3.5, "hot_spot": 1.5, "samples": 4500},
    3: {"ambient": 24.0, "noise": 0.35, "amplitude": 4.5, "hot_spot": 0.0, "samples": 4200},
    4: {"ambient": 21.0, "noise": 0.50, "amplitude": 3.0, "hot_spot": 2.0, "samples": 3900},
    5: {"ambient": 23.0, "noise": 0.45, "amplitude": 3.8, "hot_spot": 0.0, "samples": 3510},
}

# Probability of each person count in an episode; heavily skewed toward few
# people, matching the published LINAIGE class statistics.
_CLASS_PROBABILITIES = np.array([0.42, 0.33, 0.17, 0.08])


@dataclass
class Session:
    """One recording session: frames, labels and the session id.

    ``frames`` has shape ``(N, 1, 8, 8)`` (degrees Celsius, float32) and
    ``labels`` shape ``(N,)`` with values in ``{0, 1, 2, 3}``.  Frames are in
    temporal order, which the post-processing stage relies on.
    """

    session_id: int
    frames: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if self.frames.shape[0] != self.labels.shape[0]:
            raise ValueError("frames and labels disagree on sample count")

    def __len__(self) -> int:
        return int(self.frames.shape[0])

    def as_dataset(self) -> ArrayDataset:
        return ArrayDataset(self.frames, self.labels)

    def class_counts(self) -> np.ndarray:
        return np.bincount(self.labels, minlength=NUM_CLASSES)


@dataclass
class LinaigeDataset:
    """The full synthetic dataset: a list of sessions plus helpers for the
    leave-one-session-out cross-validation protocol of the paper."""

    sessions: List[Session] = field(default_factory=list)

    def __post_init__(self) -> None:
        ids = [s.session_id for s in self.sessions]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate session ids: {ids}")

    @property
    def num_samples(self) -> int:
        return sum(len(s) for s in self.sessions)

    def session(self, session_id: int) -> Session:
        for s in self.sessions:
            if s.session_id == session_id:
                return s
        raise KeyError(f"no session with id {session_id}")

    def cross_validation_folds(self) -> List[Tuple[ArrayDataset, Session]]:
        """Leave-one-session-out folds.

        Following the paper, Session 1 (the largest) is always kept in the
        training set; sessions 2..5 are rotated as the test session.  Each
        fold is ``(train_dataset, test_session)`` where the train dataset
        concatenates every session except the held-out one.
        """
        folds = []
        for held_out in self.sessions:
            if held_out.session_id == 1:
                continue
            train_frames = []
            train_labels = []
            for s in self.sessions:
                if s.session_id == held_out.session_id:
                    continue
                train_frames.append(s.frames)
                train_labels.append(s.labels)
            train = ArrayDataset(
                np.concatenate(train_frames), np.concatenate(train_labels)
            )
            folds.append((train, held_out))
        return folds

    def class_counts(self) -> np.ndarray:
        counts = np.zeros(NUM_CLASSES, dtype=np.int64)
        for s in self.sessions:
            counts += s.class_counts()
        return counts


class _PersonTrack:
    """A single person walking through the field of view.

    The trajectory is a constant-velocity walk with small random jitter,
    entering from one border and leaving from another; it gives the frames
    the temporal coherence real IR recordings have.
    """

    def __init__(self, rng: np.random.Generator, duration: int):
        self.duration = duration
        side = rng.integers(0, 4)
        margin = 1.0
        if side == 0:  # enter from left
            self.start = np.array([rng.uniform(1, FRAME_SIZE - 2), -margin])
            self.end = np.array([rng.uniform(1, FRAME_SIZE - 2), FRAME_SIZE + margin])
        elif side == 1:  # from right
            self.start = np.array([rng.uniform(1, FRAME_SIZE - 2), FRAME_SIZE + margin])
            self.end = np.array([rng.uniform(1, FRAME_SIZE - 2), -margin])
        elif side == 2:  # from top
            self.start = np.array([-margin, rng.uniform(1, FRAME_SIZE - 2)])
            self.end = np.array([FRAME_SIZE + margin, rng.uniform(1, FRAME_SIZE - 2)])
        else:  # from bottom
            self.start = np.array([FRAME_SIZE + margin, rng.uniform(1, FRAME_SIZE - 2)])
            self.end = np.array([-margin, rng.uniform(1, FRAME_SIZE - 2)])
        # Some people stop in the middle (e.g. sit at a desk) for a while.
        self.pause_at = rng.uniform(0.3, 0.7) if rng.random() < 0.4 else None
        self.jitter = rng.uniform(0.05, 0.2)
        self.sigma = rng.uniform(0.8, 1.3)
        self.relative_heat = rng.uniform(0.85, 1.15)

    def position(self, t: int, rng: np.random.Generator) -> np.ndarray:
        progress = t / max(self.duration - 1, 1)
        if self.pause_at is not None:
            # Compress motion into the first and last 30% of the episode.
            if progress < 0.3:
                progress = progress / 0.3 * self.pause_at
            elif progress > 0.7:
                progress = self.pause_at + (progress - 0.7) / 0.3 * (1 - self.pause_at)
            else:
                progress = self.pause_at
        pos = self.start + (self.end - self.start) * progress
        return pos + rng.normal(0.0, self.jitter, size=2)


def _render_frame(
    positions: Sequence[np.ndarray],
    sigmas: Sequence[float],
    heats: Sequence[float],
    profile: Dict[str, float],
    rng: np.random.Generator,
    hot_spot_pos: Optional[np.ndarray],
) -> np.ndarray:
    """Render one 8x8 thermal frame in degrees Celsius."""
    yy, xx = np.mgrid[0:FRAME_SIZE, 0:FRAME_SIZE]
    frame = np.full((FRAME_SIZE, FRAME_SIZE), profile["ambient"], dtype=np.float64)
    # Slow spatial gradient: walls/windows are colder on one side.
    frame += 0.15 * (xx - FRAME_SIZE / 2.0) / FRAME_SIZE
    if hot_spot_pos is not None and profile["hot_spot"] > 0:
        d2 = (yy - hot_spot_pos[0]) ** 2 + (xx - hot_spot_pos[1]) ** 2
        frame += profile["hot_spot"] * np.exp(-d2 / (2 * 1.5**2))
    for pos, sigma, heat in zip(positions, sigmas, heats):
        d2 = (yy - pos[0]) ** 2 + (xx - pos[1]) ** 2
        frame += profile["amplitude"] * heat * np.exp(-d2 / (2 * sigma**2))
    frame += rng.normal(0.0, profile["noise"], size=frame.shape)
    return frame


def _count_visible(positions: Sequence[np.ndarray]) -> int:
    """Number of people whose blob center is inside the sensor field of view."""
    count = 0
    for pos in positions:
        if -0.5 <= pos[0] <= FRAME_SIZE - 0.5 and -0.5 <= pos[1] <= FRAME_SIZE - 0.5:
            count += 1
    return count


def _generate_session(
    session_id: int,
    profile: Dict[str, float],
    rng: np.random.Generator,
    num_samples: Optional[int] = None,
) -> Session:
    """Generate one session as a concatenation of temporally-coherent episodes."""
    target = int(num_samples if num_samples is not None else profile["samples"])
    frames: List[np.ndarray] = []
    labels: List[int] = []
    hot_spot_pos = (
        np.array([rng.uniform(0, 2), rng.uniform(0, 2)]) if profile["hot_spot"] > 0 else None
    )

    while len(frames) < target:
        episode_len = int(rng.integers(20, 60))
        num_people = int(rng.choice(NUM_CLASSES, p=_CLASS_PROBABILITIES))
        tracks = [_PersonTrack(rng, episode_len) for _ in range(num_people)]
        for t in range(episode_len):
            positions = [trk.position(t, rng) for trk in tracks]
            frame = _render_frame(
                positions,
                [trk.sigma for trk in tracks],
                [trk.relative_heat for trk in tracks],
                profile,
                rng,
                hot_spot_pos,
            )
            frames.append(frame)
            labels.append(min(_count_visible(positions), NUM_CLASSES - 1))
            if len(frames) >= target:
                break

    frame_arr = np.asarray(frames, dtype=np.float32)[:, None, :, :]
    label_arr = np.asarray(labels, dtype=np.int64)
    return Session(session_id=session_id, frames=frame_arr, labels=label_arr)


def generate_linaige(
    seed: int = 0,
    samples_per_session: Optional[Dict[int, int]] = None,
    scale: float = 1.0,
) -> LinaigeDataset:
    """Generate the synthetic LINAIGE dataset.

    Parameters
    ----------
    seed:
        Master seed; every session derives its own child generator from it.
    samples_per_session:
        Optional override of the per-session sample counts (keys are session
        ids 1..5).  Useful for fast tests.
    scale:
        Multiplier applied to the default per-session sizes (e.g. ``0.05``
        for a quick benchmark run).  Ignored for sessions present in
        ``samples_per_session``.

    Returns
    -------
    LinaigeDataset with 5 sessions.  At default settings the dataset holds
    25110 samples, matching the size reported in the paper.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    root = np.random.SeedSequence(seed)
    children = root.spawn(len(_SESSION_PROFILES))
    sessions = []
    for (session_id, profile), child in zip(sorted(_SESSION_PROFILES.items()), children):
        rng = np.random.default_rng(child)
        if samples_per_session and session_id in samples_per_session:
            count = samples_per_session[session_id]
        else:
            count = max(8, int(round(profile["samples"] * scale)))
        sessions.append(_generate_session(session_id, profile, rng, count))
    return LinaigeDataset(sessions=sessions)


def default_class_weights(dataset: LinaigeDataset) -> np.ndarray:
    """Inverse-frequency class weights over the whole dataset, mean-normalized."""
    counts = dataset.class_counts().astype(np.float64)
    counts = np.maximum(counts, 1.0)
    weights = counts.sum() / (NUM_CLASSES * counts)
    return weights / weights.mean()
