"""Datasets: the synthetic LINAIGE generator and input transforms."""

from .linaige import (
    FRAME_SIZE,
    NUM_CLASSES,
    LinaigeDataset,
    Session,
    default_class_weights,
    generate_linaige,
)
from .transforms import MinMaxNormalizer, Standardizer, ambient_removal, stack_frames

__all__ = [
    "FRAME_SIZE",
    "NUM_CLASSES",
    "LinaigeDataset",
    "Session",
    "generate_linaige",
    "default_class_weights",
    "Standardizer",
    "MinMaxNormalizer",
    "ambient_removal",
    "stack_frames",
]
