"""Trainable binarized channel masks for the PIT mask-based DNAS.

PIT couples every output channel ``c`` of a convolutional / linear layer with
a real-valued trainable parameter ``theta_c``.  During the forward pass the
parameter is binarized with a Heaviside step,

    m_c = H(theta_c - threshold) ∈ {0, 1},

and the channel's weights are multiplied by ``m_c``.  The step function has
zero gradient almost everywhere, so the backward pass uses a
Straight-Through Estimator (STE): gradients flow to ``theta_c`` as if the
binarization were the identity.  A "keep-alive" rule guarantees that at
least one channel per layer always survives, so the search can never produce
a disconnected network.
"""

from __future__ import annotations

import numpy as np

from ..nn.module import Parameter

DEFAULT_THRESHOLD = 0.5
DEFAULT_INIT = 1.0


class ChannelMask:
    """A set of per-channel binarized masks for one layer.

    Parameters
    ----------
    num_channels:
        Number of maskable output channels.
    threshold:
        Binarization threshold applied to ``theta``.
    init:
        Initial value of every ``theta`` (above the threshold, so the search
        starts from the full seed network).
    trainable:
        When ``False`` the mask is frozen at its current binary value (used
        when fine-tuning an exported architecture inside the PIT wrapper).
    """

    def __init__(
        self,
        num_channels: int,
        threshold: float = DEFAULT_THRESHOLD,
        init: float = DEFAULT_INIT,
        trainable: bool = True,
    ):
        if num_channels < 1:
            raise ValueError("num_channels must be >= 1")
        self.num_channels = num_channels
        self.threshold = threshold
        self.theta = Parameter(
            np.full(num_channels, float(init)), requires_grad=trainable
        )

    # ------------------------------------------------------------------ #
    def binary(self) -> np.ndarray:
        """Binary mask with the keep-alive rule applied.

        Returns a float array of 0.0 / 1.0 of shape ``(num_channels,)``.
        If every ``theta`` falls below the threshold, the channel with the
        largest ``theta`` is forced to stay alive.
        """
        mask = (self.theta.data >= self.threshold).astype(np.float64)
        if mask.sum() == 0:
            mask[int(np.argmax(self.theta.data))] = 1.0
        return mask

    def active_channels(self) -> np.ndarray:
        """Indices of the surviving channels."""
        return np.flatnonzero(self.binary() > 0)

    def num_active(self) -> int:
        return int(self.binary().sum())

    # ------------------------------------------------------------------ #
    def accumulate_grad(self, grad_per_channel: np.ndarray) -> None:
        """Accumulate a gradient w.r.t. the *binary* mask onto ``theta``.

        The STE passes the gradient through the Heaviside unchanged.
        """
        grad_per_channel = np.asarray(grad_per_channel, dtype=np.float64)
        if grad_per_channel.shape != (self.num_channels,):
            raise ValueError(
                f"expected gradient of shape ({self.num_channels},), "
                f"got {grad_per_channel.shape}"
            )
        if self.theta.requires_grad:
            self.theta.grad += grad_per_channel

    def clip_theta(self, low: float = -1.0, high: float = 2.0) -> None:
        """Clip ``theta`` into a bounded range to keep the search stable.

        Without clipping, channels that are useful early on can accumulate
        arbitrarily large ``theta`` and become impossible to prune later.
        """
        np.clip(self.theta.data, low, high, out=self.theta.data)

    def freeze(self) -> None:
        self.theta.requires_grad = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChannelMask(channels={self.num_channels}, "
            f"active={self.num_active()})"
        )
