"""PIT mask-based differentiable neural architecture search (Sec. III-A1)."""

from .masks import ChannelMask
from .pit_layers import PITConv2d, PITLinear
from .pit import PITModel
from .cost import CostModel, MacsCost, ParamsCost, count_macs, count_params
from .search import ArchitecturePoint, SearchConfig, run_search, search_single_strength

__all__ = [
    "ChannelMask",
    "PITConv2d",
    "PITLinear",
    "PITModel",
    "CostModel",
    "ParamsCost",
    "MacsCost",
    "count_params",
    "count_macs",
    "ArchitecturePoint",
    "SearchConfig",
    "run_search",
    "search_single_strength",
]
