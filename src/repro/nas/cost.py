"""Differentiable hardware-cost models for the PIT search.

The paper's search objective is ``L(W; theta) + lambda * C(theta)`` where
``C`` is a differentiable proxy of either the memory footprint (number of
parameters) or the energy (number of multiply-accumulate operations).

Both proxies factorize per layer as

    size_l = k_l * in_l(theta) * out_l(theta) + out_l(theta)        [params]
    macs_l = k_l * in_l(theta) * out_l(theta) * spatial_l            [MACs]

where ``out_l`` is the (binarized, straight-through) sum of the layer's
channel masks and ``in_l`` is the previous maskable layer's ``out`` times the
Flatten expansion factor.  The gradients w.r.t. each mask element are the
partial derivatives of this product form; they flow to ``theta`` via the STE.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .pit import PITModel


class CostModel:
    """Base class: ``value`` evaluates C(theta), ``accumulate_gradients``
    adds ``scale * dC/dtheta`` onto every mask's theta gradient."""

    name = "cost"

    def _layer_terms(self, model: "PITModel", unit) -> Tuple[float, float, float]:
        """Return ``(k_times_spatial, eff_in, eff_out)`` for one unit."""
        raise NotImplementedError

    def value(self, model: "PITModel") -> float:
        total = 0.0
        for unit in model.units:
            factor, eff_in, eff_out = self._layer_terms(model, unit)
            total += factor * eff_in * eff_out + self._bias_term(unit, eff_out)
        return float(total)

    def _bias_term(self, unit, eff_out: float) -> float:
        return 0.0

    def accumulate_gradients(self, model: "PITModel", scale: float = 1.0) -> None:
        """Accumulate ``scale * dC/dtheta`` on every trainable mask."""
        for ui, unit in enumerate(model.units):
            factor, eff_in, eff_out = self._layer_terms(model, unit)
            # Own-mask contribution: dC/d out_l.
            if unit.mask is not None:
                grad_own = factor * eff_in + self._bias_grad(unit)
                unit.mask.accumulate_grad(
                    np.full(unit.mask.num_channels, scale * grad_own)
                )
            # Contribution to the previous layer's mask through eff_in.
            if unit.prev is not None:
                prev = model.units[unit.prev]
                if prev.mask is not None:
                    grad_prev = factor * unit.in_expansion * eff_out
                    prev.mask.accumulate_grad(
                        np.full(prev.mask.num_channels, scale * grad_prev)
                    )

    def _bias_grad(self, unit) -> float:
        return 0.0

    def regularizer(self, strength: float) -> Callable:
        """Build the ``extra_loss`` callback expected by the training loop."""

        def extra_loss(model: "PITModel"):
            penalty = strength * self.value(model)

            def apply_grads() -> None:
                self.accumulate_gradients(model, scale=strength)

            return penalty, apply_grads

        return extra_loss


class ParamsCost(CostModel):
    """Number of parameters (weights + biases): the paper's memory proxy."""

    name = "params"

    def _layer_terms(self, model, unit):
        eff_out = unit.effective_out()
        eff_in = model.effective_in(unit)
        return float(unit.kernel_elems), eff_in, eff_out

    def _bias_term(self, unit, eff_out: float) -> float:
        has_bias = getattr(unit.layer, "seed", unit.layer).bias is not None
        return eff_out if has_bias else 0.0

    def _bias_grad(self, unit) -> float:
        has_bias = getattr(unit.layer, "seed", unit.layer).bias is not None
        return 1.0 if has_bias else 0.0


class MacsCost(CostModel):
    """Multiply-accumulate operations per inference: the paper's energy proxy."""

    name = "macs"

    def _layer_terms(self, model, unit):
        eff_out = unit.effective_out()
        eff_in = model.effective_in(unit)
        return float(unit.kernel_elems * unit.out_spatial), eff_in, eff_out


def count_params(model) -> int:
    """Exact parameter count of a plain network (weights + biases of conv and
    linear layers; BatchNorm parameters are excluded because they are folded
    before deployment, matching how the paper reports memory)."""
    from ..nn.layers import Conv2d, Linear

    total = 0
    for module in model.modules():
        if isinstance(module, (Conv2d, Linear)):
            total += module.weight.size
            if module.bias is not None:
                total += module.bias.size
    return int(total)


def count_macs(model, input_shape: Tuple[int, int, int] = (1, 8, 8)) -> int:
    """Exact MAC count of a plain network for one input frame."""
    from ..nn.functional import conv_output_shape
    from ..nn.layers import Conv2d, Linear, MaxPool2d

    total = 0
    spatial = (input_shape[1], input_shape[2])
    for module in model.modules():
        if isinstance(module, Conv2d):
            total += module.macs(*spatial)
            spatial = module.output_shape(*spatial)
        elif isinstance(module, MaxPool2d):
            spatial = conv_output_shape(
                spatial[0], spatial[1], module.kernel_size, module.stride, 0
            )
        elif isinstance(module, Linear):
            total += module.macs()
    return int(total)
