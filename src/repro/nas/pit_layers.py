"""PIT-searchable layers.

``PITConv2d`` / ``PITLinear`` wrap a seed :class:`~repro.nn.layers.Conv2d` /
:class:`~repro.nn.layers.Linear` and multiply every output channel by a
binarized trainable mask (Eq. 1 of the paper):

    W_theta^c = W^c * H(theta_c)

Gradients w.r.t. the weights see the mask as a constant; gradients w.r.t.
``theta`` are obtained with a straight-through estimator from the gradient of
the loss w.r.t. the masked weights:

    dL/dtheta_c = sum_over_elements( dL/dW_theta^c * W^c )
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import functional as F
from ..nn.layers import Conv2d, Linear
from ..nn.module import Module
from .masks import ChannelMask


class PITConv2d(Module):
    """A convolution whose output channels can be pruned by the DNAS."""

    def __init__(self, seed_layer: Conv2d, mask: Optional[ChannelMask] = None):
        super().__init__()
        self.seed = seed_layer
        self.mask = mask if mask is not None else ChannelMask(seed_layer.out_channels)
        if self.mask.num_channels != seed_layer.out_channels:
            raise ValueError(
                f"mask has {self.mask.num_channels} channels, layer has "
                f"{seed_layer.out_channels}"
            )
        self._cache: dict = {}

    # Convenience pass-throughs used by the cost model and the exporter.
    @property
    def in_channels(self) -> int:
        return self.seed.in_channels

    @property
    def out_channels(self) -> int:
        return self.seed.out_channels

    @property
    def kernel_size(self):
        return self.seed.kernel_size

    @property
    def stride(self):
        return self.seed.stride

    @property
    def padding(self):
        return self.seed.padding

    def forward(self, x: np.ndarray) -> np.ndarray:
        binary = self.mask.binary()
        masked_weight = self.seed.weight.data * binary[:, None, None, None]
        bias = self.seed.bias.data * binary if self.seed.bias is not None else None
        out, cache = F.conv2d_forward(
            x, masked_weight, bias, self.seed.stride, self.seed.padding
        )
        cache["binary"] = binary
        self._cache = cache
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        binary = self._cache["binary"]
        grad_x, grad_w_masked, grad_b_masked = F.conv2d_backward(grad_output, self._cache)
        # Weight gradient: only surviving channels receive updates.
        self.seed.weight.grad += grad_w_masked * binary[:, None, None, None]
        if self.seed.bias is not None and grad_b_masked is not None:
            self.seed.bias.grad += grad_b_masked * binary
        # STE gradient for theta: dL/dtheta_c = <dL/dW_theta^c, W^c>.
        theta_grad = np.einsum(
            "oihw,oihw->o", grad_w_masked, self.seed.weight.data
        )
        if self.seed.bias is not None and grad_b_masked is not None:
            theta_grad += grad_b_masked * self.seed.bias.data
        self.mask.accumulate_grad(theta_grad)
        return grad_x

    def output_shape(self, in_h: int, in_w: int):
        return self.seed.output_shape(in_h, in_w)


class PITLinear(Module):
    """A fully-connected layer whose output features can be pruned."""

    def __init__(self, seed_layer: Linear, mask: Optional[ChannelMask] = None):
        super().__init__()
        self.seed = seed_layer
        self.mask = mask if mask is not None else ChannelMask(seed_layer.out_features)
        if self.mask.num_channels != seed_layer.out_features:
            raise ValueError(
                f"mask has {self.mask.num_channels} features, layer has "
                f"{seed_layer.out_features}"
            )
        self._cache: dict = {}

    @property
    def in_features(self) -> int:
        return self.seed.in_features

    @property
    def out_features(self) -> int:
        return self.seed.out_features

    def forward(self, x: np.ndarray) -> np.ndarray:
        binary = self.mask.binary()
        masked_weight = self.seed.weight.data * binary[:, None]
        bias = self.seed.bias.data * binary if self.seed.bias is not None else None
        out, cache = F.linear_forward(x, masked_weight, bias)
        cache["binary"] = binary
        self._cache = cache
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        binary = self._cache["binary"]
        grad_x, grad_w_masked, grad_b_masked = F.linear_backward(grad_output, self._cache)
        self.seed.weight.grad += grad_w_masked * binary[:, None]
        if self.seed.bias is not None and grad_b_masked is not None:
            self.seed.bias.grad += grad_b_masked * binary
        theta_grad = np.einsum("oi,oi->o", grad_w_masked, self.seed.weight.data)
        if self.seed.bias is not None and grad_b_masked is not None:
            theta_grad += grad_b_masked * self.seed.bias.data
        self.mask.accumulate_grad(theta_grad)
        return grad_x
