"""Lambda-sweep search driver.

Running the PIT DNAS once with a given regularization strength ``lambda``
yields a single architecture; sweeping ``lambda`` over a (log-spaced) range
produces the accuracy-vs-cost front of Fig. 5 (grey curve).  This module
implements that sweep: for each strength it trains the searchable model,
exports the discovered sub-architecture, fine-tunes it and records task
performance plus exact parameter / MAC counts.

The per-lambda trials are fully independent — each derives its own RNG from
a spawned :class:`numpy.random.SeedSequence` child — so the sweep runs as a
batch of task units on a :mod:`repro.parallel` executor (``executor=
"process"`` distributes trials over a worker pool with bit-identical
results) with optional result caching keyed by (seed, config, data).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..nn.data import ArrayDataset
from ..nn.losses import CrossEntropyLoss
from ..nn.module import Sequential
from ..nn.optim import Adam
from ..nn.trainer import TrainConfig, evaluate_bas, train_model
from .cost import CostModel, MacsCost, ParamsCost, count_macs, count_params
from .pit import PITModel


class _TwoGroupAdam:
    """Adam over two parameter groups with independent learning rates.

    The NAS mask parameters ``theta`` live on a different scale than the
    network weights (they only need to cross a fixed binarization threshold),
    so giving them a larger learning rate makes the search converge within
    the reduced epoch budgets used in this reproduction.
    """

    def __init__(self, weight_params, theta_params, lr: float, theta_lr: float):
        self._optimizers = []
        if weight_params:
            self._optimizers.append(Adam(weight_params, lr=lr))
        if theta_params:
            self._optimizers.append(Adam(theta_params, lr=theta_lr))
        if not self._optimizers:
            raise ValueError("no parameters to optimize")

    def zero_grad(self) -> None:
        for opt in self._optimizers:
            opt.zero_grad()

    def step(self) -> None:
        for opt in self._optimizers:
            opt.step()


@dataclass
class SearchConfig:
    """Configuration of one full lambda sweep.

    The paper trains for 500 epochs; the defaults here are scaled down so the
    whole sweep stays tractable on a laptop-class CPU with the numpy
    framework.  The relative split between warm-up (weights only), search
    (weights + masks + cost) and fine-tuning follows common DNAS practice.
    """

    lambdas: Sequence[float] = (1e-7, 1e-6, 1e-5, 1e-4)
    cost: str = "params"
    warmup_epochs: int = 2
    search_epochs: int = 8
    finetune_epochs: int = 8
    batch_size: int = 128
    learning_rate: float = 1e-3
    theta_learning_rate: float = 5e-2
    input_shape: tuple = (1, 8, 8)
    verbose: bool = False

    def cost_model(self) -> CostModel:
        if self.cost == "params":
            return ParamsCost()
        if self.cost == "macs":
            return MacsCost()
        raise ValueError(f"unknown cost metric {self.cost!r} (use 'params' or 'macs')")


@dataclass
class ArchitecturePoint:
    """One discovered architecture and its measured metrics."""

    strength: float
    params: int
    macs: int
    bas: float
    bas_std: float = 0.0
    arch_summary: List[dict] = field(default_factory=list)
    model: Optional[Sequential] = None

    @property
    def memory_kb(self) -> float:
        """Memory footprint in kB assuming FLOAT32 storage (4 B / parameter)."""
        return self.params * 4 / 1024.0

    def describe(self) -> str:
        channels = "-".join(str(u["out"]) for u in self.arch_summary)
        return (
            f"lambda={self.strength:g} arch=[{channels}] params={self.params} "
            f"macs={self.macs} bas={self.bas:.3f}"
        )


def search_single_strength(
    seed_builder: Callable[[np.random.Generator], Sequential],
    train_set: ArrayDataset,
    val_set: ArrayDataset,
    strength: float,
    config: SearchConfig,
    loss_fn: Optional[CrossEntropyLoss] = None,
    rng: Optional[np.random.Generator] = None,
) -> ArchitecturePoint:
    """Run the PIT search for one value of the regularization strength."""
    rng = rng if rng is not None else np.random.default_rng(0)
    loss_fn = loss_fn or CrossEntropyLoss()
    cost_model = config.cost_model()

    pit = PITModel(seed_builder(rng), input_shape=config.input_shape)

    # Phase 1: warm-up — train weights only, masks frozen at 1.
    if config.warmup_epochs > 0:
        for theta in pit.theta_parameters():
            theta.requires_grad = False
        train_model(
            pit,
            train_set,
            config=TrainConfig(
                epochs=config.warmup_epochs,
                batch_size=config.batch_size,
                learning_rate=config.learning_rate,
                verbose=config.verbose,
            ),
            loss_fn=loss_fn,
            rng=rng,
        )
        for theta in pit.theta_parameters():
            theta.requires_grad = True

    # Phase 2: joint search — weights and masks, task loss + lambda * cost.
    def clip_callback(_epoch: int, model: PITModel) -> None:
        model.clip_thetas()

    search_optimizer = _TwoGroupAdam(
        pit.weight_parameters(),
        pit.theta_parameters(),
        lr=config.learning_rate,
        theta_lr=config.theta_learning_rate,
    )
    train_model(
        pit,
        train_set,
        config=TrainConfig(
            epochs=config.search_epochs,
            batch_size=config.batch_size,
            learning_rate=config.learning_rate,
            verbose=config.verbose,
        ),
        loss_fn=loss_fn,
        optimizer=search_optimizer,
        rng=rng,
        extra_loss=cost_model.regularizer(strength),
        epoch_callback=clip_callback,
    )

    # Phase 3: export and fine-tune the discovered architecture.
    exported = pit.export()
    train_model(
        exported,
        train_set,
        val_set=val_set,
        config=TrainConfig(
            epochs=config.finetune_epochs,
            batch_size=config.batch_size,
            learning_rate=config.learning_rate,
            verbose=config.verbose,
        ),
        loss_fn=loss_fn,
        rng=rng,
    )

    bas = evaluate_bas(exported, val_set)
    return ArchitecturePoint(
        strength=strength,
        params=count_params(exported),
        macs=count_macs(exported, config.input_shape),
        bas=bas,
        arch_summary=pit.arch_summary(),
        model=exported,
    )


def _search_task(payload) -> ArchitecturePoint:
    """One sweep trial as a picklable task unit (module-level for pickling).

    ``payload`` is ``(seed_builder, train_set, val_set, strength, config,
    loss_fn, seed_seq)``; the trial's RNG is derived here, inside the worker,
    from its explicitly spawned :class:`~numpy.random.SeedSequence` child so
    results do not depend on which process (or in which order) the trial ran.
    """
    builder, train_set, val_set, strength, config, loss_fn, seed_seq = payload
    rng = np.random.default_rng(seed_seq)
    point = search_single_strength(
        builder, train_set, val_set, strength, config, loss_fn, rng
    )
    if point.model is not None:
        point.model.clear_caches()  # ship parameters, not activation buffers
    return point


def run_search(
    seed_builder: Callable[[np.random.Generator], Sequential],
    train_set: ArrayDataset,
    val_set: ArrayDataset,
    config: Optional[SearchConfig] = None,
    loss_fn: Optional[CrossEntropyLoss] = None,
    seed: int = 0,
    executor=None,
    max_workers: Optional[int] = None,
    cache=None,
) -> List[ArchitecturePoint]:
    """Sweep the regularization strength and return one point per lambda.

    Points are returned sorted by increasing parameter count.

    Parameters
    ----------
    executor:
        ``"serial"`` (default), ``"process"`` or a :mod:`repro.parallel`
        executor instance; per-lambda trials are independent task units, so
        a process pool yields bit-identical points for any ``max_workers``.
    cache:
        Optional :class:`repro.parallel.ResultCache`; trials whose (seed,
        config, dataset content) key is already stored are not re-trained.
    """
    from ..parallel import executor_is_owned, fingerprint, get_executor, run_tasks

    config = config or SearchConfig()
    owned = executor_is_owned(executor)
    executor = get_executor(executor, max_workers)
    # Datasets go into shared memory once (a no-op for serial/thread
    # executors); task payloads then carry descriptors, not array bytes.
    # Shared views are content-identical, so fingerprints don't change.
    train_set = executor.share_dataset(train_set)
    val_set = executor.share_dataset(val_set)
    lambdas = list(config.lambdas)
    children = np.random.SeedSequence(seed).spawn(len(lambdas))
    payloads = [
        (seed_builder, train_set, val_set, strength, config, loss_fn, child)
        for strength, child in zip(lambdas, children)
    ]
    keys = None
    if cache is not None:
        # Excluded from the per-trial key: `verbose` (cosmetic) and the
        # `lambdas` tuple itself — a trial depends only on its own strength
        # and spawned seed child (SeedSequence.spawn is prefix-stable), so
        # extending the sweep must not invalidate the already-trained points.
        hashed_config = replace(config, verbose=False, lambdas=())
        keys = [
            fingerprint(
                "nas-search", seed, child, strength, hashed_config,
                seed_builder, train_set, val_set, loss_fn,
            )
            for strength, child in zip(lambdas, children)
        ]
    try:
        points = run_tasks(
            _search_task,
            payloads,
            executor=executor,
            cache=cache,
            keys=keys,
        )
    finally:
        if owned:
            executor.close()
    if config.verbose:
        for point in points:
            print(point.describe())
    return sorted(points, key=lambda p: p.params)
