"""The PIT searchable model: seed conversion and architecture export.

``PITModel`` takes a seed :class:`~repro.nn.module.Sequential` network (the
"blueprint" of the paper, Sec. III-A1), replaces every convolutional / linear
layer except the final classifier with its PIT-wrapped version, and records
the structural metadata the differentiable cost models need (kernel sizes,
output spatial sizes, and how channels expand through ``Flatten``).

After the search, :meth:`PITModel.export` materializes the discovered
sub-architecture as a plain ``Sequential`` with pruned channels physically
removed, ready for quantization-aware training and deployment.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..nn.layers import BatchNorm2d, Conv2d, Dropout, Flatten, Linear, MaxPool2d, ReLU
from ..nn.module import Identity, Module, Sequential
from .masks import ChannelMask
from .pit_layers import PITConv2d, PITLinear


@dataclass
class _Unit:
    """Metadata about one maskable (or final) conv/linear layer.

    Attributes
    ----------
    layer:
        The PIT-wrapped layer, or the plain final layer.
    kind:
        ``"conv"`` or ``"linear"``.
    index:
        Position inside the wrapped Sequential.
    bn_index:
        Position of the BatchNorm that follows this layer, if any.
    kernel_elems:
        Weight elements per (input, output) channel pair (kh*kw or 1).
    out_spatial:
        Number of output spatial positions (1 for linear layers).
    in_expansion:
        How many of this layer's input features each output channel of the
        previous maskable layer produces (e.g. 16 for a linear layer fed by a
        4x4 feature map through ``Flatten``).
    prev:
        Index (into the unit list) of the previous maskable unit, or ``None``
        when this layer reads the network input.
    fixed_in:
        Input channel/feature count when ``prev`` is ``None``.
    maskable:
        Whether this unit owns a trainable mask (the final classifier does
        not).
    """

    layer: Module
    kind: str
    index: int
    bn_index: Optional[int]
    kernel_elems: int
    out_spatial: int
    in_expansion: int
    prev: Optional[int]
    fixed_in: int
    maskable: bool

    @property
    def mask(self) -> Optional[ChannelMask]:
        if isinstance(self.layer, (PITConv2d, PITLinear)):
            return self.layer.mask
        return None

    def out_units(self) -> int:
        if isinstance(self.layer, (PITConv2d, Conv2d)):
            return self.layer.out_channels
        return self.layer.out_features

    def effective_out(self) -> float:
        mask = self.mask
        if mask is None:
            return float(self.out_units())
        return float(mask.binary().sum())


class PITModel(Module):
    """A seed network made searchable with PIT channel masks."""

    def __init__(
        self,
        seed: Sequential,
        input_shape: Tuple[int, int, int] = (1, 8, 8),
        prune_last: bool = False,
    ):
        super().__init__()
        self.input_shape = tuple(input_shape)
        self.prune_last = prune_last
        self.network, self.units = self._convert(seed)

    # ------------------------------------------------------------------ #
    # Seed conversion
    # ------------------------------------------------------------------ #
    def _convert(self, seed: Sequential) -> Tuple[Sequential, List[_Unit]]:
        layers = list(seed)
        last_prunable = max(
            (i for i, l in enumerate(layers) if isinstance(l, (Conv2d, Linear))),
            default=None,
        )
        if last_prunable is None:
            raise ValueError("seed network has no convolutional or linear layers")

        wrapped: List[Module] = []
        units: List[_Unit] = []
        # Trace spatial shape with a dummy input (channels, h, w).
        c, h, w = self.input_shape
        spatial: Tuple[int, int] = (h, w)
        flat_expansion = 1  # features produced per channel when flattening
        prev_unit: Optional[int] = None

        for i, layer in enumerate(layers):
            if isinstance(layer, Conv2d):
                out_h, out_w = layer.output_shape(*spatial)
                is_final = i == last_prunable and not self.prune_last
                new_layer: Module = layer if is_final else PITConv2d(copy.deepcopy(layer))
                wrapped.append(new_layer)
                units.append(
                    _Unit(
                        layer=new_layer,
                        kind="conv",
                        index=len(wrapped) - 1,
                        bn_index=None,
                        kernel_elems=layer.kernel_size[0] * layer.kernel_size[1],
                        out_spatial=out_h * out_w,
                        in_expansion=1,
                        prev=prev_unit,
                        fixed_in=layer.in_channels,
                        maskable=not is_final,
                    )
                )
                prev_unit = len(units) - 1
                spatial = (out_h, out_w)
                flat_expansion = 1
            elif isinstance(layer, Linear):
                is_final = i == last_prunable and not self.prune_last
                new_layer = layer if is_final else PITLinear(copy.deepcopy(layer))
                wrapped.append(new_layer)
                units.append(
                    _Unit(
                        layer=new_layer,
                        kind="linear",
                        index=len(wrapped) - 1,
                        bn_index=None,
                        kernel_elems=1,
                        out_spatial=1,
                        in_expansion=flat_expansion,
                        prev=prev_unit,
                        fixed_in=layer.in_features,
                        maskable=not is_final,
                    )
                )
                prev_unit = len(units) - 1
                flat_expansion = 1
            elif isinstance(layer, BatchNorm2d):
                wrapped.append(copy.deepcopy(layer))
                if units and units[-1].kind == "conv" and units[-1].bn_index is None:
                    units[-1].bn_index = len(wrapped) - 1
            elif isinstance(layer, MaxPool2d):
                wrapped.append(copy.deepcopy(layer))
                from ..nn.functional import conv_output_shape

                spatial = conv_output_shape(
                    spatial[0], spatial[1], layer.kernel_size, layer.stride, 0
                )
                flat_expansion = 1
            elif isinstance(layer, Flatten):
                wrapped.append(Flatten())
                flat_expansion = spatial[0] * spatial[1]
            elif isinstance(layer, (ReLU, Dropout, Identity)):
                wrapped.append(copy.deepcopy(layer))
            else:
                raise TypeError(
                    f"unsupported layer type in seed network: {type(layer).__name__}"
                )
        return Sequential(*wrapped), units

    # ------------------------------------------------------------------ #
    # Module interface
    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.network(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.network.backward(grad_output)

    # ------------------------------------------------------------------ #
    # Mask helpers
    # ------------------------------------------------------------------ #
    def masks(self) -> List[ChannelMask]:
        return [u.mask for u in self.units if u.mask is not None]

    def theta_parameters(self):
        return [m.theta for m in self.masks()]

    def weight_parameters(self):
        thetas = {id(t) for t in self.theta_parameters()}
        return [p for p in self.parameters() if id(p) not in thetas]

    def clip_thetas(self) -> None:
        for mask in self.masks():
            mask.clip_theta()

    def freeze_masks(self) -> None:
        for mask in self.masks():
            mask.freeze()

    def effective_in(self, unit: _Unit) -> float:
        """Effective number of input features of a unit given current masks."""
        if unit.prev is None:
            return float(unit.fixed_in)
        return self.units[unit.prev].effective_out() * unit.in_expansion

    # ------------------------------------------------------------------ #
    # Architecture summary and export
    # ------------------------------------------------------------------ #
    def arch_summary(self) -> List[dict]:
        """Per-layer description of the currently selected sub-architecture."""
        summary = []
        for u in self.units:
            summary.append(
                {
                    "kind": u.kind,
                    "in": int(round(self.effective_in(u))),
                    "out": int(round(u.effective_out())),
                    "seed_out": u.out_units(),
                    "maskable": u.maskable,
                }
            )
        return summary

    def export(self) -> Sequential:
        """Materialize the discovered architecture as a plain ``Sequential``.

        Pruned channels are physically removed from the weight tensors and
        from any BatchNorm tracking them; surviving weights are copied so the
        exported model starts from the searched solution (warm start before
        fine-tuning / QAT).
        """
        keep_per_unit = {}
        for ui, u in enumerate(self.units):
            if u.mask is not None:
                keep_per_unit[ui] = u.mask.active_channels()
            else:
                keep_per_unit[ui] = np.arange(u.out_units())

        exported: List[Module] = []
        unit_by_index = {u.index: (ui, u) for ui, u in enumerate(self.units)}
        bn_owner = {u.bn_index: ui for ui, u in enumerate(self.units) if u.bn_index is not None}

        for idx, layer in enumerate(self.network):
            if idx in unit_by_index:
                ui, u = unit_by_index[idx]
                keep_out = keep_per_unit[ui]
                if u.prev is None:
                    keep_in = np.arange(u.fixed_in)
                else:
                    prev_keep = keep_per_unit[u.prev]
                    if u.in_expansion == 1:
                        keep_in = prev_keep
                    else:
                        # A linear layer after Flatten: each surviving channel
                        # contributes `in_expansion` consecutive features.
                        keep_in = np.concatenate(
                            [
                                np.arange(c * u.in_expansion, (c + 1) * u.in_expansion)
                                for c in prev_keep
                            ]
                        )
                seed_layer = u.layer.seed if isinstance(u.layer, (PITConv2d, PITLinear)) else u.layer
                if u.kind == "conv":
                    new = Conv2d(
                        in_channels=len(keep_in),
                        out_channels=len(keep_out),
                        kernel_size=seed_layer.kernel_size,
                        stride=seed_layer.stride,
                        padding=seed_layer.padding,
                        bias=seed_layer.bias is not None,
                    )
                    new.weight.data = seed_layer.weight.data[np.ix_(keep_out, keep_in)].copy()
                    if seed_layer.bias is not None:
                        new.bias.data = seed_layer.bias.data[keep_out].copy()
                else:
                    new = Linear(
                        in_features=len(keep_in),
                        out_features=len(keep_out),
                        bias=seed_layer.bias is not None,
                    )
                    new.weight.data = seed_layer.weight.data[np.ix_(keep_out, keep_in)].copy()
                    if seed_layer.bias is not None:
                        new.bias.data = seed_layer.bias.data[keep_out].copy()
                exported.append(new)
            elif idx in bn_owner:
                ui = bn_owner[idx]
                keep = keep_per_unit[ui]
                old_bn: BatchNorm2d = self.network[idx]  # type: ignore[assignment]
                new_bn = BatchNorm2d(len(keep), eps=old_bn.eps, momentum=old_bn.momentum)
                new_bn.gamma.data = old_bn.gamma.data[keep].copy()
                new_bn.beta.data = old_bn.beta.data[keep].copy()
                new_bn.running_mean = old_bn.running_mean[keep].copy()
                new_bn.running_var = old_bn.running_var[keep].copy()
                exported.append(new_bn)
            else:
                exported.append(copy.deepcopy(layer))
        return Sequential(*exported)
