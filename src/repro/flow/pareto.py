"""Pareto-front utilities over (accuracy, cost) points.

The flow produces clouds of candidate models in the 3D space of balanced
accuracy, memory footprint and number of MACs; the paper's figures report
2D Pareto fronts (BAS vs memory, BAS vs MACs).  These helpers extract and
merge such fronts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")


@dataclass
class ParetoPoint:
    """A generic point: higher ``score`` is better, lower ``cost`` is better."""

    score: float
    cost: float
    payload: object = None
    label: str = ""


def is_dominated(point: ParetoPoint, others: Iterable[ParetoPoint]) -> bool:
    """A point is dominated if some other point is at least as good on both
    axes and strictly better on at least one."""
    for other in others:
        if other is point:
            continue
        if (
            other.score >= point.score
            and other.cost <= point.cost
            and (other.score > point.score or other.cost < point.cost)
        ):
            return True
    return False


def pareto_front(points: Sequence[ParetoPoint]) -> List[ParetoPoint]:
    """Non-dominated subset, sorted by increasing cost."""
    front = [p for p in points if not is_dominated(p, points)]
    return sorted(front, key=lambda p: (p.cost, -p.score))


def merge_fronts(*fronts: Sequence[ParetoPoint]) -> List[ParetoPoint]:
    """Merge several fronts and re-extract the global non-dominated set."""
    merged: List[ParetoPoint] = []
    for front in fronts:
        merged.extend(front)
    return pareto_front(merged)


def points_from(
    items: Sequence[T],
    score: Callable[[T], float],
    cost: Callable[[T], float],
    label: Callable[[T], str] = lambda item: "",
) -> List[ParetoPoint]:
    """Wrap arbitrary objects into :class:`ParetoPoint` records."""
    return [
        ParetoPoint(score=score(i), cost=cost(i), payload=i, label=label(i)) for i in items
    ]


def best_at_cost_budget(
    front: Sequence[ParetoPoint], max_cost: float
) -> Optional[ParetoPoint]:
    """Highest-score point whose cost does not exceed ``max_cost``."""
    eligible = [p for p in front if p.cost <= max_cost]
    if not eligible:
        return None
    return max(eligible, key=lambda p: p.score)


def cost_at_score_floor(
    front: Sequence[ParetoPoint], min_score: float
) -> Optional[ParetoPoint]:
    """Cheapest point whose score is at least ``min_score`` (the paper's
    "iso-accuracy" comparisons)."""
    eligible = [p for p in front if p.score >= min_score]
    if not eligible:
        return None
    return min(eligible, key=lambda p: p.cost)


def reduction_factor(
    ours: Sequence[ParetoPoint], reference: Sequence[ParetoPoint], min_score: float
) -> Optional[float]:
    """Cost reduction of our cheapest point vs the reference's cheapest point
    at the same accuracy floor (e.g. "4.2x smaller at iso-BAS")."""
    our_point = cost_at_score_floor(ours, min_score)
    ref_point = cost_at_score_floor(reference, min_score)
    if our_point is None or ref_point is None or our_point.cost == 0:
        return None
    return ref_point.cost / our_point.cost
