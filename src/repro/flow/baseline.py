"""Hand-tuned state-of-the-art baseline (the manual exploration of [4]).

The paper's Fig. 7 compares the automated flow against the best manual
results of Xie et al. [4], which explored a coarse grid of CNN
configurations by hand (channel counts chosen from a small set of
"round" values, one or two convolutional layers) and deployed them at 8 bit
on a commercial MCU.  This module reproduces that baseline: it trains the
coarse grid with the same harness and reports its accuracy-vs-cost points,
so the comparison measures exactly what the paper measures — fine-grained
automated search vs coarse manual search from the same model family.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..nas.cost import count_macs, count_params
from ..nn.data import ArrayDataset
from ..nn.losses import CrossEntropyLoss
from ..nn.module import Sequential
from ..nn.trainer import TrainConfig, evaluate_bas, train_model
from .seeds import build_seed_cnn

# The coarse manual grid: "round" channel counts only, as a designer would
# try by hand.  The largest configuration (64, 64, 64) is the seed of our NAS.
MANUAL_GRID: Tuple[Tuple[Tuple[int, int], int], ...] = (
    ((8, 8), 16),
    ((8, 16), 32),
    ((16, 16), 32),
    ((16, 32), 32),
    ((32, 32), 64),
    ((32, 64), 64),
    ((64, 64), 64),
)


@dataclass
class BaselinePoint:
    """One hand-tuned configuration and its measured metrics."""

    conv_channels: Tuple[int, int]
    hidden_features: int
    params: int
    macs: int
    bas: float
    model: Optional[Sequential] = None

    @property
    def memory_bytes_int8(self) -> float:
        """The baseline of [4] deploys at uniform INT8: 1 byte per parameter."""
        return float(self.params)

    @property
    def memory_kb(self) -> float:
        return self.memory_bytes_int8 / 1024.0

    def describe(self) -> str:
        return (
            f"manual {self.conv_channels}+{self.hidden_features} "
            f"params={self.params} macs={self.macs} bas={self.bas:.3f}"
        )


def train_manual_baseline(
    train_set: ArrayDataset,
    val_set: ArrayDataset,
    grid: Sequence[Tuple[Tuple[int, int], int]] = MANUAL_GRID,
    config: Optional[TrainConfig] = None,
    loss_fn: Optional[CrossEntropyLoss] = None,
    seed: int = 0,
    input_shape: Tuple[int, int, int] = (1, 8, 8),
) -> List[BaselinePoint]:
    """Train every configuration of the manual grid and measure it.

    Returns points sorted by parameter count.
    """
    config = config or TrainConfig(epochs=10)
    root = np.random.SeedSequence(seed)
    children = root.spawn(len(list(grid)))
    points: List[BaselinePoint] = []
    for (conv_channels, hidden), child in zip(grid, children):
        rng = np.random.default_rng(child)
        model = build_seed_cnn(
            rng,
            conv_channels=conv_channels,
            hidden_features=hidden,
            input_size=input_shape[1],
            in_channels=input_shape[0],
        )
        train_model(model, train_set, val_set=val_set, config=config, loss_fn=loss_fn, rng=rng)
        points.append(
            BaselinePoint(
                conv_channels=tuple(conv_channels),
                hidden_features=hidden,
                params=count_params(model),
                macs=count_macs(model, input_shape),
                bas=evaluate_bas(model, val_set),
                model=model,
            )
        )
    return sorted(points, key=lambda p: p.params)
