"""Full-stack optimization flow orchestration (Fig. 1)."""

from .seeds import SeedBuilder, build_seed_cnn, seed_builder
from .pareto import (
    ParetoPoint,
    best_at_cost_budget,
    cost_at_score_floor,
    is_dominated,
    merge_fronts,
    pareto_front,
    points_from,
    reduction_factor,
)
from .baseline import MANUAL_GRID, BaselinePoint, train_manual_baseline
from .pipeline import (
    FlowConfig,
    FlowPoint,
    FlowResult,
    OptimizationFlow,
    Preprocessor,
)

__all__ = [
    "SeedBuilder",
    "build_seed_cnn",
    "seed_builder",
    "ParetoPoint",
    "pareto_front",
    "merge_fronts",
    "points_from",
    "is_dominated",
    "best_at_cost_budget",
    "cost_at_score_floor",
    "reduction_factor",
    "MANUAL_GRID",
    "BaselinePoint",
    "train_manual_baseline",
    "FlowConfig",
    "FlowPoint",
    "FlowResult",
    "OptimizationFlow",
    "Preprocessor",
]
