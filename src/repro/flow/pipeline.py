"""Full-stack optimization flow (Fig. 1 of the paper).

The :class:`OptimizationFlow` chains the four stages:

1. **Architecture optimization** — PIT DNAS lambda sweep starting from the
   seed CNN, producing FLOAT32 architectures of decreasing size.
2. **Precision optimization** — exhaustive INT4/INT8 mixed-precision QAT of
   the Pareto-optimal architectures.
3. **Post-processing** — sliding-window majority voting applied to the test
   sessions' temporally ordered predictions.
4. **Deployment** — lowering to the integer runtime and compiling, through
   the :mod:`repro.engine` façade, for the deployment targets listed in
   :attr:`FlowConfig.deploy_targets` (Table-I reports per selected model).

Every trainable or simulated unit of the flow (the seed training, each
per-lambda PIT search, each per-scheme QAT run, each per-target deployment)
runs as a :mod:`repro.parallel` task unit with an explicitly derived RNG
stream, so :attr:`FlowConfig.executor` switches the whole flow between a
serial loop and a process pool with **bit-identical** results, and
:attr:`FlowConfig.cache_dir` lets repeated runs replay already-trained
points from the content-addressed result cache.

Also provided are the input pre-processing convention used throughout the
reproduction (per-frame ambient removal + global standardization fitted on
training data) and the Table-I model selection rules (Top / -5% / Mini).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..datasets.linaige import LinaigeDataset, NUM_CLASSES, Session
from ..datasets.transforms import Standardizer, ambient_removal
from ..deploy.report import DeploymentReport
from ..engine import compile as compile_engine
from ..nas.search import ArchitecturePoint, SearchConfig, run_search
from ..nn.data import ArrayDataset
from ..nn.losses import CrossEntropyLoss, balanced_class_weights
from ..nn.module import Sequential
from ..postproc.majority import majority_filter
from ..quant.mixed import QATConfig, QuantizedPoint, explore_mixed_precision
from ..quant.quantize import PrecisionScheme
from .pareto import ParetoPoint, pareto_front, points_from
from .seeds import seed_builder


@dataclass
class Preprocessor:
    """The input pre-processing used across the whole flow.

    Frames go through per-frame ambient (median) removal — making the
    network robust to the per-session ambient temperature shift — followed
    by a global standardization whose statistics are fitted on training data
    only.
    """

    standardizer: Standardizer = field(default_factory=Standardizer)

    @classmethod
    def fit(cls, frames: np.ndarray) -> "Preprocessor":
        removed = ambient_removal(frames)
        return cls(standardizer=Standardizer.fit(removed))

    def __call__(self, frames: np.ndarray) -> np.ndarray:
        return self.standardizer(ambient_removal(frames))


def _seed_task(payload) -> Tuple[float, float, int]:
    """Stage-0 task unit: train + measure the seed CNN (the Fig.-5 star).

    Returns ``(bas, memory_bytes, macs)``.  Module-level so the process
    executor can pickle it; the RNG is rebuilt in the worker from the flow
    seed, matching the serial path bit-for-bit.
    """
    seed_channels, seed_hidden, train_set, test_set, epochs, batch_size, loss_fn, seed = payload
    from ..nas.cost import count_macs, count_params
    from ..nn.trainer import TrainConfig, evaluate_bas, train_model

    rng = np.random.default_rng(seed)
    model = seed_builder(seed_channels, seed_hidden)(rng)
    train_model(
        model,
        train_set,
        val_set=test_set,
        config=TrainConfig(epochs=epochs, batch_size=batch_size),
        loss_fn=loss_fn,
        rng=rng,
    )
    bas = evaluate_bas(model, test_set)
    return (bas, float(count_params(model)) * 4.0, count_macs(model))


def _deploy_task(payload):
    """Stage-4 task unit: compile one target, verify and report (picklable)."""
    network, target, frames, sim_mode, verify = payload
    from ..engine.backends import compile_and_report

    return compile_and_report(
        network, target, frames, sim_mode=sim_mode, verify=verify
    )


@dataclass
class FlowConfig:
    """Configuration of one end-to-end flow run.

    The defaults are scaled down with respect to the paper's 500-epoch runs
    so the whole flow remains tractable with the numpy training backend; the
    structure (which stages run, in which order, on which data) is identical.
    """

    lambdas: Sequence[float] = (1e-6, 1e-5, 1e-4, 5e-4)
    nas_cost: str = "params"
    search: SearchConfig = field(default_factory=SearchConfig)
    qat: QATConfig = field(default_factory=QATConfig)
    majority_window: int = 5
    max_quantized_architectures: int = 4
    use_class_weights: bool = True
    seed: int = 0
    # Stage 4: engine targets to deploy the Table-I selection on.  Empty
    # disables the deployment stage (the default, matching older behaviour).
    deploy_targets: Sequence[str] = ()
    deploy_frames: int = 3
    # Simulation engine for the ISA-simulated deploy targets: "jit" runs
    # exec-compiled block code with cross-frame batching, "fast" the
    # trace-compiled closure simulator, "interp" the reference interpreter.
    # All three are bit-exact.
    sim_mode: str = "jit"
    # Task execution: "serial" (reference), "thread" (persistent thread
    # pool — zero-copy, scales on GIL-releasing numpy paths such as the
    # batched simulator deploys) or "process" (one persistent worker pool
    # for the whole flow run, with shared-memory dataset handoff).  An
    # executor instance is also accepted and is left open for its owner.
    # Every flow unit is independently seeded, so all settings — and any
    # worker count — produce bit-identical results.
    executor: str = "serial"
    max_workers: Optional[int] = None
    # Directory of the content-addressed result cache; None disables
    # caching.  Keys cover the seed, the unit's configuration and the
    # dataset content, so repeated runs skip already-trained points while
    # any config/data change forces a re-train.
    cache_dir: Optional[str] = None

    def replace(self, **changes) -> "FlowConfig":
        """A modified copy that never shares nested config instances.

        ``dataclasses.replace`` copies only the top level, so two derived
        FlowConfigs would alias one ``SearchConfig``/``QATConfig`` and a
        mutation through one copy would leak into the other.  Unless a field
        is explicitly overridden, the nested configs are re-created here.
        """
        changes.setdefault("search", replace(self.search))
        changes.setdefault("qat", replace(self.qat))
        return replace(self, **changes)


@dataclass
class FlowPoint:
    """One final model of the flow with all metrics attached."""

    label: str
    bas: float
    bas_majority: float
    memory_bytes: float
    macs: int
    scheme: Optional[PrecisionScheme] = None
    quantized: Optional[QuantizedPoint] = None
    architecture: Optional[ArchitecturePoint] = None

    @property
    def memory_kb(self) -> float:
        return self.memory_bytes / 1024.0


@dataclass
class FlowResult:
    """Everything the flow produced."""

    seed_point: Tuple[float, float, int]  # (bas, memory_bytes, macs) of the seed
    float_points: List[ArchitecturePoint]
    quantized_points: List[QuantizedPoint]
    flow_points: List[FlowPoint]
    preprocessor: Preprocessor
    deployment_reports: Dict[str, DeploymentReport] = field(default_factory=dict)

    def pareto_memory(self, use_majority: bool = True) -> List[ParetoPoint]:
        return pareto_front(
            points_from(
                self.flow_points,
                score=lambda p: p.bas_majority if use_majority else p.bas,
                cost=lambda p: p.memory_bytes,
                label=lambda p: p.label,
            )
        )

    def pareto_macs(self, use_majority: bool = True) -> List[ParetoPoint]:
        return pareto_front(
            points_from(
                self.flow_points,
                score=lambda p: p.bas_majority if use_majority else p.bas,
                cost=lambda p: float(p.macs),
                label=lambda p: p.label,
            )
        )

    # ------------------------------------------------------------------ #
    # Table I model selection
    # ------------------------------------------------------------------ #
    def select_top(self) -> FlowPoint:
        """The highest-accuracy model."""
        return max(self.flow_points, key=lambda p: p.bas_majority)

    def select_minus5(self) -> FlowPoint:
        """The smallest model within 5% BAS of the top one."""
        top = self.select_top()
        eligible = [
            p for p in self.flow_points if p.bas_majority >= top.bas_majority - 0.05
        ]
        return min(eligible, key=lambda p: p.memory_bytes)

    def select_mini(self) -> FlowPoint:
        """The smallest model overall."""
        return min(self.flow_points, key=lambda p: p.memory_bytes)

    def table1_selection(self) -> Dict[str, FlowPoint]:
        """The paper's Table-I model selection (Top / -5% / Mini)."""
        return {
            "Top": self.select_top(),
            "-5%": self.select_minus5(),
            "Mini": self.select_mini(),
        }

    # ------------------------------------------------------------------ #
    # Stage 4: deployment through the engine façade
    # ------------------------------------------------------------------ #
    def deploy(
        self,
        point: FlowPoint,
        frames: np.ndarray,
        targets: Sequence[str] = ("stm32", "ibex", "maupiti"),
        verify: bool = True,
        sim_mode: str = "jit",
        executor=None,
        max_workers: Optional[int] = None,
        cache=None,
    ) -> DeploymentReport:
        """Deploy one flow point on every requested engine target.

        Compiles ``point`` with :func:`repro.compile` for each target, runs
        the ``frames`` to measure cycles where the target supports it, and
        (for the ISA-simulated targets) verifies bit-exactness against the
        integer golden model first — the verification simulates the whole
        split in one batched call that doubles as the cycle measurement, so
        each frame is simulated only once.  ``sim_mode`` selects the
        simulation engine for targets that support it (``"jit"`` is the
        exec-compiled batching simulator, ``"fast"`` the trace-compiled
        closure simulator, ``"interp"`` the reference interpreter).

        The per-target compile+verify runs are independent task units: pass
        ``executor="process"`` (or an executor instance) to distribute them,
        and a :class:`repro.parallel.ResultCache` to skip targets already
        deployed with identical model/frames/options.
        """
        from ..engine import ModelBundle
        from ..parallel import executor_is_owned, fingerprint, get_executor, run_tasks

        bundle = ModelBundle(point)
        network = bundle.require_integer()  # lowered once, shared by targets
        frames = np.asarray(frames)
        owned = executor_is_owned(executor)
        executor = get_executor(executor, max_workers)
        keys = None
        if cache is not None:
            keys = [
                fingerprint("deploy", network, target, frames, sim_mode, verify)
                for target in targets
            ]
        frames = executor.share_array(frames)  # after keying: content-equal
        payloads = [(network, t, frames, sim_mode, verify) for t in targets]
        try:
            entries = run_tasks(
                _deploy_task,
                payloads,
                executor=executor,
                cache=cache,
                keys=keys,
            )
        finally:
            if owned:
                executor.close()
        report = DeploymentReport(model_label=point.label)
        for entry in entries:
            report.add(entry)
        return report


class OptimizationFlow:
    """Runs the full NAS -> quantization -> post-processing flow."""

    def __init__(self, config: Optional[FlowConfig] = None):
        self.config = config or FlowConfig()

    # ------------------------------------------------------------------ #
    def prepare_data(
        self, dataset: LinaigeDataset, test_session_id: int = 2
    ) -> Tuple[ArrayDataset, ArrayDataset, Session, Preprocessor]:
        """Split the dataset following the paper's protocol.

        NAS and QAT use Session 1 (always in the training set); the held-out
        session provides the test data.  Returns the (preprocessed) training
        set, the preprocessed test set, the raw test session (for temporal
        post-processing) and the fitted preprocessor.
        """
        test_session = dataset.session(test_session_id)
        train_frames = []
        train_labels = []
        for session in dataset.sessions:
            if session.session_id == test_session_id:
                continue
            train_frames.append(session.frames)
            train_labels.append(session.labels)
        frames = np.concatenate(train_frames)
        labels = np.concatenate(train_labels)
        pre = Preprocessor.fit(frames)
        train_set = ArrayDataset(pre(frames), labels)
        test_set = ArrayDataset(pre(test_session.frames), test_session.labels)
        return train_set, test_set, test_session, pre

    def _loss(self, labels: np.ndarray) -> CrossEntropyLoss:
        if not self.config.use_class_weights:
            return CrossEntropyLoss()
        return CrossEntropyLoss(balanced_class_weights(labels, NUM_CLASSES))

    def _search_config(self) -> SearchConfig:
        """The flow's lambda sweep / cost metric applied to a *copy* of the
        nested search config, so the caller's object is never mutated."""
        cfg = self.config
        return replace(cfg.search, lambdas=tuple(cfg.lambdas), cost=cfg.nas_cost)

    # ------------------------------------------------------------------ #
    def run(
        self,
        dataset: LinaigeDataset,
        test_session_id: int = 2,
        seed_channels: Tuple[int, int] = (64, 64),
        seed_hidden: int = 64,
    ) -> FlowResult:
        """Execute the full flow against one held-out session."""
        from ..parallel import executor_is_owned, get_executor

        cfg = self.config
        # One executor for the whole run: the process pool forks once and is
        # reused by every stage, and the datasets are placed in shared
        # memory once.  The flow closes the executor (releasing workers and
        # unlinking shared memory) only when it created it from a name; a
        # caller-supplied instance is left open for its owner.
        owned = executor_is_owned(cfg.executor)
        executor = get_executor(cfg.executor, cfg.max_workers)
        try:
            return self._run_stages(dataset, test_session_id, seed_channels,
                                    seed_hidden, executor)
        finally:
            if owned:
                executor.close()

    def _run_stages(
        self,
        dataset: LinaigeDataset,
        test_session_id: int,
        seed_channels: Tuple[int, int],
        seed_hidden: int,
        executor,
    ) -> FlowResult:
        from ..parallel import ResultCache, fingerprint, run_tasks

        cfg = self.config
        cache = ResultCache(cfg.cache_dir) if cfg.cache_dir else None
        train_set, test_set, test_session, pre = self.prepare_data(
            dataset, test_session_id
        )
        loss_fn = self._loss(train_set.targets)
        # Shared-memory handoff (no-op for serial/thread executors): every
        # downstream payload now references the same two blocks.
        train_set = executor.share_dataset(train_set)
        test_set = executor.share_dataset(test_set)

        # Stage 0: measure the seed itself (the blue star of Fig. 5) — one
        # task unit, so it caches and parallelizes like every other stage.
        seed_payload = (
            tuple(seed_channels),
            seed_hidden,
            train_set,
            test_set,
            cfg.search.finetune_epochs,
            cfg.search.batch_size,
            loss_fn,
            cfg.seed,
        )
        seed_keys = None
        if cache is not None:
            seed_keys = [fingerprint("flow-seed", *seed_payload)]
        seed_point = run_tasks(
            _seed_task, [seed_payload], executor=executor, cache=cache, keys=seed_keys
        )[0]

        # Stage 1: architecture search (lambda sweep).
        search_cfg = self._search_config()
        float_points = run_search(
            seed_builder(seed_channels, seed_hidden),
            train_set,
            test_set,
            config=search_cfg,
            loss_fn=loss_fn,
            seed=cfg.seed,
            executor=executor,
            cache=cache,
        )

        # Stage 2: mixed-precision QAT of the Pareto-optimal architectures.
        float_front = pareto_front(
            points_from(float_points, score=lambda p: p.bas, cost=lambda p: float(p.params))
        )
        selected = [p.payload for p in float_front][: cfg.max_quantized_architectures]
        quantized_points: List[QuantizedPoint] = []
        for arch in selected:
            quantized_points.extend(
                explore_mixed_precision(
                    arch.model,
                    train_set,
                    test_set,
                    config=cfg.qat,
                    loss_fn=loss_fn,
                    seed=cfg.seed,
                    source_label=arch.describe(),
                    executor=executor,
                    cache=cache,
                )
            )

        # Stage 3: majority-voting post-processing on the test session.  The
        # per-model inference goes through the engine façade (numpy-float
        # target), the same interface stage 4 uses for the hardware targets.
        flow_points: List[FlowPoint] = []
        test_frames = pre(test_session.frames)
        from ..nn.metrics import balanced_accuracy

        for qp in quantized_points:
            eng = compile_engine(qp, target="numpy-float")
            raw_preds = eng.predict_batch(test_frames).predictions
            voted = majority_filter(raw_preds, window=cfg.majority_window)
            flow_points.append(
                FlowPoint(
                    label=f"{qp.source_label} {qp.scheme.label}",
                    bas=qp.bas,
                    bas_majority=balanced_accuracy(
                        test_session.labels, voted, NUM_CLASSES
                    ),
                    memory_bytes=qp.memory_bytes,
                    macs=qp.macs,
                    scheme=qp.scheme,
                    quantized=qp,
                )
            )

        result = FlowResult(
            seed_point=seed_point,
            float_points=float_points,
            quantized_points=quantized_points,
            flow_points=flow_points,
            preprocessor=pre,
        )

        # Stage 4: deployment of the Table-I selection on the configured
        # engine targets.
        if cfg.deploy_targets and result.flow_points:
            deploy_frames = test_frames[: cfg.deploy_frames]
            # Top / -5% / Mini often resolve to the same point on small
            # runs; deploy each distinct model once and share the report.
            deployed: Dict[int, DeploymentReport] = {}
            for label, point in result.table1_selection().items():
                if id(point) not in deployed:
                    deployed[id(point)] = result.deploy(
                        point,
                        deploy_frames,
                        targets=cfg.deploy_targets,
                        sim_mode=cfg.sim_mode,
                        executor=executor,
                        cache=cache,
                    )
                result.deployment_reports[label] = deployed[id(point)]
        return result
