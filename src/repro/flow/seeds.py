"""Seed networks.

The paper uses, as seed for the DNAS, the largest CNN configuration of the
manual exploration in [4]: two 3x3 convolutions with 64 output channels each
(stride 1, padding preserving the spatial size), a 2x2 max-pooling between
them, BatchNorm + ReLU after every convolution, and a classifier made of two
linear layers with 64 and 4 output features.  On an 8x8 single-channel input
the feature extractor therefore produces a 64x4x4 map before flattening.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..datasets.linaige import FRAME_SIZE, NUM_CLASSES
from ..nn.layers import BatchNorm2d, Conv2d, Flatten, Linear, MaxPool2d, ReLU
from ..nn.module import Sequential


def build_seed_cnn(
    rng: Optional[np.random.Generator] = None,
    conv_channels: Sequence[int] = (64, 64),
    hidden_features: int = 64,
    num_classes: int = NUM_CLASSES,
    input_size: int = FRAME_SIZE,
    in_channels: int = 1,
    batch_norm: bool = True,
) -> Sequential:
    """Build the seed CNN (or a smaller sibling from the same family).

    Parameters
    ----------
    conv_channels:
        Output channels of the two convolutional layers; the paper's seed is
        ``(64, 64)``, the hand-tuned baseline grid uses smaller values.
    hidden_features:
        Output features of the first linear layer.
    batch_norm:
        Whether convolutions are followed by BatchNorm (True in the paper).

    Returns
    -------
    A :class:`~repro.nn.module.Sequential` ending with an un-activated
    ``num_classes``-way linear classifier.
    """
    if len(conv_channels) != 2:
        raise ValueError("the seed family uses exactly two convolutional layers")
    rng = rng if rng is not None else np.random.default_rng()
    c1, c2 = conv_channels
    pooled = input_size // 2
    layers = [
        Conv2d(in_channels, c1, kernel_size=3, stride=1, padding=1, rng=rng),
    ]
    if batch_norm:
        layers.append(BatchNorm2d(c1))
    layers += [ReLU(), MaxPool2d(2)]
    layers.append(Conv2d(c1, c2, kernel_size=3, stride=1, padding=1, rng=rng))
    if batch_norm:
        layers.append(BatchNorm2d(c2))
    layers += [
        ReLU(),
        Flatten(),
        Linear(c2 * pooled * pooled, hidden_features, rng=rng),
        ReLU(),
        Linear(hidden_features, num_classes, rng=rng),
    ]
    return Sequential(*layers)


@dataclass(frozen=True)
class SeedBuilder:
    """Picklable ``rng -> Sequential`` factory for the search driver.

    A plain closure would do for in-process use, but the parallel executors
    ship builders to worker processes, so the factory must survive a pickle
    round-trip (and hash deterministically for the result cache).
    """

    conv_channels: tuple = (64, 64)
    hidden_features: int = 64
    kwargs: tuple = field(default_factory=tuple)  # sorted (key, value) pairs

    def __call__(self, rng: np.random.Generator) -> Sequential:
        return build_seed_cnn(
            rng=rng,
            conv_channels=self.conv_channels,
            hidden_features=self.hidden_features,
            **dict(self.kwargs),
        )


def seed_builder(
    conv_channels: Sequence[int] = (64, 64),
    hidden_features: int = 64,
    **kwargs,
) -> SeedBuilder:
    """Return a callable ``rng -> Sequential`` for the search driver."""
    return SeedBuilder(
        conv_channels=tuple(conv_channels),
        hidden_features=hidden_features,
        kwargs=tuple(sorted(kwargs.items())),
    )
