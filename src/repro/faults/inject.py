"""Online fault injection: per-frame injectors for streams and clients.

The offline path applies a fault to a whole ``(N, ...)`` array; the online
path wraps a live stream — an ``Engine.stream`` session or a ``ServeClient``
— and corrupts frames as they are pushed.  Both share one
:class:`~repro.faults.models.FaultState`, and because every model is
chunk-invariant the two paths produce bit-identical frames for the same
seed.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .models import FaultModel, FaultPipeline, FaultState, SeedLike
from .registry import build_fault

FaultLike = Union[str, FaultModel, FaultPipeline]


def _resolve(fault: FaultLike, severity: Optional[float]) -> Union[FaultModel, FaultPipeline]:
    if isinstance(fault, str):
        if severity is None:
            raise ValueError("severity is required when naming a fault by string")
        return build_fault(fault, severity)
    return fault


class StreamInjector:
    """Stateful per-frame fault application over one logical stream.

    Call it with any chunking — single frames, bursts, the whole stream —
    and the output equals one offline ``fault.apply`` over the
    concatenation.  ``reset()`` rewinds to frame zero for an exact replay.
    """

    def __init__(
        self,
        fault: FaultLike,
        severity: Optional[float] = None,
        seed: SeedLike = 0,
    ):
        self.fault = _resolve(fault, severity)
        self._seed = seed
        self._state: FaultState = self.fault.state(seed)
        self.frames_seen = 0

    def __call__(self, frames: np.ndarray) -> np.ndarray:
        """Corrupt a ``(N, H, W)`` / ``(N, C, H, W)`` chunk in stream order."""
        out = self.fault.apply(frames, self._state)
        self.frames_seen += int(np.asarray(frames).shape[0])
        return out

    def reset(self, seed: Optional[SeedLike] = None) -> None:
        if seed is not None:
            self._seed = seed
        self._state = self.fault.state(self._seed)
        self.frames_seen = 0


class FaultyStreamSession:
    """Wrap an ``Engine.stream`` session so every pushed frame is faulted.

    Usage::

        injector = StreamInjector("gaussian-noise", severity=0.3, seed=7)
        with FaultyStreamSession(engine.stream(window=5), injector) as s:
            for frame in frames:
                update = s.push(frame)
    """

    def __init__(self, session, injector: StreamInjector):
        self._session = session
        self.injector = injector

    def __enter__(self) -> "FaultyStreamSession":
        self._session.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._session.__exit__(exc_type, exc, tb)

    def push(self, frame: np.ndarray):
        frame = np.asarray(frame)
        faulted = self.injector(frame[None])[0]
        return self._session.push(faulted)

    def summary(self):
        return self._session.summary()

    def __len__(self) -> int:
        return len(self._session)


def wrap_stream(session, fault: FaultLike, severity: Optional[float] = None,
                seed: SeedLike = 0) -> FaultyStreamSession:
    """Convenience: ``wrap_stream(engine.stream(), "frame-drop", 0.5)``."""
    return FaultyStreamSession(session, StreamInjector(fault, severity, seed))


class FaultInjectingClient:
    """Wrap a ``ServeClient`` (or ``SessionStream``-compatible object) so
    every pushed chunk is faulted before it leaves the node.

    Only ``push`` is intercepted; every other attribute (``open_session``,
    ``close_session``, ``healthz``, ...) proxies to the wrapped client.
    One injector means one logical stream — give each concurrent session
    its own wrapper.
    """

    def __init__(self, client, fault: FaultLike, severity: Optional[float] = None,
                 seed: SeedLike = 0):
        self._client = client
        self.injector = StreamInjector(fault, severity, seed)

    def push(self, *args, **kwargs):
        # ServeClient.push(session_id, frames) vs SessionStream.push(frames).
        frames = kwargs.pop("frames", None)
        if frames is None:
            *head, frames = args
        else:
            head = list(args)
        arr = np.asarray(frames, dtype=np.float64)
        single = arr.ndim == 3
        faulted = self.injector(arr[None] if single else arr)
        if single:
            faulted = faulted[0]
        return self._client.push(*head, faulted, **kwargs)

    def __getattr__(self, name):
        return getattr(self._client, name)

    def __enter__(self) -> "FaultInjectingClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._client.close()


def make_faulted_variant(
    frames: np.ndarray,
    fault: FaultLike,
    severity: Optional[float] = None,
    seed: SeedLike = 0,
) -> np.ndarray:
    """Offline helper: a faulted copy of a dataset's raw frames.

    Labels stay aligned — every fault model preserves frame count (drops
    repeat the previous delivery rather than shortening the stream).
    """
    model = _resolve(fault, severity)
    return model.apply(np.asarray(frames), model.state(seed))
