"""Fault-model registry for the :mod:`repro.faults` subsystem.

Every way a cheap thermal sensor (or its uplink) can misbehave — dead
pixels, ambient drift, dropped frames, spontaneous resets — is a *fault
model*.  Fault models are registered with :func:`register_fault`, mirroring
how execution backends register with ``repro.engine.registry``:

    @register_fault("my-fault", description="...")
    class MyFault(FaultModel):
        ...

and are reachable by name through :func:`build_fault`, so harnesses such as
``repro.robustness.evaluate`` can sweep the whole catalogue without knowing
any model's construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


class FaultError(RuntimeError):
    """Raised for fault-layer failures: unknown models, bad severities."""


@dataclass(frozen=True)
class FaultSpec:
    """Static description of one registered fault model.

    ``temporal`` marks models whose effect depends on frame position in the
    stream (drift ramps, bursts, resets); purely per-frame models can be
    evaluated on shuffled frames, temporal ones cannot.
    """

    name: str
    description: str
    fault_cls: type
    aliases: Tuple[str, ...] = ()
    temporal: bool = False


_REGISTRY: Dict[str, FaultSpec] = {}


def register_fault(
    name: str,
    *,
    description: str = "",
    aliases: Tuple[str, ...] = (),
    temporal: bool = False,
):
    """Class decorator registering a :class:`~repro.faults.models.FaultModel`
    under ``name`` (and optional ``aliases``)."""

    def decorator(cls: type) -> type:
        spec = FaultSpec(
            name=name,
            description=description,
            fault_cls=cls,
            aliases=tuple(aliases),
            temporal=temporal,
        )
        keys = [key.lower() for key in (name, *aliases)]
        # Validate every key before inserting any, so a collision cannot
        # leave the registry partially populated.
        for canonical in keys:
            if canonical in _REGISTRY:
                raise ValueError(f"fault {canonical!r} is already registered")
        for canonical in keys:
            _REGISTRY[canonical] = spec
        cls.spec = spec
        return cls

    return decorator


def unregister_fault(name: str) -> None:
    """Remove a fault model and all its aliases (mainly for tests/plugins)."""
    spec = _REGISTRY.get(name.lower())
    if spec is None:
        return
    for key in (spec.name, *spec.aliases):
        _REGISTRY.pop(key.lower(), None)


def get_fault(name: str) -> FaultSpec:
    """Resolve a fault name (or alias) to its :class:`FaultSpec`."""
    spec = _REGISTRY.get(str(name).lower())
    if spec is None:
        raise FaultError(
            f"unknown fault {name!r}; available faults: "
            + ", ".join(available_faults())
        )
    return spec


def available_faults() -> List[str]:
    """Sorted canonical names of every registered fault model."""
    return sorted({spec.name for spec in _REGISTRY.values()})


def build_fault(name: str, severity: float, **params):
    """Instantiate a registered fault model at the given severity."""
    spec = get_fault(name)
    return spec.fault_cls(severity=severity, **params)


def fault_table() -> str:
    """Human-readable table of the registered fault models (for the docs)."""
    rows = [f"{'fault':<16} {'temporal':<9} description"]
    for name in available_faults():
        spec = get_fault(name)
        temporal = "yes" if spec.temporal else "no"
        rows.append(f"{spec.name:<16} {temporal:<9} {spec.description}")
    return "\n".join(rows)
