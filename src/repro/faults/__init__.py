"""`repro.faults` — seeded sensor/uplink fault injection from dataset to serving.

The paper's sensor is a cheap 8x8 thermopile array: dead pixels, ambient
drift and flaky uplinks are the normal operating regime, not the exception.
This subpackage models those failure modes as seeded, composable
:class:`FaultModel` transforms over ``(N, H, W)`` frame streams, behind a
``@register_fault`` registry mirroring the engine's target registry:

    from repro.faults import build_fault, available_faults

    fault = build_fault("dead-pixels", severity=0.3)
    faulted = fault.apply(raw_frames, seed=7)          # offline variant

Online, the same models wrap live streams frame-by-frame — and because
every model is chunk-invariant, online injection is bit-identical to the
offline application for the same seed::

    from repro.faults import StreamInjector, wrap_stream

    with wrap_stream(engine.stream(window=5), "frame-drop", 0.4, seed=7) as s:
        updates = [s.push(f) for f in raw_frames]

The robustness harness (:mod:`repro.robustness`) sweeps this registry over
severities and execution targets to produce degradation curves.
"""

from .inject import (
    FaultInjectingClient,
    FaultyStreamSession,
    StreamInjector,
    make_faulted_variant,
    wrap_stream,
)
from .models import (
    AmbientDrift,
    BurstDropout,
    DeadPixels,
    FaultModel,
    FaultPipeline,
    FaultState,
    FrameDrop,
    GainDrift,
    GaussianNoise,
    SaltPepper,
    SensorReset,
    StuckPixels,
)
from .registry import (
    FaultError,
    FaultSpec,
    available_faults,
    build_fault,
    fault_table,
    get_fault,
    register_fault,
    unregister_fault,
)

__all__ = [
    "AmbientDrift",
    "BurstDropout",
    "DeadPixels",
    "FaultError",
    "FaultInjectingClient",
    "FaultModel",
    "FaultPipeline",
    "FaultSpec",
    "FaultState",
    "FaultyStreamSession",
    "FrameDrop",
    "GainDrift",
    "GaussianNoise",
    "SaltPepper",
    "SensorReset",
    "StreamInjector",
    "StuckPixels",
    "available_faults",
    "build_fault",
    "fault_table",
    "get_fault",
    "make_faulted_variant",
    "register_fault",
    "unregister_fault",
    "wrap_stream",
]
