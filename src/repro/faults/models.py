"""Seeded, composable fault models over ``(N, H, W)`` frame streams.

Every model derives from :class:`FaultModel` and transforms a chunk of
sensor-domain frames (raw Celsius, before any preprocessing).  Three
properties hold for every registered model and are enforced by property
tests:

* **Replay determinism** — applying a fault twice with states derived from
  the same :class:`numpy.random.SeedSequence` yields bit-identical frames.
* **Chunk invariance** — feeding a stream frame-by-frame (or in arbitrary
  chunks) through one persistent :class:`FaultState` equals applying the
  fault to the whole array at once.  Per-frame randomness is drawn from
  sequentially spawned ``SeedSequence`` children, so the split points do
  not matter.  This is what lets the offline dataset path and the online
  per-frame injector (:mod:`repro.faults.inject`) share one implementation.
* **Severity zero is the identity** — values, shape and dtype unchanged.

Shapes: a chunk is ``(N, H, W)`` or ``(N, C, H, W)``; shape and dtype are
always preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Sequence, Union

import numpy as np

from .registry import FaultError, register_fault

SeedLike = Union[int, Sequence[int], np.random.SeedSequence]


@dataclass
class FaultState:
    """Mutable per-stream state of one fault model application.

    ``seed_seq`` is consumed by sequential ``spawn()`` calls (one child per
    frame, plus one up-front for static structure), which is what makes the
    fault chunk-invariant: the i-th frame always sees the i-th child no
    matter how the stream is split into ``apply`` calls.
    """

    seed_seq: np.random.SeedSequence
    t: int = 0
    last_frame: Optional[np.ndarray] = None
    extra: Dict[str, Any] = field(default_factory=dict)


def _as_seed_sequence(seed: SeedLike) -> np.random.SeedSequence:
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


class FaultModel:
    """Base class: a seeded transform over sensor-frame streams.

    ``severity`` in ``[0, 1]`` scales the model's knob (pixel fraction,
    noise sigma, drop rate, ...); ``severity == 0`` short-circuits to the
    identity.  Subclasses implement :meth:`_apply_frame` (and optionally
    :meth:`_init_state` for static structure such as pixel masks) and never
    touch RNG outside the ``rng`` they are handed.
    """

    def __init__(self, severity: float):
        severity = float(severity)
        if not 0.0 <= severity <= 1.0:
            raise FaultError(f"severity must be in [0, 1], got {severity!r}")
        self.severity = severity

    # ------------------------------------------------------------------ #
    def state(self, seed: SeedLike = 0) -> FaultState:
        """Fresh per-stream state; pass the same seed to replay exactly."""
        return FaultState(seed_seq=_as_seed_sequence(seed))

    def apply(
        self,
        frames: np.ndarray,
        state: Optional[FaultState] = None,
        *,
        seed: SeedLike = 0,
    ) -> np.ndarray:
        """Transform a ``(N, H, W)`` or ``(N, C, H, W)`` chunk.

        With an explicit ``state`` the call continues a stream (online
        injection); without one a fresh state is derived from ``seed``
        (one-shot offline application).  Shape and dtype are preserved.
        """
        frames = np.asarray(frames)
        if frames.ndim not in (3, 4):
            raise FaultError(
                f"expected (N, H, W) or (N, C, H, W) frames, got shape {frames.shape}"
            )
        if self.severity == 0.0:
            return np.array(frames, copy=True)
        if state is None:
            state = self.state(seed)
        out = frames.astype(np.float64, copy=True)
        # Uniform (N, C, H, W) view so pixel masks work for both layouts.
        work = out if out.ndim == 4 else out[:, None]
        if not state.extra.get("_ready", False):
            init_rng = np.random.default_rng(state.seed_seq.spawn(1)[0])
            self._init_state(state, init_rng, work.shape[1:])
            state.extra["_ready"] = True
        for i in range(work.shape[0]):
            rng = np.random.default_rng(state.seed_seq.spawn(1)[0])
            result = self._apply_frame(work[i], rng, state)
            if result is None:
                # Dropped frame: the uplink repeats the last delivered frame
                # (or passes the clean frame through if nothing came before).
                if state.last_frame is not None:
                    work[i] = state.last_frame
            else:
                work[i] = result
            state.last_frame = work[i].copy()
            state.t += 1
        return out.astype(frames.dtype)

    # ------------------------------------------------------------------ #
    def _init_state(
        self, state: FaultState, rng: np.random.Generator, frame_shape: tuple
    ) -> None:
        """Draw static per-stream structure (pixel masks, ...). Optional."""

    def _apply_frame(
        self, frame: np.ndarray, rng: np.random.Generator, state: FaultState
    ) -> Optional[np.ndarray]:
        """Transform one ``(C, H, W)`` frame; return ``None`` to drop it."""
        raise NotImplementedError

    def describe(self) -> str:
        name = getattr(getattr(self, "spec", None), "name", type(self).__name__)
        return f"{name}(severity={self.severity:g})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


# --------------------------------------------------------------------- #
def _pixel_mask(
    rng: np.random.Generator, frame_shape: tuple, fraction: float
) -> np.ndarray:
    """Flat H*W indices of the affected pixels (at least one if fraction>0)."""
    pixels = int(frame_shape[-2] * frame_shape[-1])
    count = max(1, int(round(fraction * pixels))) if fraction > 0 else 0
    return rng.choice(pixels, size=min(count, pixels), replace=False)


@register_fault(
    "dead-pixels",
    description="a fixed subset of pixels always reads a constant value",
)
class DeadPixels(FaultModel):
    """Pixels stuck at a constant (e.g. a failed thermopile reading 0 C)."""

    def __init__(self, severity: float, max_fraction: float = 0.25, value: float = 0.0):
        super().__init__(severity)
        self.max_fraction = float(max_fraction)
        self.value = float(value)

    def _init_state(self, state, rng, frame_shape):
        state.extra["mask"] = _pixel_mask(
            rng, frame_shape, self.severity * self.max_fraction
        )

    def _apply_frame(self, frame, rng, state):
        flat = frame.reshape(frame.shape[0], -1)
        flat[:, state.extra["mask"]] = self.value
        return frame


@register_fault(
    "stuck-pixels",
    description="a fixed subset of pixels freezes at its first observed value",
)
class StuckPixels(FaultModel):
    """Pixels that latch whatever they read when the fault set in."""

    def __init__(self, severity: float, max_fraction: float = 0.25):
        super().__init__(severity)
        self.max_fraction = float(max_fraction)

    def _init_state(self, state, rng, frame_shape):
        state.extra["mask"] = _pixel_mask(
            rng, frame_shape, self.severity * self.max_fraction
        )

    def _apply_frame(self, frame, rng, state):
        flat = frame.reshape(frame.shape[0], -1)
        mask = state.extra["mask"]
        if "stuck_values" not in state.extra:
            state.extra["stuck_values"] = flat[:, mask].copy()
        flat[:, mask] = state.extra["stuck_values"]
        return frame


@register_fault(
    "gaussian-noise",
    description="additive white Gaussian read noise on every pixel",
)
class GaussianNoise(FaultModel):
    def __init__(self, severity: float, sigma_scale: float = 2.0):
        super().__init__(severity)
        self.sigma_scale = float(sigma_scale)

    def _apply_frame(self, frame, rng, state):
        frame += rng.normal(0.0, self.severity * self.sigma_scale, size=frame.shape)
        return frame


@register_fault(
    "salt-pepper",
    description="per-pixel saturation flips to the ADC rails",
)
class SaltPepper(FaultModel):
    """Impulse noise: pixels randomly slam to the low/high rail."""

    def __init__(
        self,
        severity: float,
        max_rate: float = 0.15,
        low: float = 0.0,
        high: float = 40.0,
    ):
        super().__init__(severity)
        self.max_rate = float(max_rate)
        self.low = float(low)
        self.high = float(high)

    def _apply_frame(self, frame, rng, state):
        rate = self.severity * self.max_rate
        u = rng.random(size=frame.shape)
        frame[u < rate / 2.0] = self.high
        frame[(u >= rate / 2.0) & (u < rate)] = self.low
        return frame


@register_fault(
    "ambient-drift",
    description="slow additive ambient-temperature ramp",
    temporal=True,
)
class AmbientDrift(FaultModel):
    """The room (or the package) heats up: a linear offset ramp in Celsius."""

    def __init__(
        self, severity: float, max_offset_c: float = 6.0, ramp_frames: int = 200
    ):
        super().__init__(severity)
        self.max_offset_c = float(max_offset_c)
        self.ramp_frames = int(ramp_frames)

    def _apply_frame(self, frame, rng, state):
        progress = min(1.0, state.t / max(1, self.ramp_frames))
        frame += self.severity * self.max_offset_c * progress
        return frame


@register_fault(
    "gain-drift",
    description="slow multiplicative gain ramp (sensor responsivity drift)",
    temporal=True,
)
class GainDrift(FaultModel):
    def __init__(self, severity: float, max_gain: float = 0.5, ramp_frames: int = 200):
        super().__init__(severity)
        self.max_gain = float(max_gain)
        self.ramp_frames = int(ramp_frames)

    def _apply_frame(self, frame, rng, state):
        progress = min(1.0, state.t / max(1, self.ramp_frames))
        frame *= 1.0 + self.severity * self.max_gain * progress
        return frame


@register_fault(
    "frame-drop",
    description="i.i.d. dropped frames; the uplink repeats the last delivery",
    temporal=True,
)
class FrameDrop(FaultModel):
    def __init__(self, severity: float, max_rate: float = 0.5):
        super().__init__(severity)
        self.max_rate = float(max_rate)

    def _apply_frame(self, frame, rng, state):
        if rng.random() < self.severity * self.max_rate:
            return None
        return frame


@register_fault(
    "burst-dropout",
    description="bursty uplink outages repeating the last delivered frame",
    temporal=True,
)
class BurstDropout(FaultModel):
    def __init__(
        self, severity: float, burst_frames: int = 8, max_rate: float = 0.05
    ):
        super().__init__(severity)
        self.burst_frames = int(burst_frames)
        self.max_rate = float(max_rate)

    def _apply_frame(self, frame, rng, state):
        left = state.extra.get("burst_left", 0)
        if left > 0:
            state.extra["burst_left"] = left - 1
            return None
        if rng.random() < self.severity * self.max_rate:
            state.extra["burst_left"] = self.burst_frames - 1
            return None
        return frame


@register_fault(
    "sensor-reset",
    description="spontaneous resets emitting constant frames while rebooting",
    temporal=True,
)
class SensorReset(FaultModel):
    def __init__(
        self,
        severity: float,
        reset_frames: int = 3,
        max_rate: float = 0.03,
        reset_value: float = 0.0,
    ):
        super().__init__(severity)
        self.reset_frames = int(reset_frames)
        self.max_rate = float(max_rate)
        self.reset_value = float(reset_value)

    def _apply_frame(self, frame, rng, state):
        left = state.extra.get("reset_left", 0)
        if left > 0:
            state.extra["reset_left"] = left - 1
            frame[...] = self.reset_value
            return frame
        if rng.random() < self.severity * self.max_rate:
            state.extra["reset_left"] = self.reset_frames - 1
            frame[...] = self.reset_value
            return frame
        return frame


# --------------------------------------------------------------------- #
class FaultPipeline:
    """Compose several fault models into one stream transform.

    Faults apply in order; each keeps an independent sub-state seeded from
    one ``SeedSequence.spawn`` per member, so a pipeline is exactly as
    replayable and chunk-invariant as its parts.
    """

    def __init__(self, faults: Iterable[FaultModel]):
        self.faults = list(faults)
        for fault in self.faults:
            if not isinstance(fault, FaultModel):
                raise FaultError(f"not a FaultModel: {fault!r}")

    def state(self, seed: SeedLike = 0) -> FaultState:
        root = _as_seed_sequence(seed)
        state = FaultState(seed_seq=root)
        state.extra["children"] = [
            FaultState(seed_seq=child) for child in root.spawn(len(self.faults))
        ]
        return state

    def apply(
        self,
        frames: np.ndarray,
        state: Optional[FaultState] = None,
        *,
        seed: SeedLike = 0,
    ) -> np.ndarray:
        if state is None:
            state = self.state(seed)
        out = frames
        for fault, sub in zip(self.faults, state.extra["children"]):
            out = fault.apply(out, sub)
        return np.array(out, copy=True) if out is frames else out

    def describe(self) -> str:
        return " | ".join(f.describe() for f in self.faults) or "identity"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPipeline({self.describe()})"
