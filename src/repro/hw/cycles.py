"""The shared per-instruction cycle model of the IBEX / MAUPITI cores.

This is the single source of cycle-cost truth for the whole stack: the
reference interpreter (:class:`repro.hw.core.IbexCore`), the trace-compiled
fast simulator (:mod:`repro.hw.sim`) and the platform specifications in
:mod:`repro.hw.energy` all derive their timing from the same
:class:`CycleModel` instance, so cycle (and therefore energy) figures can
never drift apart between execution paths or engine backends.
"""

from __future__ import annotations

from dataclasses import dataclass

from .isa import BRANCHES, CUSTOM, Instruction, LOADS, STORES


@dataclass(frozen=True)
class CycleModel:
    """Per-instruction-class cycle costs (IBEX small configuration).

    The vanilla IBEX executes most instructions in 1 cycle, loads in 2
    (memory access in the second stage), stores in 1 plus a memory cycle,
    taken branches in 3 (pipeline flush) and jumps in 2.  The MAUPITI SDOTP
    unit is single-cycle by construction (replicated multipliers keep it off
    the critical path).

    The class is frozen: both platform specs and every simulator share one
    configuration, so a variant timing model is expressed as a *new*
    instance rather than by mutating the shared one.
    """

    alu: int = 1
    mul: int = 1
    div: int = 37
    load: int = 2
    store: int = 2
    branch_not_taken: int = 1
    branch_taken: int = 3
    jump: int = 2
    sdotp: int = 1

    def cost(self, instr: Instruction, taken: bool = False) -> int:
        m = instr.mnemonic
        if m in CUSTOM:
            return self.sdotp
        if m in LOADS:
            return self.load
        if m in STORES:
            return self.store
        if m in BRANCHES:
            return self.branch_taken if taken else self.branch_not_taken
        if m in ("jal", "jalr"):
            return self.jump
        if m in ("mul", "mulh"):
            return self.mul
        if m in ("div", "rem"):
            return self.div
        return self.alu


#: The one cycle configuration shared by the IBEX and MAUPITI platform
#: specs and, through them, by every engine backend.
DEFAULT_CYCLE_MODEL = CycleModel()
