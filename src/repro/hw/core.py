"""Instruction-level simulator of the (customized) IBEX core.

The simulator executes RV32IM programs plus, when ``enable_sdotp`` is set,
the MAUPITI SDOTP extension.  It models the quantities the paper reports:

* executed instruction counts per category,
* an approximate cycle count based on the IBEX 2-stage pipeline timing
  (1 cycle for ALU/stores, 2 for loads, 1 for the single-cycle multiplier,
  extra cycles for taken branches and jumps),
* and, through :mod:`repro.hw.energy`, the energy per inference.

Programs halt by executing ``ebreak``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .isa import BRANCHES, CUSTOM, Instruction, LOADS, STORES
from .memory import Memory
from .sdotp import sdotp4, sdotp8, to_signed, to_unsigned


class SimulationError(Exception):
    """Raised on illegal instructions, bad memory accesses or runaway programs."""


@dataclass
class CycleModel:
    """Per-instruction-class cycle costs (IBEX small configuration).

    The vanilla IBEX executes most instructions in 1 cycle, loads in 2
    (memory access in the second stage), stores in 1 plus a memory cycle,
    taken branches in 3 (pipeline flush) and jumps in 2.  The MAUPITI SDOTP
    unit is single-cycle by construction (replicated multipliers keep it off
    the critical path).
    """

    alu: int = 1
    mul: int = 1
    div: int = 37
    load: int = 2
    store: int = 2
    branch_not_taken: int = 1
    branch_taken: int = 3
    jump: int = 2
    sdotp: int = 1

    def cost(self, instr: Instruction, taken: bool = False) -> int:
        m = instr.mnemonic
        if m in CUSTOM:
            return self.sdotp
        if m in LOADS:
            return self.load
        if m in STORES:
            return self.store
        if m in BRANCHES:
            return self.branch_taken if taken else self.branch_not_taken
        if m in ("jal", "jalr"):
            return self.jump
        if m in ("mul", "mulh"):
            return self.mul
        if m in ("div", "rem"):
            return self.div
        return self.alu


@dataclass
class ExecutionStats:
    """Counters accumulated while running a program."""

    instructions: int = 0
    cycles: int = 0
    per_mnemonic: Dict[str, int] = field(default_factory=dict)

    def record(self, mnemonic: str, cycles: int) -> None:
        self.instructions += 1
        self.cycles += cycles
        self.per_mnemonic[mnemonic] = self.per_mnemonic.get(mnemonic, 0) + 1

    @property
    def sdotp_count(self) -> int:
        return self.per_mnemonic.get("sdotp8", 0) + self.per_mnemonic.get("sdotp4", 0)


class IbexCore:
    """The customized IBEX core (SDOTP optional, to model the vanilla core)."""

    def __init__(
        self,
        memory: Optional[Memory] = None,
        enable_sdotp: bool = True,
        cycle_model: Optional[CycleModel] = None,
        max_instructions: int = 50_000_000,
    ):
        self.memory = memory if memory is not None else Memory()
        self.enable_sdotp = enable_sdotp
        self.cycle_model = cycle_model or CycleModel()
        self.max_instructions = max_instructions
        self.registers = [0] * 32
        self.pc = 0
        self.stats = ExecutionStats()
        self.halted = False

    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        self.registers = [0] * 32
        self.pc = 0
        self.stats = ExecutionStats()
        self.halted = False

    def _read(self, index: int) -> int:
        return 0 if index == 0 else self.registers[index]

    def _write(self, index: int, value: int) -> None:
        if index != 0:
            self.registers[index] = to_unsigned(value, 32)

    # ------------------------------------------------------------------ #
    def run(self, program: List[Instruction], entry_pc: int = 0) -> ExecutionStats:
        """Execute ``program`` (a list of instructions laid out from address 0
        of the instruction memory, 4 bytes per slot) until ``ebreak``."""
        self.pc = entry_pc
        self.halted = False
        count_limit = self.max_instructions
        while not self.halted:
            index = self.pc // 4
            if not 0 <= index < len(program):
                raise SimulationError(f"PC 0x{self.pc:08x} outside the program")
            instr = program[index]
            self._execute(instr)
            if self.stats.instructions > count_limit:
                raise SimulationError(
                    f"instruction limit exceeded ({count_limit}); runaway program?"
                )
        return self.stats

    # ------------------------------------------------------------------ #
    def _execute(self, instr: Instruction) -> None:
        m = instr.mnemonic
        rs1 = to_signed(self._read(instr.rs1), 32)
        rs2 = to_signed(self._read(instr.rs2), 32)
        urs1 = self._read(instr.rs1)
        urs2 = self._read(instr.rs2)
        next_pc = self.pc + 4
        taken = False

        if m == "add":
            self._write(instr.rd, rs1 + rs2)
        elif m == "sub":
            self._write(instr.rd, rs1 - rs2)
        elif m == "and":
            self._write(instr.rd, urs1 & urs2)
        elif m == "or":
            self._write(instr.rd, urs1 | urs2)
        elif m == "xor":
            self._write(instr.rd, urs1 ^ urs2)
        elif m == "sll":
            self._write(instr.rd, urs1 << (urs2 & 0x1F))
        elif m == "srl":
            self._write(instr.rd, urs1 >> (urs2 & 0x1F))
        elif m == "sra":
            self._write(instr.rd, rs1 >> (urs2 & 0x1F))
        elif m == "slt":
            self._write(instr.rd, int(rs1 < rs2))
        elif m == "sltu":
            self._write(instr.rd, int(urs1 < urs2))
        elif m == "mul":
            self._write(instr.rd, rs1 * rs2)
        elif m == "mulh":
            self._write(instr.rd, (rs1 * rs2) >> 32)
        elif m == "div":
            if rs2 == 0:
                self._write(instr.rd, -1)
            else:
                self._write(instr.rd, int(rs1 / rs2))
        elif m == "rem":
            if rs2 == 0:
                self._write(instr.rd, rs1)
            else:
                self._write(instr.rd, rs1 - int(rs1 / rs2) * rs2)
        elif m in ("sdotp8", "sdotp4"):
            if not self.enable_sdotp:
                raise SimulationError(
                    f"{m} executed on a core without the SDOTP extension"
                )
            acc = self._read(instr.rd)
            result = sdotp8(urs1, urs2, acc) if m == "sdotp8" else sdotp4(urs1, urs2, acc)
            self._write(instr.rd, result)
        elif m == "addi":
            self._write(instr.rd, rs1 + instr.imm)
        elif m == "andi":
            self._write(instr.rd, urs1 & to_unsigned(instr.imm, 32))
        elif m == "ori":
            self._write(instr.rd, urs1 | to_unsigned(instr.imm, 32))
        elif m == "xori":
            self._write(instr.rd, urs1 ^ to_unsigned(instr.imm, 32))
        elif m == "slti":
            self._write(instr.rd, int(rs1 < instr.imm))
        elif m == "sltiu":
            self._write(instr.rd, int(urs1 < to_unsigned(instr.imm, 32)))
        elif m == "slli":
            self._write(instr.rd, urs1 << (instr.imm & 0x1F))
        elif m == "srli":
            self._write(instr.rd, urs1 >> (instr.imm & 0x1F))
        elif m == "srai":
            self._write(instr.rd, rs1 >> (instr.imm & 0x1F))
        elif m == "lui":
            self._write(instr.rd, instr.imm)
        elif m == "auipc":
            self._write(instr.rd, self.pc + instr.imm)
        elif m == "lw":
            self._write(instr.rd, self.memory.load_word(urs1 + instr.imm, signed=False))
        elif m == "lh":
            self._write(instr.rd, self.memory.load_half(urs1 + instr.imm))
        elif m == "lhu":
            self._write(instr.rd, self.memory.load_half(urs1 + instr.imm, signed=False))
        elif m == "lb":
            self._write(instr.rd, self.memory.load_byte(urs1 + instr.imm))
        elif m == "lbu":
            self._write(instr.rd, self.memory.load_byte(urs1 + instr.imm, signed=False))
        elif m == "sw":
            self.memory.store_word(urs1 + instr.imm, urs2)
        elif m == "sh":
            self.memory.store_half(urs1 + instr.imm, urs2)
        elif m == "sb":
            self.memory.store_byte(urs1 + instr.imm, urs2)
        elif m in BRANCHES:
            conditions = {
                "beq": rs1 == rs2,
                "bne": rs1 != rs2,
                "blt": rs1 < rs2,
                "bge": rs1 >= rs2,
                "bltu": urs1 < urs2,
                "bgeu": urs1 >= urs2,
            }
            taken = conditions[m]
            if taken:
                next_pc = self.pc + instr.imm
        elif m == "jal":
            self._write(instr.rd, self.pc + 4)
            next_pc = self.pc + instr.imm
        elif m == "jalr":
            self._write(instr.rd, self.pc + 4)
            next_pc = (urs1 + instr.imm) & ~1
        elif m == "ebreak":
            self.halted = True
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unimplemented instruction {m}")

        self.stats.record(m, self.cycle_model.cost(instr, taken))
        if not self.halted:
            self.pc = next_pc
