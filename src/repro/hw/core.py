"""Instruction-level simulator of the (customized) IBEX core.

The simulator executes RV32IM programs plus, when ``enable_sdotp`` is set,
the MAUPITI SDOTP extension.  It models the quantities the paper reports:

* executed instruction counts per category,
* an approximate cycle count based on the IBEX 2-stage pipeline timing
  (1 cycle for ALU/stores, 2 for loads, 1 for the single-cycle multiplier,
  extra cycles for taken branches and jumps),
* and, through :mod:`repro.hw.energy`, the energy per inference.

Programs halt by executing ``ebreak``.

Two execution modes are available (``IbexCore(mode=...)``):

* ``"interp"`` — the per-instruction reference interpreter below.  Simple,
  obviously correct, slow.
* ``"fast"`` — the trace-compiled simulator of :mod:`repro.hw.sim`: the
  program is pre-decoded once into basic blocks, the structured inner loops
  emitted by :mod:`repro.deploy.codegen` are replaced by vectorized numpy
  kernels, and cycle/energy accounting is derived analytically from the
  same :class:`CycleModel`.  Registers, memory, cycle counts and
  per-mnemonic statistics are bit-exact against the interpreter.
* ``"jit"`` (default for the deployment platforms) — the second-generation
  tier of :mod:`repro.hw.sim.jit`: non-kernel blocks run as generated and
  ``exec``-compiled straight-line Python instead of per-instruction
  closures, and compiled templates are shared process-wide across engines
  through :mod:`repro.hw.sim.trace_cache`.  Same bit-exactness contract as
  ``"fast"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .cycles import CycleModel, DEFAULT_CYCLE_MODEL
from .isa import BRANCHES, Instruction
from .memory import Memory
from .sdotp import sdotp4, sdotp8, to_signed, to_unsigned

SIM_MODES = ("interp", "fast", "jit")


class SimulationError(Exception):
    """Raised on illegal instructions, bad memory accesses or runaway programs."""


def _program_fingerprint(program: List[Instruction]) -> int:
    """Cheap content hash guarding the fast-mode trace cache.

    Programs are plain mutable lists of mutable instructions; a stale trace
    after an in-place edit would silently break the bit-exactness contract,
    so the cache revalidates on every run (a few hundred microseconds,
    negligible against a simulated frame)."""
    return hash(
        tuple(
            (i.mnemonic, i.rd, i.rs1, i.rs2, i.imm) for i in program
        )
    )


@dataclass
class ExecutionStats:
    """Counters accumulated while running a program."""

    instructions: int = 0
    cycles: int = 0
    per_mnemonic: Dict[str, int] = field(default_factory=dict)

    def record(self, mnemonic: str, cycles: int) -> None:
        self.instructions += 1
        self.cycles += cycles
        self.per_mnemonic[mnemonic] = self.per_mnemonic.get(mnemonic, 0) + 1

    def record_block(self, instructions: int, cycles: int, counts: Dict[str, int]) -> None:
        """Merge aggregated counters from a block of executed instructions."""
        self.instructions += instructions
        self.cycles += cycles
        pm = self.per_mnemonic
        for mnemonic, count in counts.items():
            pm[mnemonic] = pm.get(mnemonic, 0) + count

    @property
    def sdotp_count(self) -> int:
        return self.per_mnemonic.get("sdotp8", 0) + self.per_mnemonic.get("sdotp4", 0)


class IbexCore:
    """The customized IBEX core (SDOTP optional, to model the vanilla core)."""

    def __init__(
        self,
        memory: Optional[Memory] = None,
        enable_sdotp: bool = True,
        cycle_model: Optional[CycleModel] = None,
        max_instructions: int = 50_000_000,
        mode: str = "interp",
    ):
        if mode not in SIM_MODES:
            raise ValueError(f"unknown simulation mode {mode!r}; expected one of {SIM_MODES}")
        self.memory = memory if memory is not None else Memory()
        self.enable_sdotp = enable_sdotp
        self.cycle_model = cycle_model or DEFAULT_CYCLE_MODEL
        self.max_instructions = max_instructions
        self.mode = mode
        self.registers = [0] * 32
        self.pc = 0
        self.stats = ExecutionStats()
        self.halted = False
        # Compiled traces keyed by id(program); the program object itself is
        # kept alive in the value so a recycled id can never alias a trace.
        self._trace_cache: Dict[int, tuple] = {}
        # JIT-mode bound programs, same keying/eviction discipline; the
        # underlying templates live in the process-wide trace cache.
        self._jit_cache: Dict[int, tuple] = {}

    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        self.registers = [0] * 32
        self.pc = 0
        self.stats = ExecutionStats()
        self.halted = False

    def _read(self, index: int) -> int:
        return 0 if index == 0 else self.registers[index]

    def _write(self, index: int, value: int) -> None:
        if index != 0:
            self.registers[index] = to_unsigned(value, 32)

    # ------------------------------------------------------------------ #
    def run(self, program: List[Instruction], entry_pc: int = 0) -> ExecutionStats:
        """Execute ``program`` (a list of instructions laid out from address 0
        of the instruction memory, 4 bytes per slot) until ``ebreak``."""
        if self.mode == "fast":
            return self._run_fast(program, entry_pc)
        if self.mode == "jit":
            return self._run_jit(program, entry_pc)
        self.pc = entry_pc
        self.halted = False
        count_limit = self.max_instructions
        while not self.halted:
            index = self.pc // 4
            if not 0 <= index < len(program):
                raise SimulationError(f"PC 0x{self.pc:08x} outside the program")
            instr = program[index]
            self._execute(instr)
            if self.stats.instructions > count_limit:
                raise SimulationError(
                    f"instruction limit exceeded ({count_limit}); runaway program?"
                )
        return self.stats

    # ------------------------------------------------------------------ #
    def _run_fast(self, program: List[Instruction], entry_pc: int = 0) -> ExecutionStats:
        """Execute through the trace-compiled simulator (:mod:`repro.hw.sim`).

        The compiled trace is cached per program object, so repeated frames
        of the same compiled model pay the decode cost exactly once.  The
        trace captures this core's memory; a core only ever owns one memory,
        which keeps the cache sound.
        """
        from .sim import compile_trace  # deferred: sim imports from this module

        key = id(program)
        fingerprint = _program_fingerprint(program)
        cached = self._trace_cache.pop(key, None)  # re-insert below: LRU order
        if cached is None or cached[0] is not program or cached[1] != fingerprint:
            if len(self._trace_cache) >= 8:
                # Evict the least recently used trace, so hot programs
                # survive sweeps over many compiled models on one platform.
                self._trace_cache.pop(next(iter(self._trace_cache)))
            trace = compile_trace(
                program,
                memory=self.memory,
                cycle_model=self.cycle_model,
                enable_sdotp=self.enable_sdotp,
            )
            cached = (program, fingerprint, trace)
        else:
            trace = cached[2]
        self._trace_cache[key] = cached
        self.halted = False
        self.pc = trace.run(
            self.registers,
            self.stats,
            entry_pc=entry_pc,
            max_instructions=self.max_instructions,
        )
        self.halted = True
        return self.stats

    # ------------------------------------------------------------------ #
    def _run_jit(self, program: List[Instruction], entry_pc: int = 0) -> ExecutionStats:
        """Execute through the JIT tier (:mod:`repro.hw.sim.jit`).

        The memory-independent template comes from the process-wide trace
        cache (shared across every engine compiling the same program); the
        binding of that template to this core's memory is cached per
        program object with the same revalidation discipline as fast mode.
        """
        from .sim.trace_cache import get_template  # deferred import cycle

        key = id(program)
        fingerprint = _program_fingerprint(program)
        cached = self._jit_cache.pop(key, None)  # re-insert below: LRU order
        if cached is None or cached[0] is not program or cached[1] != fingerprint:
            if len(self._jit_cache) >= 8:
                self._jit_cache.pop(next(iter(self._jit_cache)))
            template = get_template(program, self.cycle_model, self.enable_sdotp)
            cached = (program, fingerprint, template.bind(program, self.memory))
        self._jit_cache[key] = cached
        bound = cached[2]
        self.halted = False
        self.pc = bound.run(
            self.registers,
            self.stats,
            entry_pc=entry_pc,
            max_instructions=self.max_instructions,
        )
        self.halted = True
        return self.stats

    # ------------------------------------------------------------------ #
    def _execute(self, instr: Instruction) -> None:
        m = instr.mnemonic
        rs1 = to_signed(self._read(instr.rs1), 32)
        rs2 = to_signed(self._read(instr.rs2), 32)
        urs1 = self._read(instr.rs1)
        urs2 = self._read(instr.rs2)
        next_pc = self.pc + 4
        taken = False

        if m == "add":
            self._write(instr.rd, rs1 + rs2)
        elif m == "sub":
            self._write(instr.rd, rs1 - rs2)
        elif m == "and":
            self._write(instr.rd, urs1 & urs2)
        elif m == "or":
            self._write(instr.rd, urs1 | urs2)
        elif m == "xor":
            self._write(instr.rd, urs1 ^ urs2)
        elif m == "sll":
            self._write(instr.rd, urs1 << (urs2 & 0x1F))
        elif m == "srl":
            self._write(instr.rd, urs1 >> (urs2 & 0x1F))
        elif m == "sra":
            self._write(instr.rd, rs1 >> (urs2 & 0x1F))
        elif m == "slt":
            self._write(instr.rd, int(rs1 < rs2))
        elif m == "sltu":
            self._write(instr.rd, int(urs1 < urs2))
        elif m == "mul":
            self._write(instr.rd, rs1 * rs2)
        elif m == "mulh":
            self._write(instr.rd, (rs1 * rs2) >> 32)
        elif m == "div":
            if rs2 == 0:
                self._write(instr.rd, -1)
            else:
                self._write(instr.rd, int(rs1 / rs2))
        elif m == "rem":
            if rs2 == 0:
                self._write(instr.rd, rs1)
            else:
                self._write(instr.rd, rs1 - int(rs1 / rs2) * rs2)
        elif m in ("sdotp8", "sdotp4"):
            if not self.enable_sdotp:
                raise SimulationError(
                    f"{m} executed on a core without the SDOTP extension"
                )
            acc = self._read(instr.rd)
            result = sdotp8(urs1, urs2, acc) if m == "sdotp8" else sdotp4(urs1, urs2, acc)
            self._write(instr.rd, result)
        elif m == "addi":
            self._write(instr.rd, rs1 + instr.imm)
        elif m == "andi":
            self._write(instr.rd, urs1 & to_unsigned(instr.imm, 32))
        elif m == "ori":
            self._write(instr.rd, urs1 | to_unsigned(instr.imm, 32))
        elif m == "xori":
            self._write(instr.rd, urs1 ^ to_unsigned(instr.imm, 32))
        elif m == "slti":
            self._write(instr.rd, int(rs1 < instr.imm))
        elif m == "sltiu":
            self._write(instr.rd, int(urs1 < to_unsigned(instr.imm, 32)))
        elif m == "slli":
            self._write(instr.rd, urs1 << (instr.imm & 0x1F))
        elif m == "srli":
            self._write(instr.rd, urs1 >> (instr.imm & 0x1F))
        elif m == "srai":
            self._write(instr.rd, rs1 >> (instr.imm & 0x1F))
        elif m == "lui":
            self._write(instr.rd, instr.imm)
        elif m == "auipc":
            self._write(instr.rd, self.pc + instr.imm)
        elif m == "lw":
            self._write(instr.rd, self.memory.load_word(urs1 + instr.imm, signed=False))
        elif m == "lh":
            self._write(instr.rd, self.memory.load_half(urs1 + instr.imm))
        elif m == "lhu":
            self._write(instr.rd, self.memory.load_half(urs1 + instr.imm, signed=False))
        elif m == "lb":
            self._write(instr.rd, self.memory.load_byte(urs1 + instr.imm))
        elif m == "lbu":
            self._write(instr.rd, self.memory.load_byte(urs1 + instr.imm, signed=False))
        elif m == "sw":
            self.memory.store_word(urs1 + instr.imm, urs2)
        elif m == "sh":
            self.memory.store_half(urs1 + instr.imm, urs2)
        elif m == "sb":
            self.memory.store_byte(urs1 + instr.imm, urs2)
        elif m in BRANCHES:
            conditions = {
                "beq": rs1 == rs2,
                "bne": rs1 != rs2,
                "blt": rs1 < rs2,
                "bge": rs1 >= rs2,
                "bltu": urs1 < urs2,
                "bgeu": urs1 >= urs2,
            }
            taken = conditions[m]
            if taken:
                next_pc = self.pc + instr.imm
        elif m == "jal":
            self._write(instr.rd, self.pc + 4)
            next_pc = self.pc + instr.imm
        elif m == "jalr":
            self._write(instr.rd, self.pc + 4)
            next_pc = (urs1 + instr.imm) & ~1
        elif m == "ebreak":
            self.halted = True
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unimplemented instruction {m}")

        self.stats.record(m, self.cycle_model.cost(instr, taken))
        if not self.halted:
            self.pc = next_pc
