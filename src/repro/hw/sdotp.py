"""SDOTP unit: SIMD Sum-of-Dot-Product arithmetic.

The unit interprets two 32-bit register operands either as four signed 8-bit
lanes or as eight signed 4-bit lanes, multiplies lane-wise, sums the partial
products through an adder tree together with a third 32-bit accumulator
operand, and writes the result back to the accumulator register — all in a
single cycle (Sec. III-B2).  In hardware the 8-bit and 4-bit multipliers are
replicated rather than shared, trading a small area increase for keeping the
unit off the core's critical path.
"""

from __future__ import annotations

from typing import List

MASK32 = 0xFFFFFFFF


def to_signed(value: int, bits: int) -> int:
    """Interpret ``value``'s low ``bits`` bits as a two's-complement integer."""
    mask = (1 << bits) - 1
    value &= mask
    sign = 1 << (bits - 1)
    return value - (1 << bits) if value & sign else value


def to_unsigned(value: int, bits: int = 32) -> int:
    return value & ((1 << bits) - 1)


def unpack_lanes(word: int, lane_bits: int) -> List[int]:
    """Split a 32-bit word into signed lanes (little-endian lane order)."""
    if 32 % lane_bits != 0:
        raise ValueError(f"lane width {lane_bits} does not divide 32")
    count = 32 // lane_bits
    return [to_signed(word >> (i * lane_bits), lane_bits) for i in range(count)]


def pack_lanes(values: List[int], lane_bits: int) -> int:
    """Pack signed lane values into a 32-bit word (little-endian lane order)."""
    count = 32 // lane_bits
    if len(values) != count:
        raise ValueError(f"expected {count} lanes, got {len(values)}")
    lo, hi = -(1 << (lane_bits - 1)), (1 << (lane_bits - 1)) - 1
    word = 0
    for i, v in enumerate(values):
        if not lo <= v <= hi:
            raise ValueError(f"lane value {v} does not fit in {lane_bits} bits")
        word |= (v & ((1 << lane_bits) - 1)) << (i * lane_bits)
    return word


def sdotp(rs1: int, rs2: int, rd: int, lane_bits: int) -> int:
    """Semantics of SDOTP8 (``lane_bits=8``) / SDOTP4 (``lane_bits=4``).

    ``rd`` is both the incoming accumulator and the destination; the result
    wraps around 32 bits exactly like the hardware adder.
    """
    lanes1 = unpack_lanes(rs1, lane_bits)
    lanes2 = unpack_lanes(rs2, lane_bits)
    acc = to_signed(rd, 32)
    total = acc + sum(a * b for a, b in zip(lanes1, lanes2))
    return to_unsigned(total, 32)


def sdotp8(rs1: int, rs2: int, rd: int) -> int:
    """Four 8x8-bit signed MACs accumulated into ``rd``."""
    return sdotp(rs1, rs2, rd, 8)


def sdotp4(rs1: int, rs2: int, rd: int) -> int:
    """Eight 4x4-bit signed MACs accumulated into ``rd``."""
    return sdotp(rs1, rs2, rd, 4)
