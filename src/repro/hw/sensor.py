"""TMOS infrared sensor array model (Sec. III-B1).

The MAUPITI chip integrates a 16x16 array of thermal-MOSFET (TMOS) pixels
sensitive to infrared radiation, read out through 8 parallel analog
front-end chains: a full frame is acquired in two steps of 8 rows each, at a
frame rate of 10 FPS.  Each TMOS draws about 1 uA at 2.4 V, for a total
array consumption of 0.62 mW.

The model provides (i) the acquisition timing / energy figures used by the
system-level energy accounting and (ii) a frame synthesis path that renders
the same synthetic scenes as the LINAIGE generator at the native 16x16
resolution and optionally downsamples them to 8x8, matching the dataset the
networks are trained on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass
class TmosArrayConfig:
    """Physical parameters of the sensor array."""

    rows: int = 16
    cols: int = 16
    parallel_chains: int = 8
    frame_rate_hz: float = 10.0
    pixel_current_a: float = 1e-6
    supply_voltage_v: float = 2.4
    adc_bits: int = 12
    noise_equivalent_temperature_c: float = 0.15

    @property
    def pixels(self) -> int:
        return self.rows * self.cols

    @property
    def power_w(self) -> float:
        """Static power of the array (every TMOS biased continuously)."""
        return self.pixels * self.pixel_current_a * self.supply_voltage_v

    @property
    def acquisition_steps(self) -> int:
        """Row groups needed for one frame (two with 8 chains and 16 rows)."""
        return int(np.ceil(self.rows / self.parallel_chains))

    @property
    def frame_period_s(self) -> float:
        return 1.0 / self.frame_rate_hz

    def energy_per_frame_j(self) -> float:
        """Sensor energy attributed to one frame period."""
        return self.power_w * self.frame_period_s


class TmosArray:
    """Behavioural sensor model: renders and quantizes thermal frames."""

    def __init__(
        self,
        config: Optional[TmosArrayConfig] = None,
        rng: Optional[np.random.Generator] = None,
        temperature_range_c: Tuple[float, float] = (10.0, 45.0),
    ):
        self.config = config or TmosArrayConfig()
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.temperature_range_c = temperature_range_c
        self.frames_acquired = 0

    def acquire(self, scene: np.ndarray) -> np.ndarray:
        """Sample a thermal scene through the sensor front-end.

        ``scene`` is a float temperature map of shape ``(rows, cols)``; the
        output adds read-out noise and quantizes through the ADC transfer
        function, returning temperatures in degrees Celsius.
        """
        scene = np.asarray(scene, dtype=np.float64)
        if scene.shape != (self.config.rows, self.config.cols):
            raise ValueError(
                f"scene shape {scene.shape} does not match the "
                f"{self.config.rows}x{self.config.cols} array"
            )
        noisy = scene + self._rng.normal(
            0.0, self.config.noise_equivalent_temperature_c, size=scene.shape
        )
        lo, hi = self.temperature_range_c
        codes = np.clip(
            np.round((noisy - lo) / (hi - lo) * (2**self.config.adc_bits - 1)),
            0,
            2**self.config.adc_bits - 1,
        )
        self.frames_acquired += 1
        return lo + codes / (2**self.config.adc_bits - 1) * (hi - lo)

    def downsample_to_8x8(self, frame: np.ndarray) -> np.ndarray:
        """Average-pool a native 16x16 frame down to the LINAIGE 8x8 format."""
        frame = np.asarray(frame, dtype=np.float64)
        if frame.shape != (16, 16):
            raise ValueError(f"expected a 16x16 frame, got {frame.shape}")
        return frame.reshape(8, 2, 8, 2).mean(axis=(1, 3))

    def energy_consumed_j(self) -> float:
        return self.frames_acquired * self.config.energy_per_frame_j()
