"""RV32IM instruction set subset plus the MAUPITI SDOTP extension.

The deployment toolchain emits :class:`Instruction` objects; this module
defines their semantics-free representation, the register file names, and the
binary encoding/decoding used for code-size accounting and for round-trip
verification (the simulator executes the object form directly for speed, but
every instruction can be encoded to its 32-bit word and decoded back).

Custom instructions (Sec. III-B2)
---------------------------------
Two Sum-of-Dot-Product instructions are added on the *custom-0* opcode
(0x0B), both R-type, with ``rd`` used as source *and* destination (the third
read port added to the IBEX register file):

``SDOTP8 rd, rs1, rs2``
    ``rd += sum_{i=0..3} int8(rs1[i]) * int8(rs2[i])``
``SDOTP4 rd, rs1, rs2``
    ``rd += sum_{i=0..7} int4(rs1[i]) * int4(rs2[i])``
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

# --------------------------------------------------------------------------- #
# Registers
# --------------------------------------------------------------------------- #
ABI_NAMES = (
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
)
REGISTER_INDEX: Dict[str, int] = {name: i for i, name in enumerate(ABI_NAMES)}
REGISTER_INDEX.update({f"x{i}": i for i in range(32)})


def reg(name_or_index) -> int:
    """Resolve a register given its ABI name, ``x``-name or index."""
    if isinstance(name_or_index, int):
        if not 0 <= name_or_index < 32:
            raise ValueError(f"register index out of range: {name_or_index}")
        return name_or_index
    try:
        return REGISTER_INDEX[name_or_index]
    except KeyError:
        raise ValueError(f"unknown register {name_or_index!r}") from None


# --------------------------------------------------------------------------- #
# Mnemonics and formats
# --------------------------------------------------------------------------- #
R_TYPE = {
    "add": (0b0110011, 0b000, 0b0000000),
    "sub": (0b0110011, 0b000, 0b0100000),
    "sll": (0b0110011, 0b001, 0b0000000),
    "slt": (0b0110011, 0b010, 0b0000000),
    "sltu": (0b0110011, 0b011, 0b0000000),
    "xor": (0b0110011, 0b100, 0b0000000),
    "srl": (0b0110011, 0b101, 0b0000000),
    "sra": (0b0110011, 0b101, 0b0100000),
    "or": (0b0110011, 0b110, 0b0000000),
    "and": (0b0110011, 0b111, 0b0000000),
    # M extension
    "mul": (0b0110011, 0b000, 0b0000001),
    "mulh": (0b0110011, 0b001, 0b0000001),
    "div": (0b0110011, 0b100, 0b0000001),
    "rem": (0b0110011, 0b110, 0b0000001),
    # MAUPITI custom-0 extension
    "sdotp8": (0b0001011, 0b000, 0b0000000),
    "sdotp4": (0b0001011, 0b001, 0b0000000),
}

I_TYPE = {
    "addi": (0b0010011, 0b000),
    "slti": (0b0010011, 0b010),
    "sltiu": (0b0010011, 0b011),
    "xori": (0b0010011, 0b100),
    "ori": (0b0010011, 0b110),
    "andi": (0b0010011, 0b111),
    "slli": (0b0010011, 0b001),
    "srli": (0b0010011, 0b101),
    "srai": (0b0010011, 0b101),
    "lb": (0b0000011, 0b000),
    "lh": (0b0000011, 0b001),
    "lw": (0b0000011, 0b010),
    "lbu": (0b0000011, 0b100),
    "lhu": (0b0000011, 0b101),
    "jalr": (0b1100111, 0b000),
    "ebreak": (0b1110011, 0b000),
}

S_TYPE = {
    "sb": (0b0100011, 0b000),
    "sh": (0b0100011, 0b001),
    "sw": (0b0100011, 0b010),
}

B_TYPE = {
    "beq": (0b1100011, 0b000),
    "bne": (0b1100011, 0b001),
    "blt": (0b1100011, 0b100),
    "bge": (0b1100011, 0b101),
    "bltu": (0b1100011, 0b110),
    "bgeu": (0b1100011, 0b111),
}

U_TYPE = {"lui": 0b0110111, "auipc": 0b0010111}
J_TYPE = {"jal": 0b1101111}

LOADS = {"lb", "lh", "lw", "lbu", "lhu"}
STORES = {"sb", "sh", "sw"}
BRANCHES = set(B_TYPE)
CUSTOM = {"sdotp8", "sdotp4"}
ALL_MNEMONICS = (
    set(R_TYPE) | set(I_TYPE) | set(S_TYPE) | set(B_TYPE) | set(U_TYPE) | set(J_TYPE)
)


@dataclass
class Instruction:
    """A single (possibly labelled) instruction.

    ``imm`` holds the immediate for I/S/B/U/J formats.  For branches and
    jumps emitted by the code generator, ``target`` holds a symbolic label
    that the assembler resolves into a PC-relative immediate.
    """

    mnemonic: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    target: Optional[str] = None
    label: Optional[str] = None
    comment: str = ""

    def __post_init__(self) -> None:
        if self.mnemonic not in ALL_MNEMONICS:
            raise ValueError(f"unknown mnemonic {self.mnemonic!r}")

    @property
    def is_compressible(self) -> bool:
        """Rough RV32C compressibility heuristic used for code-size accounting.

        The real toolchain compiles with ``riscv32-imc``; roughly, common
        ALU/load/store/branch instructions with small immediates and popular
        registers have 16-bit encodings.  Custom SDOTP instructions and
        U/J-type instructions are never compressed.
        """
        if self.mnemonic in CUSTOM or self.mnemonic in U_TYPE or self.mnemonic in J_TYPE:
            return self.mnemonic in J_TYPE and -2048 <= self.imm < 2048
        if self.mnemonic in {"addi", "andi", "slli", "srli", "srai"}:
            return -32 <= self.imm < 32
        if self.mnemonic in {"lw", "sw"}:
            return 0 <= self.imm < 128 and self.imm % 4 == 0
        if self.mnemonic in {"add", "sub", "and", "or", "xor", "mul"}:
            return True
        if self.mnemonic in BRANCHES:
            return self.mnemonic in {"beq", "bne"}
        return False

    def size_bytes(self) -> int:
        return 2 if self.is_compressible else 4

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        prefix = f"{self.label}: " if self.label else ""
        if self.mnemonic in R_TYPE:
            body = f"{self.mnemonic} x{self.rd}, x{self.rs1}, x{self.rs2}"
        elif self.mnemonic in LOADS or self.mnemonic == "jalr":
            body = f"{self.mnemonic} x{self.rd}, {self.imm}(x{self.rs1})"
        elif self.mnemonic in STORES:
            body = f"{self.mnemonic} x{self.rs2}, {self.imm}(x{self.rs1})"
        elif self.mnemonic in BRANCHES:
            tgt = self.target if self.target else self.imm
            body = f"{self.mnemonic} x{self.rs1}, x{self.rs2}, {tgt}"
        elif self.mnemonic in U_TYPE:
            body = f"{self.mnemonic} x{self.rd}, {self.imm}"
        elif self.mnemonic in J_TYPE:
            tgt = self.target if self.target else self.imm
            body = f"{self.mnemonic} x{self.rd}, {tgt}"
        else:
            body = f"{self.mnemonic} x{self.rd}, x{self.rs1}, {self.imm}"
        return prefix + body


# --------------------------------------------------------------------------- #
# Encoding / decoding
# --------------------------------------------------------------------------- #
def _field(value: int, bits: int) -> int:
    mask = (1 << bits) - 1
    return value & mask


def _sign_extend(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


def encode(instr: Instruction) -> int:
    """Encode an instruction into its 32-bit word."""
    m = instr.mnemonic
    if m in R_TYPE:
        opcode, funct3, funct7 = R_TYPE[m]
        return (
            (funct7 << 25)
            | (_field(instr.rs2, 5) << 20)
            | (_field(instr.rs1, 5) << 15)
            | (funct3 << 12)
            | (_field(instr.rd, 5) << 7)
            | opcode
        )
    if m in I_TYPE:
        opcode, funct3 = I_TYPE[m]
        imm = instr.imm
        if m == "srai":
            imm = (imm & 0x1F) | (0b0100000 << 5)
        elif m in {"slli", "srli"}:
            imm = imm & 0x1F
        elif m == "ebreak":
            imm = 1
        return (
            (_field(imm, 12) << 20)
            | (_field(instr.rs1, 5) << 15)
            | (funct3 << 12)
            | (_field(instr.rd, 5) << 7)
            | opcode
        )
    if m in S_TYPE:
        opcode, funct3 = S_TYPE[m]
        imm = instr.imm
        return (
            (_field(imm >> 5, 7) << 25)
            | (_field(instr.rs2, 5) << 20)
            | (_field(instr.rs1, 5) << 15)
            | (funct3 << 12)
            | (_field(imm, 5) << 7)
            | opcode
        )
    if m in B_TYPE:
        opcode, funct3 = B_TYPE[m]
        imm = instr.imm
        if imm % 2:
            raise ValueError("branch offsets must be even")
        return (
            (_field(imm >> 12, 1) << 31)
            | (_field(imm >> 5, 6) << 25)
            | (_field(instr.rs2, 5) << 20)
            | (_field(instr.rs1, 5) << 15)
            | (funct3 << 12)
            | (_field(imm >> 1, 4) << 8)
            | (_field(imm >> 11, 1) << 7)
            | opcode
        )
    if m in U_TYPE:
        opcode = U_TYPE[m]
        return (_field(instr.imm >> 12, 20) << 12) | (_field(instr.rd, 5) << 7) | opcode
    if m in J_TYPE:
        opcode = J_TYPE[m]
        imm = instr.imm
        if imm % 2:
            raise ValueError("jump offsets must be even")
        return (
            (_field(imm >> 20, 1) << 31)
            | (_field(imm >> 1, 10) << 21)
            | (_field(imm >> 11, 1) << 20)
            | (_field(imm >> 12, 8) << 12)
            | (_field(instr.rd, 5) << 7)
            | opcode
        )
    raise ValueError(f"cannot encode {m}")  # pragma: no cover


def decode(word: int) -> Instruction:
    """Decode a 32-bit word back into an :class:`Instruction`."""
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F

    for m, (op, f3, f7) in R_TYPE.items():
        if opcode == op and funct3 == f3 and funct7 == f7:
            return Instruction(m, rd=rd, rs1=rs1, rs2=rs2)
    for m, (op, f3) in S_TYPE.items():
        if opcode == op and funct3 == f3:
            imm = _sign_extend(((word >> 25) << 5) | ((word >> 7) & 0x1F), 12)
            return Instruction(m, rs1=rs1, rs2=rs2, imm=imm)
    for m, (op, f3) in B_TYPE.items():
        if opcode == op and funct3 == f3:
            imm = (
                (((word >> 31) & 0x1) << 12)
                | (((word >> 7) & 0x1) << 11)
                | (((word >> 25) & 0x3F) << 5)
                | (((word >> 8) & 0xF) << 1)
            )
            return Instruction(m, rs1=rs1, rs2=rs2, imm=_sign_extend(imm, 13))
    for m, op in U_TYPE.items():
        if opcode == op:
            return Instruction(m, rd=rd, imm=_sign_extend(word & 0xFFFFF000, 32))
    for m, op in J_TYPE.items():
        if opcode == op:
            imm = (
                (((word >> 31) & 0x1) << 20)
                | (((word >> 12) & 0xFF) << 12)
                | (((word >> 20) & 0x1) << 11)
                | (((word >> 21) & 0x3FF) << 1)
            )
            return Instruction(m, rd=rd, imm=_sign_extend(imm, 21))
    # I-type last: shift-immediates share funct3 with funct7 discriminators.
    for m, (op, f3) in I_TYPE.items():
        if opcode == op and funct3 == f3:
            if m in {"slli", "srli", "srai"}:
                shamt = (word >> 20) & 0x1F
                if f3 == 0b101:
                    m = "srai" if funct7 == 0b0100000 else "srli"
                return Instruction(m, rd=rd, rs1=rs1, imm=shamt)
            if m == "ebreak" and ((word >> 20) & 0xFFF) != 1:
                continue
            imm = _sign_extend(word >> 20, 12)
            return Instruction(m, rd=rd, rs1=rs1, imm=imm)
    raise ValueError(f"cannot decode word 0x{word:08x}")
