"""Vectorized replacements for the structured loops emitted by codegen.

:mod:`repro.deploy.codegen` emits a small set of *structured* inner loops —
the SDOTP SIMD dot-product loop, the scalar INT8 and packed-INT4
multiply-accumulate loops, and the buffer-clearing memset loop.  These loops
execute the overwhelming majority of all simulated instructions, so the
trace compiler pattern-matches their basic blocks and replaces the
per-instruction interpretation of the *whole remaining trip count* with one
numpy computation plus analytical cycle accounting.

Correctness contract: a handler must leave **registers, memory, cycle count
and per-mnemonic statistics** exactly as the reference interpreter would
after running the loop to completion.  Matching is therefore deliberately
strict — exact opcode sequence, exact immediates, all-distinct non-zero
registers — and a handler declines (returns 0 iterations) whenever the
runtime counter does not describe a plain countdown loop; the simulator
then falls back to generic block execution, which is always bit-exact.

Recognition is structural, on the assembled instructions themselves.  The
code generator additionally *annotates* every loop it emits
(:class:`repro.deploy.codegen.KernelHint`); the annotations are used by
tests and diagnostics to prove that every emitted loop actually hits a
vectorized handler (``TraceProgram.vectorized_labels``), so codegen and the
recognizers cannot silently drift apart.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..isa import Instruction
from ..memory import Memory

MASK = 0xFFFFFFFF


class KernelLoop:
    """A recognized loop with a vectorized executor.

    ``run(regs)`` executes the remaining trip count ``n`` (read from the
    counter register) in one shot and returns ``n``; returning 0 means the
    handler declined and the block must be executed generically.  After a
    successful run the simulator resumes at ``exit_pc`` (the loop's
    fall-through pc when ``None``).

    ``instrs_per_iter`` / ``straight_cycles_per_iter`` / ``counts_per_iter``
    feed the analytical statistics: a full run of ``n`` iterations costs
    ``n * straight + (n - 1) * branch_taken + branch_not_taken`` cycles,
    where the two branch terms account for the loop's own back-branch.
    Multi-level loops (e.g. the conv tap loop) fold the cycles and counts
    of their inner loop into the per-iteration figures.
    """

    __slots__ = (
        "kind",
        "label",
        "run",
        "instrs_per_iter",
        "straight_cycles_per_iter",
        "counts_per_iter",
        "exit_pc",
        "meta",
    )

    def __init__(
        self,
        kind: str,
        label: Optional[str],
        run: Callable,
        instrs_per_iter: int,
        straight_cycles_per_iter: int,
        counts_per_iter: dict,
        exit_pc: Optional[int] = None,
    ):
        self.kind = kind
        self.label = label
        self.run = run
        self.instrs_per_iter = instrs_per_iter
        self.straight_cycles_per_iter = straight_cycles_per_iter
        self.counts_per_iter = counts_per_iter
        self.exit_pc = exit_pc
        self.meta: dict = {}

    @classmethod
    def from_body(cls, kind: str, label: Optional[str], run: Callable,
                  body: List[Instruction], cycle_model) -> "KernelLoop":
        counts = {}
        for i in body:
            counts[i.mnemonic] = counts.get(i.mnemonic, 0) + 1
        return cls(
            kind,
            label,
            run,
            instrs_per_iter=len(body),
            straight_cycles_per_iter=sum(cycle_model.cost(i) for i in body[:-1]),
            counts_per_iter=counts,
        )


def _counter(regs: List[int], idx: int) -> int:
    """Trip count if the register holds a positive signed value, else 0."""
    n = regs[idx]
    return n if 0 < n < 0x8000_0000 else 0


def _signed_nibbles(hi: np.ndarray) -> np.ndarray:
    """Sign-extend 4-bit lane values held in an int64 array."""
    return hi - ((hi & 8) << 1)


# --------------------------------------------------------------------------- #
# Pattern matchers.  Each takes the block body (terminator included) and the
# block's start index; returns a KernelLoop or None.
# --------------------------------------------------------------------------- #
def _is(i: Instruction, mnemonic: str, **fields) -> bool:
    if i.mnemonic != mnemonic:
        return False
    return all(getattr(i, k) == v for k, v in fields.items())


def _match_sdotp(body, mem: Memory, cycle_model) -> Optional[KernelLoop]:
    """``lw; lw; sdotp{8,4}; addi +4; addi +4; addi -1; bne`` (7 instrs)."""
    if len(body) != 7:
        return None
    l1, l2, dot, p1, p2, dec, br = body
    if dot.mnemonic not in ("sdotp8", "sdotp4"):
        return None
    P, Q, A, B, ACC, N = l1.rs1, l2.rs1, l1.rd, l2.rd, dot.rd, dec.rd
    if not (
        _is(l1, "lw", imm=0)
        and _is(l2, "lw", imm=0)
        and dot.rs1 == A
        and dot.rs2 == B
        and _is(p1, "addi", rd=P, rs1=P, imm=4)
        and _is(p2, "addi", rd=Q, rs1=Q, imm=4)
        and _is(dec, "addi", rd=N, rs1=N, imm=-1)
        and _is(br, "bne", rs1=N, rs2=0)
    ):
        return None
    if len({P, Q, A, B, ACC, N}) != 6 or 0 in (P, Q, A, B, ACC, N):
        return None
    eight_bit = dot.mnemonic == "sdotp8"
    load_bytes = mem.load_bytes

    def run(regs):
        n = _counter(regs, N)
        if n == 0:
            return 0
        raw_a = load_bytes(regs[P], 4 * n)
        raw_b = load_bytes(regs[Q], 4 * n)
        if eight_bit:
            va = np.frombuffer(raw_a, dtype=np.int8).astype(np.int64)
            vb = np.frombuffer(raw_b, dtype=np.int8).astype(np.int64)
            total = int(va @ vb)
        else:
            va = np.frombuffer(raw_a, dtype=np.uint8).astype(np.int64)
            vb = np.frombuffer(raw_b, dtype=np.uint8).astype(np.int64)
            total = int(
                _signed_nibbles(va & 0xF) @ _signed_nibbles(vb & 0xF)
                + _signed_nibbles(va >> 4) @ _signed_nibbles(vb >> 4)
            )
        # Lane sums wrap at 32 bits every iteration; summing everything and
        # masking once is congruent mod 2**32, hence bit-exact.
        regs[ACC] = (regs[ACC] + total) & MASK
        regs[A] = int.from_bytes(raw_a[-4:], "little")
        regs[B] = int.from_bytes(raw_b[-4:], "little")
        regs[P] = (regs[P] + 4 * n) & MASK
        regs[Q] = (regs[Q] + 4 * n) & MASK
        regs[N] = 0
        return n

    loop = KernelLoop.from_body("sdotp", body[0].label, run, body, cycle_model)
    loop.meta = {
        "P": P, "Q": Q, "A": A, "B": B, "ACC": ACC, "N": N,
        "eight_bit": eight_bit,
    }
    return loop


def _match_mac8(body, mem: Memory, cycle_model) -> Optional[KernelLoop]:
    """``lb; lb; mul; add; addi +1; addi +1; addi -1; bne`` (8 instrs)."""
    if len(body) != 8:
        return None
    l1, l2, mul, acc_add, p1, p2, dec, br = body
    P, Q, A, B, N = l1.rs1, l2.rs1, l1.rd, l2.rd, dec.rd
    ACC = acc_add.rd
    if not (
        _is(l1, "lb", imm=0)
        and _is(l2, "lb", imm=0)
        and _is(mul, "mul", rd=A, rs1=A, rs2=B)
        and _is(acc_add, "add", rd=ACC, rs1=ACC, rs2=A)
        and _is(p1, "addi", rd=P, rs1=P, imm=1)
        and _is(p2, "addi", rd=Q, rs1=Q, imm=1)
        and _is(dec, "addi", rd=N, rs1=N, imm=-1)
        and _is(br, "bne", rs1=N, rs2=0)
    ):
        return None
    if len({P, Q, A, B, ACC, N}) != 6 or 0 in (P, Q, A, B, ACC, N):
        return None
    load_bytes = mem.load_bytes

    def run(regs):
        n = _counter(regs, N)
        if n == 0:
            return 0
        va = np.frombuffer(load_bytes(regs[P], n), dtype=np.int8).astype(np.int64)
        vb = np.frombuffer(load_bytes(regs[Q], n), dtype=np.int8).astype(np.int64)
        regs[ACC] = (regs[ACC] + int(va @ vb)) & MASK
        last_a, last_b = int(va[-1]), int(vb[-1])
        regs[A] = (last_a * last_b) & MASK
        regs[B] = last_b & MASK
        regs[P] = (regs[P] + n) & MASK
        regs[Q] = (regs[Q] + n) & MASK
        regs[N] = 0
        return n

    return KernelLoop.from_body("mac8", body[0].label, run, body, cycle_model)


def _match_mac4(body, mem: Memory, cycle_model) -> Optional[KernelLoop]:
    """The packed-INT4 scalar MAC loop (16 instrs, two nibble products)."""
    if len(body) != 16:
        return None
    (l1, l2, lo_and, lo_sll, lo_sra, lo_mul, lo_acc,
     hi_srl, hi_sll, hi_sra, hi_mul, hi_acc, p1, p2, dec, br) = body
    P, Q, A, B, N = l1.rs1, l2.rs1, l1.rd, l2.rd, dec.rd
    C, D, ACC = lo_and.rd, lo_sll.rd, lo_acc.rd
    if not (
        _is(l1, "lbu", imm=0)
        and _is(l2, "lbu", imm=0)
        and _is(lo_and, "andi", rd=C, rs1=A, imm=0xF)
        and _is(lo_sll, "slli", rd=D, rs1=B, imm=28)
        and _is(lo_sra, "srai", rd=D, rs1=D, imm=28)
        and _is(lo_mul, "mul", rd=D, rs1=D, rs2=C)
        and _is(lo_acc, "add", rd=ACC, rs1=ACC, rs2=D)
        and _is(hi_srl, "srli", rd=C, rs1=A, imm=4)
        and _is(hi_sll, "slli", rd=D, rs1=B, imm=24)
        and _is(hi_sra, "srai", rd=D, rs1=D, imm=28)
        and _is(hi_mul, "mul", rd=D, rs1=D, rs2=C)
        and _is(hi_acc, "add", rd=ACC, rs1=ACC, rs2=D)
        and _is(p1, "addi", rd=P, rs1=P, imm=1)
        and _is(p2, "addi", rd=Q, rs1=Q, imm=1)
        and _is(dec, "addi", rd=N, rs1=N, imm=-1)
        and _is(br, "bne", rs1=N, rs2=0)
    ):
        return None
    if len({P, Q, A, B, C, D, ACC, N}) != 8 or 0 in (P, Q, A, B, C, D, ACC, N):
        return None
    load_bytes = mem.load_bytes

    def run(regs):
        n = _counter(regs, N)
        if n == 0:
            return 0
        va = np.frombuffer(load_bytes(regs[P], n), dtype=np.uint8).astype(np.int64)
        vb = np.frombuffer(load_bytes(regs[Q], n), dtype=np.uint8).astype(np.int64)
        # Activation nibbles are consumed unsigned (PACT outputs); weight
        # nibbles are sign-extended through the shift pairs.
        lo_w = _signed_nibbles(vb & 0xF)
        hi_w = _signed_nibbles(vb >> 4)
        total = int((va & 0xF) @ lo_w) + int((va >> 4) @ hi_w)
        regs[ACC] = (regs[ACC] + total) & MASK
        last_a, last_b = int(va[-1]), int(vb[-1])
        hi_a = last_a >> 4
        regs[A] = last_a
        regs[B] = last_b
        regs[C] = hi_a
        regs[D] = ((((last_b >> 4) ^ 8) - 8) * hi_a) & MASK
        regs[P] = (regs[P] + n) & MASK
        regs[Q] = (regs[Q] + n) & MASK
        regs[N] = 0
        return n

    return KernelLoop.from_body("mac4", body[0].label, run, body, cycle_model)


def _match_memset(body, mem: Memory, cycle_model) -> Optional[KernelLoop]:
    """``sw value; addi ptr += 4; bne ptr, end`` word-fill loop (3 instrs)."""
    if len(body) != 3:
        return None
    st, p1, br = body
    P, Z, E = st.rs1, st.rs2, br.rs2
    if not (
        _is(st, "sw", imm=0)
        and _is(p1, "addi", rd=P, rs1=P, imm=4)
        and _is(br, "bne", rs1=P)
    ):
        return None
    # The stored register must stay constant across iterations (x0 always is).
    if P == 0 or P == E or (Z == P and Z != 0):
        return None
    store_bytes = mem.store_bytes

    def run(regs):
        span = regs[E] - regs[P]
        if span <= 0 or span % 4:
            return 0
        n = span // 4
        store_bytes(regs[P], regs[Z].to_bytes(4, "little") * n)
        regs[P] = regs[E]
        return n

    return KernelLoop.from_body("memset", body[0].label, run, body, cycle_model)


_MATCHERS = (_match_sdotp, _match_mac8, _match_mac4, _match_memset)


def recognize_loop(
    body: List[Instruction], start_index: int, mem: Memory, cycle_model
) -> Optional[KernelLoop]:
    """Try to match a basic block against the known loop shapes.

    ``body`` must be a block whose terminator is a ``bne`` back to its own
    first instruction (the caller checks the branch target).
    """
    if body[-1].mnemonic != "bne":
        return None
    for matcher in _MATCHERS:
        loop = matcher(body, mem, cycle_model)
        if loop is not None:
            return loop
    return None


# --------------------------------------------------------------------------- #
# Second-level recognition: the convolution tap loop.
#
# The conv kernel wraps the SDOTP inner product in a "kx" loop over the
# kernel's horizontal taps:
#
#     kx:   mv   P,  AP        ; patch pixel pointer
#           mv   Q,  WP        ; weight tap pointer
#           li   N,  W         ; constant words-per-tap
#     simd: <sdotp inner loop>                    (self-loop block)
#           mv   WP, Q         ; weights are consumed contiguously
#           addi AP, AP, S     ; advance one pixel
#           addi KW, KW, -1
#           bne  KW, zero, kx
#
# Weights are contiguous across taps and the activation rows are strided by
# a compile-time constant, so the *entire* tap loop is one dot product of
# ``KW * W`` words — worth recognizing because per-tap trip counts are tiny
# (``W = ceil(c_in * bits / 32)``) and block dispatch would dominate.
# --------------------------------------------------------------------------- #
def try_tap_superloop(
    entry_body: List[Instruction],
    inner: KernelLoop,
    exit_body: List[Instruction],
    entry_pc: int,
    exit_fallthrough_pc: int,
    mem: Memory,
    cycle_model,
) -> Optional[KernelLoop]:
    """Fuse ``entry block -> sdotp inner loop -> exit block`` into one kernel.

    ``entry_body`` is the fall-through block ending at the inner loop,
    ``exit_body`` the block after it, whose ``bne`` targets ``entry_pc``.
    Returns a :class:`KernelLoop` to attach to the entry block (with
    ``exit_pc`` set past the exit block), or ``None``.
    """
    if inner.kind != "sdotp" or len(entry_body) != 3 or len(exit_body) != 4:
        return None
    m = inner.meta
    P, Q, A, B, ACC, N = m["P"], m["Q"], m["A"], m["B"], m["ACC"], m["N"]
    mv_p, mv_q, li_n = entry_body
    mv_wp, adv_ap, dec, br = exit_body
    AP, WP, KW = mv_p.rs1, mv_wp.rd, dec.rd
    if not (
        _is(mv_p, "add", rd=P, rs2=0)
        and _is(mv_q, "add", rd=Q, rs1=WP, rs2=0)
        and _is(li_n, "addi", rd=N, rs1=0)
        and li_n.imm > 0
        and _is(mv_wp, "add", rs1=Q, rs2=0)
        and _is(adv_ap, "addi", rd=AP, rs1=AP)
        and _is(dec, "addi", rd=KW, rs1=KW, imm=-1)
        and _is(br, "bne", rs1=KW, rs2=0)
    ):
        return None
    inner_regs = {P, Q, A, B, ACC, N}
    outer_regs = (AP, WP, KW)
    if (
        len(set(outer_regs)) != 3
        or 0 in outer_regs
        or inner_regs & set(outer_regs)
    ):
        return None
    W = li_n.imm
    S = adv_ap.imm
    eight_bit = m["eight_bit"]
    load_bytes = mem.load_bytes
    tap_bytes = 4 * W

    def run(regs):
        kw = _counter(regs, KW)
        if kw == 0:
            return 0
        ap = regs[AP]
        raw_b = load_bytes(regs[WP], tap_bytes * kw)
        if S == tap_bytes:
            raw_a = load_bytes(ap, tap_bytes * kw)
        else:
            raw_a = b"".join(
                load_bytes((ap + j * S) & MASK, tap_bytes) for j in range(kw)
            )
        if eight_bit:
            va = np.frombuffer(raw_a, dtype=np.int8).astype(np.int64)
            vb = np.frombuffer(raw_b, dtype=np.int8).astype(np.int64)
            total = int(va @ vb)
        else:
            va = np.frombuffer(raw_a, dtype=np.uint8).astype(np.int64)
            vb = np.frombuffer(raw_b, dtype=np.uint8).astype(np.int64)
            total = int(
                _signed_nibbles(va & 0xF) @ _signed_nibbles(vb & 0xF)
                + _signed_nibbles(va >> 4) @ _signed_nibbles(vb >> 4)
            )
        regs[ACC] = (regs[ACC] + total) & MASK
        regs[A] = int.from_bytes(raw_a[-4:], "little")
        regs[B] = int.from_bytes(raw_b[-4:], "little")
        q_final = (regs[WP] + tap_bytes * kw) & MASK
        regs[P] = (ap + (kw - 1) * S + tap_bytes) & MASK
        regs[Q] = q_final
        regs[WP] = q_final
        regs[AP] = (ap + kw * S) & MASK
        regs[N] = 0
        regs[KW] = 0
        return kw

    counts = {"add": 3, "addi": 3 + 3 * W, "bne": 1 + W, "lw": 2 * W}
    counts["sdotp8" if eight_bit else "sdotp4"] = W
    bt, bnt = cycle_model.branch_taken, cycle_model.branch_not_taken
    straight = (
        sum(cycle_model.cost(i) for i in entry_body)
        + W * inner.straight_cycles_per_iter
        + (W - 1) * bt
        + bnt
        + sum(cycle_model.cost(i) for i in exit_body[:-1])
    )
    loop = KernelLoop(
        "sdotp-taps",
        entry_body[0].label,
        run,
        instrs_per_iter=len(entry_body) + W * inner.instrs_per_iter + len(exit_body),
        straight_cycles_per_iter=straight,
        counts_per_iter=counts,
        exit_pc=exit_fallthrough_pc,
    )
    return loop
