"""Vectorized replacements for the structured loops emitted by codegen.

:mod:`repro.deploy.codegen` emits a small set of *structured* inner loops —
the SDOTP SIMD dot-product loop, the scalar INT8 and packed-INT4
multiply-accumulate loops, and the buffer-clearing memset loop.  These loops
execute the overwhelming majority of all simulated instructions, so the
trace compiler pattern-matches their basic blocks and replaces the
per-instruction interpretation of the *whole remaining trip count* with one
numpy computation plus analytical cycle accounting.

Correctness contract: a handler must leave **registers, memory, cycle count
and per-mnemonic statistics** exactly as the reference interpreter would
after running the loop to completion.  Matching is therefore deliberately
strict — exact opcode sequence, exact immediates, all-distinct non-zero
registers — and a handler declines (returns 0 iterations) whenever the
runtime counter does not describe a plain countdown loop; the simulator
then falls back to generic block execution, which is always bit-exact.

Recognition is structural, on the assembled instructions themselves, and
**memory-independent**: matchers may be invoked with ``mem=None`` to build a
reusable template (the process-wide JIT trace cache does this), in which
case the returned :class:`KernelLoop` carries no bound ``run`` but exposes
``make_run(mem)`` / ``make_run_many(mems)`` factories that bind a concrete
:class:`~repro.hw.memory.Memory` (or one memory per frame for the
cross-frame batched executor) later.

The code generator additionally *annotates* every loop it emits
(:class:`repro.deploy.codegen.KernelHint`); the annotations are used by
tests and diagnostics to prove that every emitted loop actually hits a
vectorized handler (``TraceProgram.vectorized_labels``), so codegen and the
recognizers cannot silently drift apart.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..isa import Instruction
from ..memory import Memory

MASK = 0xFFFFFFFF


class KernelLoop:
    """A recognized loop with a vectorized executor.

    ``run(regs)`` executes the remaining trip count ``n`` (read from the
    counter register) in one shot and returns ``n``; returning 0 means the
    handler declined and the block must be executed generically.  After a
    successful run the simulator resumes at ``exit_pc`` (the loop's
    fall-through pc when ``None``).  ``run`` is ``None`` on template
    builds (``mem=None``); bind one with ``make_run(mem)``.

    ``make_run_many(mems)`` returns ``run_many(regs_list)`` executing the
    same loop for several frames at once — one numpy op over a stacked
    ``(frames, bytes)`` matrix — provided the loop's pointer/counter
    registers are identical across frames; it declines (returns 0)
    otherwise, and the caller falls back to per-frame execution.

    ``instrs_per_iter`` / ``straight_cycles_per_iter`` / ``counts_per_iter``
    feed the analytical statistics: a full run of ``n`` iterations costs
    ``n * straight + (n - 1) * branch_taken + branch_not_taken`` cycles,
    where the two branch terms account for the loop's own back-branch.
    Multi-level loops (e.g. the conv tap loop) fold the cycles and counts
    of their inner loop into the per-iteration figures.
    """

    __slots__ = (
        "kind",
        "label",
        "run",
        "make_run",
        "make_run_many",
        "instrs_per_iter",
        "straight_cycles_per_iter",
        "counts_per_iter",
        "exit_pc",
        "meta",
        "aux",
        "wants_cnt",
    )

    def __init__(
        self,
        kind: str,
        label: Optional[str],
        run: Optional[Callable],
        instrs_per_iter: int,
        straight_cycles_per_iter: int,
        counts_per_iter: dict,
        exit_pc: Optional[int] = None,
    ):
        self.kind = kind
        self.label = label
        self.run = run
        self.make_run: Optional[Callable] = None
        self.make_run_many: Optional[Callable] = None
        self.instrs_per_iter = instrs_per_iter
        self.straight_cycles_per_iter = straight_cycles_per_iter
        self.counts_per_iter = counts_per_iter
        self.exit_pc = exit_pc
        self.meta: dict = {}
        # Data-dependent side paths (requant clamps, INT4 packing paths):
        # tuples of (instrs, cycle_delta, mnemonic_counts) whose per-run hit
        # counters live in extra flat slots right after [iters, calls]; see
        # JitTemplate.commit.  The executors for kernels with a non-empty
        # ``aux`` take ``(regs, cnt, aux_base)`` and return
        # ``(iters, extra_instrs)``.
        self.aux: tuple = ()
        # True when the executors use the (regs, cnt, aux_base) protocol
        # even with an empty ``aux`` (e.g. a non-requantizing channel loop).
        self.wants_cnt = False

    @classmethod
    def from_body(cls, kind: str, label: Optional[str], run: Optional[Callable],
                  body: List[Instruction], cycle_model) -> "KernelLoop":
        counts = {}
        for i in body:
            counts[i.mnemonic] = counts.get(i.mnemonic, 0) + 1
        return cls(
            kind,
            label,
            run,
            instrs_per_iter=len(body),
            straight_cycles_per_iter=sum(cycle_model.cost(i) for i in body[:-1]),
            counts_per_iter=counts,
        )


def _counter(regs: List[int], idx: int) -> int:
    """Trip count if the register holds a positive signed value, else 0."""
    n = regs[idx]
    return n if 0 < n < 0x8000_0000 else 0


def _signed_nibbles(hi: np.ndarray) -> np.ndarray:
    """Sign-extend 4-bit lane values held in an int64 array."""
    return hi - ((hi & 8) << 1)


# --------------------------------------------------------------------------- #
# Cross-frame helpers.  The batched executor clones the platform memory once
# per frame; reads go through raw uint8 views over each clone's dmem so one
# kernel dispatch touches numpy exactly once for all frames.
# --------------------------------------------------------------------------- #
def _make_gather(mems: Sequence[Memory]):
    """Build ``(gather, scatter)`` closures over every frame's dmem.

    ``gather(addr, count)`` returns an ``(F, count)`` uint8 array or
    ``None``; ``scatter(addr, rows)`` writes an ``(F, count)`` array back
    and returns ``False`` when out of bounds.  When every frame's dmem
    lives at a uniform address stride — the batched executor backs them
    with rows of one ``(F, dmem_size)`` numpy matrix (see
    :meth:`~repro.hw.memory.Memory.clone`) — the closures reassemble that
    matrix once and every gather is a **zero-copy column slice**.
    Otherwise they fall back to per-frame row copies.  A ``None`` /
    ``False`` result means the span is not fully inside dmem; the caller
    then declines and the per-frame path (full bounds checking, exact
    faults) takes over.
    """
    region = mems[0].regions["dmem"]
    base, size = region.base, region.size
    views = [np.frombuffer(m._data["dmem"], dtype=np.uint8) for m in mems]
    mat = None
    if all(v.size == size for v in views):
        if len(views) == 1:
            mat = views[0].reshape(1, size)
        else:
            addrs = [v.__array_interface__["data"][0] for v in views]
            step = addrs[1] - addrs[0]
            if step >= size and all(
                b - a == step for a, b in zip(addrs, addrs[1:])
            ):
                # Rows of one shared allocation: stitch the parent matrix
                # back together.  Only the [addr, addr+size) row spans are
                # ever dereferenced, all of which are valid frame views.
                mat = np.lib.stride_tricks.as_strided(
                    views[0], shape=(len(views), size), strides=(step, 1)
                )
    if mat is not None:
        def gather(addr: int, count: int) -> Optional[np.ndarray]:
            off = addr - base
            if off < 0 or off + count > size:
                return None
            return mat[:, off : off + count]

        def scatter(addr: int, rows: np.ndarray) -> bool:
            off = addr - base
            count = rows.shape[1]
            if off < 0 or off + count > size:
                return False
            mat[:, off : off + count] = rows
            return True
    else:
        def gather(addr: int, count: int) -> Optional[np.ndarray]:
            off = addr - base
            if off < 0 or off + count > size:
                return None
            return np.stack([v[off : off + count] for v in views])

        def scatter(addr: int, rows: np.ndarray) -> bool:
            off = addr - base
            count = rows.shape[1]
            if off < 0 or off + count > size:
                return False
            for v, row in zip(views, rows):
                v[off : off + count] = row
            return True
    return gather, scatter


def _uniform(regs_list, idxs) -> bool:
    r0 = regs_list[0]
    for regs in regs_list[1:]:
        for i in idxs:
            if regs[i] != r0[i]:
                return False
    return True


def _dot_rows_i8(ma: np.ndarray, mb: np.ndarray) -> np.ndarray:
    """Row-wise int8 dot products of two ``(F, n)`` uint8 matrices."""
    va = ma.view(np.int8).astype(np.int64)
    vb = mb.view(np.int8).astype(np.int64)
    return np.einsum("ij,ij->i", va, vb)


def _dot_rows_nib(ma: np.ndarray, mb: np.ndarray) -> np.ndarray:
    """Row-wise packed signed-nibble dot products (sdotp4 semantics)."""
    va = ma.astype(np.int64)
    vb = mb.astype(np.int64)
    lo = np.einsum("ij,ij->i", _signed_nibbles(va & 0xF), _signed_nibbles(vb & 0xF))
    hi = np.einsum("ij,ij->i", _signed_nibbles(va >> 4), _signed_nibbles(vb >> 4))
    return lo + hi


# --------------------------------------------------------------------------- #
# Pattern matchers.  Each takes the block body (terminator included) and the
# block's start index; returns a KernelLoop or None.
# --------------------------------------------------------------------------- #
def _is(i: Instruction, mnemonic: str, **fields) -> bool:
    if i.mnemonic != mnemonic:
        return False
    return all(getattr(i, k) == v for k, v in fields.items())


def _match_sdotp(body, mem: Optional[Memory], cycle_model) -> Optional[KernelLoop]:
    """``lw; lw; sdotp{8,4}; addi +4; addi +4; addi -1; bne`` (7 instrs)."""
    if len(body) != 7:
        return None
    l1, l2, dot, p1, p2, dec, br = body
    if dot.mnemonic not in ("sdotp8", "sdotp4"):
        return None
    P, Q, A, B, ACC, N = l1.rs1, l2.rs1, l1.rd, l2.rd, dot.rd, dec.rd
    if not (
        _is(l1, "lw", imm=0)
        and _is(l2, "lw", imm=0)
        and dot.rs1 == A
        and dot.rs2 == B
        and _is(p1, "addi", rd=P, rs1=P, imm=4)
        and _is(p2, "addi", rd=Q, rs1=Q, imm=4)
        and _is(dec, "addi", rd=N, rs1=N, imm=-1)
        and _is(br, "bne", rs1=N, rs2=0)
    ):
        return None
    if len({P, Q, A, B, ACC, N}) != 6 or 0 in (P, Q, A, B, ACC, N):
        return None
    eight_bit = dot.mnemonic == "sdotp8"

    def make_run(mem):
        load_bytes = mem.load_bytes

        def run(regs):
            n = _counter(regs, N)
            if n == 0:
                return 0
            raw_a = load_bytes(regs[P], 4 * n)
            raw_b = load_bytes(regs[Q], 4 * n)
            if eight_bit:
                va = np.frombuffer(raw_a, dtype=np.int8).astype(np.int64)
                vb = np.frombuffer(raw_b, dtype=np.int8).astype(np.int64)
                total = int(va @ vb)
            else:
                va = np.frombuffer(raw_a, dtype=np.uint8).astype(np.int64)
                vb = np.frombuffer(raw_b, dtype=np.uint8).astype(np.int64)
                total = int(
                    _signed_nibbles(va & 0xF) @ _signed_nibbles(vb & 0xF)
                    + _signed_nibbles(va >> 4) @ _signed_nibbles(vb >> 4)
                )
            # Lane sums wrap at 32 bits every iteration; summing everything and
            # masking once is congruent mod 2**32, hence bit-exact.
            regs[ACC] = (regs[ACC] + total) & MASK
            regs[A] = int.from_bytes(raw_a[-4:], "little")
            regs[B] = int.from_bytes(raw_b[-4:], "little")
            regs[P] = (regs[P] + 4 * n) & MASK
            regs[Q] = (regs[Q] + 4 * n) & MASK
            regs[N] = 0
            return n

        return run

    def make_run_many(mems):
        gather, _ = _make_gather(mems)

        def run_many(regs_list):
            r0 = regs_list[0]
            n = _counter(r0, N)
            if n == 0 or not _uniform(regs_list, (P, Q, N)):
                return 0
            nb = 4 * n
            ma = gather(r0[P], nb)
            mb = gather(r0[Q], nb)
            if ma is None or mb is None:
                return 0
            totals = _dot_rows_i8(ma, mb) if eight_bit else _dot_rows_nib(ma, mb)
            p_next = (r0[P] + nb) & MASK
            q_next = (r0[Q] + nb) & MASK
            for i, regs in enumerate(regs_list):
                regs[ACC] = (regs[ACC] + int(totals[i])) & MASK
                regs[A] = int.from_bytes(ma[i, -4:].tobytes(), "little")
                regs[B] = int.from_bytes(mb[i, -4:].tobytes(), "little")
                regs[P] = p_next
                regs[Q] = q_next
                regs[N] = 0
            return n

        return run_many

    run = make_run(mem) if mem is not None else None
    loop = KernelLoop.from_body("sdotp", body[0].label, run, body, cycle_model)
    loop.make_run = make_run
    loop.make_run_many = make_run_many
    loop.meta = {
        "P": P, "Q": Q, "A": A, "B": B, "ACC": ACC, "N": N,
        "eight_bit": eight_bit,
    }
    return loop


def _match_mac8(body, mem: Optional[Memory], cycle_model) -> Optional[KernelLoop]:
    """``lb; lb; mul; add; addi +1; addi +1; addi -1; bne`` (8 instrs)."""
    if len(body) != 8:
        return None
    l1, l2, mul, acc_add, p1, p2, dec, br = body
    P, Q, A, B, N = l1.rs1, l2.rs1, l1.rd, l2.rd, dec.rd
    ACC = acc_add.rd
    if not (
        _is(l1, "lb", imm=0)
        and _is(l2, "lb", imm=0)
        and _is(mul, "mul", rd=A, rs1=A, rs2=B)
        and _is(acc_add, "add", rd=ACC, rs1=ACC, rs2=A)
        and _is(p1, "addi", rd=P, rs1=P, imm=1)
        and _is(p2, "addi", rd=Q, rs1=Q, imm=1)
        and _is(dec, "addi", rd=N, rs1=N, imm=-1)
        and _is(br, "bne", rs1=N, rs2=0)
    ):
        return None
    if len({P, Q, A, B, ACC, N}) != 6 or 0 in (P, Q, A, B, ACC, N):
        return None

    def make_run(mem):
        load_bytes = mem.load_bytes

        def run(regs):
            n = _counter(regs, N)
            if n == 0:
                return 0
            va = np.frombuffer(load_bytes(regs[P], n), dtype=np.int8).astype(np.int64)
            vb = np.frombuffer(load_bytes(regs[Q], n), dtype=np.int8).astype(np.int64)
            regs[ACC] = (regs[ACC] + int(va @ vb)) & MASK
            last_a, last_b = int(va[-1]), int(vb[-1])
            regs[A] = (last_a * last_b) & MASK
            regs[B] = last_b & MASK
            regs[P] = (regs[P] + n) & MASK
            regs[Q] = (regs[Q] + n) & MASK
            regs[N] = 0
            return n

        return run

    def make_run_many(mems):
        gather, _ = _make_gather(mems)

        def run_many(regs_list):
            r0 = regs_list[0]
            n = _counter(r0, N)
            if n == 0 or not _uniform(regs_list, (P, Q, N)):
                return 0
            ma = gather(r0[P], n)
            mb = gather(r0[Q], n)
            if ma is None or mb is None:
                return 0
            totals = _dot_rows_i8(ma, mb)
            sa = ma[:, -1].astype(np.int8)
            sb = mb[:, -1].astype(np.int8)
            p_next = (r0[P] + n) & MASK
            q_next = (r0[Q] + n) & MASK
            for i, regs in enumerate(regs_list):
                last_a, last_b = int(sa[i]), int(sb[i])
                regs[ACC] = (regs[ACC] + int(totals[i])) & MASK
                regs[A] = (last_a * last_b) & MASK
                regs[B] = last_b & MASK
                regs[P] = p_next
                regs[Q] = q_next
                regs[N] = 0
            return n

        return run_many

    run = make_run(mem) if mem is not None else None
    loop = KernelLoop.from_body("mac8", body[0].label, run, body, cycle_model)
    loop.make_run = make_run
    loop.make_run_many = make_run_many
    loop.meta = {"P": P, "Q": Q, "A": A, "B": B, "ACC": ACC, "N": N}
    return loop


def _match_mac4(body, mem: Optional[Memory], cycle_model) -> Optional[KernelLoop]:
    """The packed-INT4 scalar MAC loop (16 instrs, two nibble products)."""
    if len(body) != 16:
        return None
    (l1, l2, lo_and, lo_sll, lo_sra, lo_mul, lo_acc,
     hi_srl, hi_sll, hi_sra, hi_mul, hi_acc, p1, p2, dec, br) = body
    P, Q, A, B, N = l1.rs1, l2.rs1, l1.rd, l2.rd, dec.rd
    C, D, ACC = lo_and.rd, lo_sll.rd, lo_acc.rd
    if not (
        _is(l1, "lbu", imm=0)
        and _is(l2, "lbu", imm=0)
        and _is(lo_and, "andi", rd=C, rs1=A, imm=0xF)
        and _is(lo_sll, "slli", rd=D, rs1=B, imm=28)
        and _is(lo_sra, "srai", rd=D, rs1=D, imm=28)
        and _is(lo_mul, "mul", rd=D, rs1=D, rs2=C)
        and _is(lo_acc, "add", rd=ACC, rs1=ACC, rs2=D)
        and _is(hi_srl, "srli", rd=C, rs1=A, imm=4)
        and _is(hi_sll, "slli", rd=D, rs1=B, imm=24)
        and _is(hi_sra, "srai", rd=D, rs1=D, imm=28)
        and _is(hi_mul, "mul", rd=D, rs1=D, rs2=C)
        and _is(hi_acc, "add", rd=ACC, rs1=ACC, rs2=D)
        and _is(p1, "addi", rd=P, rs1=P, imm=1)
        and _is(p2, "addi", rd=Q, rs1=Q, imm=1)
        and _is(dec, "addi", rd=N, rs1=N, imm=-1)
        and _is(br, "bne", rs1=N, rs2=0)
    ):
        return None
    if len({P, Q, A, B, C, D, ACC, N}) != 8 or 0 in (P, Q, A, B, C, D, ACC, N):
        return None

    def make_run(mem):
        load_bytes = mem.load_bytes

        def run(regs):
            n = _counter(regs, N)
            if n == 0:
                return 0
            va = np.frombuffer(load_bytes(regs[P], n), dtype=np.uint8).astype(np.int64)
            vb = np.frombuffer(load_bytes(regs[Q], n), dtype=np.uint8).astype(np.int64)
            # Activation nibbles are consumed unsigned (PACT outputs); weight
            # nibbles are sign-extended through the shift pairs.
            lo_w = _signed_nibbles(vb & 0xF)
            hi_w = _signed_nibbles(vb >> 4)
            total = int((va & 0xF) @ lo_w) + int((va >> 4) @ hi_w)
            regs[ACC] = (regs[ACC] + total) & MASK
            last_a, last_b = int(va[-1]), int(vb[-1])
            hi_a = last_a >> 4
            regs[A] = last_a
            regs[B] = last_b
            regs[C] = hi_a
            regs[D] = ((((last_b >> 4) ^ 8) - 8) * hi_a) & MASK
            regs[P] = (regs[P] + n) & MASK
            regs[Q] = (regs[Q] + n) & MASK
            regs[N] = 0
            return n

        return run

    def make_run_many(mems):
        gather, _ = _make_gather(mems)

        def run_many(regs_list):
            r0 = regs_list[0]
            n = _counter(r0, N)
            if n == 0 or not _uniform(regs_list, (P, Q, N)):
                return 0
            ma = gather(r0[P], n)
            mb = gather(r0[Q], n)
            if ma is None or mb is None:
                return 0
            va = ma.astype(np.int64)
            vb = mb.astype(np.int64)
            lo = np.einsum("ij,ij->i", va & 0xF, _signed_nibbles(vb & 0xF))
            hi = np.einsum("ij,ij->i", va >> 4, _signed_nibbles(vb >> 4))
            totals = lo + hi
            p_next = (r0[P] + n) & MASK
            q_next = (r0[Q] + n) & MASK
            for i, regs in enumerate(regs_list):
                last_a, last_b = int(ma[i, -1]), int(mb[i, -1])
                hi_a = last_a >> 4
                regs[ACC] = (regs[ACC] + int(totals[i])) & MASK
                regs[A] = last_a
                regs[B] = last_b
                regs[C] = hi_a
                regs[D] = ((((last_b >> 4) ^ 8) - 8) * hi_a) & MASK
                regs[P] = p_next
                regs[Q] = q_next
                regs[N] = 0
            return n

        return run_many

    run = make_run(mem) if mem is not None else None
    loop = KernelLoop.from_body("mac4", body[0].label, run, body, cycle_model)
    loop.make_run = make_run
    loop.make_run_many = make_run_many
    loop.meta = {"P": P, "Q": Q, "A": A, "B": B, "C": C, "D": D, "ACC": ACC, "N": N}
    return loop


def _match_memset(body, mem: Optional[Memory], cycle_model) -> Optional[KernelLoop]:
    """``sw value; addi ptr += 4; bne ptr, end`` word-fill loop (3 instrs)."""
    if len(body) != 3:
        return None
    st, p1, br = body
    P, Z, E = st.rs1, st.rs2, br.rs2
    if not (
        _is(st, "sw", imm=0)
        and _is(p1, "addi", rd=P, rs1=P, imm=4)
        and _is(br, "bne", rs1=P)
    ):
        return None
    # The stored register must stay constant across iterations (x0 always is).
    if P == 0 or P == E or (Z == P and Z != 0):
        return None

    def make_run(mem):
        store_bytes = mem.store_bytes

        def run(regs):
            span = regs[E] - regs[P]
            if span <= 0 or span % 4:
                return 0
            n = span // 4
            store_bytes(regs[P], regs[Z].to_bytes(4, "little") * n)
            regs[P] = regs[E]
            return n

        return run

    def make_run_many(mems):
        stores = [m.store_bytes for m in mems]

        def run_many(regs_list):
            r0 = regs_list[0]
            if not _uniform(regs_list, (P, E)):
                return 0
            span = r0[E] - r0[P]
            if span <= 0 or span % 4:
                return 0
            n = span // 4
            start, end = r0[P], r0[E]
            for store, regs in zip(stores, regs_list):
                store(start, regs[Z].to_bytes(4, "little") * n)
                regs[P] = end
            return n

        return run_many

    run = make_run(mem) if mem is not None else None
    loop = KernelLoop.from_body("memset", body[0].label, run, body, cycle_model)
    loop.make_run = make_run
    loop.make_run_many = make_run_many
    loop.meta = {"P": P, "Z": Z, "E": E}
    return loop


_MATCHERS = (_match_sdotp, _match_mac8, _match_mac4, _match_memset)


def recognize_loop(
    body: List[Instruction], start_index: int, mem: Optional[Memory], cycle_model
) -> Optional[KernelLoop]:
    """Try to match a basic block against the known loop shapes.

    ``body`` must be a block whose terminator is a ``bne`` back to its own
    first instruction (the caller checks the branch target).  ``mem`` may be
    ``None`` for a template build; the result then has ``run=None`` and must
    be bound through ``make_run`` before execution.
    """
    if body[-1].mnemonic != "bne":
        return None
    for matcher in _MATCHERS:
        loop = matcher(body, mem, cycle_model)
        if loop is not None:
            return loop
    return None


# --------------------------------------------------------------------------- #
# Second-level recognition: the convolution tap loop.
#
# The conv kernel wraps the SDOTP inner product in a "kx" loop over the
# kernel's horizontal taps:
#
#     kx:   mv   P,  AP        ; patch pixel pointer
#           mv   Q,  WP        ; weight tap pointer
#           li   N,  W         ; constant words-per-tap
#     simd: <sdotp inner loop>                    (self-loop block)
#           mv   WP, Q         ; weights are consumed contiguously
#           addi AP, AP, S     ; advance one pixel
#           addi KW, KW, -1
#           bne  KW, zero, kx
#
# Weights are contiguous across taps and the activation rows are strided by
# a compile-time constant, so the *entire* tap loop is one dot product of
# ``KW * W`` words — worth recognizing because per-tap trip counts are tiny
# (``W = ceil(c_in * bits / 32)``) and block dispatch would dominate.
# --------------------------------------------------------------------------- #
def try_tap_superloop(
    entry_body: List[Instruction],
    inner: KernelLoop,
    exit_body: List[Instruction],
    entry_pc: int,
    exit_fallthrough_pc: int,
    mem: Optional[Memory],
    cycle_model,
) -> Optional[KernelLoop]:
    """Fuse ``entry block -> sdotp inner loop -> exit block`` into one kernel.

    ``entry_body`` is the fall-through block ending at the inner loop,
    ``exit_body`` the block after it, whose ``bne`` targets ``entry_pc``.
    Returns a :class:`KernelLoop` to attach to the entry block (with
    ``exit_pc`` set past the exit block), or ``None``.
    """
    if inner.kind != "sdotp" or len(entry_body) != 3 or len(exit_body) != 4:
        return None
    m = inner.meta
    P, Q, A, B, ACC, N = m["P"], m["Q"], m["A"], m["B"], m["ACC"], m["N"]
    mv_p, mv_q, li_n = entry_body
    mv_wp, adv_ap, dec, br = exit_body
    AP, WP, KW = mv_p.rs1, mv_wp.rd, dec.rd
    if not (
        _is(mv_p, "add", rd=P, rs2=0)
        and _is(mv_q, "add", rd=Q, rs1=WP, rs2=0)
        and _is(li_n, "addi", rd=N, rs1=0)
        and li_n.imm > 0
        and _is(mv_wp, "add", rs1=Q, rs2=0)
        and _is(adv_ap, "addi", rd=AP, rs1=AP)
        and _is(dec, "addi", rd=KW, rs1=KW, imm=-1)
        and _is(br, "bne", rs1=KW, rs2=0)
    ):
        return None
    inner_regs = {P, Q, A, B, ACC, N}
    outer_regs = (AP, WP, KW)
    if (
        len(set(outer_regs)) != 3
        or 0 in outer_regs
        or inner_regs & set(outer_regs)
    ):
        return None
    W = li_n.imm
    S = adv_ap.imm
    eight_bit = m["eight_bit"]
    tap_bytes = 4 * W

    def make_run(mem):
        load_bytes = mem.load_bytes

        def run(regs):
            kw = _counter(regs, KW)
            if kw == 0:
                return 0
            ap = regs[AP]
            raw_b = load_bytes(regs[WP], tap_bytes * kw)
            if S == tap_bytes:
                raw_a = load_bytes(ap, tap_bytes * kw)
            else:
                raw_a = b"".join(
                    load_bytes((ap + j * S) & MASK, tap_bytes) for j in range(kw)
                )
            if eight_bit:
                va = np.frombuffer(raw_a, dtype=np.int8).astype(np.int64)
                vb = np.frombuffer(raw_b, dtype=np.int8).astype(np.int64)
                total = int(va @ vb)
            else:
                va = np.frombuffer(raw_a, dtype=np.uint8).astype(np.int64)
                vb = np.frombuffer(raw_b, dtype=np.uint8).astype(np.int64)
                total = int(
                    _signed_nibbles(va & 0xF) @ _signed_nibbles(vb & 0xF)
                    + _signed_nibbles(va >> 4) @ _signed_nibbles(vb >> 4)
                )
            regs[ACC] = (regs[ACC] + total) & MASK
            regs[A] = int.from_bytes(raw_a[-4:], "little")
            regs[B] = int.from_bytes(raw_b[-4:], "little")
            q_final = (regs[WP] + tap_bytes * kw) & MASK
            regs[P] = (ap + (kw - 1) * S + tap_bytes) & MASK
            regs[Q] = q_final
            regs[WP] = q_final
            regs[AP] = (ap + kw * S) & MASK
            regs[N] = 0
            regs[KW] = 0
            return kw

        return run

    def make_run_many(mems):
        gather, _ = _make_gather(mems)

        def run_many(regs_list):
            r0 = regs_list[0]
            kw = _counter(r0, KW)
            if kw == 0 or not _uniform(regs_list, (AP, WP, KW)):
                return 0
            ap = r0[AP]
            total_bytes = tap_bytes * kw
            mb = gather(r0[WP], total_bytes)
            if mb is None:
                return 0
            if S == tap_bytes:
                ma = gather(ap, total_bytes)
                if ma is None:
                    return 0
            else:
                parts = []
                for j in range(kw):
                    part = gather((ap + j * S) & MASK, tap_bytes)
                    if part is None:
                        return 0
                    parts.append(part)
                ma = np.concatenate(parts, axis=1)
            totals = _dot_rows_i8(ma, mb) if eight_bit else _dot_rows_nib(ma, mb)
            q_final = (r0[WP] + total_bytes) & MASK
            p_final = (ap + (kw - 1) * S + tap_bytes) & MASK
            ap_final = (ap + kw * S) & MASK
            for i, regs in enumerate(regs_list):
                regs[ACC] = (regs[ACC] + int(totals[i])) & MASK
                regs[A] = int.from_bytes(ma[i, -4:].tobytes(), "little")
                regs[B] = int.from_bytes(mb[i, -4:].tobytes(), "little")
                regs[P] = p_final
                regs[Q] = q_final
                regs[WP] = q_final
                regs[AP] = ap_final
                regs[N] = 0
                regs[KW] = 0
            return kw

        return run_many

    counts = {"add": 3, "addi": 3 + 3 * W, "bne": 1 + W, "lw": 2 * W}
    counts["sdotp8" if eight_bit else "sdotp4"] = W
    bt, bnt = cycle_model.branch_taken, cycle_model.branch_not_taken
    straight = (
        sum(cycle_model.cost(i) for i in entry_body)
        + W * inner.straight_cycles_per_iter
        + (W - 1) * bt
        + bnt
        + sum(cycle_model.cost(i) for i in exit_body[:-1])
    )
    run = make_run(mem) if mem is not None else None
    loop = KernelLoop(
        "sdotp-taps",
        entry_body[0].label,
        run,
        instrs_per_iter=len(entry_body) + W * inner.instrs_per_iter + len(exit_body),
        straight_cycles_per_iter=straight,
        counts_per_iter=counts,
        exit_pc=exit_fallthrough_pc,
    )
    loop.make_run = make_run
    loop.make_run_many = make_run_many
    loop.meta = {
        "P": P, "Q": Q, "A": A, "B": B, "ACC": ACC, "N": N,
        "AP": AP, "WP": WP, "KW": KW, "W": W, "S": S, "eight_bit": eight_bit,
    }
    return loop


# --------------------------------------------------------------------------- #
# Third-level recognition: the whole per-output-channel loop.
#
# For every output pixel (conv) or output vector (fc) codegen emits one
# rigid, fully-determined loop over the output channels:
#
#     oc:   lw   ACC, 0(BP)     ; bias
#           addi BP, BP, 4
#           ...per-tap inner products (kh*kw taps, conv) ...
#           mul/add/srai + two clamp diamonds        (requantization)
#           sw/sb/nibble-packing store
#           addi WP, WP, oc_stride
#           addi CNT, CNT, -1
#           bne  CNT, zero, oc
#
# Trip counts (kh, kw, words-per-tap) and strides are compile-time
# immediates, so the entire loop body is a matrix product ``(frames,
# channels) = act @ weights`` plus a vectorized requantization — one numpy
# dispatch per output *pixel* instead of one per channel per tap.  The only
# data-dependent control flow (the two clamp branches, the odd/even nibble
# path) is counted per frame through the kernel's ``aux`` slots so cycle
# and per-mnemonic statistics stay bit-exact.
# --------------------------------------------------------------------------- #
class _NoMatch(Exception):
    pass


class _Walk:
    """Cursor over the raw instruction stream with exact-shape asserts."""

    __slots__ = ("instrs", "i")

    def __init__(self, instrs: List[Instruction], i: int):
        self.instrs = instrs
        self.i = i

    def peek(self, k: int = 0) -> Optional[Instruction]:
        j = self.i + k
        return self.instrs[j] if 0 <= j < len(self.instrs) else None

    def take(self, mnemonic: str, **fields) -> Instruction:
        ins = self.peek()
        if ins is None or not _is(ins, mnemonic, **fields):
            raise _NoMatch
        self.i += 1
        return ins


def _take_addi_big(w: _Walk, rd: int):
    """Consume an ``Assembler.addi_big`` expansion updating register ``rd``.

    Returns ``(stride, t6_update, instrs)`` where ``t6_update`` is
    ``(scratch_reg, final_value)`` when the large-immediate ``li t6; add``
    form was used, else ``None``.
    """
    ins = w.peek()
    if ins is None:
        raise _NoMatch
    if ins.mnemonic == "addi" and ins.rd == rd and ins.rs1 == rd:
        w.i += 1
        return ins.imm, None, (ins,)
    instrs = []
    if ins.mnemonic == "addi" and ins.rs1 == 0 and ins.rd != rd:
        scratch, value = ins.rd, ins.imm
        instrs.append(ins)
        w.i += 1
    elif ins.mnemonic == "lui" and ins.rd != rd:
        scratch, value = ins.rd, ins.imm
        instrs.append(ins)
        w.i += 1
        p = w.peek()
        if p is not None and _is(p, "addi", rd=scratch, rs1=scratch):
            value += p.imm
            instrs.append(p)
            w.i += 1
    else:
        raise _NoMatch
    add = w.take("add", rd=rd, rs1=rd, rs2=scratch)
    instrs.append(add)
    return value, (scratch, value & MASK), tuple(instrs)


def try_channel_superloop(
    program: List[Instruction], head: int, cycle_model
) -> Optional[KernelLoop]:
    """Match the full conv/fc output-channel loop starting at index ``head``.

    Returns a :class:`KernelLoop` (kind ``conv-chan`` / ``fc-chan``) with
    ``aux`` side-path counters, or ``None``.  Matching is strict: any
    deviation from the exact codegen shape declines and the simulator falls
    back to the per-tap kernels, which are always bit-exact.
    """
    try:
        return _match_channel_loop(program, head, cycle_model)
    except _NoMatch:
        return None


def _match_channel_loop(program, head, cycle_model):
    bt, bnt = cycle_model.branch_taken, cycle_model.branch_not_taken
    cost = cycle_model.cost
    counts: Dict[str, int] = {}
    ipi = 0
    straight = 0

    def add(ins, mult=1, charge=True):
        nonlocal ipi, straight
        counts[ins.mnemonic] = counts.get(ins.mnemonic, 0) + mult
        ipi += mult
        if charge:
            straight += mult * cost(ins)

    w = _Walk(program, head)
    lw_b = w.take("lw", imm=0)
    ACC, BP = lw_b.rd, lw_b.rs1
    bp_adv = w.take("addi", rd=BP, rs1=BP, imm=4)
    add(lw_b)
    add(bp_adv)

    nxt = w.peek()
    if nxt is None:
        raise _NoMatch
    conv = nxt.mnemonic == "add" and nxt.rs2 == 0
    ROWP = WTAP = TAPP = KH = KW_ = PB = -1
    kh = kw = 1
    act_addr = 0
    if conv:
        mv_row = w.take("add", rs2=0)
        ROWP, PB = mv_row.rd, mv_row.rs1
        mv_wt = w.take("add", rs2=0)
        WTAP, WP = mv_wt.rd, mv_wt.rs1
        li_kh = w.take("addi", rs1=0)
        KH, kh = li_kh.rd, li_kh.imm
        if kh <= 0:
            raise _NoMatch
        add(mv_row)
        add(mv_wt)
        add(li_kh)
        ky_head = w.i
        mv_tap = w.take("add", rs2=0, rs1=ROWP)
        TAPP = mv_tap.rd
        li_kw = w.take("addi", rs1=0)
        KW_, kw = li_kw.rd, li_kw.imm
        if kw <= 0:
            raise _NoMatch
        add(mv_tap, kh)
        add(li_kw, kh)
        kx_head = w.i
        mv_t1 = w.take("add", rs2=0, rs1=TAPP)
        T1 = mv_t1.rd
        mv_t2 = w.take("add", rs2=0, rs1=WTAP)
        T2 = mv_t2.rd
        T = kh * kw
        add(mv_t1, T)
        add(mv_t2, T)
    else:
        ins = w.peek()
        if ins is not None and ins.mnemonic == "addi" and ins.rs1 == 0:
            w.i += 1
            T1, act_addr = ins.rd, ins.imm & MASK
            add(ins)
        elif ins is not None and ins.mnemonic == "lui":
            w.i += 1
            T1, act_addr = ins.rd, ins.imm & MASK
            add(ins)
            p = w.peek()
            if p is not None and _is(p, "addi", rd=T1, rs1=T1):
                w.i += 1
                act_addr = (act_addr + p.imm) & MASK
                add(p)
        else:
            raise _NoMatch
        mv_t2 = w.take("add", rs2=0)
        T2, WP = mv_t2.rd, mv_t2.rs1
        add(mv_t2)
        T = 1

    # ----- inner product: li N, <count>; <sdotp|mac8|mac4 self-loop> ----- #
    li_n = w.take("addi", rs1=0)
    N, words = li_n.rd, li_n.imm
    if words <= 0:
        raise _NoMatch
    add(li_n, T)
    first = w.peek()
    if first is None:
        raise _NoMatch
    if first.mnemonic == "lw":
        body_len, matcher = 7, _match_sdotp
    elif first.mnemonic == "lb":
        body_len, matcher = 8, _match_mac8
    elif first.mnemonic == "lbu":
        body_len, matcher = 16, _match_mac4
    else:
        raise _NoMatch
    loop_head = w.i
    body = program[loop_head : loop_head + body_len]
    if len(body) != body_len:
        raise _NoMatch
    inner = matcher(body, None, cycle_model)
    if inner is None:
        raise _NoMatch
    m = inner.meta
    if not (m["P"] == T1 and m["Q"] == T2 and m["ACC"] == ACC and m["N"] == N):
        raise _NoMatch
    br_idx = loop_head + body_len - 1
    if br_idx + body[-1].imm // 4 != loop_head:
        raise _NoMatch
    w.i = loop_head + body_len
    for ins in body[:-1]:
        add(ins, T * words)
    add(body[-1], T * words, charge=False)
    straight += T * ((words - 1) * bt + bnt)
    # Trailing alignment pads (mac modes advance both pointers past the pad).
    pad = 0
    p = w.peek()
    if (
        inner.kind != "sdotp"
        and p is not None
        and _is(p, "addi", rd=T1, rs1=T1)
        and 0 < p.imm < 4
    ):
        p2 = w.peek(1)
        if p2 is None or not _is(p2, "addi", rd=T2, rs1=T2, imm=p.imm):
            raise _NoMatch
        pad = p.imm
        add(p, T)
        add(p2, T)
        w.i += 2
    span_read = 4 * words if inner.kind == "sdotp" else words
    tap_adv = span_read + pad

    t6_kx = t6_ky = t6_tail = None
    pixel_stride = row_stride = 0
    if conv:
        mv_back = w.take("add", rd=WTAP, rs1=T2, rs2=0)
        add(mv_back, T)
        pixel_stride, t6_kx, pix_instrs = _take_addi_big(w, TAPP)
        for ins in pix_instrs:
            add(ins, T)
        dec_kw = w.take("addi", rd=KW_, rs1=KW_, imm=-1)
        add(dec_kw, T)
        br_kx = w.take("bne", rs1=KW_, rs2=0)
        if (w.i - 1) + br_kx.imm // 4 != kx_head:
            raise _NoMatch
        add(br_kx, T, charge=False)
        straight += kh * ((kw - 1) * bt + bnt)
        row_stride, t6_ky, row_instrs = _take_addi_big(w, ROWP)
        for ins in row_instrs:
            add(ins, kh)
        dec_kh = w.take("addi", rd=KH, rs1=KH, imm=-1)
        add(dec_kh, kh)
        br_ky = w.take("bne", rs1=KH, rs2=0)
        if (w.i - 1) + br_ky.imm // 4 != ky_head:
            raise _NoMatch
        add(br_ky, kh, charge=False)
        straight += (kh - 1) * bt + bnt
        if pixel_stride <= 0 or row_stride <= 0:
            raise _NoMatch

    # ----- requantization (optional) ----- #
    aux: List[tuple] = []
    nxt = w.peek()
    if nxt is None:
        raise _NoMatch
    requant = nxt.mnemonic == "mul"
    RES = MUL = RND = LEV = -1
    shift = 0
    if requant:
        mul_i = w.take("mul", rs1=ACC)
        RES, MUL = mul_i.rd, mul_i.rs2
        rnd_i = w.take("add", rd=RES, rs1=RES)
        RND = rnd_i.rs2
        add(mul_i)
        add(rnd_i)
        p = w.peek()
        if p is not None and _is(p, "srai", rd=RES, rs1=RES):
            shift = p.imm
            w.i += 1
            add(p)
        bge1 = w.take("bge", rs1=RES, rs2=0, imm=8)
        clamp0 = w.take("add", rd=RES, rs1=0, rs2=0)
        bge2 = w.take("bge", rs2=RES, imm=8)
        LEV = bge2.rs1
        clamp1 = w.take("add", rd=RES, rs1=LEV, rs2=0)
        add(bge1, charge=False)
        add(bge2, charge=False)
        straight += 2 * bt  # common path: both clamps skipped (branch taken)
        aux.append((1, (bnt - bt) + cost(clamp0), {"add": 1}))
        aux.append((1, (bnt - bt) + cost(clamp1), {"add": 1}))
        store_val = RES
    else:
        store_val = ACC

    # ----- store ----- #
    PAR = PEND = T5 = -1
    nxt = w.peek()
    if nxt is None:
        raise _NoMatch
    if nxt.mnemonic == "sw":
        st = w.take("sw", rs2=store_val, imm=0)
        OUTP = st.rs1
        out_adv = w.take("addi", rd=OUTP, rs1=OUTP, imm=4)
        add(st)
        add(out_adv)
        out_bits = 32
    elif nxt.mnemonic == "sb":
        st = w.take("sb", rs2=store_val, imm=0)
        OUTP = st.rs1
        out_adv = w.take("addi", rd=OUTP, rs1=OUTP, imm=1)
        add(st)
        add(out_adv)
        out_bits = 8
    elif nxt.mnemonic == "bne":
        br_par = w.take("bne", rs2=0, imm=16)
        PAR = br_par.rs1
        mv_pend = w.take("add", rs1=store_val, rs2=0)
        PEND = mv_pend.rd
        li_one = w.take("addi", rd=PAR, rs1=0, imm=1)
        jal = w.take("jal", rd=0, imm=24)
        sll = w.take("slli", rs1=store_val, imm=4)
        T5 = sll.rd
        orr = w.take("or", rd=T5, rs1=T5, rs2=PEND)
        st = w.take("sb", rs2=T5, imm=0)
        OUTP = st.rs1
        out_adv = w.take("addi", rd=OUTP, rs1=OUTP, imm=1)
        li_zero = w.take("addi", rd=PAR, rs1=0, imm=0)
        add(br_par, charge=False)
        straight += bnt  # common-path convention: charge the even fall-through
        aux.append(
            (3, cost(mv_pend) + cost(li_one) + cost(jal),
             {"add": 1, "addi": 1, "jal": 1})
        )
        aux.append(
            (5,
             (bt - bnt) + cost(sll) + cost(orr) + cost(st)
             + cost(out_adv) + cost(li_zero),
             {"slli": 1, "or": 1, "sb": 1, "addi": 2})
        )
        out_bits = 4
    else:
        raise _NoMatch

    # ----- tail: advance weight base, decrement, loop ----- #
    oc_stride, t6_tail, oc_instrs = _take_addi_big(w, WP)
    if oc_stride <= 0:
        raise _NoMatch
    for ins in oc_instrs:
        add(ins)
    dec = w.take("addi", imm=-1)
    CNTR = dec.rd
    if dec.rs1 != CNTR:
        raise _NoMatch
    add(dec)
    backedge = w.take("bne", rs1=CNTR, rs2=0)
    if (w.i - 1) + backedge.imm // 4 != head:
        raise _NoMatch
    add(backedge, charge=False)  # commit charges the back-branch analytically
    exit_pc = 4 * w.i

    # ----- register-role sanity: control regs pairwise distinct, scratch
    # regs disjoint from them (requant result may alias the inner scratch
    # registers; ordered final-state updates below handle that). ----- #
    control = [CNTR, BP, WP, OUTP, ACC, T1, T2, N]
    if conv:
        control += [PB, ROWP, WTAP, TAPP, KH, KW_]
    if requant:
        control += [MUL, RND, LEV]
    if out_bits == 4:
        control += [PAR, PEND]
    if len(set(control)) != len(control) or 0 in control:
        raise _NoMatch
    scratch = {m["A"], m["B"]}
    if inner.kind == "mac4":
        scratch |= {m["C"], m["D"]}
    if requant:
        scratch.add(RES)
    if out_bits == 4:
        scratch.add(T5)
    for tt in (t6_kx, t6_ky, t6_tail):
        if tt is not None:
            scratch.add(tt[0])
    if scratch & set(control) or 0 in scratch:
        raise _NoMatch

    kind_mode = (
        ("sd8" if m.get("eight_bit") else "sd4")
        if inner.kind == "sdotp"
        else inner.kind
    )
    uniform_regs = [CNTR, BP, WP, OUTP]
    if conv:
        uniform_regs.append(PB)
    if requant:
        uniform_regs += [MUL, RND, LEV]
    if out_bits == 4:
        uniform_regs.append(PAR)
    A, B = m["A"], m["B"]
    C = m.get("C", -1)
    D = m.get("D", -1)
    mac4 = inner.kind == "mac4"

    def make_run_many(mems):
        gather, scatter = _make_gather(mems)
        F = len(mems)
        lev_bit = 0x8000_0000

        def run_many(regs_list, cnts, aux_base):
            r0 = regs_list[0]
            n = _counter(r0, CNTR)
            if n == 0 or not _uniform(regs_list, uniform_regs):
                return 0, None
            bp, wp, outp = r0[BP], r0[WP], r0[OUTP]
            bias_g = gather(bp, 4 * n)
            if bias_g is None:
                return 0, None
            spans = [(bp, bp + 4 * n)]
            if conv:
                pb = r0[PB]
                taps = []
                for ky in range(kh):
                    row = (pb + ky * row_stride) & MASK
                    for kx in range(kw):
                        a = (row + kx * pixel_stride) & MASK
                        g = gather(a, span_read)
                        if g is None:
                            return 0, None
                        spans.append((a, a + span_read))
                        taps.append(g)
                act = np.concatenate(taps, axis=1) if T > 1 else taps[0]
            else:
                act = gather(act_addr, span_read)
                if act is None:
                    return 0, None
                spans.append((act_addr, act_addr + span_read))
            wext = (n - 1) * oc_stride + (T - 1) * tap_adv + span_read
            wg = gather(wp, wext)
            if wg is None:
                return 0, None
            spans.append((wp, wp + wext))
            if out_bits == 32:
                out_len = 4 * n
            elif out_bits == 8:
                out_len = n
            else:
                p0 = 1 if r0[PAR] else 0
                out_len = (p0 + n) // 2
            # The interleaved store-then-read of the interpreter is only
            # congruent with compute-all-then-store-all when the output
            # span is disjoint from every gathered input span.
            for lo, hi in spans:
                if outp < hi and lo < outp + out_len:
                    return 0, None

            w4 = np.lib.stride_tricks.as_strided(
                wg,
                shape=(F, n, T, span_read),
                strides=(wg.strides[0], oc_stride, tap_adv, 1),
            )
            act3 = act.reshape(F, T, span_read)
            if kind_mode in ("sd8", "mac8"):
                va = act3.view(np.int8).astype(np.int64)
                vw = w4.view(np.int8).astype(np.int64)
                dots = np.einsum("fts,fnts->fn", va, vw)
            elif kind_mode == "sd4":
                va = act3.astype(np.int64)
                vw = w4.astype(np.int64)
                dots = np.einsum(
                    "fts,fnts->fn",
                    _signed_nibbles(va & 0xF), _signed_nibbles(vw & 0xF),
                ) + np.einsum(
                    "fts,fnts->fn",
                    _signed_nibbles(va >> 4), _signed_nibbles(vw >> 4),
                )
            else:  # mac4: unsigned activation nibbles, signed weight nibbles
                va = act3.astype(np.int64)
                vw = w4.astype(np.int64)
                dots = np.einsum(
                    "fts,fnts->fn", va & 0xF, _signed_nibbles(vw & 0xF)
                ) + np.einsum(
                    "fts,fnts->fn", va >> 4, _signed_nibbles(vw >> 4)
                )
            bias = np.ascontiguousarray(bias_g).view("<i4").astype(np.int64)
            acc32 = (bias + dots) & MASK

            extras = [0] * F
            if requant:
                mult, rnd, lev_raw = r0[MUL], r0[RND], r0[LEV]
                lev_s = lev_raw - (1 << 32) if lev_raw & lev_bit else lev_raw
                t = (acc32 * mult + rnd) & MASK
                s = t - ((t & lev_bit) << 1)
                if shift:
                    s = s >> shift
                neg = s < 0
                s = np.where(neg, 0, s)
                hi_clamp = s > lev_s
                vals = np.where(hi_clamp, lev_raw, s)
                n_neg = neg.sum(axis=1)
                n_hi = hi_clamp.sum(axis=1)
            else:
                vals = acc32

            # ----- pack + store ----- #
            if out_bits == 32:
                byts = vals.astype("<u4").view(np.uint8)
            elif out_bits == 8:
                byts = (vals & 0xFF).astype(np.uint8)
            else:
                if p0:
                    pend0 = np.array(
                        [regs[PEND] for regs in regs_list], dtype=np.int64
                    )
                    extended = np.concatenate([pend0[:, None], vals], axis=1)
                else:
                    extended = vals
                if out_len:
                    pairs = extended[:, : 2 * out_len]
                    lob = pairs[:, 0::2]
                    hib = pairs[:, 1::2]
                    byts = (((hib << 4) | lob) & 0xFF).astype(np.uint8)
            if out_len and not scatter(outp, byts):
                return 0, None

            # ----- aux hit counters / extra executed instructions ----- #
            ax = 0
            if requant:
                for f in range(F):
                    a_, b_ = int(n_neg[f]), int(n_hi[f])
                    c = cnts[f]
                    c[aux_base] += a_
                    c[aux_base + 1] += b_
                    extras[f] = a_ + b_
                ax = 2
            if out_bits == 4:
                n_odd = out_len
                n_even = n - n_odd
                extra4 = 3 * n_even + 5 * n_odd
                for f in range(F):
                    c = cnts[f]
                    c[aux_base + ax] += n_even
                    c[aux_base + ax + 1] += n_odd
                    extras[f] += extra4

            # ----- final architectural state, in execution order ----- #
            last_act = act3[:, -1, :]
            last_w = w4[:, -1, -1, :]
            if kind_mode in ("sd8", "sd4"):
                a_fin = np.ascontiguousarray(last_act[:, -4:]).view("<u4").ravel()
                b_fin = np.ascontiguousarray(last_w[:, -4:]).view("<u4").ravel()
            elif kind_mode == "mac8":
                la = last_act[:, -1].astype(np.int8).astype(np.int64)
                lb = last_w[:, -1].astype(np.int8).astype(np.int64)
                a_fin = (la * lb) & MASK
                b_fin = lb & MASK
            else:
                la = last_act[:, -1].astype(np.int64)
                lb = last_w[:, -1].astype(np.int64)
                a_fin = la
                b_fin = lb
                c_fin = la >> 4
                d_fin = ((((lb >> 4) ^ 8) - 8) * (la >> 4)) & MASK
            t2_final = (wp + (n - 1) * oc_stride + T * tap_adv) & MASK
            ups = [(T2, t2_final), (N, 0), (A, a_fin), (B, b_fin)]
            if mac4:
                ups += [(C, c_fin), (D, d_fin)]
            ups.append((ACC, acc32[:, -1]))
            if conv:
                row_last = (pb + (kh - 1) * row_stride) & MASK
                ups.append((T1, (row_last + (kw - 1) * pixel_stride
                                 + tap_adv) & MASK))
                ups.append((WTAP, t2_final))
                ups.append((TAPP, (row_last + kw * pixel_stride) & MASK))
                if t6_kx is not None:
                    ups.append(t6_kx)
                ups.append((KW_, 0))
                ups.append((ROWP, (pb + kh * row_stride) & MASK))
                if t6_ky is not None:
                    ups.append(t6_ky)
                ups.append((KH, 0))
            else:
                ups.append((T1, (act_addr + tap_adv) & MASK))
            if requant:
                ups.append((RES, vals[:, -1]))
            if out_bits == 4:
                pend_last = 2 * ((p0 + n - 1) // 2)
                ups.append((PEND, extended[:, pend_last]))
                ups.append((PAR, (p0 + n) & 1))
                if out_len:
                    ups.append(
                        (T5, (((hib[:, -1] << 4) & MASK) | lob[:, -1]))
                    )
            ups.append((OUTP, (outp + out_len) & MASK))
            ups.append((BP, (bp + 4 * n) & MASK))
            if t6_tail is not None:
                ups.append(t6_tail)
            ups.append((WP, (wp + n * oc_stride) & MASK))
            ups.append((CNTR, 0))
            for f, regs in enumerate(regs_list):
                for reg, v in ups:
                    regs[reg] = int(v[f]) if isinstance(v, np.ndarray) else v
            return n, extras

        return run_many

    def make_run(mem):
        rm = make_run_many([mem])

        def run(regs, cnt, aux_base):
            iters, extras = rm([regs], [cnt], aux_base)
            return iters, (extras[0] if iters else 0)

        return run

    loop = KernelLoop(
        "conv-chan" if conv else "fc-chan",
        program[head].label,
        None,
        instrs_per_iter=ipi,
        straight_cycles_per_iter=straight,
        counts_per_iter=counts,
        exit_pc=exit_pc,
    )
    loop.make_run = make_run
    loop.make_run_many = make_run_many
    loop.aux = tuple(aux)
    loop.wants_cnt = True
    loop.meta = {
        "mode": kind_mode, "kh": kh, "kw": kw, "words": words,
        "span": span_read, "tap_adv": tap_adv, "out_bits": out_bits,
        "requant": requant, "shift": shift, "oc_stride": oc_stride,
        "pixel_stride": pixel_stride, "row_stride": row_stride,
    }
    return loop


def attach_channel_superloops(blocks, program: List[Instruction], cycle_model):
    """Attach channel superloops to the head blocks of matching oc loops.

    Called by the JIT template build only — the closure-based fast
    simulator keeps its per-tap kernel protocol untouched.  Candidates are
    backward ``bne`` targets whose block opens with the bias ``lw``; the
    strict matcher declines everything else.
    """
    by_pc = {b.pc: b for b in blocks}
    seen = set()
    for block in blocks:
        term = block.term
        if term is None or term.instr.mnemonic != "bne":
            continue
        target = term.taken_pc
        if target >= term.pc or target in seen:
            continue
        seen.add(target)
        head = by_pc.get(target)
        if (
            head is None
            or head.kernel is not None
            or head.decoded[0].instr.mnemonic != "lw"
        ):
            continue
        loop = try_channel_superloop(program, head.start, cycle_model)
        if loop is not None:
            head.kernel = loop
