"""Debug entry point for the simulator JIT tier.

``python -m repro.hw.sim --dump <model>`` compiles a representative
quantized CNN for ``<model>`` (``maupiti`` or ``ibex``), JIT-compiles its
program and prints the generated Python source of every basic block, plus
the kernel counts and block tallies — the fastest way to inspect what the
codegen in :mod:`repro.hw.sim.jit` actually emits for a real workload.
"""

from __future__ import annotations

import argparse
import sys


def _build_compiled(target: str, quick: bool):
    """Compile a small demo CNN for the requested target."""
    import numpy as np

    from ...datasets import generate_linaige
    from ...deploy.program import compile_network
    from ...flow import Preprocessor, build_seed_cnn
    from ...quant import PrecisionScheme, convert_to_integer, quantize_model
    from ..platform import ibex_platform, maupiti_platform

    platform = {"maupiti": maupiti_platform, "ibex": ibex_platform}[target]()
    rng = np.random.default_rng(0)
    dataset = generate_linaige(seed=0, scale=0.03)
    train = np.concatenate(
        [s.frames for s in dataset.sessions if s.session_id != 2]
    )
    pre = Preprocessor.fit(train)
    cfg = (
        dict(conv_channels=(12, 16), hidden_features=24)
        if quick
        else dict(conv_channels=(24, 24), hidden_features=40)
    )
    model = build_seed_cnn(rng, **cfg)
    qmodel = quantize_model(
        model, PrecisionScheme((8, 4, 4, 8)), calibration_data=pre(train)[:256]
    )
    compiled = compile_network(
        convert_to_integer(qmodel),
        use_sdotp=platform.spec.supports_sdotp,
        code_overhead_bytes=platform.spec.code_overhead_bytes,
    )
    return platform, compiled


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.hw.sim", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--dump",
        metavar="MODEL",
        choices=("maupiti", "ibex"),
        help="compile a demo CNN for MODEL and print the generated JIT source",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use the smaller CI-sized demo network",
    )
    args = parser.parse_args(argv)
    if not args.dump:
        parser.print_help()
        return 2

    from .trace_cache import get_template

    platform, compiled = _build_compiled(args.dump, args.quick)
    core = platform.core
    template = get_template(
        compiled.program, core.cycle_model, core.enable_sdotp
    )
    tallies = template.block_tallies()
    print(f"# target: {args.dump} ({len(compiled.program)} instructions)")
    print(f"# fingerprint: {template.fingerprint}")
    print(
        f"# blocks: {tallies['total']} total, {tallies['kernel']} kernel, "
        f"{tallies['jit']} jit-compiled, {tallies['closure']} closure-fallback"
    )
    print(f"# kernel counts: {template.kernel_counts()}")
    print()
    print(template.source)
    return 0


if __name__ == "__main__":
    sys.exit(main())
