"""Process-wide, thread-safe LRU cache of :class:`~repro.hw.sim.jit.JitTemplate`.

Every ``repro.compile(...)`` call used to re-decode and re-compile the same
program — NAS sweeps, stage-4 deploys and serve worker restarts each paid
the full trace compile again.  Templates are memory-independent (see
:mod:`repro.hw.sim.jit`), so one compile can serve every engine in the
process: the cache is keyed by the **program content** (the structural tuple
of every instruction), the :class:`~repro.hw.cycles.CycleModel` (a frozen,
hashable dataclass) and the ``enable_sdotp`` flag.

Knobs
-----
* capacity — constructor argument, :func:`set_trace_cache_capacity`, or the
  ``REPRO_SIM_TRACE_CACHE`` environment variable (default 16 templates).
* :func:`clear_trace_cache` — drop all cached templates (tests, memory
  pressure).
* :func:`cache_stats` — hits / misses / evictions counters.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..cycles import CycleModel, DEFAULT_CYCLE_MODEL
from ..isa import Instruction
from .jit import JitTemplate

_DEFAULT_CAPACITY = 16


def structural_key(program: List[Instruction]) -> Tuple:
    """Content key of a program: every field that affects execution."""
    return tuple(
        (i.mnemonic, i.rd, i.rs1, i.rs2, i.imm) for i in program
    )


@dataclass
class TraceCacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0


class TraceCache:
    """Thread-safe LRU of compiled JIT templates."""

    def __init__(self, capacity: Optional[int] = None):
        if capacity is None:
            capacity = int(
                os.environ.get("REPRO_SIM_TRACE_CACHE", _DEFAULT_CAPACITY)
            )
        self._capacity = max(1, capacity)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple, JitTemplate]" = OrderedDict()
        self._stats = TraceCacheStats()

    # ------------------------------------------------------------------ #
    def get(
        self,
        program: List[Instruction],
        cycle_model: CycleModel,
        enable_sdotp: bool,
    ) -> JitTemplate:
        """Return the (possibly cached) template for ``program``.

        Template construction happens outside the lock so a slow compile
        never blocks concurrent lookups of other programs; the price is
        that two threads racing on the *same* uncached program may both
        compile it — the loser's template is discarded, correctness is
        unaffected (templates are immutable and interchangeable).
        """
        cycle_model = cycle_model or DEFAULT_CYCLE_MODEL
        key = (structural_key(program), cycle_model, enable_sdotp)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._stats.hits += 1
                return entry
            self._stats.misses += 1
        template = JitTemplate(list(program), cycle_model, enable_sdotp)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                return existing
            self._entries[key] = template
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._stats.evictions += 1
        return template

    # ------------------------------------------------------------------ #
    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._stats = TraceCacheStats()

    def set_capacity(self, capacity: int) -> None:
        with self._lock:
            self._capacity = max(1, capacity)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._stats.evictions += 1

    @property
    def capacity(self) -> int:
        return self._capacity

    def stats(self) -> TraceCacheStats:
        with self._lock:
            return TraceCacheStats(
                self._stats.hits, self._stats.misses, self._stats.evictions
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_CACHE = TraceCache()


def get_template(
    program: List[Instruction],
    cycle_model: CycleModel,
    enable_sdotp: bool,
) -> JitTemplate:
    """Fetch a compiled template from the process-wide cache."""
    return _CACHE.get(program, cycle_model, enable_sdotp)


def clear_trace_cache() -> None:
    """Drop every cached template and reset counters (mainly for tests)."""
    _CACHE.clear()


def set_trace_cache_capacity(capacity: int) -> None:
    """Bound the process-wide cache to ``capacity`` templates (LRU)."""
    _CACHE.set_capacity(capacity)


def cache_stats() -> TraceCacheStats:
    """Hit/miss/eviction counters of the process-wide cache."""
    return _CACHE.stats()
