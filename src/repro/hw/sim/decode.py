"""Pre-decoding of :class:`~repro.hw.isa.Instruction` objects into closures.

The reference interpreter (:meth:`repro.hw.core.IbexCore._execute`) pays a
long mnemonic-dispatch chain, two signed/unsigned operand conversions and a
per-instruction statistics update for *every executed instruction*.  The
trace compiler instead decodes each instruction **once** into a small Python
closure specialized on its register indices and immediate (classic
threaded-code technique); executing the program then touches only list
indexing and integer arithmetic.

Every closure reproduces the interpreter's semantics bit-exactly, including
its quirks (``div``/``rem`` via ``int(a / b)``, unmasked load/store
addresses, ``jalr`` target ``& ~1``).  Registers are stored exactly like the
interpreter stores them: unsigned 32-bit Python ints, with ``x0``
hard-wired to zero by never writing it.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..isa import BRANCHES, Instruction
from ..memory import Memory
from ..sdotp import sdotp4, sdotp8

MASK = 0xFFFFFFFF

# Instruction kinds, used by the block builder and the simulator main loop.
STRAIGHT = 0
BRANCH = 1
JAL = 2
JALR = 3
EBREAK = 4


def _sx(value: int) -> int:
    """Signed view of an unsigned 32-bit register value."""
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


class Decoded:
    """One pre-decoded instruction.

    ``op`` is a closure ``op(regs)`` executing the instruction's side
    effects (``None`` for architectural no-ops such as ALU writes to
    ``x0``); control-flow instructions carry no ``op`` and are handled by
    the simulator through ``kind``/``cond``/``taken_pc``.
    """

    __slots__ = (
        "instr",
        "mnemonic",
        "kind",
        "op",
        "cond",
        "cost",
        "rd",
        "rs1",
        "imm",
        "pc",
        "taken_pc",
    )

    def __init__(self, instr: Instruction, index: int):
        self.instr = instr
        self.mnemonic = instr.mnemonic
        self.kind = STRAIGHT
        self.op: Optional[Callable] = None
        self.cond: Optional[Callable] = None
        self.cost = 0
        self.rd = instr.rd
        self.rs1 = instr.rs1
        self.imm = instr.imm
        self.pc = 4 * index
        self.taken_pc = 4 * index + instr.imm


def _compile_branch(instr: Instruction) -> Callable:
    """Branch condition closure; compares exactly like the interpreter."""
    a, b = instr.rs1, instr.rs2
    m = instr.mnemonic
    if m == "beq":
        return lambda regs: regs[a] == regs[b]
    if m == "bne":
        return lambda regs: regs[a] != regs[b]
    if m == "blt":
        return lambda regs: _sx(regs[a]) < _sx(regs[b])
    if m == "bge":
        return lambda regs: _sx(regs[a]) >= _sx(regs[b])
    if m == "bltu":
        return lambda regs: regs[a] < regs[b]
    return lambda regs: regs[a] >= regs[b]  # bgeu


def _compile_straight(
    instr: Instruction, index: int, mem: Memory, enable_sdotp: bool
) -> Optional[Callable]:
    """Closure for a non-control-flow instruction (or ``None`` for a no-op)."""
    from ..core import SimulationError  # deferred to avoid a module cycle

    m = instr.mnemonic
    rd, a, b, imm = instr.rd, instr.rs1, instr.rs2, instr.imm
    uimm = imm & MASK

    if m in ("sdotp8", "sdotp4"):
        fn = sdotp8 if m == "sdotp8" else sdotp4
        if not enable_sdotp:
            def op(regs, m=m):
                raise SimulationError(
                    f"{m} executed on a core without the SDOTP extension"
                )
            return op
        if rd == 0:
            return None

        def op(regs, fn=fn, rd=rd, a=a, b=b):
            regs[rd] = fn(regs[a], regs[b], regs[rd])
        return op

    # Memory accesses keep their side effects (bounds checks) even when the
    # destination is x0, exactly like the interpreter.
    if m == "lw":
        lw = mem.load_word
        if rd == 0:
            return lambda regs: lw(regs[a] + imm, signed=False) and None
        def op(regs):
            regs[rd] = lw(regs[a] + imm, signed=False)
        return op
    if m == "lh":
        lh = mem.load_half
        if rd == 0:
            return lambda regs: lh(regs[a] + imm) and None
        def op(regs):
            regs[rd] = lh(regs[a] + imm) & MASK
        return op
    if m == "lhu":
        lh = mem.load_half
        if rd == 0:
            return lambda regs: lh(regs[a] + imm, signed=False) and None
        def op(regs):
            regs[rd] = lh(regs[a] + imm, signed=False)
        return op
    if m == "lb":
        lb = mem.load_byte
        if rd == 0:
            return lambda regs: lb(regs[a] + imm) and None
        def op(regs):
            regs[rd] = lb(regs[a] + imm) & MASK
        return op
    if m == "lbu":
        lb = mem.load_byte
        if rd == 0:
            return lambda regs: lb(regs[a] + imm, signed=False) and None
        def op(regs):
            regs[rd] = lb(regs[a] + imm, signed=False)
        return op
    if m == "sw":
        sw = mem.store_word
        return lambda regs: sw(regs[a] + imm, regs[b])
    if m == "sh":
        sh = mem.store_half
        return lambda regs: sh(regs[a] + imm, regs[b])
    if m == "sb":
        sb = mem.store_byte
        return lambda regs: sb(regs[a] + imm, regs[b])

    if rd == 0:  # remaining instructions only write a register
        return None

    if m == "add":
        def op(regs):
            regs[rd] = (regs[a] + regs[b]) & MASK
    elif m == "sub":
        def op(regs):
            regs[rd] = (regs[a] - regs[b]) & MASK
    elif m == "and":
        def op(regs):
            regs[rd] = regs[a] & regs[b]
    elif m == "or":
        def op(regs):
            regs[rd] = regs[a] | regs[b]
    elif m == "xor":
        def op(regs):
            regs[rd] = regs[a] ^ regs[b]
    elif m == "sll":
        def op(regs):
            regs[rd] = (regs[a] << (regs[b] & 0x1F)) & MASK
    elif m == "srl":
        def op(regs):
            regs[rd] = regs[a] >> (regs[b] & 0x1F)
    elif m == "sra":
        def op(regs):
            regs[rd] = (_sx(regs[a]) >> (regs[b] & 0x1F)) & MASK
    elif m == "slt":
        def op(regs):
            regs[rd] = int(_sx(regs[a]) < _sx(regs[b]))
    elif m == "sltu":
        def op(regs):
            regs[rd] = int(regs[a] < regs[b])
    elif m == "mul":
        def op(regs):
            regs[rd] = (regs[a] * regs[b]) & MASK
    elif m == "mulh":
        def op(regs):
            regs[rd] = ((_sx(regs[a]) * _sx(regs[b])) >> 32) & MASK
    elif m == "div":
        # int(x / y) matches the interpreter exactly, float rounding and all.
        def op(regs):
            rs1, rs2 = _sx(regs[a]), _sx(regs[b])
            regs[rd] = MASK if rs2 == 0 else int(rs1 / rs2) & MASK
    elif m == "rem":
        def op(regs):
            rs1, rs2 = _sx(regs[a]), _sx(regs[b])
            regs[rd] = rs1 & MASK if rs2 == 0 else (rs1 - int(rs1 / rs2) * rs2) & MASK
    elif m == "addi":
        def op(regs):
            regs[rd] = (regs[a] + imm) & MASK
    elif m == "andi":
        def op(regs):
            regs[rd] = regs[a] & uimm
    elif m == "ori":
        def op(regs):
            regs[rd] = regs[a] | uimm
    elif m == "xori":
        def op(regs):
            regs[rd] = regs[a] ^ uimm
    elif m == "slti":
        def op(regs):
            regs[rd] = int(_sx(regs[a]) < imm)
    elif m == "sltiu":
        def op(regs):
            regs[rd] = int(regs[a] < uimm)
    elif m == "slli":
        sh = imm & 0x1F
        def op(regs):
            regs[rd] = (regs[a] << sh) & MASK
    elif m == "srli":
        sh = imm & 0x1F
        def op(regs):
            regs[rd] = regs[a] >> sh
    elif m == "srai":
        sh = imm & 0x1F
        def op(regs):
            regs[rd] = (_sx(regs[a]) >> sh) & MASK
    elif m == "lui":
        def op(regs):
            regs[rd] = uimm
    elif m == "auipc":
        # Position-dependent: specialized on the static pc (4 * index).
        value = (4 * index + imm) & MASK
        def op(regs):
            regs[rd] = value
    else:  # pragma: no cover - defensive, mirrors the interpreter
        def op(regs, m=m):
            raise SimulationError(f"unimplemented instruction {m}")
    return op


def decode_meta(
    program: List[Instruction],
    cycle_model,
) -> List[Decoded]:
    """Memory-independent pre-decode: kinds, costs, pcs and branch conditions.

    The resulting :class:`Decoded` objects carry no executable ``op``
    closures (those bind a concrete :class:`~repro.hw.memory.Memory`); the
    JIT template builder uses this form to construct basic blocks and
    generated source that can be shared across engines and memories.
    """
    decoded: List[Decoded] = []
    for index, instr in enumerate(program):
        d = Decoded(instr, index)
        m = instr.mnemonic
        if m in BRANCHES:
            d.kind = BRANCH
            d.cond = _compile_branch(instr)
        elif m == "jal":
            d.kind = JAL
            d.cost = cycle_model.jump
        elif m == "jalr":
            d.kind = JALR
            d.cost = cycle_model.jump
        elif m == "ebreak":
            d.kind = EBREAK
            d.cost = cycle_model.cost(instr)
        else:
            d.kind = STRAIGHT
            d.cost = cycle_model.cost(instr)
        decoded.append(d)
    return decoded


def decode_program(
    program: List[Instruction],
    memory: Memory,
    cycle_model,
    enable_sdotp: bool,
) -> List[Decoded]:
    """Pre-decode every instruction of ``program`` into a :class:`Decoded`."""
    decoded = decode_meta(program, cycle_model)
    for index, d in enumerate(decoded):
        if d.kind == STRAIGHT:
            d.op = _compile_straight(d.instr, index, memory, enable_sdotp)
    return decoded
