"""Second-generation JIT tier: basic blocks compiled to Python source.

The fast simulator (:mod:`repro.hw.sim.simulator`) executes non-kernel
blocks as a list of per-instruction closures — every instruction still pays
a Python call plus a list walk.  This module instead *generates specialized
straight-line Python source* for each basic block (registers as locals,
immediates and static pcs folded into literals, memory accesses inlined
against raw dmem views) and ``compile()``/``exec()``s it once, so a block
execution is a single function call.

The compiled artifact is split in two:

* :class:`JitTemplate` — **memory-independent**: decoded blocks, recognized
  kernel loops (unbound), the generated module source and its compiled code
  object, plus the per-block statistics metadata.  Templates are immutable
  after construction and safe to share across threads and engines; the
  process-wide :mod:`repro.hw.sim.trace_cache` stores exactly these.
* :class:`JitProgram` — a template **bound** to one
  :class:`~repro.hw.memory.Memory`: ``exec`` of the code object binds the
  inlined load/store helpers to that memory's dmem bytearray, and each
  kernel loop gets its ``run`` closure from ``make_run(mem)``.  Binding is
  cheap (one ``exec`` of an already-compiled module, no re-decode).

Execution strategy per block, fastest first: recognized kernel loop (one
numpy op for the whole remaining trip count) → generated block function →
per-instruction closure fallback for any pc that is not a block leader
(``jalr`` into a block interior, misaligned pcs).  Statistics are counted
per block execution in a flat per-run counter list (two slots per block:
executions and branches-taken; two more per kernel block: iterations and
vectorized calls) and scaled analytically once at the end of the run, so a
shared template is never mutated and concurrent runs cannot race.

How a block becomes generated code
----------------------------------

A block like ``lw a5, 0(a2); addi a2, a2, 4; add a4, a4, a5;
bne a2, a3, -12`` compiles to::

    def _b7(regs, cnt, _lwu=_lwu):
        r12 = regs[12]; r14 = regs[14]; r13 = regs[13]
        r15 = _lwu(r12)
        r12 = (r12 + 4) & 0xFFFFFFFF
        r14 = (r14 + r15) & 0xFFFFFFFF
        regs[12] = r12; regs[14] = r14; regs[15] = r15
        cnt[14] += 1
        if r12 != r13:
            cnt[15] += 1
            return 28
        return 40

Registers live in locals, the branch targets are literals, and the function
returns the next pc (``None`` for an ``ebreak`` halt — a pc can legally be
negative through ``jalr``, so no numeric sentinel is safe).  ``_lwu`` is a
bound fast-path accessor: a direct slice of the dmem bytearray when the
address lands in dmem, the full bounds-checked
:meth:`~repro.hw.memory.Memory.load_word` otherwise — faults keep their
exact type and message.

Accepted divergence semantics (carried over from the fast simulator): when
a program dies *mid-loop* — an out-of-bounds access inside a vectorized
kernel or a generated block, or blowing the instruction limit — the JIT
raises the same exception type as the interpreter but may leave partial
architectural state and counters behind, because whole blocks and loops are
committed atomically.  Completed runs are bit-exact in registers, memory,
final pc, cycles and per-mnemonic statistics.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional

from ..core import ExecutionStats, SimulationError
from ..cycles import CycleModel, DEFAULT_CYCLE_MODEL
from ..isa import Instruction
from ..memory import Memory
from ..sdotp import sdotp4, sdotp8
from .blocks import BasicBlock, build_blocks
from .kernels import attach_channel_superloops
from .decode import (
    BRANCH,
    EBREAK,
    JAL,
    JALR,
    MASK,
    STRAIGHT,
    _sx,
    decode_meta,
    decode_program,
)


class JitCodegenError(Exception):
    """A block the source generator cannot express (falls back to closures)."""


def _nosd(mnemonic: str):
    raise SimulationError(
        f"{mnemonic} executed on a core without the SDOTP extension"
    )


# --------------------------------------------------------------------------- #
# Source generation
# --------------------------------------------------------------------------- #
_BRANCH_OPS = {
    "beq": ("==", False),
    "bne": ("!=", False),
    "blt": ("<", True),
    "bge": (">=", True),
    "bltu": ("<", False),
    "bgeu": (">=", False),
}


def _generate_block(
    block: BasicBlock, name: str, eslot: int, enable_sdotp: bool
) -> str:
    """Emit the source of one block function ``name(regs, cnt)``.

    The function returns the next pc as an int, or ``None`` on ``ebreak``;
    execution/taken counters are bumped through the flat ``cnt`` list.
    """
    reads: List[int] = []
    seen = set()
    written = set()
    helpers = set()
    body_lines: List[str] = []

    def use(r: int) -> str:
        if r == 0:
            return "0"
        if r not in seen:
            seen.add(r)
            reads.append(r)
        return f"r{r}"

    def lhs(r: int) -> str:
        seen.add(r)
        written.add(r)
        return f"r{r}"

    def addr(a: int, imm: int) -> str:
        if a == 0:
            return str(imm)
        if imm == 0:
            return use(a)
        return f"{use(a)} + {imm}"

    def emit(d) -> None:
        instr = d.instr
        m = instr.mnemonic
        rd, a, b, imm = instr.rd, instr.rs1, instr.rs2, instr.imm
        uimm = imm & MASK
        if m in ("sdotp8", "sdotp4"):
            if not enable_sdotp:
                helpers.add("_nosd")
                body_lines.append(f"_nosd({m!r})")
                return
            if rd == 0:
                return
            h = "_sd8" if m == "sdotp8" else "_sd4"
            helpers.add(h)
            rhs = f"{h}({use(a)}, {use(b)}, {use(rd)})"
            body_lines.append(f"{lhs(rd)} = {rhs}")
            return
        loads = {"lw": "_lwu", "lh": "_lhs", "lhu": "_lhu", "lb": "_lbs", "lbu": "_lbu"}
        if m in loads:
            h = loads[m]
            helpers.add(h)
            rhs = f"{h}({addr(a, imm)})"
            # Loads keep their side effects (bounds checks) even for x0.
            body_lines.append(rhs if rd == 0 else f"{lhs(rd)} = {rhs}")
            return
        stores = {"sw": "_sw", "sh": "_sh", "sb": "_sb"}
        if m in stores:
            h = stores[m]
            helpers.add(h)
            body_lines.append(f"{h}({addr(a, imm)}, {use(b)})")
            return
        if rd == 0:  # remaining instructions only write a register
            return
        if m == "div":
            helpers.add("_sx")
            body_lines.append(f"_a = _sx({use(a)}); _b = _sx({use(b)})")
            body_lines.append(
                f"{lhs(rd)} = 0xFFFFFFFF if _b == 0 else int(_a / _b) & 0xFFFFFFFF"
            )
            return
        if m == "rem":
            helpers.add("_sx")
            body_lines.append(f"_a = _sx({use(a)}); _b = _sx({use(b)})")
            body_lines.append(
                f"{lhs(rd)} = _a & 0xFFFFFFFF if _b == 0 "
                "else (_a - int(_a / _b) * _b) & 0xFFFFFFFF"
            )
            return
        if m == "add":
            # Register values are invariantly masked, so x0 operands fold away.
            if a == 0:
                rhs = use(b)
            elif b == 0:
                rhs = use(a)
            else:
                rhs = f"({use(a)} + {use(b)}) & 0xFFFFFFFF"
        elif m == "sub":
            rhs = f"({use(a)} - {use(b)}) & 0xFFFFFFFF"
        elif m == "and":
            rhs = f"{use(a)} & {use(b)}"
        elif m == "or":
            rhs = f"{use(a)} | {use(b)}"
        elif m == "xor":
            rhs = f"{use(a)} ^ {use(b)}"
        elif m == "sll":
            rhs = f"({use(a)} << ({use(b)} & 31)) & 0xFFFFFFFF"
        elif m == "srl":
            rhs = f"{use(a)} >> ({use(b)} & 31)"
        elif m == "sra":
            helpers.add("_sx")
            rhs = f"(_sx({use(a)}) >> ({use(b)} & 31)) & 0xFFFFFFFF"
        elif m == "slt":
            helpers.add("_sx")
            rhs = f"int(_sx({use(a)}) < _sx({use(b)}))"
        elif m == "sltu":
            rhs = f"int({use(a)} < {use(b)})"
        elif m == "mul":
            rhs = f"({use(a)} * {use(b)}) & 0xFFFFFFFF"
        elif m == "mulh":
            helpers.add("_sx")
            rhs = f"((_sx({use(a)}) * _sx({use(b)})) >> 32) & 0xFFFFFFFF"
        elif m == "addi":
            rhs = str(uimm) if a == 0 else f"({use(a)} + {imm}) & 0xFFFFFFFF"
        elif m == "andi":
            rhs = f"{use(a)} & {uimm}"
        elif m == "ori":
            rhs = f"{use(a)} | {uimm}"
        elif m == "xori":
            rhs = f"{use(a)} ^ {uimm}"
        elif m == "slti":
            helpers.add("_sx")
            rhs = f"int(_sx({use(a)}) < {imm})"
        elif m == "sltiu":
            rhs = f"int({use(a)} < {uimm})"
        elif m == "slli":
            rhs = f"({use(a)} << {imm & 31}) & 0xFFFFFFFF"
        elif m == "srli":
            rhs = f"{use(a)} >> {imm & 31}"
        elif m == "srai":
            helpers.add("_sx")
            rhs = f"(_sx({use(a)}) >> {imm & 31}) & 0xFFFFFFFF"
        elif m == "lui":
            rhs = str(uimm)
        elif m == "auipc":
            rhs = str((d.pc + imm) & MASK)
        else:
            raise JitCodegenError(f"unsupported mnemonic {m}")
        body_lines.append(f"{lhs(rd)} = {rhs}")

    term = block.term
    body = block.decoded if term is None else block.decoded[:-1]
    for d in body:
        emit(d)

    tail: List[str] = []
    if term is None:
        tail.append(f"return {block.end_pc}")
    elif term.kind == BRANCH:
        op, signed = _BRANCH_OPS[term.mnemonic]
        a, b = term.instr.rs1, term.instr.rs2
        if signed:
            helpers.add("_sx")
            cond = f"_sx({use(a)}) {op} _sx({use(b)})"
        else:
            cond = f"{use(a)} {op} {use(b)}"
        tail.append(f"if {cond}:")
        tail.append(f"    cnt[{eslot + 1}] += 1")
        tail.append(f"    return {term.taken_pc}")
        tail.append(f"return {block.end_pc}")
    elif term.kind == JAL:
        if term.rd:
            tail.append(f"regs[{term.rd}] = {(term.pc + 4) & MASK}")
        tail.append(f"return {term.taken_pc}")
    elif term.kind == JALR:
        a = term.instr.rs1
        target = str(term.imm & -2) if a == 0 else f"({use(a)} + {term.imm}) & -2"
        tail.append(f"_t = {target}")
        if term.rd:
            tail.append(f"regs[{term.rd}] = {(term.pc + 4) & MASK}")
        tail.append("return _t")
    elif term.kind == EBREAK:
        tail.append("return None")
    else:  # pragma: no cover - decode emits no other kinds
        raise JitCodegenError(f"unsupported terminator kind {term.kind}")

    params = "".join(f", {h}={h}" for h in sorted(helpers))
    lines = [f"def {name}(regs, cnt{params}):"]
    if reads:
        lines.append("    " + "; ".join(f"r{r} = regs[{r}]" for r in reads))
    for ln in body_lines:
        lines.append("    " + ln)
    wb = sorted(written)
    if wb:
        # Terminators write links straight to ``regs`` *after* this point,
        # matching the interpreter's jalr ordering (target before link).
        lines.append("    " + "; ".join(f"regs[{r}] = r{r}" for r in wb))
    lines.append(f"    cnt[{eslot}] += 1")
    for ln in tail:
        lines.append("    " + ln)
    return "\n".join(lines)


# --------------------------------------------------------------------------- #
# Memory helper binding
# --------------------------------------------------------------------------- #
def _bind_helpers(memory: Memory) -> Dict[str, Callable]:
    """Fast-path dmem accessors with slow bounds-checked fallbacks.

    The fast path slices the dmem bytearray directly; anything outside dmem
    (imem, otp, out-of-bounds) routes through the ordinary ``Memory``
    accessors so faults keep their exact type and message.
    """
    region = memory.regions["dmem"]
    data = memory._data["dmem"]
    base = region.base
    size = region.size
    lw, lh, lb = memory.load_word, memory.load_half, memory.load_byte
    sw, sh, sb = memory.store_word, memory.store_half, memory.store_byte

    def _lwu(a, _d=data, _b=base, _n=size - 3, _s=lw):
        o = a - _b
        if 0 <= o < _n:
            return int.from_bytes(_d[o:o + 4], "little")
        return _s(a, False)

    def _lhu(a, _d=data, _b=base, _n=size - 1, _s=lh):
        o = a - _b
        if 0 <= o < _n:
            return int.from_bytes(_d[o:o + 2], "little")
        return _s(a, False)

    def _lhs(a, _d=data, _b=base, _n=size - 1, _s=lh):
        o = a - _b
        if 0 <= o < _n:
            v = int.from_bytes(_d[o:o + 2], "little")
            return v | 0xFFFF0000 if v & 0x8000 else v
        return _s(a, True) & 0xFFFFFFFF

    def _lbu(a, _d=data, _b=base, _n=size, _s=lb):
        o = a - _b
        if 0 <= o < _n:
            return _d[o]
        return _s(a, False)

    def _lbs(a, _d=data, _b=base, _n=size, _s=lb):
        o = a - _b
        if 0 <= o < _n:
            v = _d[o]
            return v | 0xFFFFFF00 if v & 0x80 else v
        return _s(a, True) & 0xFFFFFFFF

    def _sw(a, v, _d=data, _b=base, _n=size - 3, _s=sw):
        o = a - _b
        if 0 <= o < _n:
            _d[o:o + 4] = v.to_bytes(4, "little")
        else:
            _s(a, v)

    def _sh(a, v, _d=data, _b=base, _n=size - 1, _s=sh):
        o = a - _b
        if 0 <= o < _n:
            _d[o:o + 2] = (v & 0xFFFF).to_bytes(2, "little")
        else:
            _s(a, v)

    def _sb(a, v, _d=data, _b=base, _n=size, _s=sb):
        o = a - _b
        if 0 <= o < _n:
            _d[o] = v & 0xFF
        else:
            _s(a, v)

    return {
        "_lwu": _lwu, "_lhu": _lhu, "_lhs": _lhs, "_lbu": _lbu, "_lbs": _lbs,
        "_sw": _sw, "_sh": _sh, "_sb": _sb,
        "_sx": _sx, "_sd8": sdotp8, "_sd4": sdotp4, "_nosd": _nosd,
    }


# --------------------------------------------------------------------------- #
# Template (shared, immutable) and bound program
# --------------------------------------------------------------------------- #
class JitTemplate:
    """A program compiled to generated block functions, memory-independent.

    Immutable after construction; safe to share across engines and threads.
    Per-run mutable state (execution counters) lives in a flat list owned by
    each run, never on the template.
    """

    def __init__(
        self,
        program: List[Instruction],
        cycle_model: Optional[CycleModel],
        enable_sdotp: bool,
    ):
        cycle_model = cycle_model or DEFAULT_CYCLE_MODEL
        self.cycle_model = cycle_model
        self.enable_sdotp = enable_sdotp
        self.n_instr = len(program)
        decoded = decode_meta(program, cycle_model)
        self.blocks = build_blocks(decoded, None, cycle_model)
        # The whole-channel superloops are a JIT-tier-only upgrade: the
        # closure-based fast simulator keeps the per-tap kernel protocol.
        attach_channel_superloops(self.blocks, program, cycle_model)
        # Flat counter-slot layout: [execs, taken] per block, plus
        # [iterations, vectorized calls] (and one hit counter per aux side
        # path) per kernel block.
        self.eslots: List[int] = []
        self.kslots: List[int] = []
        slot = 0
        for b in self.blocks:
            self.eslots.append(slot)
            slot += 2
            if b.kernel is not None:
                self.kslots.append(slot)
                slot += 2 + len(b.kernel.aux)
            else:
                self.kslots.append(-1)
        self.n_slots = slot
        self.closure_blocks: List[int] = []
        chunks = ["# Generated by repro.hw.sim.jit -- one function per basic block."]
        names = []
        for i, b in enumerate(self.blocks):
            name = f"_b{i}"
            names.append(name)
            try:
                chunks.append(
                    _generate_block(b, name, self.eslots[i], enable_sdotp)
                )
            except JitCodegenError:
                self.closure_blocks.append(i)
                chunks.append(f"{name} = None  # closure fallback")
        chunks.append("_FNS = [" + ", ".join(names) + "]")
        self.source = "\n\n\n".join(chunks) + "\n"
        self.fingerprint = hashlib.sha256(self.source.encode()).hexdigest()[:12]
        self.code = compile(self.source, f"<repro-jit-{self.fingerprint}>", "exec")

    # ------------------------------------------------------------------ #
    def bind(self, program: List[Instruction], memory: Memory) -> "JitProgram":
        return JitProgram(self, program, memory)

    def vectorized_labels(self):
        return {b.label for b in self.blocks if b.kernel is not None and b.label}

    def kernel_counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for b in self.blocks:
            if b.kernel is not None:
                out[b.kernel.kind] = out.get(b.kernel.kind, 0) + 1
        return out

    def block_tallies(self) -> Dict[str, int]:
        """JIT/closure/kernel block coverage for reports and diagnostics."""
        kernel = sum(1 for b in self.blocks if b.kernel is not None)
        closure = len(self.closure_blocks)
        return {
            "total": len(self.blocks),
            "kernel": kernel,
            "jit": len(self.blocks) - closure,
            "closure": closure,
        }

    # ------------------------------------------------------------------ #
    def commit(
        self,
        stats: ExecutionStats,
        cnt: List[int],
        slow_instr: int,
        slow_cycles: int,
        slow_counts: Dict[str, int],
    ) -> None:
        """Scale a run's flat counters into exact aggregate statistics."""
        cm = self.cycle_model
        bt, bnt = cm.branch_taken, cm.branch_not_taken
        total_instr = slow_instr
        total_cycles = slow_cycles
        merged: Dict[str, int] = dict(slow_counts)
        for i, b in enumerate(self.blocks):
            execs = cnt[self.eslots[i]]
            if execs:
                total_instr += execs * b.n
                cycles = execs * b.straight_cycles
                if b.term is not None and b.term.kind == BRANCH:
                    taken = cnt[self.eslots[i] + 1]
                    cycles += taken * bt + (execs - taken) * bnt
                else:
                    cycles += execs * b.term_cost
                total_cycles += cycles
                for m, c in b.counts.items():
                    merged[m] = merged.get(m, 0) + execs * c
            ks = self.kslots[i]
            if ks >= 0 and cnt[ks]:
                k = b.kernel
                iters, calls = cnt[ks], cnt[ks + 1]
                total_instr += iters * k.instrs_per_iter
                # Each vectorized call runs its loop to completion: the
                # back-branch is taken on all but the final iteration.
                total_cycles += (
                    iters * k.straight_cycles_per_iter
                    + (iters - calls) * bt
                    + calls * bnt
                )
                for m, c in k.counts_per_iter.items():
                    merged[m] = merged.get(m, 0) + iters * c
                for j, (a_instrs, a_cycles, a_counts) in enumerate(k.aux):
                    hits = cnt[ks + 2 + j]
                    if hits:
                        total_instr += hits * a_instrs
                        total_cycles += hits * a_cycles
                        for m, c in a_counts.items():
                            merged[m] = merged.get(m, 0) + hits * c
        stats.record_block(total_instr, total_cycles, merged)


class _RunState:
    """Mutable per-run execution state (one per frame in batched mode)."""

    __slots__ = (
        "regs",
        "cnt",
        "pc",
        "executed",
        "budget",
        "max_instructions",
        "slow_instr",
        "slow_cycles",
        "slow_counts",
        "final_pc",
    )


class JitProgram:
    """A :class:`JitTemplate` bound to one concrete memory."""

    def __init__(
        self, template: JitTemplate, program: List[Instruction], memory: Memory
    ):
        self.template = template
        self.program = program
        self.memory = memory
        g: Dict[str, object] = {"__name__": f"repro_jit_{template.fingerprint}"}
        g.update(_bind_helpers(memory))
        exec(template.code, g)
        fns = g["_FNS"]
        self._decoded = None  # lazy per-instruction closures (fallback paths)
        entries: Dict[int, tuple] = {}
        for i, b in enumerate(template.blocks):
            kernel = b.kernel
            krun = kernel.make_run(memory) if kernel is not None else None
            kexit = (
                kernel.exit_pc
                if kernel is not None and kernel.exit_pc is not None
                else b.end_pc
            )
            kipi = kernel.instrs_per_iter if kernel is not None else 0
            kaux = (
                template.kslots[i] + 2
                if kernel is not None and kernel.wants_cnt
                else -1
            )
            fpc = b.term.pc if b.term is not None and b.term.kind == EBREAK else -1
            entries[b.pc] = (
                fns[i], b.n, krun, kipi, kexit, template.kslots[i], fpc, i, kaux
            )
        self.entries = entries

    # ------------------------------------------------------------------ #
    def _fallback_decoded(self):
        if self._decoded is None:
            t = self.template
            self._decoded = decode_program(
                self.program, self.memory, t.cycle_model, t.enable_sdotp
            )
        return self._decoded

    def _run_closure_block(self, bi: int, regs: List[int], cnt: List[int]):
        """Execute a block the source generator declined, via closures."""
        t = self.template
        b = t.blocks[bi]
        decoded = self._fallback_decoded()
        span = decoded[b.start : b.start + b.n]
        term = span[-1] if b.term is not None else None
        for d in (span[:-1] if term is not None else span):
            if d.op is not None:
                d.op(regs)
        eslot = t.eslots[bi]
        cnt[eslot] += 1
        if term is None:
            return b.end_pc
        kind = term.kind
        if kind == BRANCH:
            if term.cond(regs):
                cnt[eslot + 1] += 1
                return term.taken_pc
            return b.end_pc
        if kind == JAL:
            if term.rd:
                regs[term.rd] = (term.pc + 4) & MASK
            return term.taken_pc
        if kind == JALR:
            target = (regs[term.rs1] + term.imm) & ~1
            if term.rd:
                regs[term.rd] = (term.pc + 4) & MASK
            return target
        return None  # EBREAK

    # ------------------------------------------------------------------ #
    def start(
        self,
        regs: List[int],
        stats: ExecutionStats,
        entry_pc: int,
        max_instructions: int,
    ) -> _RunState:
        st = _RunState()
        st.regs = regs
        st.cnt = [0] * self.template.n_slots
        st.pc = entry_pc
        st.executed = 0
        st.budget = max_instructions - stats.instructions
        st.max_instructions = max_instructions
        st.slow_instr = 0
        st.slow_cycles = 0
        st.slow_counts = {}
        st.final_pc = None
        return st

    def finish(self, st: _RunState, stats: ExecutionStats) -> None:
        self.template.commit(
            stats, st.cnt, st.slow_instr, st.slow_cycles, st.slow_counts
        )

    def _limit_error(self, st: _RunState, stats: ExecutionStats) -> SimulationError:
        self.finish(st, stats)
        return SimulationError(
            f"instruction limit exceeded ({st.max_instructions}); "
            "runaway program?"
        )

    # ------------------------------------------------------------------ #
    def advance(
        self,
        st: _RunState,
        stats: ExecutionStats,
        stop_at_kernel: bool = False,
    ) -> str:
        """Run until halt (``"done"``) or, with ``stop_at_kernel``, until the
        pc lands on a kernel block without executing it (``"kernel"``)."""
        t = self.template
        entries = self.entries
        regs = st.regs
        cnt = st.cnt
        pc = st.pc
        executed = st.executed
        budget = st.budget
        cm = t.cycle_model
        bt, bnt = cm.branch_taken, cm.branch_not_taken
        n_instr = t.n_instr
        decoded = None

        while True:
            e = entries.get(pc)
            if e is None:
                # -------------- single-step closure fallback -------------- #
                if decoded is None:
                    decoded = self._fallback_decoded()
                index = pc // 4
                if not 0 <= index < n_instr:
                    st.pc, st.executed = pc, executed
                    self.finish(st, stats)
                    raise SimulationError(f"PC 0x{pc:08x} outside the program")
                d = decoded[index]
                kind = d.kind
                m = d.mnemonic
                if kind == STRAIGHT:
                    if m == "auipc":
                        # The closure is specialized on the aligned static
                        # address; at a misaligned pc use the live one.
                        if d.rd:
                            regs[d.rd] = (pc + d.imm) & MASK
                    elif d.op is not None:
                        d.op(regs)
                    st.slow_cycles += d.cost
                    pc += 4
                elif kind == BRANCH:
                    if d.cond(regs):
                        st.slow_cycles += bt
                        pc += d.imm
                    else:
                        st.slow_cycles += bnt
                        pc += 4
                elif kind == JAL:
                    if d.rd:
                        regs[d.rd] = (pc + 4) & MASK
                    st.slow_cycles += d.cost
                    pc += d.imm
                elif kind == JALR:
                    target = (regs[d.rs1] + d.imm) & ~1
                    if d.rd:
                        regs[d.rd] = (pc + 4) & MASK
                    st.slow_cycles += d.cost
                    pc = target
                else:  # EBREAK
                    st.slow_cycles += d.cost
                    st.final_pc = pc
                st.slow_counts[m] = st.slow_counts.get(m, 0) + 1
                st.slow_instr += 1
                executed += 1
                if executed > budget:
                    st.pc, st.executed = pc, executed
                    raise self._limit_error(st, stats)
                if st.final_pc is not None:
                    st.pc, st.executed = pc, executed
                    return "done"
                continue

            fn, n, krun, kipi, kexit, kslot, fpc, bi, kaux = e
            if krun is not None:
                if stop_at_kernel:
                    st.pc, st.executed = pc, executed
                    return "kernel"
                if kaux >= 0:
                    iters, extra = krun(regs, cnt, kaux)
                else:
                    iters = krun(regs)
                    extra = 0
                if iters:
                    cnt[kslot] += iters
                    cnt[kslot + 1] += 1
                    executed += kipi * iters + extra
                    if executed > budget:
                        st.pc, st.executed = pc, executed
                        raise self._limit_error(st, stats)
                    pc = kexit
                    continue
            npc = (
                fn(regs, cnt)
                if fn is not None
                else self._run_closure_block(bi, regs, cnt)
            )
            executed += n
            if executed > budget:
                st.pc, st.executed = pc, executed
                raise self._limit_error(st, stats)
            if npc is None:
                st.pc = fpc
                st.executed = executed
                st.final_pc = fpc
                return "done"
            pc = npc

    def kernel_step(self, st: _RunState, stats: ExecutionStats) -> None:
        """One execution of the kernel block at ``st.pc`` (batched decline path)."""
        fn, n, krun, kipi, kexit, kslot, fpc, bi, kaux = self.entries[st.pc]
        regs = st.regs
        cnt = st.cnt
        if kaux >= 0:
            iters, extra = krun(regs, cnt, kaux)
        else:
            iters = krun(regs)
            extra = 0
        if iters:
            cnt[kslot] += iters
            cnt[kslot + 1] += 1
            st.executed += kipi * iters + extra
            st.pc = kexit
        else:
            npc = (
                fn(regs, cnt)
                if fn is not None
                else self._run_closure_block(bi, regs, cnt)
            )
            st.executed += n
            if npc is None:
                st.final_pc = fpc
                st.pc = fpc
            else:
                st.pc = npc
        if st.executed > st.budget:
            raise self._limit_error(st, stats)

    # ------------------------------------------------------------------ #
    def run(
        self,
        regs: List[int],
        stats: ExecutionStats,
        entry_pc: int = 0,
        max_instructions: int = 50_000_000,
    ) -> int:
        """Execute until ``ebreak``; returns the final pc (the ``ebreak``).

        Same contract as :meth:`TraceProgram.run`: ``regs`` is mutated in
        place, statistics are *added* to ``stats``.
        """
        st = self.start(regs, stats, entry_pc, max_instructions)
        self.advance(st, stats)
        self.finish(st, stats)
        return st.final_pc
