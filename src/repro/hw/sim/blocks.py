"""Basic-block decomposition of a pre-decoded program.

Control flow of the programs emitted by :mod:`repro.deploy.codegen` is fully
static (branches and ``jal`` with resolved immediates; ``jalr`` is never
emitted), so the program splits cleanly into basic blocks: maximal
straight-line runs entered only at their first instruction and left only at
their last.  Each block carries

* the pre-compiled closures of its non-terminating instructions,
* aggregated instruction/cycle/per-mnemonic counters for one execution, so
  statistics are accounted per *block execution* instead of per
  instruction (and lazily scaled at the end of a run), and
* optionally a :class:`~repro.hw.sim.kernels.KernelLoop` when the block is
  one of the recognized vectorizable loops.

Execution counters (``execs`` / ``taken`` / ``kernel_iters`` /
``kernel_calls``) live on the block and are reset per run by the simulator.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..memory import Memory
from .decode import BRANCH, Decoded, JAL, STRAIGHT
from .kernels import KernelLoop, recognize_loop, try_tap_superloop


class BasicBlock:
    __slots__ = (
        "start",
        "pc",
        "end_pc",
        "decoded",
        "ops",
        "term",
        "n",
        "straight_cycles",
        "counts",
        "term_cost",
        "kernel",
        "execs",
        "taken",
        "kernel_iters",
        "kernel_calls",
    )

    def __init__(self, start: int, decoded: List[Decoded], cycle_model):
        self.start = start
        self.pc = 4 * start
        self.end_pc = 4 * (start + len(decoded))
        self.decoded = decoded
        last = decoded[-1]
        self.term: Optional[Decoded] = last if last.kind != STRAIGHT else None
        body = decoded if self.term is None else decoded[:-1]
        self.ops = [d.op for d in body if d.op is not None]
        self.n = len(decoded)
        self.straight_cycles = sum(d.cost for d in body)
        counts: Dict[str, int] = {}
        for d in decoded:
            counts[d.mnemonic] = counts.get(d.mnemonic, 0) + 1
        self.counts = counts
        # Fixed cycle cost of a non-branch terminator (branch terminators
        # are charged taken/not-taken per execution in the simulator).
        self.term_cost = (
            self.term.cost
            if self.term is not None and self.term.kind != BRANCH
            else 0
        )
        self.kernel: Optional[KernelLoop] = None
        self.execs = 0
        self.taken = 0
        self.kernel_iters = 0
        self.kernel_calls = 0

    @property
    def label(self) -> Optional[str]:
        return self.decoded[0].instr.label

    def reset_counters(self) -> None:
        self.execs = 0
        self.taken = 0
        self.kernel_iters = 0
        self.kernel_calls = 0


def build_blocks(
    decoded: List[Decoded], memory: Optional[Memory], cycle_model
) -> List[BasicBlock]:
    """Split ``decoded`` into basic blocks and attach kernel handlers.

    ``memory`` may be ``None`` for a template build (see
    :mod:`repro.hw.sim.jit`): kernels are then recognized but left unbound
    (``kernel.run is None``) and must be bound via ``kernel.make_run``.
    """
    n = len(decoded)
    if n == 0:  # the simulator's fallback path reports the bad pc itself
        return []
    leaders = {0}
    for i, d in enumerate(decoded):
        if d.kind == STRAIGHT:
            continue
        if i + 1 < n:
            leaders.add(i + 1)
        if d.kind in (BRANCH, JAL):
            target = d.taken_pc
            if target % 4 == 0 and 0 <= target // 4 < n:
                leaders.add(target // 4)
    ordered = sorted(leaders)
    blocks: List[BasicBlock] = []
    for pos, start in enumerate(ordered):
        end = ordered[pos + 1] if pos + 1 < len(ordered) else n
        # A block ends at the first control transfer even when the next
        # leader lies further down.
        body = []
        for d in decoded[start:end]:
            body.append(d)
            if d.kind != STRAIGHT:
                break
        block = BasicBlock(start, body, cycle_model)
        term = block.term
        if (
            term is not None
            and term.kind == BRANCH
            and term.taken_pc == block.pc
        ):
            block.kernel = recognize_loop(
                [d.instr for d in block.decoded], start, memory, cycle_model
            )
        blocks.append(block)
    _attach_superloops(blocks, memory, cycle_model)
    return blocks


def _attach_superloops(
    blocks: List[BasicBlock], memory: Optional[Memory], cycle_model
) -> None:
    """Fuse ``entry -> inner-loop -> exit`` block triples into one kernel.

    For every vectorized SDOTP inner loop, look for the enclosing conv tap
    loop: a fall-through predecessor block and a successor block whose
    ``bne`` jumps back to the predecessor.  On a match the fused kernel is
    attached to the predecessor, with its exit past the successor block.
    """
    by_pc = {b.pc: b for b in blocks}
    by_end = {b.end_pc: b for b in blocks if b.term is None}
    for block in blocks:
        if block.kernel is None or block.kernel.kind != "sdotp":
            continue
        entry = by_end.get(block.pc)
        exit_block = by_pc.get(block.end_pc)
        if entry is None or exit_block is None or entry.kernel is not None:
            continue
        term = exit_block.term
        if term is None or term.kind != BRANCH or term.taken_pc != entry.pc:
            continue
        fused = try_tap_superloop(
            [d.instr for d in entry.decoded],
            block.kernel,
            [d.instr for d in exit_block.decoded],
            entry.pc,
            exit_block.end_pc,
            memory,
            cycle_model,
        )
        if fused is not None:
            entry.kernel = fused
