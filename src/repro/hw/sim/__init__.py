"""Trace-compiled fast simulation of IBEX / MAUPITI programs.

The subsystem behind ``IbexCore(mode="fast")``: programs are pre-decoded
once into basic blocks of closures, the structured inner loops emitted by
:mod:`repro.deploy.codegen` (SDOTP dot-product loops, scalar INT8/INT4 MAC
loops, memset loops) are replaced by vectorized numpy kernels, and cycle /
energy accounting is derived analytically from the shared
:class:`~repro.hw.cycles.CycleModel` — bit-exact against the reference
interpreter in registers, memory, cycle counts and per-mnemonic statistics.

Adding a new recognized kernel:

1. emit the loop from codegen with a label and register it with
   ``Assembler.hint_kernel(label, kind)``;
2. add a matcher + vectorized handler in :mod:`repro.hw.sim.kernels`
   (strict structural match, handler must reproduce exit registers, memory,
   and statistics exactly);
3. the parity suite (``tests/test_sim_parity.py``) asserts every hinted
   loop is vectorized and every vectorized result is bit-exact.
"""

from .blocks import BasicBlock, build_blocks
from .decode import Decoded, decode_meta, decode_program
from .jit import JitProgram, JitTemplate
from .kernels import KernelLoop, recognize_loop
from .simulator import TraceProgram, compile_trace
from .trace_cache import (
    TraceCache,
    cache_stats,
    clear_trace_cache,
    get_template,
    set_trace_cache_capacity,
)

__all__ = [
    "BasicBlock",
    "Decoded",
    "JitProgram",
    "JitTemplate",
    "KernelLoop",
    "TraceCache",
    "TraceProgram",
    "build_blocks",
    "cache_stats",
    "clear_trace_cache",
    "compile_trace",
    "decode_meta",
    "decode_program",
    "get_template",
    "recognize_loop",
    "set_trace_cache_capacity",
]
