"""Cross-frame batched execution: one trace walk drives N frames.

``deploy.simulate_batch`` used to replay the compiled trace once per frame.
The programs codegen emits are *control-flow uniform* across frames for
everything that matters for speed: loop trip counts (rows, columns,
channels, taps) are compile-time constants, so every frame visits the same
kernel blocks in the same order, only the data differs.  This module
exploits that: all frames advance in lockstep from kernel block to kernel
block through their generated JIT code, and each kernel dispatch executes
**one multi-frame numpy op** (``KernelLoop.make_run_many``) over a stacked
``(frames, bytes)`` matrix instead of one tiny numpy call per frame.

Data-dependent branches (requantization clamps, maxpool compares, argmax)
do exist — they are glue-block-internal and frame-local, handled by each
frame's generated block functions between kernel parks.  Whenever the
lockstep assumption is violated — frames park at different kernels, halt in
different rounds, or any frame faults — :class:`BatchDivergence` (or the
original exception) propagates to the caller, which re-runs the batch
through the sequential path.  That fallback is always safe: every frame
executes against its own **clone** of the platform memory, so a failed
batched attempt leaves the platform untouched.

Sequential-equivalence note: a sequential run carries memory state from
frame to frame, while the batch gives each frame a clone of the *initial*
(model-loaded) memory.  The two agree because compiled models write every
activation they read per frame (the pad ring is constant, weights are
read-only); the bit-exactness parity suite asserts this agreement on every
scheme and both deployment targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..core import ExecutionStats
from ..cycles import CycleModel
from ..isa import Instruction
from ..memory import Memory
from .trace_cache import get_template


class BatchDivergence(Exception):
    """Frames left control-flow lockstep; the caller must run sequentially."""


@dataclass
class FrameOutcome:
    """Final architectural state of one frame of a successful batched run."""

    regs: List[int]
    final_pc: int
    stats: ExecutionStats
    memory: Memory


def run_batch(
    memory: Memory,
    program: List[Instruction],
    payloads: Sequence[bytes],
    buf_address: int,
    cycle_model: CycleModel,
    enable_sdotp: bool,
    max_instructions: int,
) -> List[FrameOutcome]:
    """Run ``program`` once per payload, batching kernel calls across frames.

    ``memory`` is the platform memory with the model image already loaded;
    it is only cloned, never mutated.  Each frame starts from a fresh
    register file and its own memory clone with ``payloads[i]`` written to
    the input buffer, exactly like a sequential ``reset(); run()`` pair.

    Raises :class:`BatchDivergence` (or whatever a frame raised) when the
    batch cannot complete in lockstep; nothing is committed in that case.
    """
    template = get_template(program, cycle_model, enable_sdotp)
    n_frames = len(payloads)
    # One contiguous (frames, dmem_size) matrix backs every clone's dmem so
    # that batched kernel gathers are zero-copy column slices of `dmem_mat`
    # instead of per-call np.stack allocations (see kernels._make_gather).
    dmem_size = memory.regions["dmem"].size
    dmem_mat = np.empty((n_frames, dmem_size), dtype=np.uint8)
    mems: List[Memory] = []
    bound = []
    states = []
    stats_list: List[ExecutionStats] = []
    for idx, payload in enumerate(payloads):
        m = memory.clone(dmem_buffer=dmem_mat[idx].data)
        m.store_bytes(buf_address, payload)
        jp = template.bind(program, m)
        stats = ExecutionStats()
        mems.append(m)
        bound.append(jp)
        states.append(jp.start([0] * 32, stats, 0, max_instructions))
        stats_list.append(stats)

    run_many_cache: dict = {}
    frames = range(n_frames)
    while True:
        events = [
            bound[i].advance(states[i], stats_list[i], stop_at_kernel=True)
            for i in frames
        ]
        done = sum(1 for e in events if e == "done")
        if done == n_frames:
            break
        if done:
            raise BatchDivergence("frames halted out of lockstep")
        pc0 = states[0].pc
        if any(states[i].pc != pc0 for i in frames):
            raise BatchDivergence("frames parked at different kernel blocks")
        _, _, _, kipi, kexit, kslot, _, bi, kaux = bound[0].entries[pc0]
        rm = run_many_cache.get(pc0)
        if rm is None:
            rm = template.blocks[bi].kernel.make_run_many(mems)
            run_many_cache[pc0] = rm
        if kaux >= 0:
            iters, extras = rm(
                [st.regs for st in states], [st.cnt for st in states], kaux
            )
        else:
            iters = rm([st.regs for st in states])
            extras = None
        if iters:
            for i in frames:
                st = states[i]
                st.cnt[kslot] += iters
                st.cnt[kslot + 1] += 1
                st.executed += kipi * iters + (
                    extras[i] if extras is not None else 0
                )
                if st.executed > st.budget:
                    raise bound[i]._limit_error(st, stats_list[i])
                st.pc = kexit
        else:
            # Registers not uniform (or span outside dmem): run this kernel
            # block per frame; lockstep resumes if control flow agrees.
            for i in frames:
                bound[i].kernel_step(states[i], stats_list[i])

    for i in frames:
        bound[i].finish(states[i], stats_list[i])
    return [
        FrameOutcome(states[i].regs, states[i].final_pc, stats_list[i], mems[i])
        for i in frames
    ]
