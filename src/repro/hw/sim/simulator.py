"""The trace-compiled fast simulator.

:func:`compile_trace` pre-decodes a program once (closures, basic blocks,
recognized kernel loops); :meth:`TraceProgram.run` then executes it against
a register file and an :class:`~repro.hw.core.ExecutionStats`, bit-exact
with :class:`~repro.hw.core.IbexCore`'s reference interpreter in registers,
memory, final pc, cycle count and per-mnemonic statistics.

Execution strategy, fastest first:

1. **Kernel blocks** — recognized loops run their whole remaining trip
   count as one numpy computation (:mod:`repro.hw.sim.kernels`).
2. **Block dispatch** — ordinary blocks execute their pre-compiled
   closures back to back; statistics are counted per block execution and
   scaled analytically when the run finishes.
3. **Single-step fallback** — a pc that does not land on a block leader
   (e.g. a ``jalr`` into the middle of a block) is executed one
   instruction at a time with exact per-instruction accounting until the
   control flow re-joins a block boundary.

Known (and accepted) divergence from the interpreter: when a program dies
mid-loop — out-of-bounds access inside a vectorized kernel, or blowing the
instruction limit — the fast simulator raises the same exception type but
may leave *partial* architectural state and counters behind, because whole
loops are committed atomically.  Completed runs are always bit-exact.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..core import ExecutionStats, SimulationError
from ..cycles import CycleModel, DEFAULT_CYCLE_MODEL
from ..isa import Instruction
from ..memory import Memory
from .blocks import BasicBlock, build_blocks
from .decode import BRANCH, EBREAK, JAL, JALR, MASK, STRAIGHT, decode_program


class TraceProgram:
    """A program compiled for fast execution against one memory."""

    def __init__(
        self,
        program: List[Instruction],
        memory: Memory,
        cycle_model: CycleModel,
        enable_sdotp: bool,
    ):
        self.program = program
        self.memory = memory
        self.cycle_model = cycle_model
        self.enable_sdotp = enable_sdotp
        self.decoded = decode_program(program, memory, cycle_model, enable_sdotp)
        self.blocks = build_blocks(self.decoded, memory, cycle_model)
        self.block_at: Dict[int, BasicBlock] = {b.pc: b for b in self.blocks}

    # ------------------------------------------------------------------ #
    def vectorized_labels(self) -> Set[str]:
        """Labels of the blocks that run through a vectorized kernel."""
        return {
            b.label for b in self.blocks if b.kernel is not None and b.label
        }

    def kernel_counts(self) -> Dict[str, int]:
        """Number of vectorized blocks per kernel kind (diagnostics)."""
        out: Dict[str, int] = {}
        for b in self.blocks:
            if b.kernel is not None:
                out[b.kernel.kind] = out.get(b.kernel.kind, 0) + 1
        return out

    # ------------------------------------------------------------------ #
    def run(
        self,
        regs: List[int],
        stats: ExecutionStats,
        entry_pc: int = 0,
        max_instructions: int = 50_000_000,
    ) -> int:
        """Execute until ``ebreak``; returns the final pc (the ``ebreak``).

        ``regs`` is mutated in place; executed instructions/cycles/counts
        are *added* to ``stats``, matching the accumulating behaviour of
        the interpreter.
        """
        blocks = self.block_at
        decoded = self.decoded
        n_instr = len(decoded)
        for b in self.blocks:
            b.reset_counters()
        slow_instr = 0
        slow_cycles = 0
        slow_counts: Dict[str, int] = {}
        executed = 0
        budget = max_instructions - stats.instructions
        pc = entry_pc
        final_pc = None
        cm = self.cycle_model
        bt, bnt = cm.branch_taken, cm.branch_not_taken

        while final_pc is None:
            block = blocks.get(pc)
            if block is None:
                # ---------------- single-step fallback ---------------- #
                index = pc // 4
                if not 0 <= index < n_instr:
                    self._commit(stats, slow_instr, slow_cycles, slow_counts)
                    raise SimulationError(f"PC 0x{pc:08x} outside the program")
                d = decoded[index]
                kind = d.kind
                m = d.mnemonic
                if kind == STRAIGHT:
                    if m == "auipc":
                        # The closure is specialized on the aligned static
                        # address; at a misaligned pc use the live one.
                        if d.rd:
                            regs[d.rd] = (pc + d.imm) & MASK
                    elif d.op is not None:
                        d.op(regs)
                    slow_cycles += d.cost
                    pc += 4
                elif kind == BRANCH:
                    if d.cond(regs):
                        slow_cycles += bt
                        pc += d.imm
                    else:
                        slow_cycles += bnt
                        pc += 4
                elif kind == JAL:
                    if d.rd:
                        regs[d.rd] = (pc + 4) & MASK
                    slow_cycles += d.cost
                    pc += d.imm
                elif kind == JALR:
                    target = (regs[d.rs1] + d.imm) & ~1
                    if d.rd:
                        regs[d.rd] = (pc + 4) & MASK
                    slow_cycles += d.cost
                    pc = target
                else:  # EBREAK
                    slow_cycles += d.cost
                    final_pc = pc
                slow_counts[m] = slow_counts.get(m, 0) + 1
                slow_instr += 1
                executed += 1
                if executed > budget:
                    self._commit(stats, slow_instr, slow_cycles, slow_counts)
                    raise SimulationError(
                        f"instruction limit exceeded ({max_instructions}); "
                        "runaway program?"
                    )
                continue

            kernel = block.kernel
            if kernel is not None:
                iters = kernel.run(regs)
                if iters:
                    block.kernel_iters += iters
                    block.kernel_calls += 1
                    executed += kernel.instrs_per_iter * iters
                    if executed > budget:
                        self._commit(stats, slow_instr, slow_cycles, slow_counts)
                        raise SimulationError(
                            f"instruction limit exceeded ({max_instructions}); "
                            "runaway program?"
                        )
                    pc = kernel.exit_pc if kernel.exit_pc is not None else block.end_pc
                    continue

            for op in block.ops:
                op(regs)
            block.execs += 1
            executed += block.n
            term = block.term
            if term is None:
                pc = block.end_pc
            else:
                kind = term.kind
                if kind == BRANCH:
                    if term.cond(regs):
                        block.taken += 1
                        pc = term.taken_pc
                    else:
                        pc = block.end_pc
                elif kind == JAL:
                    if term.rd:
                        regs[term.rd] = (term.pc + 4) & MASK
                    pc = term.taken_pc
                elif kind == JALR:
                    target = (regs[term.rs1] + term.imm) & ~1
                    if term.rd:
                        regs[term.rd] = (term.pc + 4) & MASK
                    pc = target
                else:  # EBREAK
                    final_pc = term.pc
            if executed > budget:
                self._commit(stats, slow_instr, slow_cycles, slow_counts)
                raise SimulationError(
                    f"instruction limit exceeded ({max_instructions}); "
                    "runaway program?"
                )

        self._commit(stats, slow_instr, slow_cycles, slow_counts)
        return final_pc

    # ------------------------------------------------------------------ #
    def _commit(
        self,
        stats: ExecutionStats,
        slow_instr: int,
        slow_cycles: int,
        slow_counts: Dict[str, int],
    ) -> None:
        """Scale per-block counters into exact aggregate statistics."""
        cm = self.cycle_model
        bt, bnt = cm.branch_taken, cm.branch_not_taken
        total_instr = slow_instr
        total_cycles = slow_cycles
        merged: Dict[str, int] = dict(slow_counts)
        for b in self.blocks:
            execs = b.execs
            if execs:
                total_instr += execs * b.n
                cycles = execs * b.straight_cycles
                if b.term is not None and b.term.kind == BRANCH:
                    cycles += b.taken * bt + (execs - b.taken) * bnt
                else:
                    cycles += execs * b.term_cost
                total_cycles += cycles
                for m, c in b.counts.items():
                    merged[m] = merged.get(m, 0) + execs * c
            k = b.kernel
            if k is not None and b.kernel_iters:
                iters, calls = b.kernel_iters, b.kernel_calls
                total_instr += iters * k.instrs_per_iter
                # Each vectorized call runs its loop to completion: the
                # back-branch is taken on all but the final iteration.
                total_cycles += (
                    iters * k.straight_cycles_per_iter
                    + (iters - calls) * bt
                    + calls * bnt
                )
                for m, c in k.counts_per_iter.items():
                    merged[m] = merged.get(m, 0) + iters * c
        stats.record_block(total_instr, total_cycles, merged)


def compile_trace(
    program: List[Instruction],
    memory: Memory,
    cycle_model: Optional[CycleModel] = None,
    enable_sdotp: bool = True,
) -> TraceProgram:
    """Compile ``program`` for fast execution against ``memory``."""
    return TraceProgram(
        program,
        memory,
        cycle_model or DEFAULT_CYCLE_MODEL,
        enable_sdotp,
    )
