"""Memory subsystem of the MAUPITI digital block.

The chip integrates 16 KB of instruction RAM, 16 KB of data RAM and an 80 B
one-time-programmable memory (Sec. III-B1).  The simulator exposes them as a
single byte-addressable address space with region bounds checking, so a model
that does not fit the on-chip memories fails loudly at load time instead of
silently overflowing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .sdotp import to_signed, to_unsigned

IMEM_BASE = 0x0000_0000
IMEM_SIZE = 16 * 1024
DMEM_BASE = 0x0010_0000
DMEM_SIZE = 16 * 1024
OTP_BASE = 0x0020_0000
OTP_SIZE = 80


class MemoryError_(Exception):
    """Raised on out-of-bounds or misaligned accesses."""


@dataclass
class MemoryRegion:
    name: str
    base: int
    size: int
    writable: bool = True

    def contains(self, address: int, width: int = 1) -> bool:
        return self.base <= address and address + width <= self.base + self.size


class Memory:
    """Byte-addressable memory with named regions.

    Parameters
    ----------
    imem_size / dmem_size / otp_size:
        Region sizes in bytes; defaults follow the taped-out MAUPITI chip.
    """

    def __init__(
        self,
        imem_size: int = IMEM_SIZE,
        dmem_size: int = DMEM_SIZE,
        otp_size: int = OTP_SIZE,
    ):
        self.regions = {
            "imem": MemoryRegion("imem", IMEM_BASE, imem_size),
            "dmem": MemoryRegion("dmem", DMEM_BASE, dmem_size),
            "otp": MemoryRegion("otp", OTP_BASE, otp_size, writable=False),
        }
        self._data: Dict[str, bytearray] = {
            name: bytearray(region.size) for name, region in self.regions.items()
        }

    # ------------------------------------------------------------------ #
    def _locate(self, address: int, width: int) -> tuple[MemoryRegion, int]:
        for region in self.regions.values():
            if region.contains(address, width):
                return region, address - region.base
        raise MemoryError_(
            f"access of {width} byte(s) at 0x{address:08x} hits no memory region"
        )

    def load_bytes(self, address: int, count: int) -> bytes:
        region, offset = self._locate(address, count)
        return bytes(self._data[region.name][offset : offset + count])

    def store_bytes(self, address: int, payload: bytes, force: bool = False) -> None:
        region, offset = self._locate(address, len(payload))
        if not region.writable and not force:
            raise MemoryError_(f"region {region.name} is read-only")
        self._data[region.name][offset : offset + len(payload)] = payload

    # ------------------------------------------------------------------ #
    # Word / half / byte accessors (little endian, like RISC-V)
    # ------------------------------------------------------------------ #
    def load_word(self, address: int, signed: bool = True) -> int:
        raw = int.from_bytes(self.load_bytes(address, 4), "little")
        return to_signed(raw, 32) if signed else raw

    def load_half(self, address: int, signed: bool = True) -> int:
        raw = int.from_bytes(self.load_bytes(address, 2), "little")
        return to_signed(raw, 16) if signed else raw

    def load_byte(self, address: int, signed: bool = True) -> int:
        raw = self.load_bytes(address, 1)[0]
        return to_signed(raw, 8) if signed else raw

    def store_word(self, address: int, value: int) -> None:
        self.store_bytes(address, to_unsigned(value, 32).to_bytes(4, "little"))

    def store_half(self, address: int, value: int) -> None:
        self.store_bytes(address, to_unsigned(value, 16).to_bytes(2, "little"))

    def store_byte(self, address: int, value: int) -> None:
        self.store_bytes(address, to_unsigned(value, 8).to_bytes(1, "little"))

    # ------------------------------------------------------------------ #
    def clone(self, dmem_buffer=None) -> "Memory":
        """Deep copy sharing region descriptors but not the byte contents.

        Used by the batched simulator to give each frame its own memory
        image; clones stay valid targets for the raw dmem views the JIT
        binds because their buffers are never replaced, only mutated.

        ``dmem_buffer`` may supply an external writable buffer (a
        memoryview over a row of a shared numpy matrix) to back the
        clone's dmem — the batched executor uses this so that one ``(F,
        dmem_size)`` matrix holds every frame's data memory and kernel
        gathers become zero-copy column slices.  The buffer must be
        exactly ``dmem_size`` bytes; the current contents are copied in.
        """
        out = Memory.__new__(Memory)
        out.regions = dict(self.regions)
        out._data = {name: bytearray(data) for name, data in self._data.items()}
        if dmem_buffer is not None:
            dmem_buffer[:] = self._data["dmem"]
            out._data["dmem"] = dmem_buffer
        return out

    def copy_from(self, other: "Memory") -> None:
        """Adopt another memory's byte contents in place (regions must match)."""
        for name, data in other._data.items():
            self._data[name][:] = data

    # ------------------------------------------------------------------ #
    def region_usage(self, name: str) -> int:
        """Highest initialized byte offset + 1 in a region (rough fill level)."""
        data = self._data[name]
        for i in range(len(data) - 1, -1, -1):
            if data[i]:
                return i + 1
        return 0
