"""The MAUPITI smart-sensor hardware platform (Sec. III-B)."""

from .isa import ABI_NAMES, Instruction, decode, encode, reg
from .sdotp import pack_lanes, sdotp4, sdotp8, to_signed, to_unsigned, unpack_lanes
from .memory import DMEM_BASE, DMEM_SIZE, IMEM_BASE, IMEM_SIZE, Memory, MemoryError_
from .cycles import CycleModel, DEFAULT_CYCLE_MODEL
from .core import ExecutionStats, IbexCore, SIM_MODES, SimulationError
from .sim import TraceProgram, compile_trace
from .sensor import TmosArray, TmosArrayConfig
from .energy import (
    IBEX_SPEC,
    MAUPITI_SPEC,
    STM32_SPEC,
    PlatformSpec,
    area_overhead_fraction,
    power_overhead_fraction,
    sensor_energy_per_frame_j,
    system_energy_per_frame_j,
)
from .platform import (
    PlatformLimits,
    SmartSensorPlatform,
    ibex_platform,
    maupiti_platform,
)

__all__ = [
    "Instruction",
    "encode",
    "decode",
    "reg",
    "ABI_NAMES",
    "sdotp8",
    "sdotp4",
    "pack_lanes",
    "unpack_lanes",
    "to_signed",
    "to_unsigned",
    "Memory",
    "MemoryError_",
    "IMEM_BASE",
    "IMEM_SIZE",
    "DMEM_BASE",
    "DMEM_SIZE",
    "IbexCore",
    "CycleModel",
    "DEFAULT_CYCLE_MODEL",
    "ExecutionStats",
    "SimulationError",
    "SIM_MODES",
    "TraceProgram",
    "compile_trace",
    "TmosArray",
    "TmosArrayConfig",
    "PlatformSpec",
    "IBEX_SPEC",
    "MAUPITI_SPEC",
    "STM32_SPEC",
    "sensor_energy_per_frame_j",
    "system_energy_per_frame_j",
    "area_overhead_fraction",
    "power_overhead_fraction",
    "SmartSensorPlatform",
    "PlatformLimits",
    "maupiti_platform",
    "ibex_platform",
]
