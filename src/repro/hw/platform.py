"""Full MAUPITI system assembly (Fig. 3).

A :class:`SmartSensorPlatform` bundles the sensor array, the memory
subsystem, the (optionally customized) IBEX core and the platform's
power/energy specification, and exposes the operations the deployment
runtime needs: load a program image, run it, and account for energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .core import ExecutionStats, IbexCore
from .energy import IBEX_SPEC, MAUPITI_SPEC, PlatformSpec, system_energy_per_frame_j
from .isa import Instruction
from .memory import DMEM_SIZE, IMEM_SIZE, Memory
from .sensor import TmosArray, TmosArrayConfig


@dataclass
class PlatformLimits:
    """On-chip memory budget the compiled model must fit."""

    imem_bytes: int = IMEM_SIZE
    dmem_bytes: int = DMEM_SIZE


class SmartSensorPlatform:
    """A smart sensor node: TMOS array + digital block with an IBEX-class core."""

    def __init__(
        self,
        spec: PlatformSpec = MAUPITI_SPEC,
        limits: Optional[PlatformLimits] = None,
        sensor_config: Optional[TmosArrayConfig] = None,
        sim_mode: str = "jit",
    ):
        self.spec = spec
        self.limits = limits or PlatformLimits()
        self.memory = Memory(
            imem_size=self.limits.imem_bytes, dmem_size=self.limits.dmem_bytes
        )
        self.sim_mode = sim_mode
        self.core = IbexCore(
            memory=self.memory,
            enable_sdotp=spec.supports_sdotp,
            cycle_model=spec.cycle_model,
            mode=sim_mode,
        )
        self.sensor = TmosArray(sensor_config)

    # ------------------------------------------------------------------ #
    def check_fits(self, code_bytes: int, data_bytes: int) -> None:
        """Raise if a program image exceeds the on-chip memories."""
        if code_bytes > self.limits.imem_bytes:
            raise MemoryError(
                f"code size {code_bytes} B exceeds the {self.limits.imem_bytes} B "
                f"instruction memory of {self.spec.name}"
            )
        if data_bytes > self.limits.dmem_bytes:
            raise MemoryError(
                f"data size {data_bytes} B exceeds the {self.limits.dmem_bytes} B "
                f"data memory of {self.spec.name}"
            )

    def run_program(self, program: List[Instruction]) -> ExecutionStats:
        """Execute a program on the core (memory must be pre-loaded)."""
        self.core.reset()
        return self.core.run(program)

    # ------------------------------------------------------------------ #
    def inference_energy_uj(self, cycles: int) -> float:
        """Digital-block energy for one inference, in microjoules."""
        return self.spec.energy_per_inference_uj(cycles)

    def frame_energy_uj(self, cycles: int) -> float:
        """Whole-node energy for one frame (sensor + inference), in microjoules."""
        return system_energy_per_frame_j(cycles, self.spec) * 1e6


def maupiti_platform(sim_mode: str = "jit") -> SmartSensorPlatform:
    """The taped-out MAUPITI configuration (SDOTP enabled)."""
    return SmartSensorPlatform(spec=MAUPITI_SPEC, sim_mode=sim_mode)


def ibex_platform(sim_mode: str = "jit") -> SmartSensorPlatform:
    """The same chip with the custom instructions disabled (baseline)."""
    return SmartSensorPlatform(spec=IBEX_SPEC, sim_mode=sim_mode)
