"""Power, energy and area models for the three deployment targets.

The numbers are calibrated on the figures reported in the paper:

* MAUPITI: 130 nm CMOS, 20 MHz, digital block ~0.9 mW in FF conditions,
  sensor array 0.62 mW, SDOTP extension adds <7 % core area and ~2.2 %
  post-synthesis power compared to the vanilla IBEX.
* Vanilla IBEX: same chip without the SDOTP unit (reference for the ISA
  extension gains).
* STM32L4R5 + X-CUBE-AI: 120 MHz Cortex-M4-class MCU; the paper measures a
  13.2x higher power than MAUPITI and up to 9x lower latency.

Energy per inference is simply ``cycles / frequency * power``; the sensor
energy per frame can be added on top for whole-node accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cycles import CycleModel, DEFAULT_CYCLE_MODEL


@dataclass(frozen=True)
class PlatformSpec:
    """Static description of one deployment platform.

    ``cycle_model`` is the per-instruction timing configuration every
    simulator (reference interpreter and trace-compiled fast path alike)
    must use for this platform; the IBEX and MAUPITI specs share the single
    :data:`~repro.hw.cycles.DEFAULT_CYCLE_MODEL` instance so timing cannot
    drift between platforms or engine backends.
    """

    name: str
    frequency_hz: float
    active_power_w: float
    supports_sdotp: bool
    supports_int4: bool
    relative_core_area: float
    code_overhead_bytes: int
    description: str = ""
    cycle_model: CycleModel = field(default=DEFAULT_CYCLE_MODEL)

    def cycles_to_seconds(self, cycles: int) -> float:
        return cycles / self.frequency_hz

    def energy_per_inference_j(self, cycles: int) -> float:
        """Digital-block energy for one inference taking ``cycles`` cycles."""
        return self.cycles_to_seconds(cycles) * self.active_power_w

    def energy_per_inference_uj(self, cycles: int) -> float:
        return self.energy_per_inference_j(cycles) * 1e6


# Vanilla IBEX inside the MAUPITI digital block, custom instructions unused.
IBEX_SPEC = PlatformSpec(
    name="IBEX",
    frequency_hz=20e6,
    active_power_w=0.8806e-3,
    supports_sdotp=False,
    supports_int4=True,
    relative_core_area=1.0,
    code_overhead_bytes=256,
    description="Unmodified IBEX RV32IMC core, 20 MHz, scalar kernels",
)

# The customized core: +2.2% post-synthesis power, <7% area, SDOTP enabled.
MAUPITI_SPEC = PlatformSpec(
    name="MAUPITI",
    frequency_hz=20e6,
    active_power_w=0.9e-3,
    supports_sdotp=True,
    supports_int4=True,
    relative_core_area=1.07,
    code_overhead_bytes=256,
    description="IBEX + SDOTP ISA extension, 20 MHz, SIMD kernels",
)

# Off-the-shelf MCU with the proprietary X-CUBE-AI runtime (8-bit only).
STM32_SPEC = PlatformSpec(
    name="STM32",
    frequency_hz=120e6,
    active_power_w=11.88e-3,
    supports_sdotp=False,
    supports_int4=False,
    relative_core_area=4.0,
    code_overhead_bytes=20 * 1024,
    description="STM32L4R5 @ 120 MHz with X-CUBE-AI, INT8 only",
)

SENSOR_POWER_W = 0.62e-3
SENSOR_FRAME_RATE_HZ = 10.0


def sensor_energy_per_frame_j() -> float:
    """Energy of the TMOS array over one frame period (0.62 mW at 10 FPS)."""
    return SENSOR_POWER_W / SENSOR_FRAME_RATE_HZ


def system_energy_per_frame_j(inference_cycles: int, spec: PlatformSpec) -> float:
    """Whole smart-sensor energy per frame: acquisition plus inference.

    Only meaningful for the on-chip platforms (IBEX / MAUPITI); the STM32
    comparison in the paper considers the MCU alone.
    """
    return sensor_energy_per_frame_j() + spec.energy_per_inference_j(inference_cycles)


def area_overhead_fraction() -> float:
    """Core area overhead of the SDOTP extension w.r.t. the vanilla IBEX."""
    return MAUPITI_SPEC.relative_core_area / IBEX_SPEC.relative_core_area - 1.0


def power_overhead_fraction() -> float:
    """Post-synthesis power overhead of MAUPITI w.r.t. the vanilla IBEX."""
    return MAUPITI_SPEC.active_power_w / IBEX_SPEC.active_power_w - 1.0
