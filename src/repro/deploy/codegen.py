"""RV32 code generation for quantized DNN layers.

The code generator emits *specialized* kernels: every layer of a compiled
model gets its own straight-line block of RV32IM(+SDOTP) assembly with the
layer's dimensions, strides and requantization constants baked in as
immediates.  This mirrors the paper's "minimal set of optimized kernels"
approach — there is no generic interpreter, no descriptor parsing, and no
function-call overhead, which is how the firmware fits a few kilobytes of
code.

Two kernel flavours exist for the multiply-accumulate inner loops:

* ``scalar`` — one (or, for packed INT4 data, two) multiply-accumulate per
  loop iteration using plain loads and MUL; this is what runs on the vanilla
  IBEX core.
* ``sdotp`` — the MAUPITI path: the inner loop consumes one 32-bit word of
  activations and one of weights per iteration with a single SDOTP8 (four
  8-bit MACs) or SDOTP4 (eight 4-bit MACs) instruction.

Both flavours use the same zero-padded data layout (see
:mod:`repro.deploy.packing`), so "leftover" elements that do not fill a SIMD
word are covered by zero padding rather than by scalar epilogues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..hw.isa import Instruction, reg


class AssemblerError(Exception):
    """Raised on unresolved labels or malformed emission."""


@dataclass(frozen=True)
class KernelHint:
    """Annotation marking an emitted loop as a known vectorizable kernel.

    The code generator records one hint per structured loop it emits
    (``kind`` in ``{"sdotp", "mac8", "mac4", "memset"}``; ``label`` is the
    loop's branch-target label).  The fast simulator recognizes the loops
    structurally, so the hints carry no execution semantics — they exist so
    tests can prove that every loop codegen claims to emit is actually
    picked up by a vectorized handler
    (:meth:`repro.hw.sim.TraceProgram.vectorized_labels`).
    """

    label: str
    kind: str


class Assembler:
    """A tiny two-pass assembler over :class:`~repro.hw.isa.Instruction`.

    Instructions are emitted with symbolic branch/jump targets; ``assemble``
    resolves them into PC-relative immediates (4 bytes per instruction slot,
    matching how the simulator addresses the program).
    """

    def __init__(self) -> None:
        self.instructions: List[Instruction] = []
        self.labels: Dict[str, int] = {}
        self.kernel_hints: List[KernelHint] = []
        self._pending_label: Optional[str] = None

    def hint_kernel(self, label: str, kind: str) -> None:
        """Record that the loop at ``label`` is a vectorizable kernel."""
        self.kernel_hints.append(KernelHint(label=label, kind=kind))

    # ------------------------------------------------------------------ #
    def label(self, name: str) -> None:
        if name in self.labels or name == self._pending_label:
            raise AssemblerError(f"duplicate label {name!r}")
        self._pending_label = name

    def emit(
        self,
        mnemonic: str,
        rd: str | int = 0,
        rs1: str | int = 0,
        rs2: str | int = 0,
        imm: int = 0,
        target: Optional[str] = None,
        comment: str = "",
    ) -> None:
        instr = Instruction(
            mnemonic,
            rd=reg(rd),
            rs1=reg(rs1),
            rs2=reg(rs2),
            imm=imm,
            target=target,
            comment=comment,
        )
        if self._pending_label is not None:
            instr.label = self._pending_label
            self.labels[self._pending_label] = len(self.instructions)
            self._pending_label = None
        self.instructions.append(instr)

    # Convenience pseudo-instructions ----------------------------------- #
    def li(self, rd: str | int, value: int, comment: str = "") -> None:
        """Load a 32-bit signed immediate (ADDI or LUI+ADDI)."""
        value = int(value)
        if -(1 << 31) > value or value >= (1 << 32):
            raise AssemblerError(f"immediate {value} does not fit in 32 bits")
        if value >= 1 << 31:
            value -= 1 << 32
        if -2048 <= value < 2048:
            self.emit("addi", rd=rd, rs1="zero", imm=value, comment=comment)
            return
        upper = (value + 0x800) & 0xFFFFF000
        if upper >= 1 << 31:
            upper -= 1 << 32
        lower = value - upper
        self.emit("lui", rd=rd, imm=upper, comment=comment)
        if lower:
            self.emit("addi", rd=rd, rs1=rd, imm=lower)

    def mv(self, rd: str | int, rs: str | int) -> None:
        self.emit("add", rd=rd, rs1=rs, rs2="zero")

    def addi_big(self, rd: str | int, rs: str | int, value: int) -> None:
        """Add a constant that may exceed the 12-bit ADDI range."""
        if -2048 <= value < 2048:
            if value or reg(rd) != reg(rs):
                self.emit("addi", rd=rd, rs1=rs, imm=value)
            return
        self.li("t6", value)
        self.emit("add", rd=rd, rs1=rs, rs2="t6")

    # ------------------------------------------------------------------ #
    def assemble(self) -> List[Instruction]:
        """Resolve symbolic targets and return the finished program."""
        if self._pending_label is not None:
            raise AssemblerError(f"label {self._pending_label!r} has no instruction")
        program: List[Instruction] = []
        for index, instr in enumerate(self.instructions):
            if instr.target is not None:
                if instr.target not in self.labels:
                    raise AssemblerError(f"undefined label {instr.target!r}")
                offset = (self.labels[instr.target] - index) * 4
                instr.imm = offset
            program.append(instr)
        return program

    def code_size_bytes(self, compressed: bool = True) -> int:
        """Code size, optionally applying the RV32C compression heuristic."""
        if not compressed:
            return 4 * len(self.instructions)
        return sum(i.size_bytes() for i in self.instructions)


# --------------------------------------------------------------------------- #
# Kernel configuration dataclasses
# --------------------------------------------------------------------------- #
@dataclass
class ActBuffer:
    """An activation buffer in data memory (HWC layout, padded strides)."""

    address: int
    height: int  # spatial height including the pad ring
    width: int
    channels: int
    bits: int
    pad: int  # pad ring width included in height/width
    pixel_stride: int  # bytes between consecutive pixels
    row_stride: int  # bytes between consecutive rows
    size_bytes: int

    def interior_origin(self) -> int:
        """Address of the first non-pad pixel."""
        return self.address + self.pad * self.row_stride + self.pad * self.pixel_stride


@dataclass
class ConvKernelConfig:
    """Everything the conv kernel generator needs for one layer."""

    name: str
    in_buf: ActBuffer
    out_buf: ActBuffer
    weights_address: int
    bias_address: int
    c_in: int
    c_out: int
    kernel: tuple
    stride: tuple
    out_h: int
    out_w: int
    bits: int  # weight AND input-activation precision (4 or 8)
    out_bits: int  # 4, 8, or 32 (no requantization, raw accumulators)
    multiplier: int = 1
    shift: int = 0
    out_levels: int = 0
    requantize: bool = True
    use_sdotp: bool = False
    weight_oc_stride: int = 0  # bytes between output-channel weight blocks
    weight_tap_stride: int = 0  # bytes per (ky,kx) padded input-channel run


@dataclass
class FcKernelConfig:
    """Fully-connected layer over a contiguous padded input vector."""

    name: str
    in_address: int
    in_values: int  # padded vector length in values
    out_buf_address: int
    weights_address: int
    bias_address: int
    c_out: int
    bits: int
    out_bits: int
    multiplier: int = 1
    shift: int = 0
    out_levels: int = 0
    requantize: bool = True
    use_sdotp: bool = False
    weight_row_stride: int = 0  # bytes per output-neuron weight run


@dataclass
class PoolKernelConfig:
    """2x2 max-pooling kernel configuration."""

    name: str
    in_buf: ActBuffer
    out_buf: ActBuffer
    channels: int
    bits: int
    kernel: tuple = (2, 2)
    stride: tuple = (2, 2)
    out_h: int = 0
    out_w: int = 0


# --------------------------------------------------------------------------- #
# Shared emission helpers
# --------------------------------------------------------------------------- #
def emit_memset(asm: Assembler, name: str, address: int, size_bytes: int) -> None:
    """Zero a word-aligned buffer (used to clear output pad rings)."""
    if size_bytes % 4:
        raise AssemblerError("memset size must be a word multiple")
    if size_bytes == 0:
        return
    asm.li("t1", address, comment=f"{name}: memset base")
    asm.li("t2", address + size_bytes)
    asm.hint_kernel(f"{name}_memset", "memset")
    asm.label(f"{name}_memset")
    asm.emit("sw", rs1="t1", rs2="zero", imm=0)
    asm.emit("addi", rd="t1", rs1="t1", imm=4)
    asm.emit("bne", rs1="t1", rs2="t2", target=f"{name}_memset")


def _emit_inner_product(
    asm: Assembler,
    name: str,
    bits: int,
    use_sdotp: bool,
    run_values: int,
    acc: str = "s7",
    act_ptr: str = "t1",
    weight_ptr: str = "t2",
) -> None:
    """Accumulate ``run_values`` products from two padded runs into ``acc``.

    ``act_ptr`` / ``weight_ptr`` are advanced past the run (including the
    padding) so callers can chain runs back to back.
    """
    if run_values == 0:
        return
    if use_sdotp:
        words = (run_values * bits + 31) // 32
        mnemonic = "sdotp8" if bits == 8 else "sdotp4"
        asm.li("t3", words)
        asm.hint_kernel(f"{name}_simd", "sdotp")
        asm.label(f"{name}_simd")
        asm.emit("lw", rd="t4", rs1=act_ptr, imm=0)
        asm.emit("lw", rd="t5", rs1=weight_ptr, imm=0)
        asm.emit(mnemonic, rd=acc, rs1="t4", rs2="t5")
        asm.emit("addi", rd=act_ptr, rs1=act_ptr, imm=4)
        asm.emit("addi", rd=weight_ptr, rs1=weight_ptr, imm=4)
        asm.emit("addi", rd="t3", rs1="t3", imm=-1)
        asm.emit("bne", rs1="t3", rs2="zero", target=f"{name}_simd")
        return

    if bits == 8:
        asm.li("t3", run_values)
        asm.hint_kernel(f"{name}_mac8", "mac8")
        asm.label(f"{name}_mac8")
        asm.emit("lb", rd="t4", rs1=act_ptr, imm=0)
        asm.emit("lb", rd="t5", rs1=weight_ptr, imm=0)
        asm.emit("mul", rd="t4", rs1="t4", rs2="t5")
        asm.emit("add", rd=acc, rs1=acc, rs2="t4")
        asm.emit("addi", rd=act_ptr, rs1=act_ptr, imm=1)
        asm.emit("addi", rd=weight_ptr, rs1=weight_ptr, imm=1)
        asm.emit("addi", rd="t3", rs1="t3", imm=-1)
        asm.emit("bne", rs1="t3", rs2="zero", target=f"{name}_mac8")
        # Skip the zero padding so the pointers land on the next run.
        pad = ((run_values + 3) // 4) * 4 - run_values
        if pad:
            asm.emit("addi", rd=act_ptr, rs1=act_ptr, imm=pad)
            asm.emit("addi", rd=weight_ptr, rs1=weight_ptr, imm=pad)
        return

    # Scalar INT4: activations and weights are packed two values per byte.
    # Activations are non-negative (PACT) so the low nibble is a plain mask;
    # weights are signed and need sign extension through shift pairs.
    pairs = (run_values + 1) // 2
    asm.li("t3", pairs)
    asm.hint_kernel(f"{name}_mac4", "mac4")
    asm.label(f"{name}_mac4")
    asm.emit("lbu", rd="t4", rs1=act_ptr, imm=0)
    asm.emit("lbu", rd="t5", rs1=weight_ptr, imm=0)
    # Low nibble product.
    asm.emit("andi", rd="t6", rs1="t4", imm=0xF)
    asm.emit("slli", rd="t0", rs1="t5", imm=28)
    asm.emit("srai", rd="t0", rs1="t0", imm=28)
    asm.emit("mul", rd="t0", rs1="t0", rs2="t6")
    asm.emit("add", rd=acc, rs1=acc, rs2="t0")
    # High nibble product.
    asm.emit("srli", rd="t6", rs1="t4", imm=4)
    asm.emit("slli", rd="t0", rs1="t5", imm=24)
    asm.emit("srai", rd="t0", rs1="t0", imm=28)
    asm.emit("mul", rd="t0", rs1="t0", rs2="t6")
    asm.emit("add", rd=acc, rs1=acc, rs2="t0")
    asm.emit("addi", rd=act_ptr, rs1=act_ptr, imm=1)
    asm.emit("addi", rd=weight_ptr, rs1=weight_ptr, imm=1)
    asm.emit("addi", rd="t3", rs1="t3", imm=-1)
    asm.emit("bne", rs1="t3", rs2="zero", target=f"{name}_mac4")
    pad_bytes = ((pairs + 3) // 4) * 4 - pairs
    if pad_bytes:
        asm.emit("addi", rd=act_ptr, rs1=act_ptr, imm=pad_bytes)
        asm.emit("addi", rd=weight_ptr, rs1=weight_ptr, imm=pad_bytes)


class _RequantEmitter:
    """Emits the fixed-point requantization sequence shared by conv and FC."""

    def __init__(self, multiplier: int, shift: int, out_levels: int):
        self.multiplier = multiplier
        self.shift = shift
        self.out_levels = out_levels

    def emit_constants(self, asm: Assembler, comment: str = "") -> None:
        asm.li("s8", self.multiplier, comment=f"{comment} requant multiplier")
        asm.li("s9", 1 << (self.shift - 1) if self.shift > 0 else 0)
        asm.li("s10", self.out_levels)

    def emit(self, asm: Assembler, name: str, acc: str = "s7", result: str = "t4") -> None:
        asm.emit("mul", rd=result, rs1=acc, rs2="s8")
        asm.emit("add", rd=result, rs1=result, rs2="s9")
        if self.shift > 0:
            asm.emit("srai", rd=result, rs1=result, imm=self.shift)
        asm.emit("bge", rs1=result, rs2="zero", target=f"{name}_nonneg")
        asm.emit("add", rd=result, rs1="zero", rs2="zero")
        asm.label(f"{name}_nonneg")
        asm.emit("bge", rs1="s10", rs2=result, target=f"{name}_clamped")
        asm.mv(result, "s10")
        asm.label(f"{name}_clamped")


class _OutputWriter:
    """Stores requantized outputs, packing two nibbles per byte for INT4."""

    def __init__(self, out_bits: int):
        if out_bits not in (4, 8, 32):
            raise AssemblerError(f"unsupported output precision {out_bits}")
        self.out_bits = out_bits

    def emit_init(self, asm: Assembler) -> None:
        if self.out_bits == 4:
            asm.li("a6", 0)  # pending low nibble
            asm.li("a7", 0)  # parity flag

    def emit_store(self, asm: Assembler, name: str, value: str, out_ptr: str) -> None:
        if self.out_bits == 32:
            asm.emit("sw", rs1=out_ptr, rs2=value, imm=0)
            asm.emit("addi", rd=out_ptr, rs1=out_ptr, imm=4)
            return
        if self.out_bits == 8:
            asm.emit("sb", rs1=out_ptr, rs2=value, imm=0)
            asm.emit("addi", rd=out_ptr, rs1=out_ptr, imm=1)
            return
        # INT4 packing: even channel -> remember, odd channel -> store byte.
        asm.emit("bne", rs1="a7", rs2="zero", target=f"{name}_odd")
        asm.mv("a6", value)
        asm.li("a7", 1)
        asm.emit("jal", rd="zero", target=f"{name}_done")
        asm.label(f"{name}_odd")
        asm.emit("slli", rd="t5", rs1=value, imm=4)
        asm.emit("or", rd="t5", rs1="t5", rs2="a6")
        asm.emit("sb", rs1=out_ptr, rs2="t5", imm=0)
        asm.emit("addi", rd=out_ptr, rs1=out_ptr, imm=1)
        asm.li("a7", 0)
        asm.label(f"{name}_done")

    def emit_flush(self, asm: Assembler, name: str, out_ptr: str) -> None:
        """Store a trailing low nibble when the channel count is odd."""
        if self.out_bits != 4:
            return
        asm.emit("beq", rs1="a7", rs2="zero", target=f"{name}_noflush")
        asm.emit("sb", rs1=out_ptr, rs2="a6", imm=0)
        asm.emit("addi", rd=out_ptr, rs1=out_ptr, imm=1)
        asm.li("a7", 0)
        asm.label(f"{name}_noflush")

    def bytes_per_pixel(self, channels: int) -> int:
        if self.out_bits == 32:
            return channels * 4
        if self.out_bits == 8:
            return channels
        return (channels + 1) // 2


# --------------------------------------------------------------------------- #
# Layer kernels
# --------------------------------------------------------------------------- #
def emit_conv_layer(asm: Assembler, cfg: ConvKernelConfig) -> None:
    """Emit a specialized 2D convolution (+ requantization) kernel."""
    name = cfg.name
    kh, kw = cfg.kernel
    sh, sw = cfg.stride
    requant = _RequantEmitter(cfg.multiplier, cfg.shift, cfg.out_levels)
    writer = _OutputWriter(cfg.out_bits)

    if cfg.out_buf.pad > 0:
        emit_memset(asm, f"{name}_clear", cfg.out_buf.address, cfg.out_buf.size_bytes)

    if cfg.requantize:
        requant.emit_constants(asm, comment=name)

    out_origin = cfg.out_buf.interior_origin()
    written_per_pixel = writer.bytes_per_pixel(cfg.c_out)
    pixel_slack = cfg.out_buf.pixel_stride - written_per_pixel
    row_slack = cfg.out_buf.row_stride - cfg.out_w * cfg.out_buf.pixel_stride

    asm.li("s11", cfg.in_buf.address, comment=f"{name}: input row base")
    asm.li("s1", out_origin, comment=f"{name}: output pointer")
    asm.li("s4", cfg.out_h)

    asm.label(f"{name}_oy")
    asm.mv("s0", "s11")  # patch base for ox = 0
    asm.li("s5", cfg.out_w)

    asm.label(f"{name}_ox")
    asm.li("s2", cfg.weights_address)
    asm.li("s3", cfg.bias_address)
    asm.li("s6", cfg.c_out)
    writer.emit_init(asm)

    asm.label(f"{name}_oc")
    asm.emit("lw", rd="s7", rs1="s3", imm=0, comment=f"{name}: acc = bias")
    asm.emit("addi", rd="s3", rs1="s3", imm=4)
    asm.mv("a2", "s0")  # input row pointer for ky = 0
    asm.mv("a4", "s2")  # weight tap pointer
    asm.li("a0", kh)

    asm.label(f"{name}_ky")
    asm.mv("a3", "a2")  # pixel pointer for kx = 0
    asm.li("a1", kw)

    asm.label(f"{name}_kx")
    asm.mv("t1", "a3")
    asm.mv("t2", "a4")
    _emit_inner_product(asm, f"{name}_ip", cfg.bits, cfg.use_sdotp, cfg.c_in)
    asm.mv("a4", "t2")  # weight pointer already advanced past the padded run
    asm.addi_big("a3", "a3", cfg.in_buf.pixel_stride)
    asm.emit("addi", rd="a1", rs1="a1", imm=-1)
    asm.emit("bne", rs1="a1", rs2="zero", target=f"{name}_kx")

    asm.addi_big("a2", "a2", cfg.in_buf.row_stride)
    asm.emit("addi", rd="a0", rs1="a0", imm=-1)
    asm.emit("bne", rs1="a0", rs2="zero", target=f"{name}_ky")

    # Requantize and store this output channel.
    if cfg.requantize:
        requant.emit(asm, f"{name}_rq", acc="s7", result="t4")
        writer.emit_store(asm, f"{name}_st", "t4", "s1")
    else:
        writer.emit_store(asm, f"{name}_st", "s7", "s1")

    asm.addi_big("s2", "s2", cfg.weight_oc_stride)
    asm.emit("addi", rd="s6", rs1="s6", imm=-1)
    asm.emit("bne", rs1="s6", rs2="zero", target=f"{name}_oc")

    writer.emit_flush(asm, f"{name}_fl", "s1")
    if pixel_slack:
        asm.emit("addi", rd="s1", rs1="s1", imm=pixel_slack)
    asm.addi_big("s0", "s0", sw * cfg.in_buf.pixel_stride)
    asm.emit("addi", rd="s5", rs1="s5", imm=-1)
    asm.emit("bne", rs1="s5", rs2="zero", target=f"{name}_ox")

    if row_slack:
        asm.addi_big("s1", "s1", row_slack)
    asm.addi_big("s11", "s11", sh * cfg.in_buf.row_stride)
    asm.emit("addi", rd="s4", rs1="s4", imm=-1)
    asm.emit("bne", rs1="s4", rs2="zero", target=f"{name}_oy")


def emit_fc_layer(asm: Assembler, cfg: FcKernelConfig) -> None:
    """Emit a specialized fully-connected (+ requantization) kernel."""
    name = cfg.name
    requant = _RequantEmitter(cfg.multiplier, cfg.shift, cfg.out_levels)
    writer = _OutputWriter(cfg.out_bits)

    if cfg.requantize:
        requant.emit_constants(asm, comment=name)

    asm.li("s2", cfg.weights_address, comment=f"{name}: weight row pointer")
    asm.li("s3", cfg.bias_address)
    asm.li("s1", cfg.out_buf_address)
    asm.li("s6", cfg.c_out)
    writer.emit_init(asm)

    asm.label(f"{name}_oc")
    asm.emit("lw", rd="s7", rs1="s3", imm=0, comment=f"{name}: acc = bias")
    asm.emit("addi", rd="s3", rs1="s3", imm=4)
    asm.li("t1", cfg.in_address)
    asm.mv("t2", "s2")
    _emit_inner_product(asm, f"{name}_ip", cfg.bits, cfg.use_sdotp, cfg.in_values)
    if cfg.requantize:
        requant.emit(asm, f"{name}_rq", acc="s7", result="t4")
        writer.emit_store(asm, f"{name}_st", "t4", "s1")
    else:
        writer.emit_store(asm, f"{name}_st", "s7", "s1")
    asm.addi_big("s2", "s2", cfg.weight_row_stride)
    asm.emit("addi", rd="s6", rs1="s6", imm=-1)
    asm.emit("bne", rs1="s6", rs2="zero", target=f"{name}_oc")
    writer.emit_flush(asm, f"{name}_fl", "s1")


def emit_maxpool_layer(asm: Assembler, cfg: PoolKernelConfig) -> None:
    """Emit a specialized 2x2 stride-2 max pooling kernel (INT4 or INT8)."""
    name = cfg.name
    kh, kw = cfg.kernel
    sh, sw = cfg.stride
    if (kh, kw) != (2, 2) or (sh, sw) != (2, 2):
        raise AssemblerError("only 2x2 stride-2 max pooling is generated")

    if cfg.out_buf.pad > 0:
        emit_memset(asm, f"{name}_clear", cfg.out_buf.address, cfg.out_buf.size_bytes)

    out_origin = cfg.out_buf.interior_origin()
    bytes_per_pixel = cfg.channels if cfg.bits == 8 else (cfg.channels + 1) // 2
    pixel_slack = cfg.out_buf.pixel_stride - bytes_per_pixel
    row_slack = cfg.out_buf.row_stride - cfg.out_w * cfg.out_buf.pixel_stride

    asm.li("s11", cfg.in_buf.address, comment=f"{name}: input row base")
    asm.li("s1", out_origin)
    asm.li("s4", cfg.out_h)

    asm.label(f"{name}_oy")
    asm.mv("s0", "s11")
    asm.li("s5", cfg.out_w)

    asm.label(f"{name}_ox")
    # Byte loop across the pixel payload: max-pooling packed nibbles can be
    # done per byte because both nibbles are non-negative (PACT outputs), so
    # a nibble-wise max equals two independent nibble comparisons which we
    # unroll below for the INT4 case.
    asm.li("s6", bytes_per_pixel)
    asm.mv("a2", "s0")  # top-left pixel pointer (byte granular)
    asm.mv("a5", "s1")

    asm.label(f"{name}_ch")
    if cfg.bits == 8:
        asm.emit("lb", rd="t1", rs1="a2", imm=0)
        asm.emit("lb", rd="t2", rs1="a2", imm=cfg.in_buf.pixel_stride)
        asm.emit("lb", rd="t3", rs1="a2", imm=cfg.in_buf.row_stride)
        asm.emit("lb", rd="t4", rs1="a2", imm=cfg.in_buf.row_stride + cfg.in_buf.pixel_stride)
        for other in ("t2", "t3", "t4"):
            asm.emit("bge", rs1="t1", rs2=other, target=f"{name}_skip_{other}_{id(cfg)}")
            asm.mv("t1", other)
            asm.label(f"{name}_skip_{other}_{id(cfg)}")
        asm.emit("sb", rs1="a5", rs2="t1", imm=0)
    else:
        asm.emit("lbu", rd="t1", rs1="a2", imm=0)
        asm.emit("lbu", rd="t2", rs1="a2", imm=cfg.in_buf.pixel_stride)
        asm.emit("lbu", rd="t3", rs1="a2", imm=cfg.in_buf.row_stride)
        asm.emit("lbu", rd="t4", rs1="a2", imm=cfg.in_buf.row_stride + cfg.in_buf.pixel_stride)
        # Low nibble maximum into t5.
        asm.emit("andi", rd="t5", rs1="t1", imm=0xF)
        for other in ("t2", "t3", "t4"):
            asm.emit("andi", rd="t0", rs1=other, imm=0xF)
            asm.emit("bge", rs1="t5", rs2="t0", target=f"{name}_lo_{other}_{id(cfg)}")
            asm.mv("t5", "t0")
            asm.label(f"{name}_lo_{other}_{id(cfg)}")
        # High nibble maximum into t6.
        asm.emit("srli", rd="t6", rs1="t1", imm=4)
        for other in ("t2", "t3", "t4"):
            asm.emit("srli", rd="t0", rs1=other, imm=4)
            asm.emit("bge", rs1="t6", rs2="t0", target=f"{name}_hi_{other}_{id(cfg)}")
            asm.mv("t6", "t0")
            asm.label(f"{name}_hi_{other}_{id(cfg)}")
        asm.emit("slli", rd="t6", rs1="t6", imm=4)
        asm.emit("or", rd="t5", rs1="t5", rs2="t6")
        asm.emit("sb", rs1="a5", rs2="t5", imm=0)

    asm.emit("addi", rd="a2", rs1="a2", imm=1)
    asm.emit("addi", rd="a5", rs1="a5", imm=1)
    asm.emit("addi", rd="s6", rs1="s6", imm=-1)
    asm.emit("bne", rs1="s6", rs2="zero", target=f"{name}_ch")

    asm.addi_big("s1", "s1", cfg.out_buf.pixel_stride)
    asm.addi_big("s0", "s0", sw * cfg.in_buf.pixel_stride)
    asm.emit("addi", rd="s5", rs1="s5", imm=-1)
    asm.emit("bne", rs1="s5", rs2="zero", target=f"{name}_ox")

    if row_slack:
        asm.addi_big("s1", "s1", row_slack)
    asm.addi_big("s11", "s11", sh * cfg.in_buf.row_stride)
    asm.emit("addi", rd="s4", rs1="s4", imm=-1)
    asm.emit("bne", rs1="s4", rs2="zero", target=f"{name}_oy")


def emit_argmax(asm: Assembler, name: str, logits_address: int, count: int, result_address: int) -> None:
    """Emit an argmax over ``count`` INT32 logits, storing the winning index."""
    asm.li("t1", logits_address, comment=f"{name}: logits")
    asm.emit("lw", rd="t2", rs1="t1", imm=0)  # best value
    asm.li("t3", 0)  # best index
    asm.li("t4", 1)  # current index
    asm.li("t5", count)
    asm.label(f"{name}_loop")
    asm.emit("beq", rs1="t4", rs2="t5", target=f"{name}_store")
    asm.emit("slli", rd="t6", rs1="t4", imm=2)
    asm.emit("add", rd="t6", rs1="t6", rs2="t1")
    asm.emit("lw", rd="t0", rs1="t6", imm=0)
    asm.emit("bge", rs1="t2", rs2="t0", target=f"{name}_next")
    asm.mv("t2", "t0")
    asm.mv("t3", "t4")
    asm.label(f"{name}_next")
    asm.emit("addi", rd="t4", rs1="t4", imm=1)
    asm.emit("jal", rd="zero", target=f"{name}_loop")
    asm.label(f"{name}_store")
    asm.li("t6", result_address)
    asm.emit("sw", rs1="t6", rs2="t3", imm=0)
