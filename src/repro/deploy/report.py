"""Deployment reports (Table I of the paper).

For a given quantized model the report gathers, for each of the three
platforms (STM32 + X-CUBE-AI, vanilla IBEX, MAUPITI):

* Code [B] — firmware code size,
* Data [B] — weights + biases + activation buffers,
* Energy [uJ] — digital energy per inference (cycles x power / frequency),
* latency and cycle counts as supporting detail.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..hw.platform import SmartSensorPlatform
from ..quant.integer import IntegerNetwork
from .program import CompiledModel
from .stm32 import Stm32DeploymentModel


@dataclass
class PlatformReport:
    """Deployment metrics of one model on one platform."""

    platform: str
    code_bytes: int
    data_bytes: int
    cycles: float
    latency_ms: float
    energy_uj: float
    # Simulator introspection (ISA-simulated targets only): simulation mode,
    # vectorized kernel counts per kind, and JIT/closure block tallies.
    sim: Optional[Dict] = None

    def row(self) -> str:
        return (
            f"{self.platform:<8} code={self.code_bytes:>6} B  data={self.data_bytes:>6} B  "
            f"cycles={self.cycles:>10.0f}  latency={self.latency_ms:7.3f} ms  "
            f"energy={self.energy_uj:7.3f} uJ"
        )


@dataclass
class DeploymentReport:
    """Table-I-style report for one model across the three platforms."""

    model_label: str
    entries: Dict[str, PlatformReport] = field(default_factory=dict)

    def add(self, entry: PlatformReport) -> None:
        self.entries[entry.platform] = entry

    def improvement(self, metric: str, baseline: str = "STM32", target: str = "MAUPITI") -> float:
        """Reduction factor of ``metric`` going from ``baseline`` to ``target``."""
        base = getattr(self.entries[baseline], metric)
        new = getattr(self.entries[target], metric)
        if new == 0:
            raise ZeroDivisionError(f"{target} has zero {metric}")
        return base / new

    def rows(self) -> List[str]:
        order = ["STM32", "IBEX", "MAUPITI"]
        return [self.entries[p].row() for p in order if p in self.entries]


def report_on_simulated_platform(
    network: IntegerNetwork,
    platform: SmartSensorPlatform,
    calibration_frames: np.ndarray,
    compiled: Optional[CompiledModel] = None,
) -> PlatformReport:
    """Measure one platform by actually running frames on the ISA simulator.

    .. deprecated:: 1.1
        Thin shim over the engine façade; prefer
        ``repro.compile(network, target="maupiti").report(frames)``.
    """
    from ..engine import compile as _compile

    warnings.warn(
        "report_on_simulated_platform() is deprecated; use "
        'repro.compile(network, target="maupiti").report(frames) instead',
        DeprecationWarning,
        stacklevel=2,
    )
    target = "maupiti" if platform.spec.supports_sdotp else "ibex"
    engine = _compile(network, target=target, platform=platform, compiled=compiled)
    return engine.report(calibration_frames)


def report_on_stm32(
    network: IntegerNetwork, model: Optional[Stm32DeploymentModel] = None
) -> PlatformReport:
    """Analytical STM32 + X-CUBE-AI estimate.

    .. deprecated:: 1.1
        Thin shim over the engine façade; prefer
        ``repro.compile(network, target="stm32").report()``.
    """
    from ..engine import compile as _compile

    warnings.warn(
        "report_on_stm32() is deprecated; use "
        'repro.compile(network, target="stm32").report() instead',
        DeprecationWarning,
        stacklevel=2,
    )
    return _compile(network, target="stm32", deployment_model=model).report()


def full_deployment_report(
    network: IntegerNetwork,
    calibration_frames: np.ndarray,
    model_label: str = "model",
) -> DeploymentReport:
    """Build the complete Table-I row set (STM32 / IBEX / MAUPITI) for one model."""
    from ..engine import compile as _compile

    report = DeploymentReport(model_label=model_label)
    report.add(_compile(network, target="stm32").report())
    report.add(_compile(network, target="ibex").report(calibration_frames))
    report.add(_compile(network, target="maupiti").report(calibration_frames))
    return report
