"""Deployment reports (Table I of the paper).

For a given quantized model the report gathers, for each of the three
platforms (STM32 + X-CUBE-AI, vanilla IBEX, MAUPITI):

* Code [B] — firmware code size,
* Data [B] — weights + biases + activation buffers,
* Energy [uJ] — digital energy per inference (cycles x power / frequency),
* latency and cycle counts as supporting detail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..hw.energy import IBEX_SPEC, MAUPITI_SPEC, STM32_SPEC
from ..hw.platform import SmartSensorPlatform, ibex_platform, maupiti_platform
from ..quant.integer import IntegerNetwork
from .program import CompiledModel, compile_network
from .runtime import run_frames
from .stm32 import Stm32DeploymentModel


@dataclass
class PlatformReport:
    """Deployment metrics of one model on one platform."""

    platform: str
    code_bytes: int
    data_bytes: int
    cycles: float
    latency_ms: float
    energy_uj: float

    def row(self) -> str:
        return (
            f"{self.platform:<8} code={self.code_bytes:>6} B  data={self.data_bytes:>6} B  "
            f"cycles={self.cycles:>10.0f}  latency={self.latency_ms:7.3f} ms  "
            f"energy={self.energy_uj:7.3f} uJ"
        )


@dataclass
class DeploymentReport:
    """Table-I-style report for one model across the three platforms."""

    model_label: str
    entries: Dict[str, PlatformReport] = field(default_factory=dict)

    def add(self, entry: PlatformReport) -> None:
        self.entries[entry.platform] = entry

    def improvement(self, metric: str, baseline: str = "STM32", target: str = "MAUPITI") -> float:
        """Reduction factor of ``metric`` going from ``baseline`` to ``target``."""
        base = getattr(self.entries[baseline], metric)
        new = getattr(self.entries[target], metric)
        if new == 0:
            raise ZeroDivisionError(f"{target} has zero {metric}")
        return base / new

    def rows(self) -> List[str]:
        order = ["STM32", "IBEX", "MAUPITI"]
        return [self.entries[p].row() for p in order if p in self.entries]


def report_on_simulated_platform(
    network: IntegerNetwork,
    platform: SmartSensorPlatform,
    calibration_frames: np.ndarray,
    compiled: Optional[CompiledModel] = None,
) -> PlatformReport:
    """Measure one platform by actually running frames on the ISA simulator."""
    if compiled is None:
        compiled = compile_network(
            network,
            use_sdotp=platform.spec.supports_sdotp,
            code_overhead_bytes=platform.spec.code_overhead_bytes,
        )
    batch = run_frames(platform, compiled, calibration_frames)
    cycles = batch.mean_cycles
    return PlatformReport(
        platform=platform.spec.name,
        code_bytes=compiled.code_size_bytes,
        data_bytes=compiled.data_size_bytes,
        cycles=cycles,
        latency_ms=platform.spec.cycles_to_seconds(int(cycles)) * 1e3,
        energy_uj=platform.spec.energy_per_inference_uj(int(cycles)),
    )


def report_on_stm32(
    network: IntegerNetwork, model: Optional[Stm32DeploymentModel] = None
) -> PlatformReport:
    """Analytical STM32 + X-CUBE-AI estimate."""
    model = model or Stm32DeploymentModel()
    cycles = model.inference_cycles(network)
    return PlatformReport(
        platform=STM32_SPEC.name,
        code_bytes=model.code_size_bytes(network),
        data_bytes=model.data_size_bytes(network),
        cycles=cycles,
        latency_ms=model.latency_s(network) * 1e3,
        energy_uj=model.energy_uj(network),
    )


def full_deployment_report(
    network: IntegerNetwork,
    calibration_frames: np.ndarray,
    model_label: str = "model",
) -> DeploymentReport:
    """Build the complete Table-I row set (STM32 / IBEX / MAUPITI) for one model."""
    report = DeploymentReport(model_label=model_label)
    report.add(report_on_stm32(network))
    report.add(
        report_on_simulated_platform(network, ibex_platform(), calibration_frames)
    )
    report.add(
        report_on_simulated_platform(network, maupiti_platform(), calibration_frames)
    )
    return report
