"""Bit-packing helpers for INT4 / INT8 tensors.

The deployment layout stores every "channel run" (the innermost contiguous
dimension of a tensor) padded with zeros up to a 32-bit word boundary: this
lets the SIMD kernels consume whole words with no scalar leftover code, and
costs only a few zero elements per run (the zeros contribute nothing to the
dot products).  The same layout is used by the scalar kernels, which simply
iterate over the real elements using the padded strides.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

WORD_BYTES = 4


def values_per_word(bits: int) -> int:
    if bits not in (4, 8):
        raise ValueError(f"unsupported packing bit-width {bits}")
    return 32 // bits


def padded_run_length(count: int, bits: int) -> int:
    """Number of values a run of ``count`` values occupies once padded to a
    whole number of 32-bit words."""
    if count < 0:
        raise ValueError("count must be non-negative")
    per_word = values_per_word(bits)
    return ((count + per_word - 1) // per_word) * per_word


def padded_run_bytes(count: int, bits: int) -> int:
    return padded_run_length(count, bits) * bits // 8


def pack_values(values: Iterable[int], bits: int) -> bytes:
    """Pack signed integer values into little-endian bytes (2 nibbles per
    byte for INT4, 1 value per byte for INT8).  The caller is responsible
    for padding the run length to a word multiple."""
    values = list(int(v) for v in values)
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    for v in values:
        if not lo <= v <= hi:
            raise ValueError(f"value {v} does not fit in a signed {bits}-bit field")
    if bits == 8:
        return bytes((v & 0xFF) for v in values)
    if len(values) % 2:
        raise ValueError("INT4 packing requires an even number of values")
    out = bytearray()
    for low, high in zip(values[::2], values[1::2]):
        out.append((low & 0xF) | ((high & 0xF) << 4))
    return bytes(out)


def unpack_values(raw: bytes, count: int, bits: int) -> List[int]:
    """Inverse of :func:`pack_values`; returns ``count`` signed values."""
    result: List[int] = []
    if bits == 8:
        for b in raw[:count]:
            result.append(b - 256 if b >= 128 else b)
        return result
    for b in raw:
        for nibble in (b & 0xF, (b >> 4) & 0xF):
            result.append(nibble - 16 if nibble >= 8 else nibble)
            if len(result) == count:
                return result
    if len(result) < count:
        raise ValueError("not enough bytes to unpack the requested count")
    return result


def pack_padded_run(values: np.ndarray, bits: int) -> bytes:
    """Pack one channel run, zero-padding it to a 32-bit word boundary."""
    values = np.asarray(values).reshape(-1)
    padded = np.zeros(padded_run_length(values.size, bits), dtype=np.int64)
    padded[: values.size] = values
    return pack_values(padded.tolist(), bits)


def pack_runs(matrix: np.ndarray, bits: int) -> bytes:
    """Pack a 2D array row by row, each row being an independent padded run."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2D array of runs, got shape {matrix.shape}")
    out = bytearray()
    for row in matrix:
        out.extend(pack_padded_run(row, bits))
    return bytes(out)
